# Development targets. `make check` is the tier-1 gate plus static checks
# and the race detector; CI and pre-commit should run it.

GO ?= go

.PHONY: build test race vet fmt check bench bench-probe

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

check: build vet fmt test race

bench:
	$(GO) test -bench=. -benchmem

# Probe-layer overhead: "off" must stay within 2% of the pre-probe simulator.
bench-probe:
	$(GO) test -run xxx -bench BenchmarkProbeOverhead -benchtime 5x .
