# Development targets. `make check` is the tier-1 gate plus static checks
# and the race detector; CI and pre-commit should run it.

GO ?= go

.PHONY: build test race race-sweep par-smoke vet fmt lint lint-test check audit-smoke trace-smoke perf-smoke chaos-smoke bench bench-save bench-check bench-probe

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# The sweep worker pool and the parallel-vs-sequential determinism golden
# under the race detector (the Fig. 10 golden; the heavier Fig. 11 golden
# runs race-free in `test`).
race-sweep:
	$(GO) test -race ./internal/sweep
	$(GO) test -race -run TestFig10SweepDeterminism ./internal/exp

# The intra-run parallel engine's byte-identity goldens under the race
# detector: sharded node stepping must reproduce the sequential results,
# probe event streams and audit snapshots exactly, for LOFT and GSF — and,
# via TestPerfmonByteIdentity, identically with the self-profiler attached.
# The chaos goldens extend the same contract to faulted runs: a five-kind
# fault plan and lsf table corruptions must stay byte-identical across
# worker counts while the auditor still catches the injected damage.
par-smoke:
	$(GO) test -race -run 'TestParallelDeterminism|TestParallelGSFDeterminism|TestPerfmonByteIdentity|TestChaosPlanParallelDeterminism|TestInjectFaultParallelDeterminism' -count=1 .

vet:
	$(GO) vet ./...

# The repo's own analyzers (cmd/loftcheck): determinism, hookguard, hotpath,
# lockdiscipline, stagepurity, allocbound. -strict also rejects //lint:ignore
# suppressions, so the simulation packages stay at zero diagnostics AND zero
# suppressions. allocbound replays `go build -gcflags=-m=2` from the build
# cache, so a warm run costs milliseconds.
lint:
	$(GO) run ./cmd/loftcheck -strict ./...

# The analyzer framework's own tests (golden corpora, loader failure paths,
# suppression accounting) under the race detector.
lint-test:
	$(GO) test -race ./internal/lint/ ./cmd/loftcheck/

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

# A short audited simulation under the race detector: the runtime QoS
# auditor checks every scheduler invariant and delay bound and the command
# exits non-zero on any violation. Both architectures run so the GSF-side
# conformance hooks stay covered too.
audit-smoke:
	$(GO) run -race ./cmd/loftsim -arch loft -pattern case1 -rate 0.6 \
		-warmup 500 -cycles 2000 -audit
	$(GO) run -race ./cmd/loftsim -arch gsf -pattern case1 -rate 0.6 \
		-warmup 500 -cycles 2000 -audit

# A tiny simulation exporting a run directory, then the offline toolchain
# over it: summary and decompose must parse the artifacts, and the run
# diffed against itself must report zero delta and exit 0.
trace-smoke:
	@dir="$$(mktemp -d)"; set -e; \
	$(GO) run ./cmd/loftsim -arch loft -pattern case1 -rate 0.6 \
		-warmup 200 -cycles 1500 -audit -probe-out "$$dir/run/"; \
	$(GO) run ./cmd/lofttrace summary "$$dir/run" > /dev/null; \
	$(GO) run ./cmd/lofttrace decompose "$$dir/run" > /dev/null; \
	$(GO) run ./cmd/lofttrace diff "$$dir/run" "$$dir/run"; \
	rm -rf "$$dir"

# A profiled simulation on the parallel engine exporting a run directory,
# then the perf toolchain over it: the stage-attribution table and the
# shard-utilization report must render, the folded flamegraph must be
# non-empty, and the run perf-diffed against itself must report zero
# regression breaches and exit 0.
perf-smoke:
	@dir="$$(mktemp -d)"; set -e; \
	$(GO) run ./cmd/loftsim -arch loft -pattern uniform -rate 0.2 \
		-warmup 200 -cycles 1500 -jnode 2 -perf -probe -probe-out "$$dir/run/"; \
	$(GO) run ./cmd/lofttrace perf "$$dir/run"; \
	$(GO) run ./cmd/lofttrace perf -diff "$$dir/run" "$$dir/run"; \
	test -s "$$dir/run/perf.folded"; \
	rm -rf "$$dir"

# Graceful degradation under a full five-kind fault plan, audited, across
# three seeds and under the race detector: victim flows must keep every
# delay bound and the adversary must stay inside its quarantine cap, so the
# command exits non-zero on any violation. Then the same chaotic run is
# exported sequentially and with -jnode 4 and the probe event stream and
# audit snapshot must be byte-identical — fault injection may not perturb
# the parallel engine's determinism contract.
chaos-smoke:
	@set -e; plan='link-down node=7 dir=south from=700 to=900; flit-loss node=3 dir=east rate=0.3 from=600 to=1800; credit-stall node=15 dir=south from=1000 to=1060; router-stall node=9 from=1200 to=1210; adversary flow=1 factor=3 cap=0.6 from=800'; \
	for seed in 1 2 3; do \
		$(GO) run -race ./cmd/loftsim -pattern case1 -rate 0.6 \
			-warmup 500 -cycles 2000 -seed $$seed -fault "$$plan" -audit; \
	done; \
	dir="$$(mktemp -d)"; \
	$(GO) run ./cmd/loftsim -pattern case1 -rate 0.6 -warmup 500 \
		-cycles 2000 -fault "$$plan" -audit -probe-out "$$dir/a/"; \
	$(GO) run ./cmd/loftsim -pattern case1 -rate 0.6 -warmup 500 \
		-cycles 2000 -jnode 4 -fault "$$plan" -audit -probe-out "$$dir/b/"; \
	cmp "$$dir/a/events.jsonl" "$$dir/b/events.jsonl"; \
	cmp "$$dir/a/audit.json" "$$dir/b/audit.json"; \
	rm -rf "$$dir"

check: build vet fmt lint test race-sweep par-smoke race audit-smoke trace-smoke perf-smoke chaos-smoke

bench:
	$(GO) test -bench=. -benchmem

# Record the engineering benchmarks' headline metrics in BENCH_<date>.json.
bench-save:
	scripts/bench.sh

# Re-run the engineering benchmarks against the recorded baseline: the
# probe-off, audit-off, perf-off and fault-off paths and raw simulator
# speed must not regress more than 2% (best of -count repetitions, so one
# descheduled run cannot flake the gate).
BASELINE ?= $(lastword $(sort $(wildcard BENCH_*.json)))
bench-check:
	@test -n "$(BASELINE)" || { echo "no BENCH_*.json baseline recorded; run make bench-save"; exit 1; }
	LOFT_BENCH_BASELINE=$(BASELINE) $(GO) test -run '^$$' \
		-bench 'BenchmarkSimulatorSpeed|BenchmarkProbeOverhead|BenchmarkAuditOverhead|BenchmarkPerfmonOverhead|BenchmarkFaultOverhead|BenchmarkSteadyStateAllocs' -benchtime 10x -count 3 .

# Probe-layer overhead: "off" must stay within 2% of the pre-probe simulator.
bench-probe:
	$(GO) test -run xxx -bench BenchmarkProbeOverhead -benchtime 5x .
