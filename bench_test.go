// Benchmarks regenerating every table and figure of the paper's evaluation.
// Each benchmark runs the corresponding experiment (in quick mode so the
// full suite completes in minutes) and reports its headline quantities as
// custom metrics. Run the full-fidelity versions with cmd/loftexp.
package loft

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"testing"

	"loft/internal/analysis"
	"loft/internal/audit"
	"loft/internal/config"
	"loft/internal/core"
	"loft/internal/exp"
	"loft/internal/fault"
	loftnet "loft/internal/loft"
	"loft/internal/perfmon"
	"loft/internal/probe"
	"loft/internal/tdm"
	"loft/internal/topo"
	"loft/internal/traffic"
)

// BenchmarkFig6FlowControl regenerates the Fig. 6 flow-control comparison:
// completion cycles for 4 back-to-back packets under wormhole, GSF and FRS.
func BenchmarkFig6FlowControl(b *testing.B) {
	var rows []exp.Fig6Row
	for i := 0; i < b.N; i++ {
		rows = setLast(rows, exp.Fig6FlowControl())
	}
	b.ReportMetric(float64(rows[0].DoneCycle), "wormhole-cycles")
	b.ReportMetric(float64(rows[1].DoneCycle), "gsf-cycles")
	b.ReportMetric(float64(rows[2].DoneCycle), "frs-cycles")
}

// BenchmarkFig10Fairness regenerates the Fig. 10 fairness tables (hotspot
// throughput allocation under equal and differentiated reservations).
func BenchmarkFig10Fairness(b *testing.B) {
	for _, alloc := range []exp.Allocation{exp.AllocEqual, exp.AllocDiff4, exp.AllocDiff2} {
		b.Run(string(alloc), func(b *testing.B) {
			var rows []exp.FairnessRow
			for i := 0; i < b.N; i++ {
				r, err := exp.Fig10Fairness(alloc, exp.Options{Seed: uint64(i + 1), Quick: true})
				if err != nil {
					b.Fatal(err)
				}
				rows = r
			}
			b.ReportMetric(rows[0].Avg, "r1-avg-flits/cyc")
			b.ReportMetric(rows[0].StdevPct, "r1-stdev-pct")
			if len(rows) > 1 {
				b.ReportMetric(rows[0].Avg/rows[len(rows)-1].Avg, "r1/rN-ratio")
			}
		})
	}
}

// BenchmarkFig11Uniform regenerates Fig. 11a: the uniform-traffic load sweep
// for GSF and LOFT across speculative buffer sizes.
func BenchmarkFig11Uniform(b *testing.B) {
	var res *exp.Fig11Result
	for i := 0; i < b.N; i++ {
		r, err := exp.Fig11("uniform", exp.Options{Seed: uint64(i + 1), Quick: true})
		if err != nil {
			b.Fatal(err)
		}
		res = r
	}
	last := res.Points[len(res.Points)-1]
	b.ReportMetric(last.Throughput["GSF"], "gsf-sat-flits/cyc/node")
	b.ReportMetric(last.Throughput["LOFT spec=12"], "loft12-sat-flits/cyc/node")
	b.ReportMetric(last.Throughput["LOFT spec=0"], "loft0-sat-flits/cyc/node")
}

// BenchmarkFig11Hotspot regenerates Fig. 11b: the hotspot-traffic load sweep.
func BenchmarkFig11Hotspot(b *testing.B) {
	var res *exp.Fig11Result
	for i := 0; i < b.N; i++ {
		r, err := exp.Fig11("hotspot", exp.Options{Seed: uint64(i + 1), Quick: true})
		if err != nil {
			b.Fatal(err)
		}
		res = r
	}
	last := res.Points[len(res.Points)-1]
	b.ReportMetric(last.Throughput["GSF"], "gsf-sat-flits/cyc/node")
	b.ReportMetric(last.Throughput["LOFT spec=8"], "loft8-sat-flits/cyc/node")
	b.ReportMetric(last.Latency["LOFT spec=8"], "loft8-latency-cyc")
}

// BenchmarkFig12CaseStudyI regenerates Fig. 12: per-flow latency and
// throughput under denial-of-service aggression, for both architectures.
func BenchmarkFig12CaseStudyI(b *testing.B) {
	for _, arch := range []core.Arch{core.ArchLOFT, core.ArchGSF} {
		b.Run(string(arch), func(b *testing.B) {
			var rows []exp.CaseIRow
			for i := 0; i < b.N; i++ {
				r, err := exp.Fig12CaseI(arch, exp.Options{Seed: uint64(i + 1), Quick: true})
				if err != nil {
					b.Fatal(err)
				}
				rows = r
			}
			last := rows[len(rows)-1]
			b.ReportMetric(last.Latency[0], "victim-latency-cyc")
			b.ReportMetric(last.Latency[1], "aggressor-latency-cyc")
			b.ReportMetric(last.Throughput[0], "victim-flits/cyc")
			b.ReportMetric(last.Aggregate, "aggregate-flits/cyc")
		})
	}
}

// BenchmarkFig13CaseStudyII regenerates Fig. 13: grey vs stripped node
// throughput on the pathological pattern, for both architectures.
func BenchmarkFig13CaseStudyII(b *testing.B) {
	for _, arch := range []core.Arch{core.ArchLOFT, core.ArchGSF} {
		b.Run(string(arch), func(b *testing.B) {
			var rows []exp.CaseIIRow
			for i := 0; i < b.N; i++ {
				r, err := exp.Fig13CaseII(arch, exp.Options{Seed: uint64(i + 1), Quick: true})
				if err != nil {
					b.Fatal(err)
				}
				rows = r
			}
			last := rows[len(rows)-1]
			b.ReportMetric(last.Grey, "grey-flits/cyc")
			b.ReportMetric(last.Stripped, "stripped-flits/cyc")
		})
	}
}

// BenchmarkTable2Storage regenerates the Table 2 storage accounting.
func BenchmarkTable2Storage(b *testing.B) {
	var saving float64
	for i := 0; i < b.N; i++ {
		g := analysis.GSFStorage(config.PaperGSF(), 64)
		l := analysis.LOFTStorage(config.PaperLOFT())
		saving = 1 - float64(l.Total)/float64(g.Total)
	}
	b.ReportMetric(saving*100, "loft-storage-saving-pct")
}

// BenchmarkDelayBounds validates the §5.3.1 worst-case latency bounds
// against observed maxima under heavy contention.
func BenchmarkDelayBounds(b *testing.B) {
	var rows []exp.DelayBoundRow
	for i := 0; i < b.N; i++ {
		r, err := exp.DelayBounds(exp.Options{Seed: uint64(i + 1), Quick: true})
		if err != nil {
			b.Fatal(err)
		}
		rows = r
	}
	for _, r := range rows {
		if r.Arch == "LOFT" {
			b.ReportMetric(float64(r.BoundCycles), "loft-bound-cyc")
			b.ReportMetric(float64(r.MaxObserved), "loft-observed-max-cyc")
			if !r.Holds {
				b.Fatalf("LOFT delay bound violated: %d > %d", r.MaxObserved, r.BoundCycles)
			}
		}
	}
}

// BenchmarkAblationYieldCondition compares hotspot fairness and utilization
// with the condition-(1)-derived yield policy on and off (DESIGN.md §5
// discusses why the default is off).
func BenchmarkAblationYieldCondition(b *testing.B) {
	for _, yield := range []bool{false, true} {
		name := "off"
		if yield {
			name = "on"
		}
		b.Run(name, func(b *testing.B) {
			var util float64
			for i := 0; i < b.N; i++ {
				cfg := config.PaperLOFT()
				cfg.YieldCondition = yield
				p := trafficHotspot(cfg)
				res, _, err := core.RunLOFT(cfg, p, core.RunSpec{Seed: uint64(i + 1), Warmup: 2000, Measure: 6000})
				if err != nil {
					b.Fatal(err)
				}
				util = res.TotalRate
			}
			b.ReportMetric(util, "hotspot-utilization")
		})
	}
}

// BenchmarkAblationSpecBuffer sweeps the speculative buffer size on uniform
// traffic at light load (below the spec=0 configuration's regulated
// capacity, so all variants deliver), isolating §4.3.1's latency
// contribution.
func BenchmarkAblationSpecBuffer(b *testing.B) {
	for _, spec := range []int{0, 4, 12} {
		b.Run(map[int]string{0: "spec0", 4: "spec4", 12: "spec12"}[spec], func(b *testing.B) {
			var lat float64
			for i := 0; i < b.N; i++ {
				cfg := config.PaperLOFTSpec(spec)
				p := trafficUniform(cfg, 0.02)
				res, _, err := core.RunLOFT(cfg, p, core.RunSpec{Seed: uint64(i + 1), Warmup: 2000, Measure: 6000})
				if err != nil {
					b.Fatal(err)
				}
				lat = res.AvgNetLatency
			}
			b.ReportMetric(lat, "net-latency-cyc")
		})
	}
}

// baselineGuard asserts a measured metric has not fallen more than
// allowedPct below the value recorded for name in the JSON baseline file
// named by the LOFT_BENCH_BASELINE environment variable (written by
// scripts/bench.sh / make bench-save). With the variable unset the guard is
// a no-op, keeping ordinary test runs machine-independent; `make
// bench-check` sets it to the committed BENCH_<date>.json.
//
// The assertion is best-of-N: each call records the measurement, and
// TestMain compares the best repetition per benchmark against the floor
// after all -count repetitions have run, so one descheduled run on a shared
// machine cannot fail a benchmark whose best run meets the bar.
func baselineGuard(b *testing.B, name string, got, allowedPct float64) {
	if os.Getenv("LOFT_BENCH_BASELINE") == "" {
		return
	}
	if best, ok := baselineBest[name]; !ok || got > best {
		baselineBest[name] = got
	}
	baselineTol[name] = allowedPct
}

// baselineGuardLow is baselineGuard for lower-is-better metrics (allocation
// counts): the best repetition is the minimum, and bench-check fails when
// the best run exceeds the recorded baseline by more than allowedPct (a zero
// baseline tolerates nothing).
func baselineGuardLow(b *testing.B, name string, got, allowedPct float64) {
	if os.Getenv("LOFT_BENCH_BASELINE") == "" {
		return
	}
	if best, ok := baselineBest[name]; !ok || got < best {
		baselineBest[name] = got
	}
	baselineTol[name] = allowedPct
	baselineLow[name] = true
}

var (
	baselineBest = map[string]float64{}
	baselineTol  = map[string]float64{}
	baselineLow  = map[string]bool{}
)

func TestMain(m *testing.M) {
	code := m.Run()
	if code == 0 {
		if err := checkBaseline(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			code = 1
		}
	}
	os.Exit(code)
}

func checkBaseline() error {
	path := os.Getenv("LOFT_BENCH_BASELINE")
	if path == "" || len(baselineBest) == 0 {
		return nil
	}
	blob, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("baseline: %v", err)
	}
	var base map[string]float64
	if err := json.Unmarshal(blob, &base); err != nil {
		return fmt.Errorf("baseline %s: %v", path, err)
	}
	names := make([]string, 0, len(baselineBest))
	for name := range baselineBest {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		got := baselineBest[name]
		want, ok := base[name]
		if !ok {
			return fmt.Errorf("baseline %s has no entry %q", path, name)
		}
		tol := baselineTol[name]
		if baselineLow[name] {
			if got > want*(1+tol/100) {
				return fmt.Errorf("%s regressed: best run %g vs baseline %g (lower is better, allowed +%.1f%%)",
					name, got, want, tol)
			}
		} else if got < want*(1-tol/100) {
			return fmt.Errorf("%s regressed: best run %.0f vs baseline %.0f (-%.1f%%, allowed %.1f%%)",
				name, got, want, 100*(1-got/want), tol)
		}
	}
	return nil
}

// primeRun performs one short untimed run of the overhead workload so every
// timed region starts from the same warmed allocator and cache state.
// Without it the first sub-benchmark of an off/on pair pays the process
// warmup and the comparison skews — the very inversion bench.sh warns about.
func primeRun(b *testing.B, cfg config.LOFT, p *traffic.Pattern) {
	b.Helper()
	if _, _, err := core.RunLOFT(cfg, p, core.RunSpec{Seed: 1, Warmup: 0, Measure: 2000}); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkSimulatorSpeed measures raw simulation throughput (cycles/sec)
// of the LOFT model on the paper configuration — an engineering metric, not
// a paper artifact.
func BenchmarkSimulatorSpeed(b *testing.B) {
	cfg := config.PaperLOFT()
	p := trafficUniform(cfg, 0.2)
	primeRun(b, cfg, p)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := core.RunLOFT(cfg, p, core.RunSpec{Seed: 1, Warmup: 0, Measure: 2000}); err != nil {
			b.Fatal(err)
		}
	}
	cps := float64(2000*b.N) / b.Elapsed().Seconds()
	b.ReportMetric(cps, "sim-cycles/sec")
	baselineGuard(b, "BenchmarkSimulatorSpeed", cps, 2)
}

// BenchmarkParallelSpeed measures simulation throughput of the sharded
// two-phase cycle engine across worker counts on the 8x8 paper
// configuration. workers=1 is the sequential kernel; the speedup of the
// other rows is machine-dependent (bounded by available cores), so the
// numbers are recorded in the bench baseline but not regression-guarded.
func BenchmarkParallelSpeed(b *testing.B) {
	cfg := config.PaperLOFT()
	p := trafficUniform(cfg, 0.2)
	primeRun(b, cfg, p)
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := core.RunLOFT(cfg, p, core.RunSpec{Seed: 1, Warmup: 0, Measure: 2000, Workers: workers}); err != nil {
					b.Fatal(err)
				}
			}
			cps := float64(2000*b.N) / b.Elapsed().Seconds()
			b.ReportMetric(cps, "sim-cycles/sec")
		})
	}
}

// BenchmarkSteadyStateAllocs pins the simulator's steady-state allocation
// rate: once past the startup transient a LOFT run must not allocate at
// all. The metric is allocations per 50-cycle chunk; the baseline records 0
// and bench-check fails on any increase.
func BenchmarkSteadyStateAllocs(b *testing.B) {
	cfg := config.PaperLOFT()
	p := trafficUniform(cfg, 0.2)
	// Warmup beyond the horizon keeps stats collectors on their early-return
	// branches (as in TestSteadyStateZeroAlloc).
	net, err := loftnet.New(cfg, p, loftnet.Options{Seed: 1, Warmup: 1 << 30})
	if err != nil {
		b.Fatal(err)
	}
	defer net.Close()
	net.Run(4000)
	avg := testing.AllocsPerRun(10, func() { net.Run(50) })
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.Run(50)
	}
	b.ReportMetric(avg, "steady-allocs/chunk")
	baselineGuardLow(b, "BenchmarkSteadyStateAllocs", avg, 0)
}

// BenchmarkProbeOverhead measures the observability layer's cost on the
// acceptance workload (20k-cycle uniform LOFT at the paper scale): "off"
// must stay within 2% of the pre-probe simulator (the disabled path is a
// handful of nil checks), "on" shows the full tracing+sampling cost.
func BenchmarkProbeOverhead(b *testing.B) {
	cfg := config.PaperLOFT()
	// One shared pattern: both modes must time the exact same workload, and
	// the priming run warms the harness before either mode is measured.
	p := trafficUniform(cfg, 0.2)
	for _, mode := range []string{"off", "on"} {
		b.Run(mode, func(b *testing.B) {
			primeRun(b, cfg, p)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				var pr *probe.Probe
				if mode == "on" {
					pr = probe.New(probe.Config{SampleEvery: 256})
				}
				spec := core.RunSpec{Seed: 1, Warmup: 0, Measure: 20000, Probe: pr}
				if _, _, err := core.RunLOFT(cfg, p, spec); err != nil {
					b.Fatal(err)
				}
			}
			cps := float64(20000*b.N) / b.Elapsed().Seconds()
			b.ReportMetric(cps, "sim-cycles/sec")
			if mode == "off" {
				baselineGuard(b, "BenchmarkProbeOverhead/off", cps, 2)
			}
		})
	}
}

// BenchmarkPerfmonOverhead measures the self-profiler's cost on the same
// workload as BenchmarkProbeOverhead: "off" must stay within 2% of the
// un-profiled simulator (the disabled path is the hookguard-enforced nil
// checks), "on" shows the cost of sampled stage timers at the default
// sampling period.
func BenchmarkPerfmonOverhead(b *testing.B) {
	cfg := config.PaperLOFT()
	p := trafficUniform(cfg, 0.2)
	for _, mode := range []string{"off", "on"} {
		b.Run(mode, func(b *testing.B) {
			primeRun(b, cfg, p)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				var mon *perfmon.Monitor
				if mode == "on" {
					mon = perfmon.New(perfmon.Config{SampleEvery: perfmon.DefaultSampleEvery})
				}
				spec := core.RunSpec{Seed: 1, Warmup: 0, Measure: 20000, Perf: mon}
				if _, _, err := core.RunLOFT(cfg, p, spec); err != nil {
					b.Fatal(err)
				}
			}
			cps := float64(20000*b.N) / b.Elapsed().Seconds()
			b.ReportMetric(cps, "sim-cycles/sec")
			if mode == "off" {
				baselineGuard(b, "BenchmarkPerfmonOverhead/off", cps, 2)
			}
		})
	}
}

// BenchmarkAuditOverhead measures the runtime QoS auditor's cost on the
// same workload as BenchmarkProbeOverhead: "off" must stay within 2% of
// the un-audited simulator (the disabled path is nil checks on the probe
// and audit hooks), "on" shows the full shadow-accounting + flight-recorder
// cost.
func BenchmarkAuditOverhead(b *testing.B) {
	cfg := config.PaperLOFT()
	p := trafficUniform(cfg, 0.2)
	for _, mode := range []string{"off", "on"} {
		b.Run(mode, func(b *testing.B) {
			primeRun(b, cfg, p)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				var aud *audit.Auditor
				if mode == "on" {
					aud = audit.New(audit.Config{})
				}
				spec := core.RunSpec{Seed: 1, Warmup: 0, Measure: 20000, Audit: aud}
				if _, _, err := core.RunLOFT(cfg, p, spec); err != nil {
					b.Fatal(err)
				}
				if err := aud.Err(); err != nil {
					b.Fatal(err)
				}
			}
			cps := float64(20000*b.N) / b.Elapsed().Seconds()
			b.ReportMetric(cps, "sim-cycles/sec")
			if mode == "off" {
				baselineGuard(b, "BenchmarkAuditOverhead/off", cps, 2)
			}
		})
	}
}

// BenchmarkFaultOverhead measures the fault-injection layer's cost on the
// same workload as BenchmarkProbeOverhead: "off" must stay within 2% of the
// fault-free simulator (no plan armed leaves every node's fault pointer nil,
// so the hot path pays only nil checks), "on" arms a five-kind chaos plan
// and shows the full gating + retry cost.
func BenchmarkFaultOverhead(b *testing.B) {
	cfg := config.PaperLOFT()
	p := trafficUniform(cfg, 0.2)
	plan, err := fault.Parse(`
		link-down    node=7  dir=south from=5000 to=7000
		flit-loss    node=3  dir=east  rate=0.2 from=2000 to=15000
		credit-stall node=15 dir=west  from=8000 to=8200
		router-stall node=9  from=9000 to=9050
		adversary    flow=1  factor=3 cap=1 from=4000`)
	if err != nil {
		b.Fatal(err)
	}
	for _, mode := range []string{"off", "on"} {
		b.Run(mode, func(b *testing.B) {
			primeRun(b, cfg, p)
			b.ResetTimer()
			var faults uint64
			for i := 0; i < b.N; i++ {
				spec := core.RunSpec{Seed: 1, Warmup: 0, Measure: 20000}
				if mode == "on" {
					spec.Fault = plan
				}
				res, _, err := core.RunLOFT(cfg, p, spec)
				if err != nil {
					b.Fatal(err)
				}
				faults = res.FaultsInjected
			}
			if mode == "on" && faults == 0 {
				b.Fatal("chaos plan armed but no faults fired")
			}
			cps := float64(20000*b.N) / b.Elapsed().Seconds()
			b.ReportMetric(cps, "sim-cycles/sec")
			if mode == "off" {
				baselineGuard(b, "BenchmarkFaultOverhead/off", cps, 2)
			}
		})
	}
}

func setLast[T any](_, v T) T { return v }

func trafficUniform(cfg config.LOFT, rate float64) *traffic.Pattern {
	return traffic.Uniform(cfg.Mesh(), rate, cfg.PacketFlits, cfg.FrameFlits)
}

func trafficHotspot(cfg config.LOFT) *traffic.Pattern {
	mesh := cfg.Mesh()
	return traffic.Hotspot(mesh, topo.NodeID(mesh.N()-1), 0.5, cfg.PacketFlits, cfg.FrameFlits, cfg.QuantumFlits, nil)
}

// BenchmarkScalability runs LOFT on growing meshes (the paper's motivation:
// LSF needs only local information exchange, so it should scale) and
// reports accepted throughput per node under uniform traffic at a fixed
// offered load.
func BenchmarkScalability(b *testing.B) {
	for _, k := range []int{4, 8, 12} {
		b.Run(map[int]string{4: "4x4", 8: "8x8", 12: "12x12"}[k], func(b *testing.B) {
			var perNode float64
			for i := 0; i < b.N; i++ {
				cfg := config.PaperLOFT()
				cfg.MeshK = k
				cfg.MaxFlows = k * k
				// The frame must hold one quantum per potentially
				// contending flow (ΣR ≤ F with k² flows per link).
				if need := 2 * k * k; cfg.FrameFlits < need {
					cfg.FrameFlits = 512
					cfg.CentralBufFlits = 512
				}
				p := trafficUniform(cfg, 0.05)
				res, _, err := core.RunLOFT(cfg, p, core.RunSpec{Seed: uint64(i + 1), Warmup: 1000, Measure: 4000})
				if err != nil {
					b.Fatal(err)
				}
				perNode = res.TotalRate / float64(k*k)
			}
			b.ReportMetric(perNode, "accepted-flits/cyc/node")
		})
	}
}

// BenchmarkBurstyExtension exercises the frame window's burst absorption
// (§3.1 motivates WF>1 with bursty flows): an on/off flow at ~14% duty
// cycle should see no drops and burst-limited latency.
func BenchmarkBurstyExtension(b *testing.B) {
	var lat float64
	for i := 0; i < b.N; i++ {
		cfg := config.PaperLOFT()
		p := traffic.Bursty(cfg.Mesh(), 0, 63, 60, 400, cfg.PacketFlits, cfg.FrameFlits)
		res, _, err := core.RunLOFT(cfg, p, core.RunSpec{Seed: uint64(i + 1), Warmup: 1000, Measure: 8000})
		if err != nil {
			b.Fatal(err)
		}
		if res.Drops > 0 {
			b.Fatalf("bursty flow dropped %d packets", res.Drops)
		}
		lat = res.AvgLatency
	}
	b.ReportMetric(lat, "burst-latency-cyc")
}

// BenchmarkCostOfQoS compares a plain best-effort wormhole network against
// GSF and LOFT on uniform traffic near saturation: what the guarantees cost
// in raw throughput (an ablation beyond the paper's own figures).
func BenchmarkCostOfQoS(b *testing.B) {
	lcfg := config.PaperLOFT()
	run := func(b *testing.B, f func(seed uint64) (core.Result, error)) {
		var thr float64
		for i := 0; i < b.N; i++ {
			res, err := f(uint64(i + 1))
			if err != nil {
				b.Fatal(err)
			}
			thr = res.TotalRate / 64
		}
		b.ReportMetric(thr, "accepted-flits/cyc/node")
	}
	spec := core.RunSpec{Warmup: 2000, Measure: 6000}
	b.Run("wormhole", func(b *testing.B) {
		run(b, func(seed uint64) (core.Result, error) {
			s := spec
			s.Seed = seed
			res, _, err := core.RunGSF(config.PaperWormhole(), trafficUniform(lcfg, 0.44), lcfg.FrameFlits, s)
			return res, err
		})
	})
	b.Run("gsf", func(b *testing.B) {
		run(b, func(seed uint64) (core.Result, error) {
			s := spec
			s.Seed = seed
			res, _, err := core.RunGSF(config.PaperGSF(), trafficUniform(lcfg, 0.44), lcfg.FrameFlits, s)
			return res, err
		})
	})
	b.Run("loft", func(b *testing.B) {
		run(b, func(seed uint64) (core.Result, error) {
			s := spec
			s.Seed = seed
			res, _, err := core.RunLOFT(lcfg, trafficUniform(lcfg, 0.44), s)
			return res, err
		})
	})
}

// BenchmarkTDMRigidity contrasts Æthereal-style TDM circuit switching
// (related work, §2.2) with LOFT on the Case Study II pattern: both give
// hard guarantees, but TDM pins the uncontended stripped flow to its
// reservation while LOFT's local status resets let it use the idle link.
func BenchmarkTDMRigidity(b *testing.B) {
	lcfg := config.PaperLOFT()
	b.Run("tdm", func(b *testing.B) {
		var stripped float64
		for i := 0; i < b.N; i++ {
			p := traffic.CaseStudyII(lcfg.Mesh(), 0.9, lcfg.PacketFlits, lcfg.FrameFlits)
			net, err := tdm.New(tdm.Paper(), p, tdm.Options{Seed: uint64(i + 1), Warmup: 2000})
			if err != nil {
				b.Fatal(err)
			}
			net.Run(8000)
			stripped = net.Throughput().Flow(traffic.CaseStudyIIStripped(p))
		}
		b.ReportMetric(stripped, "stripped-flits/cyc")
	})
	b.Run("loft", func(b *testing.B) {
		var stripped float64
		for i := 0; i < b.N; i++ {
			p := traffic.CaseStudyII(lcfg.Mesh(), 0.9, lcfg.PacketFlits, lcfg.FrameFlits)
			res, _, err := core.RunLOFT(lcfg, p, core.RunSpec{Seed: uint64(i + 1), Warmup: 2000, Measure: 6000})
			if err != nil {
				b.Fatal(err)
			}
			stripped = res.FlowRate[traffic.CaseStudyIIStripped(p)]
		}
		b.ReportMetric(stripped, "stripped-flits/cyc")
	})
}
