// Command loftcheck runs the repo's custom static analyzers (internal/lint)
// over the module: determinism, hookguard, hotpath, lockdiscipline,
// stagepurity, allocbound.
//
// Usage:
//
//	loftcheck [flags] [packages]
//
// Packages default to ./... and are resolved by the go tool relative to the
// module root (located by walking up from -C, default the working
// directory).
//
// Exit codes: 0 — clean; 1 — diagnostics found (or, with -strict,
// suppressions present); 2 — the analysis itself failed to run.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"loft/internal/lint"
)

func main() {
	os.Exit(run())
}

func run() int {
	fs := flag.NewFlagSet("loftcheck", flag.ContinueOnError)
	var (
		jsonOut = fs.Bool("json", false, "emit diagnostics as a JSON document instead of file:line:col text")
		list    = fs.Bool("list", false, "list the available analyzers and exit")
		runSel  = fs.String("run", "", "comma-separated analyzer names to run (default: all)")
		strict  = fs.Bool("strict", false, "also fail when //lint:ignore suppressions are present")
		dir     = fs.String("C", "", "directory to locate the module from (default: working directory)")
	)
	fs.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: loftcheck [flags] [packages]\n\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(os.Args[1:]); err != nil {
		return 2
	}

	if *list {
		for _, a := range lint.All() {
			fmt.Printf("%-16s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	analyzers := lint.All()
	if *runSel != "" {
		var unknown string
		analyzers, unknown = lint.ByName(strings.Split(*runSel, ","))
		if unknown != "" {
			fmt.Fprintf(os.Stderr, "loftcheck: unknown analyzer %q (try -list)\n", unknown)
			return 2
		}
	}

	res, err := lint.Run(lint.Config{
		Patterns:  fs.Args(),
		Analyzers: analyzers,
		Dir:       *dir,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "loftcheck: %v\n", err)
		return 2
	}

	if *jsonOut {
		if err := lint.WriteJSON(os.Stdout, res); err != nil {
			fmt.Fprintf(os.Stderr, "loftcheck: %v\n", err)
			return 2
		}
	} else {
		lint.WriteText(os.Stdout, res)
	}

	if !res.Clean() {
		return 1
	}
	if *strict && len(res.Suppressed) > 0 {
		if !*jsonOut {
			fmt.Printf("loftcheck: -strict: %d suppression(s) present\n", len(res.Suppressed))
		}
		return 1
	}
	return 0
}
