package main

import (
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// testBin is the loftcheck binary, built once in TestMain; the end-to-end
// tests exercise real exit codes, which `go test` cannot observe through the
// package API.
var testBin string

func TestMain(m *testing.M) {
	dir, err := os.MkdirTemp("", "loftcheck-test")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer os.RemoveAll(dir)
	testBin = filepath.Join(dir, "loftcheck")
	if out, err := exec.Command("go", "build", "-o", testBin, ".").CombinedOutput(); err != nil {
		fmt.Fprintf(os.Stderr, "building loftcheck: %v\n%s", err, out)
		os.RemoveAll(dir)
		os.Exit(1)
	}
	code := m.Run()
	os.RemoveAll(dir)
	os.Exit(code)
}

func loftcheckBin(t *testing.T) string {
	t.Helper()
	return testBin
}

// runBin executes loftcheck and returns (stdout+stderr, exit code).
func runBin(t *testing.T, args ...string) (string, int) {
	t.Helper()
	cmd := exec.Command(loftcheckBin(t), args...)
	out, err := cmd.CombinedOutput()
	if err == nil {
		return string(out), 0
	}
	ee, ok := err.(*exec.ExitError)
	if !ok {
		t.Fatalf("running loftcheck: %v\n%s", err, out)
	}
	return string(out), ee.ExitCode()
}

func TestBrokenModuleFailsWithDiagnostic(t *testing.T) {
	out, code := runBin(t, "-C", "testdata/brokenmod", "./...")
	if code != 1 {
		t.Fatalf("exit code = %d, want 1\n%s", code, out)
	}
	if !strings.Contains(out, "internal/lsf/bad.go:") || !strings.Contains(out, "[determinism]") {
		t.Errorf("diagnostic missing file position or analyzer tag:\n%s", out)
	}
	if !strings.Contains(out, "time.Now") {
		t.Errorf("diagnostic does not name the offending call:\n%s", out)
	}
}

func TestBrokenModuleJSON(t *testing.T) {
	out, code := runBin(t, "-json", "-C", "testdata/brokenmod", "./...")
	if code != 1 {
		t.Fatalf("exit code = %d, want 1\n%s", code, out)
	}
	var doc struct {
		Packages    int      `json:"packages"`
		Clean       bool     `json:"clean"`
		Analyzers   []string `json:"analyzers"`
		Diagnostics []struct {
			Analyzer string `json:"analyzer"`
			File     string `json:"file"`
			Line     int    `json:"line"`
			Col      int    `json:"col"`
			Message  string `json:"message"`
		} `json:"diagnostics"`
	}
	if err := json.Unmarshal([]byte(out), &doc); err != nil {
		t.Fatalf("-json output is not valid JSON: %v\n%s", err, out)
	}
	if doc.Clean || doc.Packages < 1 || len(doc.Diagnostics) == 0 {
		t.Fatalf("unexpected JSON document: %+v", doc)
	}
	d := doc.Diagnostics[0]
	if d.Analyzer != "determinism" || d.File != filepath.Join("internal", "lsf", "bad.go") || d.Line <= 0 || d.Col <= 0 {
		t.Errorf("diagnostic fields wrong: %+v", d)
	}
	if len(doc.Analyzers) != 6 {
		t.Errorf("envelope names %d analyzers, want 6: %v", len(doc.Analyzers), doc.Analyzers)
	}
}

func TestSuppressedModuleCleanByDefaultRejectedByStrict(t *testing.T) {
	out, code := runBin(t, "-C", "testdata/suppressedmod", "./...")
	if code != 0 {
		t.Fatalf("suppressed module: exit code = %d, want 0\n%s", code, out)
	}
	if !strings.Contains(out, "suppressed by //lint:ignore") {
		t.Errorf("suppression count line missing:\n%s", out)
	}

	out, code = runBin(t, "-strict", "-C", "testdata/suppressedmod", "./...")
	if code != 1 {
		t.Fatalf("-strict with suppressions: exit code = %d, want 1\n%s", code, out)
	}
}

func TestRunSelectsAnalyzers(t *testing.T) {
	// hookguard alone must not see the determinism violation.
	out, code := runBin(t, "-run", "hookguard", "-C", "testdata/brokenmod", "./...")
	if code != 0 {
		t.Fatalf("exit code = %d, want 0\n%s", code, out)
	}
}

func TestNoMatchPatternIsRunError(t *testing.T) {
	out, code := runBin(t, "./nonexistent/...")
	if code != 2 {
		t.Fatalf("exit code = %d, want 2\n%s", code, out)
	}
	if !strings.Contains(out, "./nonexistent/...") {
		t.Errorf("error does not echo the pattern:\n%s", out)
	}
}

func TestUnknownAnalyzerIsUsageError(t *testing.T) {
	out, code := runBin(t, "-run", "nosuch", "./...")
	if code != 2 {
		t.Fatalf("exit code = %d, want 2\n%s", code, out)
	}
	if !strings.Contains(out, "unknown analyzer") {
		t.Errorf("missing error message:\n%s", out)
	}
}

func TestListAnalyzers(t *testing.T) {
	out, code := runBin(t, "-list")
	if code != 0 {
		t.Fatalf("exit code = %d, want 0\n%s", code, out)
	}
	for _, name := range []string{"determinism", "hookguard", "hotpath", "lockdiscipline", "stagepurity", "allocbound"} {
		if !strings.Contains(out, name) {
			t.Errorf("-list output missing %s:\n%s", name, out)
		}
	}
}
