// Package lsf reproduces the exact regression the determinism analyzer
// exists to stop: a wall-clock read inside the scheduler package.
package lsf

import "time"

// Stamp leaks wall-clock time into what would be simulation state.
func Stamp() int64 {
	return time.Now().UnixNano()
}
