module loft

go 1.22
