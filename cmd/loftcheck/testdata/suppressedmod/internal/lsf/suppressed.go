// Package lsf carries one justified suppression: clean under the default
// gate, rejected under -strict.
package lsf

import "time"

// Stamp is suppressed with a recorded rationale.
func Stamp() int64 {
	//lint:ignore determinism timestamp labels an operator log line, never results
	return time.Now().UnixNano()
}
