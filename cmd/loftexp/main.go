// Command loftexp regenerates every table and figure of the paper's
// evaluation (see DESIGN.md's per-experiment index) and prints them as text
// tables. -quick trades fidelity for speed; -exp selects one experiment.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sort"
	"strings"
	"sync/atomic"

	"loft/internal/analysis"
	"loft/internal/audit"
	"loft/internal/config"
	"loft/internal/core"
	"loft/internal/exp"
	"loft/internal/fault"
	"loft/internal/perfmon"
	"loft/internal/probe"
	"loft/internal/profiles"
	"loft/internal/runenv"
	"loft/internal/runio"
	"loft/internal/trace"
)

func main() {
	var (
		which       = flag.String("exp", "all", "experiment: fig6, fig10, fig11a, fig11b, fig12, fig13, table2, bounds, areapower, all")
		quick       = flag.Bool("quick", false, "reduced cycle counts and sweep densities")
		seed        = flag.Uint64("seed", 1, "deterministic traffic seed")
		faultSpec   = flag.String("fault", "", "arm a deterministic fault-injection plan on every run: inline spec or a plan file (see DESIGN.md §16); GSF-including experiments accept adversary-only plans")
		jsonPath    = flag.String("json", "", "also write all results as JSON to this file")
		probeOn     = flag.Bool("probe", false, "attach the observability probe layer to every run")
		probeOut    = flag.String("probe-out", "", "write probe data here: a directory (trailing /) gets all formats + manifest.json, else by extension (.jsonl events, .csv time series, otherwise Chrome trace JSON) with a sibling manifest; implies -probe")
		probeSample = flag.Uint64("probe-sample", 256, "gauge sampling period in cycles (0 disables time series)")
		auditOn     = flag.Bool("audit", false, "attach the runtime QoS auditor to every run; violations exit non-zero")
		auditOut    = flag.String("audit-out", "", "write the audit conformance snapshot JSON here, plus a sibling manifest; implies -audit")
		perfOn      = flag.Bool("perf", false, "attach the in-simulator profiler to every run: per-stage cycle attribution accumulated across the sweep (forces sequential runs, never changes results)")
		perfSample  = flag.Uint64("perf-sample", perfmon.DefaultSampleEvery, "profile every Nth cycle (1 = every cycle)")
		httpAddr    = flag.String("http", "", "serve live introspection (/metrics, /audit, /debug/pprof) on this address; implies -audit")
		workers     = flag.Int("j", 0, "concurrent simulations per experiment (0 = one per CPU; probe and audit runs are forced sequential)")
		nodeWorkers = flag.Int("jnode", 0, "shard node ticking inside each simulation across this many OS threads (0 or 1 = sequential; results are byte-identical)")
		cpuProfile  = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProfile  = flag.String("memprofile", "", "write a heap profile to this file at exit")
	)
	flag.Parse()
	var plan *fault.Plan
	if *faultSpec != "" {
		p, err := fault.Load(*faultSpec)
		if err != nil {
			fmt.Fprintln(os.Stderr, "loftexp:", err)
			os.Exit(2)
		}
		plan = p
	}
	jSet := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "j" {
			jSet = true
		}
	})
	observed := *probeOn || *probeOut != "" || *auditOn || *auditOut != "" || *httpAddr != "" || *perfOn
	if err := validateExpFlags(*which, *workers, *nodeWorkers, jSet, observed, plan); err != nil {
		fmt.Fprintln(os.Stderr, "loftexp:", err)
		os.Exit(2)
	}
	stopProfiles, err := profiles.Start(*cpuProfile, *memProfile)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer stopProfiles()
	var pr *probe.Probe
	if *probeOn || *probeOut != "" {
		pr = probe.New(probe.Config{SampleEvery: *probeSample})
	}
	var aud *audit.Auditor
	if *auditOn || *auditOut != "" || *httpAddr != "" {
		aud = audit.New(audit.Config{})
	}
	var mon *perfmon.Monitor
	if *perfOn {
		mon = perfmon.New(perfmon.Config{SampleEvery: *perfSample, Workers: *nodeWorkers})
	}
	var srv *audit.Server
	if *httpAddr != "" {
		srv, err = audit.NewServer(*httpAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer srv.Close()
		srv.SetTitle("loftexp " + *which)
		aud.OnPublish(func() { srv.Publish(pr, aud, mon) })
		fmt.Fprintf(os.Stderr, "introspection server listening on %s\n", srv.URL())
	}

	// SIGINT requests a graceful stop: in-flight simulations end at the next
	// chunk boundary, later experiments finish immediately, and the
	// requested artifacts are still flushed. A second SIGINT kills.
	var interrupted atomic.Bool
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	go func() {
		<-sig
		interrupted.Store(true)
		signal.Stop(sig)
		fmt.Fprintln(os.Stderr, "interrupt: stopping at next chunk boundary, flushing snapshots (^C again to kill)")
	}()

	o := exp.Options{Seed: *seed, Quick: *quick, Workers: *workers, NodeWorkers: *nodeWorkers, Probe: pr, Audit: aud, Perf: mon, Stop: interrupted.Load, Fault: plan}
	if srv != nil {
		o.Progress = srv.JobProgress
	}
	report := map[string]any{}

	runners := []struct {
		name string
		fn   func(exp.Options) (any, error)
	}{
		{"fig6", fig6},
		{"fig10", fig10},
		{"fig11a", func(o exp.Options) (any, error) { return fig11("uniform", o) }},
		{"fig11b", func(o exp.Options) (any, error) { return fig11("hotspot", o) }},
		{"fig12", fig12},
		{"fig13", fig13},
		{"table2", func(exp.Options) (any, error) { return table2() }},
		{"bounds", bounds},
		{"areapower", func(exp.Options) (any, error) { return areaPower() }},
	}
	ran := false
	for _, r := range runners {
		if *which != "all" && *which != r.name {
			continue
		}
		if interrupted.Load() {
			break
		}
		ran = true
		fmt.Printf("==== %s ====\n", r.name)
		data, err := r.fn(o)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", r.name, err)
			os.Exit(1)
		}
		report[r.name] = data
		fmt.Println()
	}
	if !ran && !interrupted.Load() {
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *which)
		os.Exit(2)
	}
	if *jsonPath != "" {
		blob, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := os.WriteFile(*jsonPath, blob, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("wrote JSON report to %s\n", *jsonPath)
	}
	if pr != nil || *auditOut != "" {
		m := expManifest(*which, *seed, *nodeWorkers, runio.Metrics(nil, pr, aud, mon, uint64(config.PaperLOFT().QuantumFlits)))
		m.FaultPlan = plan.String()
		if pr != nil {
			if err := writeRun(pr, aud, mon, *probeOut, m); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}
		if *auditOut != "" {
			if err := writeAuditOut(*auditOut, aud, m); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}
	}
	if mon != nil && !(*probeOut != "" && runio.IsDirTarget(*probeOut)) {
		mon.Snapshot().WriteText(os.Stdout)
	}
	auditFailed := false
	if aud != nil {
		for _, line := range aud.Summary() {
			fmt.Printf("  %s\n", line)
		}
		for _, v := range aud.Violations() {
			fmt.Fprintf(os.Stderr, "audit violation: %s\n", v)
		}
		auditFailed = aud.Err() != nil
	}
	if interrupted.Load() {
		fmt.Fprintln(os.Stderr, "run interrupted; partial artifacts flushed")
		os.Exit(130)
	}
	if auditFailed {
		os.Exit(1)
	}
}

// expNames lists the experiments -exp accepts, in run order.
var expNames = []string{"fig6", "fig10", "fig11a", "fig11b", "fig12", "fig13", "table2", "bounds", "areapower"}

// simExps marks experiments that run network simulations; a fault plan is
// meaningless on the rest. gsfExps marks the subset that also simulates the
// GSF baseline, which accepts adversary-only plans.
var (
	simExps = map[string]bool{"fig10": true, "fig11a": true, "fig11b": true, "fig12": true, "fig13": true, "bounds": true, "all": true}
	gsfExps = map[string]bool{"fig11a": true, "fig11b": true, "fig12": true, "fig13": true, "bounds": true, "all": true}
)

// validateExpFlags rejects flag combinations up front that would otherwise
// fail mid-sweep or be silently ignored: an unknown -exp used to surface only
// after the introspection server was already listening, a link-level fault
// plan would abort a GSF run halfway through an experiment, and an explicit
// -j on an observed sweep was silently forced sequential. Callers report the
// error and exit 2.
func validateExpFlags(which string, workers, nodeWorkers int, jSet, observed bool, plan *fault.Plan) error {
	known := which == "all"
	for _, n := range expNames {
		if which == n {
			known = true
		}
	}
	if !known {
		return fmt.Errorf("unknown experiment %q (want all or one of %s)", which, strings.Join(expNames, ", "))
	}
	if workers < 0 {
		return fmt.Errorf("-j %d is negative; use 0 for one worker per CPU", workers)
	}
	if nodeWorkers < 0 {
		return fmt.Errorf("-jnode %d is negative; use 0 or 1 for the sequential engine", nodeWorkers)
	}
	if plan != nil {
		if !simExps[which] {
			return fmt.Errorf("-fault has no effect on %q: it runs no network simulation", which)
		}
		if gsfExps[which] && !plan.Adversarial() {
			return fmt.Errorf("fault plan %q uses link-level faults, but %q also simulates the GSF baseline, which accepts adversary events only; use -exp fig10 or an adversary-only plan", plan, which)
		}
	}
	if jSet && workers > 1 && observed {
		return fmt.Errorf("-j %d conflicts with -probe/-audit/-perf: observed sweeps share one observer and run sequentially; drop -j or the observer flags", workers)
	}
	return nil
}

// expManifest assembles the manifest recorded with exported probe/audit
// data. Experiments mix configurations, so unlike loftsim no single config
// block is recorded; the experiment name takes the pattern slot.
func expManifest(which string, seed uint64, nodeWorkers int, metrics map[string]float64) trace.Manifest {
	env := runenv.Capture()
	return trace.Manifest{
		ManifestVersion: trace.ManifestVersion,
		Tool:            "loftexp",
		Command:         os.Args,
		CreatedUTC:      env.CreatedUTC,
		GitRevision:     env.GitRevision,
		HostCPUs:        env.NumCPU,
		HostGoMaxProcs:  env.GoMaxProcs,
		NodeWorkers:     nodeWorkers,
		Pattern:         which,
		Seeds:           []uint64{seed},
		Metrics:         metrics,
	}
}

// writeRun exports the probe data collected across all runs; an empty path
// prints the event summary, a directory path writes the full run directory
// (all three export formats, audit snapshot, checksummed manifest), and any
// other path keeps the extension dispatch (probe.FormatForPath) plus a
// sibling <path>.manifest.json. Ring drops are warned about on stderr
// either way.
func writeRun(pr *probe.Probe, aud *audit.Auditor, mon *perfmon.Monitor, path string, m trace.Manifest) error {
	if d := pr.Tracer().Dropped(); d > 0 {
		fmt.Fprintf(os.Stderr, "warning: probe ring overwrote %d oldest events; raise -probe-events for a complete trace\n", d)
	}
	if path == "" {
		fmt.Println("probe event summary (all runs combined):")
		for _, line := range pr.Summary() {
			fmt.Printf("  %s\n", line)
		}
		return nil
	}
	if runio.IsDirTarget(path) {
		if err := runio.WriteRunDir(path, pr, aud, mon, m); err != nil {
			return err
		}
		fmt.Println(runio.Describe(path, pr, aud, mon))
		return nil
	}
	if err := runio.WriteFileWithManifest(path, pr, m); err != nil {
		return err
	}
	fmt.Printf("wrote probe data to %s (%d events retained, %d dropped) and %s.manifest.json\n",
		path, pr.Tracer().Len(), pr.Tracer().Dropped(), path)
	return nil
}

// writeAuditOut writes the audit conformance snapshot plus its sibling
// manifest.
func writeAuditOut(path string, aud *audit.Auditor, m trace.Manifest) error {
	if err := runio.WriteAuditSnapshot(path, aud); err != nil {
		return err
	}
	a, err := trace.FileArtifact(path)
	if err != nil {
		return err
	}
	m.Artifacts = []trace.Artifact{a}
	if err := m.Write(path + ".manifest.json"); err != nil {
		return err
	}
	fmt.Printf("wrote audit snapshot to %s (and %s.manifest.json)\n", path, path)
	return nil
}

func fig6(exp.Options) (any, error) {
	fmt.Println("Fig 6: flow-control comparison (4 packets x 4 flits over one link,")
	fmt.Println("4-flit downstream buffer close to full, 1-cycle credit turn-around)")
	rows := exp.Fig6FlowControl()
	for _, r := range rows {
		fmt.Printf("  %s\n", r)
	}
	return rows, nil
}

func fig10(o exp.Options) (any, error) {
	byAlloc, err := exp.Fig10All(o)
	if err != nil {
		return nil, err
	}
	all := map[string][]exp.FairnessRow{}
	for _, alloc := range []exp.Allocation{exp.AllocEqual, exp.AllocDiff4, exp.AllocDiff2} {
		rows := byAlloc[alloc]
		all[string(alloc)] = rows
		fmt.Printf("Fig 10 (%s): hotspot throughput fairness (flits/cycle/node)\n", alloc)
		fmt.Printf("  %-6s %8s %8s %8s %8s %6s\n", "region", "MAX", "MIN", "AVG", "STDEV%", "flows")
		for _, r := range rows {
			fmt.Printf("  %-6s %8.4f %8.4f %8.4f %7.1f%% %6d\n", r.Region, r.Max, r.Min, r.Avg, r.StdevPct, r.Flows)
		}
	}
	return all, nil
}

func fig11(pattern string, o exp.Options) (any, error) {
	res, err := exp.Fig11(pattern, o)
	if err != nil {
		return nil, err
	}
	fmt.Printf("Fig 11 (%s): avg network packet latency (cycles) by offered load\n", pattern)
	fmt.Printf("  %-7s", "load")
	for _, a := range res.Archs {
		fmt.Printf(" %13s", a)
	}
	fmt.Println()
	for _, pt := range res.Points {
		fmt.Printf("  %-7.3f", pt.Load)
		for _, a := range res.Archs {
			fmt.Printf(" %13.1f", pt.Latency[a])
		}
		fmt.Println()
	}
	fmt.Printf("accepted throughput (flits/cycle/node) by offered load\n")
	for _, pt := range res.Points {
		fmt.Printf("  %-7.3f", pt.Load)
		for _, a := range res.Archs {
			fmt.Printf(" %13.4f", pt.Throughput[a])
		}
		fmt.Println()
	}
	fmt.Println("saturation throughput normalized to GSF:")
	keys := make([]string, 0, len(res.SaturationThroughput))
	for a := range res.SaturationThroughput {
		keys = append(keys, a)
	}
	sort.Strings(keys)
	for _, a := range keys {
		fmt.Printf("  %-14s %.3f\n", a, res.SaturationThroughput[a])
	}
	return res, nil
}

func fig12(o exp.Options) (any, error) {
	all := map[string][]exp.CaseIRow{}
	for _, arch := range []core.Arch{core.ArchGSF, core.ArchLOFT} {
		rows, err := exp.Fig12CaseI(arch, o)
		if err != nil {
			return nil, err
		}
		all[string(arch)] = rows
		fmt.Printf("Fig 12 (%s): Case Study I — DoS aggressors vs regulated victim\n", strings.ToUpper(string(arch)))
		fmt.Printf("  %-8s | %-28s | %-28s | %s\n", "agg rate", "avg latency v/a48/a56 (cyc)", "throughput v/a48/a56 (f/c)", "aggregate")
		for _, r := range rows {
			fmt.Printf("  %-8.2f | %8.1f %8.1f %8.1f | %8.4f %8.4f %8.4f | %.4f\n",
				r.AggressorRate,
				r.Latency[0], r.Latency[1], r.Latency[2],
				r.Throughput[0], r.Throughput[1], r.Throughput[2],
				r.Aggregate)
		}
	}
	return all, nil
}

func fig13(o exp.Options) (any, error) {
	all := map[string][]exp.CaseIIRow{}
	for _, arch := range []core.Arch{core.ArchGSF, core.ArchLOFT} {
		rows, err := exp.Fig13CaseII(arch, o)
		if err != nil {
			return nil, err
		}
		all[string(arch)] = rows
		fmt.Printf("Fig 13 (%s): Case Study II — pathological pattern of Fig 1\n", strings.ToUpper(string(arch)))
		fmt.Printf("  %-9s %12s %12s\n", "inj rate", "grey (f/c)", "stripped")
		for _, r := range rows {
			fmt.Printf("  %-9.2f %12.4f %12.4f\n", r.Rate, r.Grey, r.Stripped)
		}
	}
	return all, nil
}

func table2() (any, error) {
	g := analysis.GSFStorage(config.PaperGSF(), 64)
	l := analysis.LOFTStorage(config.PaperLOFT())
	fmt.Println("Table 2: per-router storage requirements (bits)")
	fmt.Printf("  GSF : source queue %d, VCs %d, flow state %d — total %d\n",
		g.SourceQueue, g.VirtualChannels, g.FlowState, g.Total)
	fmt.Printf("  LOFT: input buf %d, reserv tables %d, flow state %d, LA net %d — total %d\n",
		l.InputBuffers, l.ReservationTables, l.FlowState, l.LookaheadNetwork, l.Total)
	fmt.Printf("  LOFT saves %.1f%% storage over GSF\n", 100*(1-float64(l.Total)/float64(g.Total)))
	return map[string]any{"gsf": g, "loft": l}, nil
}

func bounds(o exp.Options) (any, error) {
	rows, err := exp.DelayBounds(o)
	if err != nil {
		return nil, err
	}
	fmt.Println("Delay bounds (§5.3.1): analytical worst case vs observed maximum")
	for _, r := range rows {
		fmt.Printf("  %-5s hops=%2d bound=%6d cycles, observed max=%6d, holds=%v\n",
			r.Arch, r.Hops, r.BoundCycles, r.MaxObserved, r.Holds)
	}
	return rows, nil
}

func areaPower() (any, error) {
	ap := analysis.EstimateAreaPower(config.PaperLOFT())
	fmt.Println("Area/power estimate (§5.3.2, first-order storage model):")
	fmt.Printf("  64-node LOFT NoC: %.1f mm² (%.0f%% of a 64-core CMP die), %.1f W (%.0f%% of chip power)\n",
		ap.AreaMM2, ap.ChipAreaFrac*100, ap.PowerW, ap.ChipPowerFrac*100)
	return ap, nil
}
