package main

import (
	"strings"
	"testing"

	"loft/internal/fault"
)

func mustPlan(t *testing.T, spec string) *fault.Plan {
	t.Helper()
	p, err := fault.Parse(spec)
	if err != nil {
		t.Fatalf("Parse(%q): %v", spec, err)
	}
	return p
}

// TestValidateExpFlagsAccepts pins working combinations: every experiment
// name, adversary plans on GSF-including experiments, link-level plans on
// the LOFT-only fig10, and observed runs without an explicit -j.
func TestValidateExpFlagsAccepts(t *testing.T) {
	linkPlan := mustPlan(t, "link-down node=7 dir=south from=100 to=200")
	advPlan := mustPlan(t, "adversary flow=1 factor=2 from=100")
	for _, which := range append([]string{"all"}, expNames...) {
		if err := validateExpFlags(which, 0, 0, false, false, nil); err != nil {
			t.Errorf("%s: unexpected error: %v", which, err)
		}
	}
	if err := validateExpFlags("fig12", 0, 0, false, false, advPlan); err != nil {
		t.Errorf("adversary plan on fig12: %v", err)
	}
	if err := validateExpFlags("fig10", 0, 0, false, false, linkPlan); err != nil {
		t.Errorf("link plan on fig10: %v", err)
	}
	if err := validateExpFlags("all", 0, 0, false, true, nil); err != nil {
		t.Errorf("observed run with default -j: %v", err)
	}
	if err := validateExpFlags("all", 8, 0, true, false, nil); err != nil {
		t.Errorf("explicit -j without observers: %v", err)
	}
}

// TestValidateExpFlagsRejects pins the up-front conflict detection, exit
// code 2 material that previously failed mid-sweep or was silently ignored.
func TestValidateExpFlagsRejects(t *testing.T) {
	linkPlan := mustPlan(t, "link-down node=7 dir=south from=100 to=200")
	cases := []struct {
		name                 string
		which                string
		workers, nodeWorkers int
		jSet, observed       bool
		plan                 *fault.Plan
		want                 string
	}{
		{name: "unknown experiment", which: "fig99", want: "unknown experiment"},
		{name: "negative j", which: "all", workers: -1, want: "-j -1"},
		{name: "negative jnode", which: "all", nodeWorkers: -4, want: "-jnode"},
		{name: "fault on sim-free experiment", which: "table2", plan: linkPlan, want: "no network simulation"},
		{name: "link faults on gsf experiment", which: "fig12", plan: linkPlan, want: "adversary events only"},
		{name: "explicit -j on observed run", which: "all", workers: 8, jSet: true, observed: true, want: "run sequentially"},
	}
	for _, tc := range cases {
		err := validateExpFlags(tc.which, tc.workers, tc.nodeWorkers, tc.jSet, tc.observed, tc.plan)
		if err == nil {
			t.Errorf("%s: expected an error", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}
