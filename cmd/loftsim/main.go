// Command loftsim runs a single NoC simulation and prints a summary.
//
// Examples:
//
//	loftsim -arch loft -pattern uniform -rate 0.3 -cycles 20000
//	loftsim -arch gsf  -pattern hotspot -rate 0.01
//	loftsim -arch loft -pattern case1 -rate 0.6 -spec 8 -v
//	loftsim -arch loft -pattern case1 -rate 0.6 -probe -probe-out trace.json
//	loftsim -arch loft -pattern case1 -rate 0.6 -fault chaos.plan -audit
//
// With -probe the observability layer traces scheduler, switch and frame
// events and samples link/buffer/table gauges every -probe-sample cycles.
// -probe-out picks the exporter by extension: .jsonl writes the event dump,
// .csv the sampled time series, anything else (conventionally .json) a
// Chrome trace_event file loadable at https://ui.perfetto.dev, .prom a
// Prometheus text-format snapshot. Without -probe-out a per-kind event
// summary is printed. A directory path (existing, or spelled with a
// trailing /) writes a full run directory instead — events.jsonl,
// series.csv, trace.json, audit.json when auditing, and manifest.json
// recording the configuration, seeds, environment and artifact checksums —
// which cmd/lofttrace decomposes and diffs offline. Single-file exports
// gain a sibling <path>.manifest.json; -audit-out writes the audit
// conformance snapshot the same way.
//
// With -fault the simulator arms a deterministic fault-injection plan —
// timed link-down windows, flit loss, credit stalls, router stalls and
// adversarial flows (inline spec or a plan file; syntax in internal/fault and
// DESIGN.md §16). Degradation is graceful: denied quanta retry via the
// overdue/emergent path and the run reports faults injected, flits lost and
// retries. Combined with -audit, quarantined adversarial flows are checked
// for throttling while victim flows keep their delay bounds. Faulted runs
// are byte-reproducible for a given (plan, seed) under any -jnode.
//
// With -audit the runtime QoS auditor shadows the schedulers: it checks
// flit/credit conservation and the admission inequality on every grant,
// records each packet's hop-by-hop flight timeline, and verifies delivered
// latencies against the paper's analytical delay bounds. Violations are
// printed and make the run exit non-zero. -http serves live introspection
// (/metrics, /audit, /perf, a progress page, /debug/pprof) during the run
// and implies -audit.
//
// With -perf the simulator profiles itself: cheap monotonic stage timers
// attribute wall time to each router pipeline stage and each parallel-engine
// phase on a sampled subset of cycles (-perf-sample). Profiling never
// changes simulation results. A run-directory -probe-out additionally
// receives perf.json, perf.folded (load in any flamegraph viewer) and a
// cpu.pprof; otherwise the stage-attribution table prints to stdout.
//
// SIGINT stops the run gracefully at the next chunk boundary: all requested
// artifacts — probe exports, audit and perf snapshots, manifest — are
// flushed for the partial run before the process exits 130.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sort"
	"sync/atomic"

	"loft/internal/audit"
	"loft/internal/config"
	"loft/internal/core"
	"loft/internal/fault"
	"loft/internal/gsf"
	"loft/internal/loft"
	"loft/internal/perfmon"
	"loft/internal/probe"
	"loft/internal/profiles"
	"loft/internal/runenv"
	"loft/internal/runio"
	"loft/internal/stats"
	"loft/internal/sweep"
	"loft/internal/topo"
	"loft/internal/trace"
	"loft/internal/traffic"
)

func main() {
	var (
		arch        = flag.String("arch", "loft", "architecture: loft or gsf")
		pattern     = flag.String("pattern", "uniform", "traffic: uniform, hotspot, case1, case2, neighbor, transpose")
		rate        = flag.Float64("rate", 0.1, "offered load in flits/cycle/node (aggressor rate for case1)")
		spec        = flag.Int("spec", 12, "LOFT speculative buffer size in flits (0 disables §4.3 optimizations)")
		warmup      = flag.Uint64("warmup", 5000, "warmup cycles excluded from statistics")
		cycles      = flag.Uint64("cycles", 20000, "measured cycles")
		seed        = flag.Uint64("seed", 1, "deterministic traffic seed")
		verbose     = flag.Bool("v", false, "print per-flow rates")
		heatmap     = flag.Bool("heatmap", false, "print an ASCII link-utilization heatmap")
		trace       = flag.String("trace", "", "replay a workload trace file instead of a synthetic pattern")
		faultSpec   = flag.String("fault", "", "arm a deterministic fault-injection plan: inline spec or a plan file (see DESIGN.md §16); faulted runs stay byte-reproducible per (plan, seed)")
		genTrace    = flag.Int("gentrace", 0, "emit a synthetic trace with this many packets to stdout and exit")
		probeOn     = flag.Bool("probe", false, "enable the observability probe layer")
		probeOut    = flag.String("probe-out", "", "write probe data here: a directory (trailing /) gets all formats + manifest.json, else by extension (.jsonl events, .csv time series, otherwise Chrome trace JSON) with a sibling manifest; implies -probe")
		probeSample = flag.Uint64("probe-sample", 256, "gauge sampling period in cycles (0 disables time series)")
		probeEvents = flag.Int("probe-events", 1<<20, "event ring buffer capacity")
		auditOn     = flag.Bool("audit", false, "enable the runtime QoS auditor (invariant checks + delay-bound conformance); violations exit non-zero")
		auditOut    = flag.String("audit-out", "", "write the audit conformance snapshot JSON here, plus a sibling manifest; implies -audit")
		perfOn      = flag.Bool("perf", false, "enable the in-simulator profiler: per-stage cycle attribution, parallel-engine telemetry, flamegraph export (never changes results)")
		perfSample  = flag.Uint64("perf-sample", perfmon.DefaultSampleEvery, "profile every Nth cycle (1 = every cycle)")
		httpAddr    = flag.String("http", "", "serve live introspection (/metrics, /audit, /debug/pprof) on this address, e.g. :8080; implies -audit")
		seeds       = flag.Int("seeds", 1, "run this many seeds (seed, seed+1, ...) and report per-seed plus aggregate statistics")
		workers     = flag.Int("j", 0, "concurrent runs for -seeds > 1 (0 = one per CPU; probe runs are forced sequential)")
		nodeWorkers = flag.Int("jnode", 0, "shard node ticking inside each run across this many OS threads (0 or 1 = sequential; results are byte-identical)")
		cpuProfile  = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProfile  = flag.String("memprofile", "", "write a heap profile to this file at exit")
	)
	flag.Parse()
	var plan *fault.Plan
	if *faultSpec != "" {
		p, err := fault.Load(*faultSpec)
		if err != nil {
			fmt.Fprintln(os.Stderr, "loftsim:", err)
			os.Exit(2)
		}
		plan = p
	}
	jSet := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "j" {
			jSet = true
		}
	})
	if err := validateFlags(cliFlags{
		Arch: *arch, Pattern: *pattern, Trace: *trace, GenTrace: *genTrace,
		Rate: *rate, Seeds: *seeds, Workers: *workers, JSet: jSet,
		NodeWorkers: *nodeWorkers,
		Observed:    *probeOn || *probeOut != "" || *auditOn || *auditOut != "" || *httpAddr != "" || *perfOn,
		Plan:        plan,
	}); err != nil {
		fmt.Fprintln(os.Stderr, "loftsim:", err)
		os.Exit(2)
	}
	stopProfiles, err := profiles.Start(*cpuProfile, *memProfile)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer stopProfiles()

	lcfg := config.PaperLOFTSpec(*spec)
	mesh := lcfg.Mesh()
	if *genTrace > 0 {
		events := traffic.SyntheticTrace(mesh, *genTrace, *cycles, lcfg.PacketFlits, *seed)
		if err := traffic.WriteTrace(os.Stdout, events); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}
	var p *traffic.Pattern
	if *trace != "" {
		f, err := os.Open(*trace)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		events, err := traffic.ParseTrace(f)
		f.Close()
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if p, err = traffic.FromTrace(mesh, events, lcfg.PacketFlits, lcfg.FrameFlits, lcfg.QuantumFlits); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	switch {
	case p != nil: // trace already loaded
	case *pattern == "uniform":
		p = traffic.Uniform(mesh, *rate, lcfg.PacketFlits, lcfg.FrameFlits)
	case *pattern == "hotspot":
		p = traffic.Hotspot(mesh, topo.NodeID(mesh.N()-1), *rate, lcfg.PacketFlits, lcfg.FrameFlits, lcfg.QuantumFlits, nil)
	case *pattern == "case1":
		p = traffic.CaseStudyI(mesh, 0.2, *rate, lcfg.PacketFlits, lcfg.FrameFlits)
	case *pattern == "case2":
		p = traffic.CaseStudyII(mesh, *rate, lcfg.PacketFlits, lcfg.FrameFlits)
	case *pattern == "neighbor":
		p = traffic.NearestNeighbor(mesh, *rate, lcfg.PacketFlits, lcfg.FrameFlits)
	case *pattern == "transpose":
		p = traffic.Transpose(mesh, *rate, lcfg.PacketFlits, lcfg.FrameFlits)
	default:
		fmt.Fprintf(os.Stderr, "unknown pattern %q\n", *pattern)
		os.Exit(2)
	}

	if err := plan.Validate(mesh.N(), len(p.Flows)); err != nil {
		fmt.Fprintln(os.Stderr, "loftsim:", err)
		os.Exit(2)
	}

	if *trace != "" {
		// Trace replays measure every packet: no warmup exclusion unless
		// explicitly requested.
		explicit := false
		flag.Visit(func(f *flag.Flag) {
			if f.Name == "warmup" {
				explicit = true
			}
		})
		if !explicit {
			*warmup = 0
		}
	}
	var pr *probe.Probe
	if *probeOn || *probeOut != "" {
		pr = probe.New(probe.Config{EventCap: *probeEvents, SampleEvery: *probeSample})
	}
	var aud *audit.Auditor
	if *auditOn || *auditOut != "" || *httpAddr != "" {
		aud = audit.New(audit.Config{})
	}
	var mon *perfmon.Monitor
	if *perfOn {
		mon = perfmon.New(perfmon.Config{SampleEvery: *perfSample, Workers: *nodeWorkers})
	}
	var srv *audit.Server
	if *httpAddr != "" {
		srv, err = audit.NewServer(*httpAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer srv.Close()
		srv.SetTitle(fmt.Sprintf("loftsim %s / %s", *arch, p.Name))
		aud.OnPublish(func() { srv.Publish(pr, aud, mon) })
		fmt.Fprintf(os.Stderr, "introspection server listening on %s\n", srv.URL())
	}

	// SIGINT requests a graceful stop: the run ends at the next chunk
	// boundary and every requested artifact is still flushed. A second
	// SIGINT falls back to the default kill.
	var interrupted atomic.Bool
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	go func() {
		<-sig
		interrupted.Store(true)
		signal.Stop(sig)
		fmt.Fprintln(os.Stderr, "interrupt: stopping at next chunk boundary, flushing snapshots (^C again to kill)")
	}()

	// A run-directory -probe-out with -perf also collects a pprof CPU
	// profile; it must stop before WriteRunDir checksums the file.
	var stopCPU func()
	if mon != nil && *probeOut != "" && runio.IsDirTarget(*probeOut) {
		if stopCPU, err = runio.StartCPUProfile(*probeOut); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}

	run := core.RunSpec{Seed: *seed, Warmup: *warmup, Measure: *cycles, Probe: pr, Audit: aud, Workers: *nodeWorkers, Perf: mon, Stop: interrupted.Load, Fault: plan}
	if *seeds > 1 {
		if err := runSeeds(*arch, lcfg, p, run, *seeds, *workers, *rate, *probeOut, *auditOut, srv, stopCPU); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if interrupted.Load() {
			fmt.Fprintln(os.Stderr, "run interrupted; partial artifacts flushed")
			os.Exit(130)
		}
		return
	}
	var res core.Result
	var lnet *loft.Network
	var gnet *gsf.Network
	switch *arch {
	case "loft":
		res, lnet, err = core.RunLOFT(lcfg, p, run)
	case "gsf":
		res, gnet, err = core.RunGSF(config.PaperGSF(), p, lcfg.FrameFlits, run)
	default:
		fmt.Fprintf(os.Stderr, "unknown architecture %q\n", *arch)
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	fmt.Printf("%s / %s @ %.3f flits/cycle/node (%d+%d cycles, seed %d)\n",
		res.Arch, p.Name, *rate, *warmup, *cycles, *seed)
	fmt.Printf("  packets delivered : %d\n", res.Packets)
	fmt.Printf("  avg latency       : %.1f cycles (network %.1f)\n", res.AvgLatency, res.AvgNetLatency)
	fmt.Printf("  p99 / max latency : %.0f / %d cycles\n", res.P99Latency, res.MaxLatency)
	fmt.Printf("  accepted rate     : %.4f flits/cycle/node (%.3f total)\n",
		res.TotalRate/float64(mesh.N()), res.TotalRate)
	if res.Arch == core.ArchLOFT {
		fmt.Printf("  spec forwards     : %d, local resets: %d, drops: %d\n",
			res.SpecForward, res.Resets, res.Drops)
	} else {
		fmt.Printf("  source-queue drops: %d\n", res.Drops)
	}
	if plan != nil {
		fmt.Printf("  faults injected   : %d (%d flits lost, %d retried)\n",
			res.FaultsInjected, res.FlitsLost, res.Retries)
	}
	if *heatmap {
		fmt.Println("link utilization (digits = tenths; right = East link, below = South link):")
		if lnet != nil {
			fmt.Print(lnet.Heatmap())
		} else if gnet != nil {
			fmt.Print(gnet.Heatmap())
		}
	}
	if stopCPU != nil {
		stopCPU()
	}
	if pr != nil || *auditOut != "" {
		m := newManifest(*arch, p.Name, lcfg, run, []uint64{*seed},
			runio.Metrics(&res, pr, aud, mon, uint64(lcfg.QuantumFlits)))
		if pr != nil {
			if err := writeRun(pr, aud, mon, *probeOut, m); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}
		if *auditOut != "" {
			if err := writeAuditOut(*auditOut, aud, m); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}
	}
	if mon != nil && !(*probeOut != "" && runio.IsDirTarget(*probeOut)) {
		mon.Snapshot().WriteText(os.Stdout)
	}
	if *verbose {
		ids := make([]int, 0, len(res.FlowRate))
		for id := range res.FlowRate {
			ids = append(ids, int(id))
		}
		sort.Ints(ids)
		for _, id := range ids {
			f := p.Flows[id]
			fmt.Printf("  flow %2d %2d->%2d : %.5f flits/cycle, %.1f cycles\n",
				id, f.Src, f.Dst, res.FlowRate[f.ID], res.FlowLatency[f.ID])
		}
	}
	ok := reportAudit(aud)
	if interrupted.Load() {
		fmt.Fprintln(os.Stderr, "run interrupted; partial artifacts flushed")
		os.Exit(130)
	}
	if !ok {
		os.Exit(1)
	}
}

// reportAudit prints the auditor's verdict and any violations; it returns
// false when the run must exit non-zero. A nil auditor passes silently.
func reportAudit(aud *audit.Auditor) bool {
	if aud == nil {
		return true
	}
	for _, line := range aud.Summary() {
		fmt.Printf("  %s\n", line)
	}
	for _, v := range aud.Violations() {
		fmt.Fprintf(os.Stderr, "audit violation: %s\n", v)
	}
	return aud.Err() == nil
}

// runSeeds fans n runs with consecutive seeds across the sweep worker pool
// and prints per-seed plus aggregate statistics. Runs share the (read-only)
// pattern; each owns its network and RNGs, so the output is independent of
// the worker count.
func runSeeds(arch string, lcfg config.LOFT, p *traffic.Pattern, run core.RunSpec, n, workers int, rate float64, probeOut, auditOut string, srv *audit.Server, stopCPU func()) error {
	if arch != "loft" && arch != "gsf" {
		return fmt.Errorf("unknown architecture %q", arch)
	}
	if run.Probe != nil || run.Audit != nil || run.Perf != nil {
		workers = 1 // runs share one probe/auditor/monitor: keep them sequential
	}
	var opts []sweep.Option
	if srv != nil {
		opts = append(opts, sweep.WithProgress(srv.JobProgress))
	}
	gcfg := config.PaperGSF()
	results, err := sweep.Run(workers, n, func(i int) (core.Result, error) {
		spec := run
		spec.Seed = run.Seed + uint64(i)
		var res core.Result
		var err error
		if arch == "loft" {
			res, _, err = core.RunLOFT(lcfg, p, spec)
		} else {
			res, _, err = core.RunGSF(gcfg, p, lcfg.FrameFlits, spec)
		}
		return res, err
	}, opts...)
	if err != nil {
		return err
	}
	nodes := float64(lcfg.Mesh().N())
	fmt.Printf("%s / %s @ %.3f flits/cycle/node (%d+%d cycles, %d seeds from %d, -j %d)\n",
		results[0].Arch, p.Name, rate, run.Warmup, run.Measure, n, run.Seed, sweep.Workers(workers))
	var lats, rates []float64
	for i, r := range results {
		fmt.Printf("  seed %-4d: avg latency %8.1f cycles, accepted %.4f flits/cycle/node\n",
			run.Seed+uint64(i), r.AvgLatency, r.TotalRate/nodes)
		lats = append(lats, r.AvgLatency)
		rates = append(rates, r.TotalRate/nodes)
	}
	ls, rs := stats.Summarize(lats), stats.Summarize(rates)
	fmt.Printf("  aggregate : latency %.1f ±%.1f%%, accepted %.4f ±%.1f%% (n=%d)\n",
		ls.Avg, ls.Stdev*100, rs.Avg, rs.Stdev*100, ls.N)
	if stopCPU != nil {
		stopCPU()
	}
	if run.Probe != nil || auditOut != "" {
		seedList := make([]uint64, n)
		for i := range seedList {
			seedList[i] = run.Seed + uint64(i)
		}
		// Aggregate metrics: the per-seed probe/audit/perf layers are shared,
		// the headline result metrics are the cross-seed means.
		metrics := runio.Metrics(nil, run.Probe, run.Audit, run.Perf, uint64(lcfg.QuantumFlits))
		metrics["avg_latency_cycles"] = ls.Avg
		metrics["throughput_flits_per_cycle"] = rs.Avg * nodes
		m := newManifest(arch, p.Name, lcfg, run, seedList, metrics)
		if run.Probe != nil {
			if err := writeRun(run.Probe, run.Audit, run.Perf, probeOut, m); err != nil {
				return err
			}
		}
		if auditOut != "" {
			if err := writeAuditOut(auditOut, run.Audit, m); err != nil {
				return err
			}
		}
	}
	if run.Perf != nil && !(probeOut != "" && runio.IsDirTarget(probeOut)) {
		run.Perf.Snapshot().WriteText(os.Stdout)
	}
	if !reportAudit(run.Audit) {
		return fmt.Errorf("audit failed: %d violations across %d seeds", len(run.Audit.Violations()), n)
	}
	return nil
}

// newManifest assembles the run manifest recorded next to every exported
// artifact set. Environment provenance (wall time, git revision) comes from
// runenv, the only sanctioned wall-clock read below the CLIs.
func newManifest(arch, pattern string, lcfg config.LOFT, run core.RunSpec, seeds []uint64, metrics map[string]float64) trace.Manifest {
	env := runenv.Capture()
	return trace.Manifest{
		ManifestVersion: trace.ManifestVersion,
		Tool:            "loftsim",
		Command:         os.Args,
		CreatedUTC:      env.CreatedUTC,
		GitRevision:     env.GitRevision,
		HostCPUs:        env.NumCPU,
		HostGoMaxProcs:  env.GoMaxProcs,
		NodeWorkers:     run.Workers,
		Arch:            arch,
		Pattern:         pattern,
		Seeds:           seeds,
		WarmupCycles:    run.Warmup,
		MeasureCycles:   run.Measure,
		FaultPlan:       run.Fault.String(),
		MeshK:           lcfg.MeshK,
		Nodes:           lcfg.Mesh().N(),
		Config:          &lcfg,
		Metrics:         metrics,
	}
}

// writeRun exports the collected probe/audit/perf data. An empty path
// prints the per-kind event summary; a directory path (existing, or spelled
// with a trailing separator) receives the full run directory — all three
// probe export formats, the audit snapshot, the perf snapshot + folded
// stacks and the checksummed manifest; any other path keeps the legacy
// single-file extension dispatch (probe.FormatForPath) and gains a sibling
// <path>.manifest.json. Ring drops are warned about on stderr either way.
func writeRun(pr *probe.Probe, aud *audit.Auditor, mon *perfmon.Monitor, path string, m trace.Manifest) error {
	if d := pr.Tracer().Dropped(); d > 0 {
		fmt.Fprintf(os.Stderr, "warning: probe ring overwrote %d oldest events; raise -probe-events for a complete trace\n", d)
	}
	if path == "" {
		fmt.Println("probe event summary:")
		for _, line := range pr.Summary() {
			fmt.Printf("  %s\n", line)
		}
		return nil
	}
	if runio.IsDirTarget(path) {
		if err := runio.WriteRunDir(path, pr, aud, mon, m); err != nil {
			return err
		}
		fmt.Println(runio.Describe(path, pr, aud, mon))
		return nil
	}
	if err := runio.WriteFileWithManifest(path, pr, m); err != nil {
		return err
	}
	fmt.Printf("wrote probe data to %s (%d events retained, %d dropped) and %s.manifest.json\n",
		path, pr.Tracer().Len(), pr.Tracer().Dropped(), path)
	return nil
}

// writeAuditOut writes the audit conformance snapshot plus its sibling
// manifest (skipped in run-directory mode, where audit.json is included).
func writeAuditOut(path string, aud *audit.Auditor, m trace.Manifest) error {
	if err := runio.WriteAuditSnapshot(path, aud); err != nil {
		return err
	}
	a, err := trace.FileArtifact(path)
	if err != nil {
		return err
	}
	m.Artifacts = []trace.Artifact{a}
	if err := m.Write(path + ".manifest.json"); err != nil {
		return err
	}
	fmt.Printf("wrote audit snapshot to %s (and %s.manifest.json)\n", path, path)
	return nil
}
