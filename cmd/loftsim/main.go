// Command loftsim runs a single NoC simulation and prints a summary.
//
// Examples:
//
//	loftsim -arch loft -pattern uniform -rate 0.3 -cycles 20000
//	loftsim -arch gsf  -pattern hotspot -rate 0.01
//	loftsim -arch loft -pattern case1 -rate 0.6 -spec 8 -v
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"loft/internal/config"
	"loft/internal/core"
	"loft/internal/loft"
	"loft/internal/topo"
	"loft/internal/traffic"
)

func main() {
	var (
		arch     = flag.String("arch", "loft", "architecture: loft or gsf")
		pattern  = flag.String("pattern", "uniform", "traffic: uniform, hotspot, case1, case2, neighbor, transpose")
		rate     = flag.Float64("rate", 0.1, "offered load in flits/cycle/node (aggressor rate for case1)")
		spec     = flag.Int("spec", 12, "LOFT speculative buffer size in flits (0 disables §4.3 optimizations)")
		warmup   = flag.Uint64("warmup", 5000, "warmup cycles excluded from statistics")
		cycles   = flag.Uint64("cycles", 20000, "measured cycles")
		seed     = flag.Uint64("seed", 1, "deterministic traffic seed")
		verbose  = flag.Bool("v", false, "print per-flow rates")
		heatmap  = flag.Bool("heatmap", false, "print an ASCII link-utilization heatmap (LOFT only)")
		trace    = flag.String("trace", "", "replay a workload trace file instead of a synthetic pattern")
		genTrace = flag.Int("gentrace", 0, "emit a synthetic trace with this many packets to stdout and exit")
	)
	flag.Parse()

	lcfg := config.PaperLOFTSpec(*spec)
	mesh := lcfg.Mesh()
	if *genTrace > 0 {
		events := traffic.SyntheticTrace(mesh, *genTrace, *cycles, lcfg.PacketFlits, *seed)
		if err := traffic.WriteTrace(os.Stdout, events); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}
	var p *traffic.Pattern
	if *trace != "" {
		f, err := os.Open(*trace)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		events, err := traffic.ParseTrace(f)
		f.Close()
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if p, err = traffic.FromTrace(mesh, events, lcfg.PacketFlits, lcfg.FrameFlits, lcfg.QuantumFlits); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	switch {
	case p != nil: // trace already loaded
	case *pattern == "uniform":
		p = traffic.Uniform(mesh, *rate, lcfg.PacketFlits, lcfg.FrameFlits)
	case *pattern == "hotspot":
		p = traffic.Hotspot(mesh, topo.NodeID(mesh.N()-1), *rate, lcfg.PacketFlits, lcfg.FrameFlits, lcfg.QuantumFlits, nil)
	case *pattern == "case1":
		p = traffic.CaseStudyI(mesh, 0.2, *rate, lcfg.PacketFlits, lcfg.FrameFlits)
	case *pattern == "case2":
		p = traffic.CaseStudyII(mesh, *rate, lcfg.PacketFlits, lcfg.FrameFlits)
	case *pattern == "neighbor":
		p = traffic.NearestNeighbor(mesh, *rate, lcfg.PacketFlits, lcfg.FrameFlits)
	case *pattern == "transpose":
		p = traffic.Transpose(mesh, *rate, lcfg.PacketFlits, lcfg.FrameFlits)
	default:
		fmt.Fprintf(os.Stderr, "unknown pattern %q\n", *pattern)
		os.Exit(2)
	}

	if *trace != "" {
		// Trace replays measure every packet: no warmup exclusion unless
		// explicitly requested.
		explicit := false
		flag.Visit(func(f *flag.Flag) {
			if f.Name == "warmup" {
				explicit = true
			}
		})
		if !explicit {
			*warmup = 0
		}
	}
	run := core.RunSpec{Seed: *seed, Warmup: *warmup, Measure: *cycles}
	var res core.Result
	var err error
	var lnet *loft.Network
	switch *arch {
	case "loft":
		res, lnet, err = core.RunLOFT(lcfg, p, run)
	case "gsf":
		res, _, err = core.RunGSF(config.PaperGSF(), p, lcfg.FrameFlits, run)
	default:
		fmt.Fprintf(os.Stderr, "unknown architecture %q\n", *arch)
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	fmt.Printf("%s / %s @ %.3f flits/cycle/node (%d+%d cycles, seed %d)\n",
		res.Arch, p.Name, *rate, *warmup, *cycles, *seed)
	fmt.Printf("  packets delivered : %d\n", res.Packets)
	fmt.Printf("  avg latency       : %.1f cycles (network %.1f)\n", res.AvgLatency, res.AvgNetLatency)
	fmt.Printf("  p99 / max latency : %.0f / %d cycles\n", res.P99Latency, res.MaxLatency)
	fmt.Printf("  accepted rate     : %.4f flits/cycle/node (%.3f total)\n",
		res.TotalRate/float64(mesh.N()), res.TotalRate)
	if res.Arch == core.ArchLOFT {
		fmt.Printf("  spec forwards     : %d, local resets: %d, drops: %d\n",
			res.SpecForward, res.Resets, res.Drops)
	} else {
		fmt.Printf("  source-queue drops: %d\n", res.Drops)
	}
	if *heatmap && lnet != nil {
		fmt.Println("link utilization (digits = tenths; right = East link, below = South link):")
		fmt.Print(lnet.Heatmap())
	}
	if *verbose {
		ids := make([]int, 0, len(res.FlowRate))
		for id := range res.FlowRate {
			ids = append(ids, int(id))
		}
		sort.Ints(ids)
		for _, id := range ids {
			f := p.Flows[id]
			fmt.Printf("  flow %2d %2d->%2d : %.5f flits/cycle, %.1f cycles\n",
				id, f.Src, f.Dst, res.FlowRate[f.ID], res.FlowLatency[f.ID])
		}
	}
}
