package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"loft/internal/config"
	"loft/internal/core"
	"loft/internal/probe"
	"loft/internal/trace"
)

func testManifest() trace.Manifest {
	lcfg := config.PaperLOFT()
	return newManifest("loft", "test", lcfg,
		core.RunSpec{Seed: 1, Warmup: 10, Measure: 100}, []uint64{1}, map[string]float64{"packets": 1})
}

// TestWriteProbeExtensionDispatch pins the -probe-out extension contract:
// each suffix selects its exporter and produces that format's signature,
// and every single-file export gains a sibling manifest checksumming it.
func TestWriteProbeExtensionDispatch(t *testing.T) {
	pr := probe.New(probe.Config{EventCap: 8, SampleEvery: 1})
	pr.Emit(1, probe.KindSpecHit, 0, 0, 0, 0)
	pr.MaybeSample(1)
	dir := t.TempDir()
	for name, sniff := range map[string]string{
		"out.jsonl": `"kind":"spec-hit"`,
		"out.csv":   "series,cycle,value",
		"out.prom":  "# TYPE probe_events_total counter",
		"out.json":  `"traceEvents"`,
	} {
		path := filepath.Join(dir, name)
		if err := writeRun(pr, nil, nil, path, testManifest()); err != nil {
			t.Fatalf("writeRun(%s): %v", name, err)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(string(data), sniff) {
			t.Errorf("%s missing %q:\n%s", name, sniff, data)
		}
		m, err := trace.ReadManifest(path + ".manifest.json")
		if err != nil {
			t.Fatalf("sibling manifest for %s: %v", name, err)
		}
		if len(m.Artifacts) != 1 || m.Artifacts[0].Name != name {
			t.Errorf("%s manifest artifacts = %+v, want the exported file", name, m.Artifacts)
		}
	}
}

// TestWriteRunDirectory pins the run-directory contract: a trailing
// separator (the directory need not exist yet) selects directory mode,
// which writes the three probe export formats plus a manifest whose
// artifact checksums match the files on disk.
func TestWriteRunDirectory(t *testing.T) {
	pr := probe.New(probe.Config{EventCap: 8, SampleEvery: 1})
	pr.Emit(1, probe.KindSpecHit, 0, 0, 0, 0)
	pr.MaybeSample(1)
	dir := filepath.Join(t.TempDir(), "run")
	if err := writeRun(pr, nil, nil, dir+string(os.PathSeparator), testManifest()); err != nil {
		t.Fatalf("writeRun(dir): %v", err)
	}
	m, err := trace.ReadManifest(dir)
	if err != nil {
		t.Fatalf("manifest: %v", err)
	}
	if len(m.Artifacts) != 3 {
		t.Fatalf("got %d artifacts, want 3 (events/series/trace): %+v", len(m.Artifacts), m.Artifacts)
	}
	for _, a := range m.Artifacts {
		got, err := trace.FileArtifact(filepath.Join(dir, a.Name))
		if err != nil {
			t.Fatalf("artifact %s: %v", a.Name, err)
		}
		if got.SHA256 != a.SHA256 || got.Bytes != a.Bytes {
			t.Errorf("artifact %s checksum drifted: manifest %+v, disk %+v", a.Name, a, got)
		}
	}
	ev, _, err := trace.ReadEventsFile(filepath.Join(dir, "events.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	if len(ev) != 1 || ev[0].Kind != probe.KindSpecHit {
		t.Errorf("round-tripped events = %+v", ev)
	}
}
