package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"loft/internal/probe"
)

// TestWriteProbeExtensionDispatch pins the -probe-out extension contract:
// each suffix selects its exporter and produces that format's signature.
func TestWriteProbeExtensionDispatch(t *testing.T) {
	pr := probe.New(probe.Config{EventCap: 8, SampleEvery: 1})
	pr.Emit(1, probe.KindSpecHit, 0, 0, 0, 0)
	pr.MaybeSample(1)
	dir := t.TempDir()
	for name, sniff := range map[string]string{
		"out.jsonl": `"kind":"spec-hit"`,
		"out.csv":   "series,cycle,value",
		"out.prom":  "# TYPE probe_events_total counter",
		"out.json":  `"traceEvents"`,
	} {
		path := filepath.Join(dir, name)
		if err := writeProbe(pr, path); err != nil {
			t.Fatalf("writeProbe(%s): %v", name, err)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(string(data), sniff) {
			t.Errorf("%s missing %q:\n%s", name, sniff, data)
		}
	}
}
