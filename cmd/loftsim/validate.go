package main

import (
	"fmt"

	"loft/internal/fault"
)

// knownPatterns lists the synthetic patterns -pattern accepts.
var knownPatterns = map[string]bool{
	"uniform":   true,
	"hotspot":   true,
	"case1":     true,
	"case2":     true,
	"neighbor":  true,
	"transpose": true,
}

// cliFlags carries the parsed flag values validateFlags checks. A plain
// struct (rather than the flag set itself) lets tests cover every conflict
// without re-parsing argv.
type cliFlags struct {
	Arch        string
	Pattern     string
	Trace       string // -trace replay file, "" when synthetic
	GenTrace    int
	Rate        float64
	Seeds       int
	Workers     int  // -j as given
	JSet        bool // -j appeared on the command line
	NodeWorkers int
	Observed    bool // -probe/-audit/-perf, or any flag implying one
	Plan        *fault.Plan
}

// validateFlags rejects flag combinations up front that would otherwise fail
// deep inside the run or be silently ignored: unknown arch/pattern used to
// surface only after traffic construction, a -fault plan alongside -gentrace
// was dropped without a word, and an explicit -j on an observed seed sweep
// was silently forced to one worker. Callers report the error and exit 2.
func validateFlags(f cliFlags) error {
	if f.Arch != "loft" && f.Arch != "gsf" {
		return fmt.Errorf("unknown architecture %q (want loft or gsf)", f.Arch)
	}
	if f.Trace == "" && f.GenTrace <= 0 && !knownPatterns[f.Pattern] {
		return fmt.Errorf("unknown pattern %q (want uniform, hotspot, case1, case2, neighbor or transpose)", f.Pattern)
	}
	if f.Rate < 0 {
		return fmt.Errorf("-rate %g is negative; offered load is in flits/cycle/node", f.Rate)
	}
	if f.GenTrace < 0 {
		return fmt.Errorf("-gentrace %d is negative; give the number of packets to generate", f.GenTrace)
	}
	if f.Seeds < 1 {
		return fmt.Errorf("-seeds %d must be at least 1", f.Seeds)
	}
	if f.Workers < 0 {
		return fmt.Errorf("-j %d is negative; use 0 for one worker per CPU", f.Workers)
	}
	if f.NodeWorkers < 0 {
		return fmt.Errorf("-jnode %d is negative; use 0 or 1 for the sequential engine", f.NodeWorkers)
	}
	if f.GenTrace > 0 && f.Trace != "" {
		return fmt.Errorf("-gentrace and -trace conflict: one writes a trace, the other replays one")
	}
	if f.Plan != nil {
		if f.GenTrace > 0 {
			return fmt.Errorf("-fault has no effect with -gentrace: trace generation runs no simulation")
		}
		if f.Arch == "gsf" && !f.Plan.Adversarial() {
			return fmt.Errorf("fault plan %q uses link-level faults; GSF supports adversary events only", f.Plan)
		}
		if f.Trace != "" && f.Plan.HasAdversary() {
			return fmt.Errorf("adversary faults cannot rate-scale a -trace replay (injections are fixed by the trace); use a synthetic pattern")
		}
	}
	if f.Seeds > 1 && f.JSet && f.Workers > 1 && f.Observed {
		return fmt.Errorf("-j %d conflicts with -probe/-audit/-perf: observed seed sweeps share one observer and run sequentially; drop -j or the observer flags", f.Workers)
	}
	return nil
}
