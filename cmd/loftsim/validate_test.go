package main

import (
	"strings"
	"testing"

	"loft/internal/fault"
)

func mustPlan(t *testing.T, spec string) *fault.Plan {
	t.Helper()
	p, err := fault.Parse(spec)
	if err != nil {
		t.Fatalf("Parse(%q): %v", spec, err)
	}
	return p
}

// base returns a flag set that passes validation; each test case mutates one
// aspect of it.
func base() cliFlags {
	return cliFlags{Arch: "loft", Pattern: "uniform", Rate: 0.1, Seeds: 1}
}

// TestValidateFlagsAccepts pins combinations that must keep working: the
// defaults, every synthetic pattern, trace replay with link-level faults,
// gsf with an adversary-only plan, and observed sweeps without an explicit
// -j.
func TestValidateFlagsAccepts(t *testing.T) {
	linkPlan := mustPlan(t, "link-down node=7 dir=south from=100 to=200")
	advPlan := mustPlan(t, "adversary flow=1 factor=2 from=100")
	cases := map[string]cliFlags{
		"defaults": base(),
		"gsf":      func() cliFlags { f := base(); f.Arch = "gsf"; return f }(),
		"trace replay ignores pattern": func() cliFlags {
			f := base()
			f.Trace = "x.trace"
			f.Pattern = "nonsense"
			return f
		}(),
		"gentrace ignores pattern": func() cliFlags {
			f := base()
			f.GenTrace = 100
			f.Pattern = "nonsense"
			return f
		}(),
		"link faults on loft": func() cliFlags { f := base(); f.Plan = linkPlan; return f }(),
		"link faults on trace replay": func() cliFlags {
			f := base()
			f.Trace = "x.trace"
			f.Plan = linkPlan
			return f
		}(),
		"adversary plan on gsf": func() cliFlags {
			f := base()
			f.Arch = "gsf"
			f.Plan = advPlan
			return f
		}(),
		"observed sweep with default -j": func() cliFlags {
			f := base()
			f.Seeds = 4
			f.Observed = true
			return f
		}(),
		"explicit -j sweep without observers": func() cliFlags {
			f := base()
			f.Seeds = 4
			f.Workers = 8
			f.JSet = true
			return f
		}(),
	}
	for name, f := range cases {
		if err := validateFlags(f); err != nil {
			t.Errorf("%s: unexpected error: %v", name, err)
		}
	}
	for _, pat := range []string{"uniform", "hotspot", "case1", "case2", "neighbor", "transpose"} {
		f := base()
		f.Pattern = pat
		if err := validateFlags(f); err != nil {
			t.Errorf("pattern %s: unexpected error: %v", pat, err)
		}
	}
}

// TestValidateFlagsRejects pins the up-front conflict detection: each bad
// combination must produce an error mentioning the offending flag, where it
// previously failed deep in the run or was silently ignored.
func TestValidateFlagsRejects(t *testing.T) {
	linkPlan := mustPlan(t, "link-down node=7 dir=south from=100 to=200")
	advPlan := mustPlan(t, "adversary flow=1 factor=2 from=100")
	cases := []struct {
		name string
		mut  func(*cliFlags)
		want string
	}{
		{"unknown arch", func(f *cliFlags) { f.Arch = "mesh" }, "unknown architecture"},
		{"unknown pattern", func(f *cliFlags) { f.Pattern = "tornado" }, "unknown pattern"},
		{"negative rate", func(f *cliFlags) { f.Rate = -0.1 }, "-rate"},
		{"negative gentrace", func(f *cliFlags) { f.GenTrace = -1 }, "-gentrace"},
		{"zero seeds", func(f *cliFlags) { f.Seeds = 0 }, "-seeds"},
		{"negative j", func(f *cliFlags) { f.Workers = -1 }, "-j -1"},
		{"negative jnode", func(f *cliFlags) { f.NodeWorkers = -2 }, "-jnode"},
		{"gentrace with trace", func(f *cliFlags) { f.GenTrace = 10; f.Trace = "x.trace" }, "conflict"},
		{"fault with gentrace", func(f *cliFlags) { f.GenTrace = 10; f.Plan = linkPlan }, "-fault has no effect"},
		{"link faults on gsf", func(f *cliFlags) { f.Arch = "gsf"; f.Plan = linkPlan }, "adversary events only"},
		{"adversary on trace replay", func(f *cliFlags) { f.Trace = "x.trace"; f.Plan = advPlan }, "trace"},
		{
			"explicit -j on observed sweep",
			func(f *cliFlags) { f.Seeds = 4; f.Workers = 8; f.JSet = true; f.Observed = true },
			"run sequentially",
		},
	}
	for _, tc := range cases {
		f := base()
		tc.mut(&f)
		err := validateFlags(f)
		if err == nil {
			t.Errorf("%s: expected an error", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}
