// Command lofttrace analyses the artifacts the simulators export: it
// decodes probe event dumps, decomposes per-quantum latency into its
// mechanism components, summarizes run manifests, renders perfmon
// self-profiles, and diffs runs against each other (or BENCH_*.json
// baselines against each other) with regression thresholds.
//
//	lofttrace summary   <run-dir | manifest.json | events.jsonl>
//	lofttrace decompose [-slot-cycles N] [-flow N] [-json] <run-dir | events.jsonl>
//	lofttrace perf      [-json] <run-dir | perf.json>
//	lofttrace perf      -diff [-threshold PCT] [-json] <base> <new>
//	lofttrace diff      [-threshold PCT] [-all] [-json] <base> <new>
//	lofttrace trend     [-threshold PCT] [-json] <metrics.json ...>
//
// diff and trend accept run directories, manifest files, or flat
// name → value JSON files (the BENCH_*.json format). diff exits 1 when a
// direction-aware metric regressed beyond the threshold, so it gates CI;
// a run diffed against itself reports zero changed metrics and exits 0.
//
// perf renders the stage-attribution table and per-worker shard-utilization
// report of a -perf-enabled run; perf -diff compares two profiled runs with
// the same direction-aware differ (stage ns/cycle and shard imbalance
// regress upward, worker utilization downward).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"loft/internal/det"
	"loft/internal/fault"
	"loft/internal/perfmon"
	"loft/internal/probe"
	"loft/internal/trace"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	if len(args) == 0 {
		usage(stderr)
		return 2
	}
	var err error
	code := 0
	switch args[0] {
	case "summary":
		code, err = cmdSummary(args[1:], stdout)
	case "decompose":
		code, err = cmdDecompose(args[1:], stdout)
	case "perf":
		code, err = cmdPerf(args[1:], stdout)
	case "diff":
		code, err = cmdDiff(args[1:], stdout)
	case "trend":
		code, err = cmdTrend(args[1:], stdout)
	case "-h", "-help", "--help", "help":
		usage(stdout)
	default:
		fmt.Fprintf(stderr, "lofttrace: unknown subcommand %q\n", args[0])
		usage(stderr)
		return 2
	}
	if err != nil {
		fmt.Fprintf(stderr, "lofttrace %s: %v\n", args[0], err)
		return 2
	}
	return code
}

func usage(w io.Writer) {
	fmt.Fprint(w, `usage:
  lofttrace summary   <run-dir | manifest.json | events.jsonl>
  lofttrace decompose [-slot-cycles N] [-flow N] [-json] <run-dir | events.jsonl>
  lofttrace perf      [-json] <run-dir | perf.json>
  lofttrace perf      -diff [-threshold PCT] [-json] <base> <new>
  lofttrace diff      [-threshold PCT] [-all] [-json] <base> <new>
  lofttrace trend     [-threshold PCT] [-json] <metrics.json ...>
`)
}

// resolveEvents maps a target to its events file: a directory holds
// events.jsonl, anything else is the events file itself.
func resolveEvents(target string) string {
	if st, err := os.Stat(target); err == nil && st.IsDir() {
		return filepath.Join(target, "events.jsonl")
	}
	return target
}

// targetSlotCycles picks the decomposition's slot length: an explicit flag
// wins, a run directory's manifest supplies its config, and the paper
// configuration's 2-cycle quantum slot is the fallback.
func targetSlotCycles(target string, flagVal uint64) uint64 {
	if flagVal > 0 {
		return flagVal
	}
	if m, err := trace.ReadManifest(target); err == nil && m.Config != nil && m.Config.QuantumFlits > 0 {
		return uint64(m.Config.QuantumFlits)
	}
	return 2
}

func cmdSummary(args []string, stdout io.Writer) (int, error) {
	fs := flag.NewFlagSet("summary", flag.ContinueOnError)
	if err := fs.Parse(args); err != nil {
		return 2, nil
	}
	if fs.NArg() != 1 {
		return 2, fmt.Errorf("expected one target, got %d", fs.NArg())
	}
	target := fs.Arg(0)
	printedManifest := false
	if m, err := trace.ReadManifest(target); err == nil {
		printManifest(stdout, m)
		printedManifest = true
	}
	events := resolveEvents(target)
	if st, err := os.Stat(events); err == nil && !st.IsDir() && strings.HasSuffix(events, ".jsonl") {
		ev, dropped, err := trace.ReadEventsFile(events)
		if err != nil {
			return 2, err
		}
		printEventSummary(stdout, ev, dropped)
		printFaultTimeline(stdout, ev)
	} else if !printedManifest {
		return 2, fmt.Errorf("%s: no manifest and no events file found", target)
	}
	return 0, nil
}

func printManifest(w io.Writer, m *trace.Manifest) {
	fmt.Fprintf(w, "run manifest (v%d): %s\n", m.ManifestVersion, m.Tool)
	if m.Arch != "" || m.Pattern != "" {
		fmt.Fprintf(w, "  arch/pattern : %s / %s\n", m.Arch, m.Pattern)
	}
	if len(m.Seeds) > 0 {
		fmt.Fprintf(w, "  seeds        : %v\n", m.Seeds)
	}
	if m.WarmupCycles+m.MeasureCycles > 0 {
		fmt.Fprintf(w, "  cycles       : %d warmup + %d measured\n", m.WarmupCycles, m.MeasureCycles)
	}
	if m.Nodes > 0 {
		fmt.Fprintf(w, "  topology     : %dx%d mesh (%d nodes)\n", m.MeshK, m.MeshK, m.Nodes)
	}
	if m.CreatedUTC != "" {
		fmt.Fprintf(w, "  created      : %s\n", m.CreatedUTC)
	}
	if m.GitRevision != "" {
		fmt.Fprintf(w, "  git revision : %s\n", m.GitRevision)
	}
	if m.HostCPUs > 0 {
		fmt.Fprintf(w, "  host         : %d CPUs, GOMAXPROCS %d\n", m.HostCPUs, m.HostGoMaxProcs)
	}
	if m.NodeWorkers > 1 {
		fmt.Fprintf(w, "  node workers : %d (parallel cycle engine)\n", m.NodeWorkers)
	}
	if m.FaultPlan != "" {
		fmt.Fprintf(w, "  fault plan   : %s\n", m.FaultPlan)
	}
	for _, a := range m.Artifacts {
		fmt.Fprintf(w, "  artifact     : %-14s %8d bytes  sha256 %.12s…\n", a.Name, a.Bytes, a.SHA256)
	}
	if len(m.Metrics) > 0 {
		fmt.Fprintf(w, "  metrics:\n")
		for _, k := range det.Keys(m.Metrics) {
			fmt.Fprintf(w, "    %-34s %g\n", k, m.Metrics[k])
		}
	}
}

func printEventSummary(w io.Writer, ev []probe.Event, dropped uint64) {
	fmt.Fprintf(w, "events: %d retained", len(ev))
	if dropped > 0 {
		fmt.Fprintf(w, " (+%d dropped by the ring; tail only)", dropped)
	}
	if len(ev) > 0 {
		fmt.Fprintf(w, ", cycles %d..%d", ev[0].Cycle, ev[len(ev)-1].Cycle)
	}
	fmt.Fprintln(w)
	counts := make(map[string]uint64)
	for _, e := range ev {
		counts[e.Kind.String()]++
	}
	for _, k := range det.Keys(counts) {
		fmt.Fprintf(w, "  %-16s %d\n", k, counts[k])
	}
}

// printFaultTimeline renders the chaos record of a faulted run: every fault
// window edge in stream order, then per-node denial/retry totals, so a chaos
// run decomposes like a clean one. Clean runs print nothing.
func printFaultTimeline(w io.Writer, ev []probe.Event) {
	type nodeCounts struct{ denials, flits, retries uint64 }
	var edges []probe.Event
	counts := map[int32]*nodeCounts{}
	at := func(node int32) *nodeCounts {
		c := counts[node]
		if c == nil {
			c = &nodeCounts{}
			counts[node] = c
		}
		return c
	}
	for _, e := range ev {
		switch e.Kind {
		case probe.KindFaultDown, probe.KindFaultUp:
			edges = append(edges, e)
		case probe.KindFaultLoss:
			c := at(e.Node)
			c.denials++
			c.flits += e.Arg
		case probe.KindFaultRetry:
			at(e.Node).retries++
		}
	}
	if len(edges) == 0 && len(counts) == 0 {
		return
	}
	fmt.Fprintf(w, "fault timeline: %d window edges\n", len(edges))
	for _, e := range edges {
		verb := "down"
		if e.Kind == probe.KindFaultUp {
			verb = "up"
		}
		target := fmt.Sprintf("node %d", e.Node)
		if e.Flow >= 0 {
			target = fmt.Sprintf("flow %d (node %d)", e.Flow, e.Node)
		}
		if e.Loc >= 0 {
			target += " " + fault.DirName(int(e.Loc))
		}
		window := "open-ended"
		if e.Arg > 0 {
			window = fmt.Sprintf("until %d", e.Arg)
		}
		fmt.Fprintf(w, "  @%-8d %-4s %-12s %s (%s)\n", e.Cycle, verb, fault.Kind(e.Seq), target, window)
	}
	for _, node := range det.Keys(counts) {
		c := counts[node]
		fmt.Fprintf(w, "  node %3d: %d forwards denied (%d flits), %d retried\n",
			node, c.denials, c.flits, c.retries)
	}
}

// decomposeJSON is the -json shape of a decomposition report.
type decomposeJSON struct {
	SlotCycles uint64             `json:"slot_cycles"`
	Complete   int                `json:"complete"`
	Incomplete int                `json:"incomplete"`
	Dropped    uint64             `json:"dropped_events"`
	All        trace.AggSummary   `json:"all"`
	PerFlow    []flowJSON         `json:"per_flow,omitempty"`
	PerHop     []hopJSON          `json:"per_hop,omitempty"`
	Errors     []string           `json:"errors,omitempty"`
	Metrics    map[string]float64 `json:"metrics,omitempty"`
}

type flowJSON struct {
	Flow    int32            `json:"flow"`
	Summary trace.AggSummary `json:"summary"`
}

type hopJSON struct {
	Hop      int     `json:"hop"`
	Count    uint64  `json:"count"`
	SpecPct  float64 `json:"spec_pct"`
	MeanWait float64 `json:"mean_wait_cycles"`
	MaxWait  uint64  `json:"max_wait_cycles"`
}

func cmdDecompose(args []string, stdout io.Writer) (int, error) {
	fs := flag.NewFlagSet("decompose", flag.ContinueOnError)
	slot := fs.Uint64("slot-cycles", 0, "cycles per quantum slot (default: manifest QuantumFlits, else 2)")
	flow := fs.Int("flow", -1, "restrict the per-flow table to this flow id")
	asJSON := fs.Bool("json", false, "emit the report as JSON")
	if err := fs.Parse(args); err != nil {
		return 2, nil
	}
	if fs.NArg() != 1 {
		return 2, fmt.Errorf("expected one target, got %d", fs.NArg())
	}
	target := fs.Arg(0)
	ev, dropped, err := trace.ReadEventsFile(resolveEvents(target))
	if err != nil {
		return 2, err
	}
	slotCycles := targetSlotCycles(target, *slot)
	d, err := trace.Decompose(ev, slotCycles, dropped)
	if err != nil {
		return 2, err
	}
	if *asJSON {
		rep := decomposeJSON{
			SlotCycles: d.SlotCycles, Complete: d.Complete, Incomplete: d.Incomplete,
			Dropped: d.Dropped, All: d.All.Summary(), Errors: d.Errors, Metrics: d.Metrics(),
		}
		for i := range d.PerFlow {
			f := &d.PerFlow[i]
			if *flow >= 0 && f.Flow != int32(*flow) {
				continue
			}
			rep.PerFlow = append(rep.PerFlow, flowJSON{Flow: f.Flow, Summary: f.Agg.Summary()})
		}
		for i := range d.PerHop {
			h := &d.PerHop[i]
			hj := hopJSON{Hop: h.Hop, Count: h.Count, MeanWait: h.Wait.Mean(), MaxWait: h.Wait.Max()}
			if h.Count > 0 {
				hj.SpecPct = 100 * float64(h.Spec) / float64(h.Count)
			}
			rep.PerHop = append(rep.PerHop, hj)
		}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		return 0, enc.Encode(rep)
	}
	fmt.Fprintf(stdout, "decomposition: %d quanta complete, %d incomplete (slot = %d cycles",
		d.Complete, d.Incomplete, d.SlotCycles)
	if d.Dropped > 0 {
		fmt.Fprintf(stdout, "; ring dropped %d events, stream is the tail", d.Dropped)
	}
	fmt.Fprintln(stdout, ")")
	for _, e := range d.Errors {
		fmt.Fprintf(stdout, "  TIMING VIOLATION: %s\n", e)
	}
	if d.Complete == 0 {
		fmt.Fprintln(stdout, "  no data-path events to decompose (GSF stream, or probe attached without data traffic)")
		return 0, nil
	}
	printAgg := func(label string, a *trace.Agg) {
		s := a.Summary()
		fmt.Fprintf(stdout, "%s: %d quanta, %.1f hops avg, %.1f%% hops speculative\n",
			label, s.Quanta, s.MeanHops, s.SpecHopPct)
		rows := []struct {
			name string
			c    trace.ComponentStats
		}{
			{"total", s.Total},
			{"booking-wait", s.BookingWait},
			{"serialization", s.Serialization},
			{"lookahead-wait", s.LookaheadWait},
			{"spec-wait", s.SpecWait},
			{"spec-saved*", s.SpecSaved},
		}
		fmt.Fprintf(stdout, "  %-15s %10s %8s  %s\n", "component", "mean", "max", "histogram (cycles)")
		for _, r := range rows {
			fmt.Fprintf(stdout, "  %-15s %10.2f %8d  %s\n", r.name, r.c.Mean, r.c.Max, r.c.Hist)
		}
	}
	printAgg("all flows", &d.All)
	fmt.Fprintln(stdout, "  (* spec-saved is informational; the four components above it sum to total)")
	for i := range d.PerFlow {
		f := &d.PerFlow[i]
		if *flow >= 0 && f.Flow != int32(*flow) {
			continue
		}
		s := f.Agg.Summary()
		fmt.Fprintf(stdout, "flow %3d: %6d quanta  total %8.2f  book %8.2f  serial %7.2f  lookahead %8.2f  spec %6.2f  (saved %6.2f)\n",
			f.Flow, s.Quanta, s.Total.Mean, s.BookingWait.Mean, s.Serialization.Mean,
			s.LookaheadWait.Mean, s.SpecWait.Mean, s.SpecSaved.Mean)
	}
	if len(d.PerHop) > 0 {
		fmt.Fprintf(stdout, "per-hop residual wait (hop 0 = first router crossing):\n")
		for i := range d.PerHop {
			h := &d.PerHop[i]
			specPct := 0.0
			if h.Count > 0 {
				specPct = 100 * float64(h.Spec) / float64(h.Count)
			}
			fmt.Fprintf(stdout, "  hop %2d: %6d crossings, mean wait %7.2f, max %6d, %5.1f%% speculative\n",
				h.Hop, h.Count, h.Wait.Mean(), h.Wait.Max(), specPct)
		}
	}
	return 0, nil
}

// cmdPerf renders a perfmon snapshot (stage-attribution table, per-worker
// shard-utilization report, gauges) or, with -diff, compares two profiled
// runs' derived perf metrics with the direction-aware differ.
func cmdPerf(args []string, stdout io.Writer) (int, error) {
	fs := flag.NewFlagSet("perf", flag.ContinueOnError)
	diff := fs.Bool("diff", false, "compare two profiled runs instead of rendering one")
	threshold := fs.Float64("threshold", 10, "with -diff: relative change (%) beyond which a bad-direction delta is a breach")
	asJSON := fs.Bool("json", false, "emit the snapshot (or diff report) as JSON")
	if err := fs.Parse(args); err != nil {
		return 2, nil
	}
	if *diff {
		if fs.NArg() != 2 {
			return 2, fmt.Errorf("expected <base> <new>, got %d arguments", fs.NArg())
		}
		base, err := perfmon.ReadSnapshot(fs.Arg(0))
		if err != nil {
			return 2, err
		}
		cur, err := perfmon.ReadSnapshot(fs.Arg(1))
		if err != nil {
			return 2, err
		}
		rep := &trace.DiffReport{Base: fs.Arg(0), New: fs.Arg(1), ThresholdPct: *threshold,
			Deltas: trace.DiffMetrics(base.Metrics(), cur.Metrics(), *threshold)}
		for _, d := range rep.Deltas {
			if d.Changed() {
				rep.Changed++
			}
			if d.Breach {
				rep.Breaches++
			}
		}
		if *asJSON {
			enc := json.NewEncoder(stdout)
			enc.SetIndent("", "  ")
			if err := enc.Encode(rep); err != nil {
				return 2, err
			}
		} else {
			fmt.Fprintf(stdout, "perf diff %s -> %s (threshold %.1f%%)\n", rep.Base, rep.New, rep.ThresholdPct)
			for _, d := range rep.Deltas {
				mark := " "
				if d.Breach {
					mark = "!"
				}
				switch d.OnlyIn {
				case "base":
					fmt.Fprintf(stdout, " %s %-34s %12.4g -> (absent)\n", mark, d.Name, d.Base)
				case "new":
					fmt.Fprintf(stdout, " %s %-34s (absent) -> %.4g\n", mark, d.Name, d.New)
				default:
					fmt.Fprintf(stdout, " %s %-34s %12.4g -> %-12.4g %+7.2f%% (%s)\n",
						mark, d.Name, d.Base, d.New, d.RelPct, d.Direction)
				}
			}
			fmt.Fprintf(stdout, "%d metric(s) changed, %d regression breach(es)\n", rep.Changed, rep.Breaches)
		}
		if rep.Breaches > 0 {
			return 1, nil
		}
		return 0, nil
	}
	if fs.NArg() != 1 {
		return 2, fmt.Errorf("expected one target, got %d", fs.NArg())
	}
	snap, err := perfmon.ReadSnapshot(fs.Arg(0))
	if err != nil {
		return 2, err
	}
	if *asJSON {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		return 0, enc.Encode(snap)
	}
	snap.WriteText(stdout)
	return 0, nil
}

func cmdDiff(args []string, stdout io.Writer) (int, error) {
	fs := flag.NewFlagSet("diff", flag.ContinueOnError)
	threshold := fs.Float64("threshold", 2, "relative change (%) beyond which a bad-direction delta is a breach")
	all := fs.Bool("all", false, "print unchanged metrics too")
	asJSON := fs.Bool("json", false, "emit the report as JSON")
	if err := fs.Parse(args); err != nil {
		return 2, nil
	}
	if fs.NArg() != 2 {
		return 2, fmt.Errorf("expected <base> <new>, got %d arguments", fs.NArg())
	}
	base, err := trace.LoadMetrics(fs.Arg(0))
	if err != nil {
		return 2, err
	}
	cur, err := trace.LoadMetrics(fs.Arg(1))
	if err != nil {
		return 2, err
	}
	var rep *trace.DiffReport
	if base.Manifest != nil && cur.Manifest != nil {
		rep, err = trace.DiffManifests(base.Manifest, cur.Manifest, base.Label, cur.Label, *threshold)
		if err != nil {
			return 2, err
		}
	} else {
		rep = &trace.DiffReport{Base: base.Label, New: cur.Label, ThresholdPct: *threshold,
			Deltas: trace.DiffMetrics(base.Metrics, cur.Metrics, *threshold)}
		for _, d := range rep.Deltas {
			if d.Changed() {
				rep.Changed++
			}
			if d.Breach {
				rep.Breaches++
			}
		}
	}
	if *asJSON {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			return 2, err
		}
	} else {
		fmt.Fprintf(stdout, "diff %s -> %s (threshold %.1f%%)\n", rep.Base, rep.New, rep.ThresholdPct)
		for _, c := range rep.ConfigChanges {
			fmt.Fprintf(stdout, "  config: %s\n", c)
		}
		for _, d := range rep.Deltas {
			if !*all && !d.Changed() {
				continue
			}
			mark := " "
			if d.Breach {
				mark = "!"
			}
			switch d.OnlyIn {
			case "base":
				fmt.Fprintf(stdout, " %s %-34s %12g -> (absent)\n", mark, d.Name, d.Base)
			case "new":
				fmt.Fprintf(stdout, " %s %-34s (absent) -> %g\n", mark, d.Name, d.New)
			default:
				fmt.Fprintf(stdout, " %s %-34s %12g -> %-12g %+7.2f%% (%s)\n",
					mark, d.Name, d.Base, d.New, d.RelPct, d.Direction)
			}
		}
		fmt.Fprintf(stdout, "%d metric(s) changed, %d regression breach(es)\n", rep.Changed, rep.Breaches)
	}
	if rep.Breaches > 0 {
		return 1, nil
	}
	return 0, nil
}

func cmdTrend(args []string, stdout io.Writer) (int, error) {
	fs := flag.NewFlagSet("trend", flag.ContinueOnError)
	threshold := fs.Float64("threshold", 2, "relative change (%) beyond which a bad-direction drift is a regression")
	asJSON := fs.Bool("json", false, "emit the report as JSON")
	if err := fs.Parse(args); err != nil {
		return 2, nil
	}
	t, err := trace.TrendFromFiles(fs.Args(), *threshold)
	if err != nil {
		return 2, err
	}
	if *asJSON {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(t); err != nil {
			return 2, err
		}
	} else {
		fmt.Fprintf(stdout, "trend across %d baselines: %s\n", len(t.Labels), strings.Join(t.Labels, " -> "))
		for _, row := range t.Rows {
			mark := " "
			if row.Regressed {
				mark = "!"
			}
			vals := make([]string, len(row.Values))
			for i, v := range row.Values {
				if v == nil {
					vals[i] = "-"
				} else {
					vals[i] = fmt.Sprintf("%g", *v)
				}
			}
			fmt.Fprintf(stdout, " %s %-34s %s  (%+.2f%%, %s)\n",
				mark, row.Name, strings.Join(vals, " -> "), row.ChangePct, row.Direction)
		}
		fmt.Fprintf(stdout, "%d regression(s) beyond %.1f%%\n", t.Regressions, t.ThresholdPct)
	}
	if t.Regressions > 0 {
		return 1, nil
	}
	return 0, nil
}
