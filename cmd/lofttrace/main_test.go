package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"loft/internal/audit"
	"loft/internal/config"
	"loft/internal/core"
	"loft/internal/perfmon"
	"loft/internal/probe"
	"loft/internal/runio"
	"loft/internal/trace"
	"loft/internal/traffic"
)

var (
	testRunMu   sync.Mutex
	testRunDirs = map[int]string{}
)

// writeTestRun simulates a small LOFT run with the probe, auditor and
// perfmon monitor attached and writes a run directory the CLI can consume.
// Runs are cached per spec setting — the CLI only reads them.
func writeTestRun(t *testing.T, spec int) string {
	t.Helper()
	testRunMu.Lock()
	defer testRunMu.Unlock()
	if dir, ok := testRunDirs[spec]; ok {
		return dir
	}
	cfg := config.PaperLOFTSpec(spec)
	p := traffic.Uniform(cfg.Mesh(), 0.3, cfg.PacketFlits, cfg.FrameFlits)
	pr := probe.New(probe.Config{EventCap: 1 << 20, SampleEvery: 64})
	aud := audit.New(audit.Config{})
	mon := perfmon.New(perfmon.Config{SampleEvery: 4})
	res, _, err := core.RunLOFT(cfg, p, core.RunSpec{Seed: 11, Warmup: 100, Measure: 800, Probe: pr, Audit: aud, Perf: mon})
	if err != nil {
		t.Fatal(err)
	}
	dir, err := os.MkdirTemp("", "lofttrace-test-*")
	if err != nil {
		t.Fatal(err)
	}
	m := trace.Manifest{
		ManifestVersion: trace.ManifestVersion,
		Tool:            "loftsim", Arch: "loft", Pattern: "uniform",
		Seeds: []uint64{11}, WarmupCycles: 100, MeasureCycles: 800,
		MeshK: cfg.MeshK, Nodes: cfg.Mesh().N(), Config: &cfg,
		Metrics: runio.Metrics(&res, pr, aud, mon, uint64(cfg.QuantumFlits)),
	}
	if err := runio.WriteRunDir(dir, pr, aud, mon, m); err != nil {
		t.Fatal(err)
	}
	testRunDirs[spec] = dir
	return dir
}

func TestMain(m *testing.M) {
	code := m.Run()
	for _, dir := range testRunDirs {
		os.RemoveAll(dir)
	}
	os.Exit(code)
}

func runCLI(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var stdout, stderr bytes.Buffer
	code := run(args, &stdout, &stderr)
	return code, stdout.String(), stderr.String()
}

func TestUsageAndBadSubcommand(t *testing.T) {
	if code, _, _ := runCLI(t); code != 2 {
		t.Error("no args: want exit 2")
	}
	if code, _, errOut := runCLI(t, "frobnicate"); code != 2 || !strings.Contains(errOut, "unknown subcommand") {
		t.Errorf("unknown subcommand: code=%d stderr=%q", code, errOut)
	}
	if code, out, _ := runCLI(t, "help"); code != 0 || !strings.Contains(out, "lofttrace diff") {
		t.Errorf("help: code=%d out=%q", code, out)
	}
}

func TestSummaryOnRunDirectory(t *testing.T) {
	dir := writeTestRun(t, 12)
	code, out, errOut := runCLI(t, "summary", dir)
	if code != 0 {
		t.Fatalf("summary: code=%d stderr=%s", code, errOut)
	}
	for _, want := range []string{"run manifest", "loft / uniform", "artifact", "events: ", "data-forward"} {
		if !strings.Contains(out, want) {
			t.Errorf("summary output missing %q:\n%s", want, out)
		}
	}
	if code, _, _ := runCLI(t, "summary", filepath.Join(dir, "nope")); code != 2 {
		t.Error("summary on a missing target: want exit 2")
	}
}

func TestDecomposeOnRunDirectory(t *testing.T) {
	dir := writeTestRun(t, 12)
	code, out, errOut := runCLI(t, "decompose", dir)
	if code != 0 {
		t.Fatalf("decompose: code=%d stderr=%s", code, errOut)
	}
	if strings.Contains(out, "TIMING VIOLATION") {
		t.Errorf("decompose reported timing violations:\n%s", out)
	}
	for _, want := range []string{"quanta complete", "booking-wait", "serialization", "lookahead-wait", "spec-wait", "per-hop residual wait"} {
		if !strings.Contains(out, want) {
			t.Errorf("decompose output missing %q:\n%s", want, out)
		}
	}
	// The manifest supplies slot-cycles; the header must show the config's
	// QuantumFlits, not the fallback.
	if !strings.Contains(out, "slot = 2 cycles") {
		t.Errorf("decompose did not pick up slot cycles from the manifest:\n%s", out)
	}
	code, jsonOut, _ := runCLI(t, "decompose", "-json", dir)
	if code != 0 || !strings.Contains(jsonOut, `"slot_cycles": 2`) || !strings.Contains(jsonOut, `"booking_wait"`) {
		t.Errorf("decompose -json: code=%d out=%s", code, jsonOut)
	}
}

// TestPerfOnRunDirectory pins the acceptance criterion: `lofttrace perf`
// renders the per-stage attribution table and the per-worker
// shard-utilization machinery from a -perf-enabled run directory.
func TestPerfOnRunDirectory(t *testing.T) {
	dir := writeTestRun(t, 12)
	code, out, errOut := runCLI(t, "perf", dir)
	if code != 0 {
		t.Fatalf("perf: code=%d stderr=%s", code, errOut)
	}
	for _, want := range []string{"stage attribution", "booking", "lookahead", "commit", "SHARE", "NS/CALL", "gauges"} {
		if !strings.Contains(out, want) {
			t.Errorf("perf output missing %q:\n%s", want, out)
		}
	}
	code, jsonOut, _ := runCLI(t, "perf", "-json", dir)
	if code != 0 || !strings.Contains(jsonOut, `"sample_every"`) || !strings.Contains(jsonOut, `"stages"`) {
		t.Errorf("perf -json: code=%d out=%s", code, jsonOut)
	}
	// The folded-stack flamegraph export sits next to the snapshot.
	folded, err := os.ReadFile(filepath.Join(dir, runio.FoldedFile))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(folded), "sim;node;booking ") {
		t.Errorf("folded stacks missing node stage frames:\n%s", folded)
	}
	if code, _, _ := runCLI(t, "perf", filepath.Join(dir, "nope")); code != 2 {
		t.Error("perf on a missing target: want exit 2")
	}
}

// TestPerfDiffSelfIsZero: a profiled run perf-diffed against itself has no
// breaches (values are wall times, so they only compare equal against the
// same snapshot — which is exactly what CI's self-check does).
func TestPerfDiffSelfIsZero(t *testing.T) {
	dir := writeTestRun(t, 12)
	code, out, errOut := runCLI(t, "perf", "-diff", dir, dir)
	if code != 0 {
		t.Fatalf("perf self-diff: code=%d stderr=%s", code, errOut)
	}
	if !strings.Contains(out, "0 regression breach(es)") {
		t.Errorf("perf self-diff not clean:\n%s", out)
	}
}

// TestDiffSelfIsZero pins the acceptance criterion: a run diffed against
// itself reports zero changed metrics, zero breaches, and exits 0.
func TestDiffSelfIsZero(t *testing.T) {
	dir := writeTestRun(t, 12)
	code, out, errOut := runCLI(t, "diff", dir, dir)
	if code != 0 {
		t.Fatalf("self-diff: code=%d stderr=%s", code, errOut)
	}
	if !strings.Contains(out, "0 metric(s) changed, 0 regression breach(es)") {
		t.Errorf("self-diff not zero:\n%s", out)
	}
}

// TestDiffSpecOnVsOff pins the cross-config acceptance criterion: diffing a
// speculation-enabled run against a disabled one must surface both the
// config change and a non-empty decomposition delta.
func TestDiffSpecOnVsOff(t *testing.T) {
	on := writeTestRun(t, 12)
	off := writeTestRun(t, 0)
	code, out, _ := runCLI(t, "diff", "-threshold", "1e9", on, off)
	if code != 0 {
		t.Fatalf("spec on-vs-off diff with huge threshold: code=%d\n%s", code, out)
	}
	if !strings.Contains(out, "config: SpeculativeSwitching: true -> false") {
		t.Errorf("diff missing the speculation config change:\n%s", out)
	}
	if !strings.Contains(out, "decomp_") {
		t.Errorf("diff reports no decomposition delta:\n%s", out)
	}
}

func TestDiffBreachExitCode(t *testing.T) {
	dir := t.TempDir()
	write := func(name, body string) string {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	base := write("base.json", `{"avg_latency_cycles": 100}`)
	worse := write("worse.json", `{"avg_latency_cycles": 150}`)
	code, out, _ := runCLI(t, "diff", base, worse)
	if code != 1 {
		t.Errorf("50%% latency regression: code=%d, want 1\n%s", code, out)
	}
	if !strings.Contains(out, "!") || !strings.Contains(out, "1 regression breach(es)") {
		t.Errorf("breach not marked:\n%s", out)
	}
	// The same pair inside the threshold passes.
	if code, _, _ := runCLI(t, "diff", "-threshold", "60", base, worse); code != 0 {
		t.Error("within-threshold diff: want exit 0")
	}
	// Improvement in the good direction never fails, whatever the size.
	if code, _, _ := runCLI(t, "diff", worse, base); code != 0 {
		t.Error("latency improvement: want exit 0")
	}
}

func TestTrendExitCodes(t *testing.T) {
	dir := t.TempDir()
	write := func(name, body string) string {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	a := write("BENCH_a.json", `{"BenchmarkSimulatorSpeed": 6000}`)
	b := write("BENCH_b.json", `{"BenchmarkSimulatorSpeed": 6100}`)
	down := write("BENCH_c.json", `{"BenchmarkSimulatorSpeed": 4000}`)
	if code, out, _ := runCLI(t, "trend", a, b); code != 0 {
		t.Errorf("flat trend: code=%d\n%s", code, out)
	}
	code, out, _ := runCLI(t, "trend", a, b, down)
	if code != 1 || !strings.Contains(out, "1 regression(s)") {
		t.Errorf("regressing trend: code=%d\n%s", code, out)
	}
	if code, _, _ := runCLI(t, "trend", a); code != 2 {
		t.Error("single-file trend: want exit 2")
	}
}
