// Package loft is a from-scratch Go reproduction of "LOFT: A High
// Performance Network-on-Chip Providing Quality-of-Service Support"
// (Ouyang & Xie, MICRO 2010): a cycle-accurate NoC simulator implementing
// locally-synchronized frames (LSF) integrated with flit-reservation flow
// control (FRS), the GSF baseline it is evaluated against, and a benchmark
// harness regenerating every table and figure of the paper's evaluation.
//
// See DESIGN.md for the system inventory and per-experiment index,
// EXPERIMENTS.md for paper-vs-measured results, and the examples/ directory
// for runnable entry points. The root-level benchmarks in bench_test.go
// regenerate each experiment via `go test -bench=.`.
package loft
