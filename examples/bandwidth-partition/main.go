// Bandwidth partitioning (Fig. 10): differentiated service on a hotspot.
// The mesh is split into regions with weighted frame reservations and every
// node blasts the hotspot; accepted throughput follows the configured
// weights — QoS allocation, not arbitration luck.
package main

import (
	"fmt"
	"log"

	"loft/internal/config"
	"loft/internal/core"
	"loft/internal/stats"
	"loft/internal/topo"
	"loft/internal/traffic"
)

func main() {
	cfg := config.PaperLOFT()
	mesh := cfg.Mesh()
	hot := topo.NodeID(mesh.N() - 1)

	// Two halves with a 3:1 bandwidth split (Fig. 10c).
	pattern := traffic.Hotspot(mesh, hot, 0.5, cfg.PacketFlits, cfg.FrameFlits,
		cfg.QuantumFlits, traffic.HalfWeight(mesh, 3, 1))

	res, _, err := core.RunLOFT(cfg, pattern, core.RunSpec{Seed: 3, Warmup: 5000, Measure: 20000})
	if err != nil {
		log.Fatal(err)
	}

	var left, right []float64
	for _, f := range pattern.Flows {
		if mesh.Coord(f.Src).X < mesh.K/2 {
			left = append(left, res.FlowRate[f.ID])
		} else {
			right = append(right, res.FlowRate[f.ID])
		}
	}
	l, r := stats.Summarize(left), stats.Summarize(right)
	fmt.Println("Differentiated allocation: left half weight 3, right half weight 1,")
	fmt.Println("all 63 nodes saturating hotspot node 63")
	fmt.Printf("  %-6s %8s %8s %8s %8s\n", "region", "MAX", "MIN", "AVG", "STDEV%")
	fmt.Printf("  %-6s %8.4f %8.4f %8.4f %7.1f%%\n", "R1(3x)", l.Max, l.Min, l.Avg, l.Stdev*100)
	fmt.Printf("  %-6s %8.4f %8.4f %8.4f %7.1f%%\n", "R2(1x)", r.Max, r.Min, r.Avg, r.Stdev*100)
	fmt.Printf("  achieved ratio R1/R2 = %.2f (configured 3.0)\n", l.Avg/r.Avg)
	fmt.Printf("  hotspot link utilization = %.1f%%\n", 100*res.TotalRate)
}
