// DoS isolation (Case Study I, §6.3a): a regulated victim flow shares the
// hotspot with two aggressors that inject far beyond their allocation. The
// example runs both LOFT and GSF and shows that LOFT keeps the victim's
// latency nearly flat while GSF lets the aggressors degrade it.
package main

import (
	"fmt"
	"log"

	"loft/internal/config"
	"loft/internal/core"
	"loft/internal/traffic"
)

func main() {
	lcfg := config.PaperLOFT()
	spec := core.RunSpec{Seed: 7, Warmup: 3000, Measure: 12000}
	rates := []float64{0.1, 0.4, 0.8}

	fmt.Println("Case Study I: flows 0→63 (victim, 0.2 f/c), 48→63 and 56→63 (aggressors)")
	fmt.Println("each allocated 1/4 of the hotspot link bandwidth")
	for _, arch := range []core.Arch{core.ArchGSF, core.ArchLOFT} {
		fmt.Printf("\n[%s]\n", arch)
		fmt.Printf("  %-9s %16s %16s %10s\n", "agg rate", "victim lat (cyc)", "agg lat (cyc)", "victim f/c")
		for _, rate := range rates {
			p := traffic.CaseStudyI(lcfg.Mesh(), 0.2, rate, lcfg.PacketFlits, lcfg.FrameFlits)
			var res core.Result
			var err error
			if arch == core.ArchLOFT {
				res, _, err = core.RunLOFT(lcfg, p, spec)
			} else {
				res, _, err = core.RunGSF(config.PaperGSF(), p, lcfg.FrameFlits, spec)
			}
			if err != nil {
				log.Fatal(err)
			}
			victim := p.Flows[traffic.CaseStudyIVictim]
			agg := p.Flows[traffic.CaseStudyIAggressor1]
			fmt.Printf("  %-9.1f %16.1f %16.1f %10.4f\n",
				rate, res.FlowLatency[victim.ID], res.FlowLatency[agg.ID], res.FlowRate[victim.ID])
		}
	}
	fmt.Println("\nLOFT's frame reservations cap the aggressors at their share and keep")
	fmt.Println("the victim's latency flat; GSF's global frame recycling lets the")
	fmt.Println("aggressors slow everyone down (§6.3, Fig. 12).")
}
