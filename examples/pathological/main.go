// Pathological isolation (Fig. 1 / Case Study II): column-0 nodes hammer a
// central hotspot while one "stripped" node talks only to its uncontended
// neighbor. Under GSF the stripped node is dragged down by the global frame
// recycling it shares with the congested flows; LOFT's local status reset
// lets it run at link speed.
package main

import (
	"fmt"
	"log"

	"loft/internal/config"
	"loft/internal/core"
	"loft/internal/traffic"
)

func main() {
	lcfg := config.PaperLOFT()
	spec := core.RunSpec{Seed: 5, Warmup: 3000, Measure: 12000}
	rates := []float64{0.04, 0.16, 0.64, 0.95}

	fmt.Println("Case Study II: grey nodes (column 0) → center hotspot;")
	fmt.Println("stripped node → nearest neighbor over a private link")
	fmt.Printf("\n%-9s | %-23s | %-23s\n", "", "GSF", "LOFT")
	fmt.Printf("%-9s | %10s %12s | %10s %12s\n", "inj rate", "grey f/c", "stripped f/c", "grey f/c", "stripped f/c")
	for _, rate := range rates {
		row := fmt.Sprintf("%-9.2f", rate)
		for _, arch := range []core.Arch{core.ArchGSF, core.ArchLOFT} {
			p := traffic.CaseStudyII(lcfg.Mesh(), rate, lcfg.PacketFlits, lcfg.FrameFlits)
			var res core.Result
			var err error
			if arch == core.ArchLOFT {
				res, _, err = core.RunLOFT(lcfg, p, spec)
			} else {
				res, _, err = core.RunGSF(config.PaperGSF(), p, lcfg.FrameFlits, spec)
			}
			if err != nil {
				log.Fatal(err)
			}
			var grey float64
			ids := traffic.CaseStudyIIGrey(p)
			for _, id := range ids {
				grey += res.FlowRate[id]
			}
			grey /= float64(len(ids))
			stripped := res.FlowRate[traffic.CaseStudyIIStripped(p)]
			row += fmt.Sprintf(" | %10.4f %12.4f", grey, stripped)
		}
		fmt.Println(row)
	}
	fmt.Println("\nThe stripped node shares no link with the grey flows, yet GSF throttles")
	fmt.Println("it to the hotspot's pace; LOFT isolates it (§6.3b, Fig. 13).")
}
