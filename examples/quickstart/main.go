// Quickstart: build the paper's 8×8 LOFT network, drive it with uniform
// random traffic, and print the headline metrics. This is the smallest
// complete use of the public API (internal/core + internal/traffic +
// internal/config).
package main

import (
	"fmt"
	"log"

	"loft/internal/config"
	"loft/internal/core"
	"loft/internal/traffic"
)

func main() {
	// Table 1 configuration with the paper's chosen 12-flit speculative
	// buffer. Try config.PaperLOFTSpec(0) to see the network with the
	// §4.3 optimizations (speculative switching + local status reset) off.
	cfg := config.PaperLOFT()

	// Uniform random traffic at 0.2 flits/cycle/node: each source is one
	// flow with an equal frame reservation (F/64 flits).
	pattern := traffic.Uniform(cfg.Mesh(), 0.2, cfg.PacketFlits, cfg.FrameFlits)

	res, net, err := core.RunLOFT(cfg, pattern, core.RunSpec{
		Seed:    42,
		Warmup:  2000,
		Measure: 10000,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("LOFT 8×8 mesh, uniform traffic @ 0.2 flits/cycle/node")
	fmt.Printf("  delivered packets   : %d\n", res.Packets)
	fmt.Printf("  avg packet latency  : %.1f cycles (network only: %.1f)\n",
		res.AvgLatency, res.AvgNetLatency)
	fmt.Printf("  accepted throughput : %.4f flits/cycle/node\n", res.TotalRate/64)
	fmt.Printf("  speculative forwards: %d (quanta moved ahead of schedule)\n", res.SpecForward)
	fmt.Printf("  local status resets : %d (idle links recycling their frames)\n", res.Resets)

	s := net.TotalStats()
	fmt.Printf("  protocol health     : %d late arrivals, %d emergent denials\n",
		s.LateArrivals, s.EmergentDenied)
}
