// Trace replay: run a recorded workload through both architectures and
// compare. The example generates a reproducible synthetic trace (standing
// in for a captured application trace — see DESIGN.md §5 on substitutions),
// writes it to disk in the loftsim trace format, reads it back, and replays
// it through LOFT and GSF.
package main

import (
	"bytes"
	"fmt"
	"log"

	"loft/internal/config"
	"loft/internal/core"
	"loft/internal/traffic"
)

func main() {
	cfg := config.PaperLOFT()
	mesh := cfg.Mesh()

	// 400 packets over 8000 cycles with uniform random endpoints.
	events := traffic.SyntheticTrace(mesh, 400, 8000, cfg.PacketFlits, 99)

	// Round-trip through the on-disk format (cycle src dst flits).
	var buf bytes.Buffer
	if err := traffic.WriteTrace(&buf, events); err != nil {
		log.Fatal(err)
	}
	parsed, err := traffic.ParseTrace(&buf)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trace: %d packets, horizon %d cycles\n", len(parsed), parsed[len(parsed)-1].Cycle)

	spec := core.RunSpec{Seed: 1, Warmup: 0, Measure: 20000}
	for _, arch := range []core.Arch{core.ArchLOFT, core.ArchGSF} {
		p, err := traffic.FromTrace(mesh, parsed, cfg.PacketFlits, cfg.FrameFlits, cfg.QuantumFlits)
		if err != nil {
			log.Fatal(err)
		}
		var res core.Result
		if arch == core.ArchLOFT {
			res, _, err = core.RunLOFT(cfg, p, spec)
		} else {
			res, _, err = core.RunGSF(config.PaperGSF(), p, cfg.FrameFlits, spec)
		}
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("[%s] delivered %d/%d packets, avg latency %.1f cycles (p99 %.0f)\n",
			arch, res.Packets, len(parsed), res.AvgLatency, res.P99Latency)
	}
}
