// Package analysis implements the paper's analytical models: the worst-case
// delay bounds of §5.3.1, the per-router storage accounting of Table 2, and
// a first-order area/power estimate standing in for McPAT (§5.3.2; see
// DESIGN.md for the substitution rationale).
package analysis

import "loft/internal/config"

// DelayBoundLOFT returns LOFT's worst-case end-to-end latency in cycles for
// a path of numHops router-to-router hops (eq. 2: F × WF × NumHops, the RCQ
// bound). With the paper parameters this is 512 cycles per hop.
func DelayBoundLOFT(cfg config.LOFT, numHops int) uint64 {
	return uint64(cfg.FrameFlits) * uint64(cfg.FrameWindow) * uint64(numHops)
}

// DelayBoundGSF returns the paper's worst-case estimate for GSF: draining a
// full frame window costs k × WF × F cycles with k = 2 for the modeled
// router (flow-control overhead, §5.3.1) — 24000 cycles with the Table 1
// parameters, independent of the path taken.
func DelayBoundGSF(cfg config.GSF) uint64 {
	const k = 2
	return k * uint64(cfg.FrameWindow) * uint64(cfg.FrameFlits)
}

// StorageGSF itemizes per-router storage in bits (Table 2, GSF column).
type StorageGSF struct {
	SourceQueue     int // 2000 flits × 128 bits
	VirtualChannels int // 6 VCs × 5 flits × 128 bits × 4 ports
	FlowState       int // per-flow injection state (IF, C, R)
	Total           int
}

// GSFStorage computes the GSF storage model. The paper counts four mesh
// ports per router (the average degree of an 8×8 mesh interior rounded to
// the data ports) and reports 271379 bits total.
func GSFStorage(cfg config.GSF, maxFlows int) StorageGSF {
	const ports = 4
	s := StorageGSF{
		SourceQueue:     cfg.SourceQueue * cfg.DataFlitBits,
		VirtualChannels: cfg.VirtualChannels * cfg.VCDepth * cfg.DataFlitBits * ports,
	}
	// Flow state: per flow an absolute frame pointer and a budget counter
	// sized for the 2000-flit frame (11 bits each) minus storage the paper
	// folds elsewhere; Table 2 reports a total of 271379, i.e. 19 bits of
	// miscellaneous state beyond queues and VCs.
	s.FlowState = 19
	s.Total = s.SourceQueue + s.VirtualChannels + s.FlowState
	return s
}

// StorageLOFT itemizes per-router storage in bits (Table 2, LOFT column).
type StorageLOFT struct {
	InputBuffers      int // (central 256 + spec 12..16) flits × 128 bits × 4 ports
	ReservationTables int // 8 tables × 256 entries × 20 bits
	FlowState         int // 64 flows × (IF, C, R) + pointers
	LookaheadNetwork  int // 3 VCs × 4 flits × 64 bits × 4 ports... (see below)
	Total             int
}

// LOFTStorage computes the LOFT storage model with the paper's counting:
//   - input buffers: 4 ports × (256-flit central + 16-flit speculative
//     maximum) × 128-bit flits = 139264 bits;
//   - reservation tables: 4 input + 4 output tables × 256 entries × 20 bits
//     = 40960 bits;
//   - per-output flow state: 64 flows × 36 bits + head/current pointers
//     = 2308 bits;
//   - look-ahead network buffers: 3 VCs × 4 flits × 64 bits × (ports
//     amortized) = 1536 bits.
//
// Total 184203 bits, 32% below GSF.
func LOFTStorage(cfg config.LOFT) StorageLOFT {
	const ports = 4
	const entryBits = 20
	specMax := 16 // Table 2 counts the largest studied speculative buffer
	if cfg.SpecBufFlits > specMax {
		specMax = cfg.SpecBufFlits
	}
	s := StorageLOFT{
		InputBuffers:      ports * (cfg.CentralBufFlits + specMax) * cfg.DataFlitBits,
		ReservationTables: 2 * ports * cfg.TableSlots() * entryBits,
		LookaheadNetwork:  cfg.LAVirtualChannels * cfg.LAVCDepth * cfg.LAFlitBits * 2,
	}
	// Flow state per output scheduler: 64 flows × (IF 1b + C 7b + R 7b +
	// injection bookkeeping) + CP/HF pointers; Table 2 reports 2308 bits.
	s.FlowState = cfg.MaxFlows*36 + 4
	s.Total = s.InputBuffers + s.ReservationTables + s.FlowState + s.LookaheadNetwork
	return s
}

// AreaPower is the first-order estimate of §5.3.2.
type AreaPower struct {
	AreaMM2        float64 // total NoC area
	PowerW         float64 // total NoC power
	ChipAreaFrac   float64 // fraction of the 64-core CMP die
	ChipPowerFrac  float64 // fraction of the estimated chip power
	chipAreaMM2    float64
	chipPowerWatts float64
}

// EstimateAreaPower reproduces the paper's headline numbers: a 64-node LOFT
// NoC at 32 mm² and 50 W, 7% of a 64-core CMP die [25] and 19% of the
// 265 W chip power estimated by McPAT. The model is storage-dominated:
// area and power scale with buffered bits and node count, calibrated so
// the Table 1 configuration lands on the paper's values.
func EstimateAreaPower(cfg config.LOFT) AreaPower {
	nodes := float64(cfg.MeshK * cfg.MeshK)
	bits := float64(LOFTStorage(cfg).Total)
	// Calibration constants derived from the paper's 64-node numbers:
	// 32 mm² / (64 × 184203 bits) and 50 W likewise.
	const mm2PerBit = 32.0 / (64 * 184203)
	const wattPerBit = 50.0 / (64 * 184203)
	ap := AreaPower{
		AreaMM2:        mm2PerBit * bits * nodes,
		PowerW:         wattPerBit * bits * nodes,
		chipAreaMM2:    32.0 / 0.07,
		chipPowerWatts: 265,
	}
	ap.ChipAreaFrac = ap.AreaMM2 / ap.chipAreaMM2
	ap.ChipPowerFrac = ap.PowerW / ap.chipPowerWatts
	return ap
}
