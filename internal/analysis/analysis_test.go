package analysis

import (
	"math"
	"testing"

	"loft/internal/config"
)

func TestDelayBoundLOFT(t *testing.T) {
	cfg := config.PaperLOFT()
	// §5.3.1: 512 cycles per hop with F=256, WF=2.
	if got := DelayBoundLOFT(cfg, 1); got != 512 {
		t.Fatalf("per-hop bound = %d, want 512", got)
	}
	if got := DelayBoundLOFT(cfg, 14); got != 512*14 {
		t.Fatalf("14-hop bound = %d, want %d", got, 512*14)
	}
}

func TestDelayBoundGSF(t *testing.T) {
	cfg := config.PaperGSF()
	// §5.3.1: k × WF × F = 2 × 6 × 2000 = 24000 cycles.
	if got := DelayBoundGSF(cfg); got != 24000 {
		t.Fatalf("GSF bound = %d, want 24000", got)
	}
}

func TestGSFStorageMatchesTable2(t *testing.T) {
	s := GSFStorage(config.PaperGSF(), 64)
	if s.SourceQueue != 256000 {
		t.Fatalf("source queue = %d bits, want 256000", s.SourceQueue)
	}
	if s.VirtualChannels != 15360 {
		t.Fatalf("VCs = %d bits, want 15360", s.VirtualChannels)
	}
	if s.Total != 271379 {
		t.Fatalf("total = %d bits, want 271379", s.Total)
	}
}

func TestLOFTStorageMatchesTable2(t *testing.T) {
	s := LOFTStorage(config.PaperLOFT())
	if s.InputBuffers != 139264 {
		t.Fatalf("input buffers = %d bits, want 139264", s.InputBuffers)
	}
	if s.ReservationTables != 40960 {
		t.Fatalf("reservation tables = %d bits, want 40960", s.ReservationTables)
	}
	if s.FlowState != 2308 {
		t.Fatalf("flow state = %d bits, want 2308", s.FlowState)
	}
	if s.LookaheadNetwork != 1536 {
		t.Fatalf("look-ahead network = %d bits, want 1536", s.LookaheadNetwork)
	}
	// The paper's table rows sum to 184068 although its total row prints
	// 184203; we require the component sum within 0.1% of the printed
	// total.
	if math.Abs(float64(s.Total-184203))/184203 > 0.001 {
		t.Fatalf("total = %d bits, want within 0.1%% of 184203", s.Total)
	}
}

func TestLOFTSavesStorageOverGSF(t *testing.T) {
	l := LOFTStorage(config.PaperLOFT())
	g := GSFStorage(config.PaperGSF(), 64)
	saving := 1 - float64(l.Total)/float64(g.Total)
	// §5.3.2: LOFT uses 32% less storage than GSF.
	if saving < 0.30 || saving > 0.34 {
		t.Fatalf("storage saving = %.3f, want ≈ 0.32", saving)
	}
}

func TestAreaPowerHeadlineNumbers(t *testing.T) {
	ap := EstimateAreaPower(config.PaperLOFT())
	if math.Abs(ap.AreaMM2-32) > 0.5 {
		t.Fatalf("area = %.2f mm², want ≈ 32", ap.AreaMM2)
	}
	if math.Abs(ap.PowerW-50) > 1 {
		t.Fatalf("power = %.2f W, want ≈ 50", ap.PowerW)
	}
	if math.Abs(ap.ChipAreaFrac-0.07) > 0.01 {
		t.Fatalf("chip area fraction = %.3f, want ≈ 0.07", ap.ChipAreaFrac)
	}
	if math.Abs(ap.ChipPowerFrac-0.19) > 0.01 {
		t.Fatalf("chip power fraction = %.3f, want ≈ 0.19", ap.ChipPowerFrac)
	}
}
