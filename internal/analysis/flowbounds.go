package analysis

import (
	"loft/internal/config"
	"loft/internal/flit"
	"loft/internal/route"
	"loft/internal/topo"
)

// PathTables returns the number of framed reservation tables a flow's
// quanta are scheduled through on an XY path with the given router-to-router
// hop count: the injection link's table, one per mesh link, and the
// ejection link's table.
func PathTables(numHops int) int { return numHops + 2 }

// DelayBoundLOFTPath is the per-flow §5.3.1 delay bound applied to the full
// implemented path. Theorem I bounds the wait at each framed table by one
// frame window (F·WF flit times); the paper's eq. 2 counts the router-to-
// router hops only, while the implementation also schedules the injection
// and ejection links through LSF tables, so the constructive per-flow bound
// used by the runtime auditor spans numHops+2 tables.
func DelayBoundLOFTPath(cfg config.LOFT, numHops int) uint64 {
	return DelayBoundLOFT(cfg, PathTables(numHops))
}

// FlowHops returns the XY router-to-router hop count of a flow, or the mesh
// diameter when the flow has no fixed destination (Dst < 0, e.g. uniform
// traffic picks a fresh destination per packet).
func FlowHops(m topo.Mesh, f flit.Flow) int {
	if f.Dst < 0 || int(f.Dst) >= m.N() {
		return 2 * (m.K - 1)
	}
	return route.Hops(m, f.Src, f.Dst)
}

// FlowBoundsLOFT returns the per-flow LOFT delay bound (over the full
// implemented path, see DelayBoundLOFTPath) for every flow of a pattern.
func FlowBoundsLOFT(cfg config.LOFT, m topo.Mesh, flows []flit.Flow) map[flit.FlowID]uint64 {
	out := make(map[flit.FlowID]uint64, len(flows))
	for _, f := range flows {
		out[f.ID] = DelayBoundLOFTPath(cfg, FlowHops(m, f))
	}
	return out
}
