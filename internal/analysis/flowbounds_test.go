package analysis

import (
	"testing"

	"loft/internal/config"
	"loft/internal/flit"
	"loft/internal/topo"
)

func TestFlowBoundsLOFT(t *testing.T) {
	cfg := config.PaperLOFT()
	m := cfg.Mesh()
	flows := []flit.Flow{
		{ID: 0, Src: 0, Dst: topo.NodeID(m.N() - 1)}, // corner to corner: 14 hops
		{ID: 1, Src: 0, Dst: 1},                      // one hop
		{ID: 2, Src: 5, Dst: -1},                     // random destination: diameter
	}
	bounds := FlowBoundsLOFT(cfg, m, flows)
	perTable := uint64(cfg.FrameFlits) * uint64(cfg.FrameWindow) // 512 cycles
	if got, want := bounds[0], perTable*16; got != want {
		t.Errorf("corner-to-corner bound = %d, want %d", got, want)
	}
	if got, want := bounds[1], perTable*3; got != want {
		t.Errorf("one-hop bound = %d, want %d", got, want)
	}
	if bounds[2] != bounds[0] {
		t.Errorf("random-destination bound = %d, want diameter bound %d", bounds[2], bounds[0])
	}
	if DelayBoundLOFTPath(cfg, 14) != DelayBoundLOFT(cfg, 16) {
		t.Error("DelayBoundLOFTPath must add the injection and ejection tables")
	}
}
