// Package arb provides the arbiters used by the router models.
package arb

// RoundRobin is a work-conserving round-robin arbiter over n requesters.
// After a grant the priority pointer moves past the winner, giving the
// classic least-recently-served order.
type RoundRobin struct {
	n    int
	next int
}

// NewRoundRobin returns an arbiter over n requesters.
func NewRoundRobin(n int) *RoundRobin {
	if n <= 0 {
		panic("arb: round-robin over zero requesters")
	}
	return &RoundRobin{n: n}
}

// Grant picks among requesters where req(i) is true, starting the search at
// the rotating priority pointer. It returns the winner and true, or -1 and
// false when nobody requests. The pointer advances only on a grant.
func (r *RoundRobin) Grant(req func(int) bool) (int, bool) {
	for i := 0; i < r.n; i++ {
		idx := (r.next + i) % r.n
		if req(idx) {
			r.next = (idx + 1) % r.n
			return idx, true
		}
	}
	return -1, false
}

// GrantPreferred behaves like Grant but first checks a forced winner
// (forced >= 0): LOFT's emergent candidates are "guaranteed to win
// arbitration" (§4.3.1). The rotating pointer still advances past the forced
// winner so steady-state fairness is unaffected.
func (r *RoundRobin) GrantPreferred(forced int, req func(int) bool) (int, bool) {
	if forced >= 0 && forced < r.n {
		r.next = (forced + 1) % r.n
		return forced, true
	}
	return r.Grant(req)
}

// Oldest arbitrates by minimal key (e.g. GSF frame number: older frames have
// smaller relative age) with round-robin tie-breaking among equal keys.
type Oldest struct{ rr *RoundRobin }

// NewOldest returns an oldest-first arbiter over n requesters.
func NewOldest(n int) *Oldest { return &Oldest{rr: NewRoundRobin(n)} }

// Grant picks the requester with the smallest key among those with req(i)
// true; ties break round-robin. key is only consulted where req(i) is true.
func (o *Oldest) Grant(req func(int) bool, key func(int) int) (int, bool) {
	best := -1
	for i := 0; i < o.rr.n; i++ {
		if !req(i) {
			continue
		}
		if best == -1 || key(i) < key(best) {
			best = i
		}
	}
	if best == -1 {
		return -1, false
	}
	// Round-robin among the minimal-key subset.
	minKey := key(best)
	w, ok := o.rr.Grant(func(i int) bool { return req(i) && key(i) == minKey })
	if !ok {
		return best, true
	}
	return w, true
}
