package arb

import "testing"

func TestRoundRobinFairness(t *testing.T) {
	rr := NewRoundRobin(4)
	counts := make([]int, 4)
	all := func(int) bool { return true }
	for i := 0; i < 400; i++ {
		w, ok := rr.Grant(all)
		if !ok {
			t.Fatal("no grant with all requesting")
		}
		counts[w]++
	}
	for i, c := range counts {
		if c != 100 {
			t.Fatalf("requester %d granted %d/400", i, c)
		}
	}
}

func TestRoundRobinSkipsIdle(t *testing.T) {
	rr := NewRoundRobin(3)
	only2 := func(i int) bool { return i == 2 }
	for i := 0; i < 5; i++ {
		w, ok := rr.Grant(only2)
		if !ok || w != 2 {
			t.Fatalf("grant = (%d,%v)", w, ok)
		}
	}
	if _, ok := rr.Grant(func(int) bool { return false }); ok {
		t.Fatal("granted with no requesters")
	}
}

func TestRoundRobinPreferred(t *testing.T) {
	rr := NewRoundRobin(4)
	w, ok := rr.GrantPreferred(3, func(int) bool { return false })
	if !ok || w != 3 {
		t.Fatalf("forced grant = (%d,%v)", w, ok)
	}
	// Pointer advanced past the forced winner.
	w, ok = rr.Grant(func(int) bool { return true })
	if !ok || w != 0 {
		t.Fatalf("next grant = (%d,%v), want 0", w, ok)
	}
}

func TestOldestPriority(t *testing.T) {
	o := NewOldest(3)
	keys := []int{5, 2, 9}
	w, ok := o.Grant(func(int) bool { return true }, func(i int) int { return keys[i] })
	if !ok || w != 1 {
		t.Fatalf("grant = (%d,%v), want requester 1 (min key)", w, ok)
	}
}

func TestOldestTieBreakRotates(t *testing.T) {
	o := NewOldest(3)
	counts := make([]int, 3)
	for i := 0; i < 300; i++ {
		w, ok := o.Grant(func(int) bool { return true }, func(int) int { return 7 })
		if !ok {
			t.Fatal("no grant")
		}
		counts[w]++
	}
	for i, c := range counts {
		if c < 80 || c > 120 {
			t.Fatalf("tie-break unfair: requester %d got %d/300", i, c)
		}
	}
}
