// Package audit is the runtime QoS auditor: a per-packet flight recorder
// with delay-bound conformance checking, a scheduler invariant auditor, and
// a live HTTP introspection server.
//
// The paper's claims are *guarantees* — Theorem I's per-flow delay bound
// and the condition-(1)/skipped(i) safety argument — so the auditor checks
// them packet by packet and grant by grant while a simulation runs, instead
// of trusting aggregate latency curves:
//
//   - The flight recorder (recorder.go) follows every quantum from its
//     injection-table booking through each hop's look-ahead reservation and
//     switch traversal to ejection, and verdicts every completed packet's
//     network latency against its flow's analytical delay bound. A GS
//     packet over its bound is a hard audit failure carrying the
//     reconstructed hop-by-hop timeline.
//   - The invariant auditor (this file) taps every LSF table through
//     lsf.AuditSink: shadow grant/return/skipped accounting, the
//     condition-(1)/Theorem-I admission inequality at every grant (window-
//     end credit == BN − outstanding, and non-negative), and a periodic
//     full-window sweep of credit bounds and busy-slot consistency, plus
//     architecture-registered checks (flit conservation, buffer occupancy,
//     GSF frame accounting).
//   - The introspection server (server.go) publishes /metrics (Prometheus
//     text), /audit (JSON snapshot of this package's state), a progress/
//     heatmap page, and net/http/pprof.
//
// All Auditor methods are nil-receiver safe: a disabled auditor costs the
// simulator one pointer test per hook site.
package audit

import (
	"fmt"

	"loft/internal/flit"
	"loft/internal/lsf"
)

// Config sizes an Auditor.
type Config struct {
	// CheckEvery is the cycle period of the full invariant sweep (every
	// table's whole window plus the registered checks). 0 means the default
	// (1024); the O(1) per-grant checks always run.
	CheckEvery uint64
	// MaxViolations caps the retained violation log (the total count is
	// always exact). 0 means the default (32).
	MaxViolations int
	// PublishEvery is the cycle period of the publish callback (the HTTP
	// server snapshot). 0 means the default (4096).
	PublishEvery uint64
}

func (c Config) withDefaults() Config {
	if c.CheckEvery == 0 {
		c.CheckEvery = 1024
	}
	if c.MaxViolations == 0 {
		c.MaxViolations = 32
	}
	if c.PublishEvery == 0 {
		c.PublishEvery = 4096
	}
	return c
}

// Violation is one audit failure: a broken invariant or a packet over its
// delay bound.
type Violation struct {
	Kind   string `json:"kind"`
	Cycle  uint64 `json:"cycle"`
	Where  string `json:"where,omitempty"` // table name, check name, or flow
	Detail string `json:"detail"`
	// Conformance violations carry the packet identity and the
	// reconstructed hop-by-hop timeline.
	Flow     int32      `json:"flow,omitempty"`
	Packet   uint64     `json:"packet,omitempty"`
	Latency  uint64     `json:"latency_cycles,omitempty"`
	Bound    uint64     `json:"bound_cycles,omitempty"`
	Timeline []HopEvent `json:"timeline,omitempty"`
}

func (v Violation) String() string {
	s := fmt.Sprintf("cycle %d: %s", v.Cycle, v.Kind)
	if v.Where != "" {
		s += " at " + v.Where
	}
	return s + ": " + v.Detail
}

type namedCheck struct {
	name string
	fn   func() error
}

// Auditor is the runtime QoS auditor. A nil *Auditor is a valid, inert
// auditor: every method no-ops.
type Auditor struct {
	cfg  Config
	arch string // "loft" or "gsf" (last Begin*)
	runs int

	now         uint64
	totalCycles uint64 // current run's planned length (StartRun)

	tables  []*tableState
	checks  []namedCheck
	heatmap func() string
	publish func()

	rec recorder

	violations      []Violation
	totalViolations uint64
	sweeps          uint64
	grantChecks     uint64
}

// New returns an enabled auditor.
func New(cfg Config) *Auditor {
	return &Auditor{cfg: cfg.withDefaults()}
}

// Enabled reports whether the auditor is live (non-nil).
func (a *Auditor) Enabled() bool { return a != nil }

// beginRun resets the per-run state (taps, checks, recorder) while keeping
// the violation log and counters: one auditor accumulates across the runs
// of a sweep.
func (a *Auditor) beginRun(arch string) {
	a.arch = arch
	a.runs++
	a.tables = nil
	a.checks = nil
	a.heatmap = nil
	a.rec.reset()
}

// WatchTable attaches invariant taps to one LSF table. name identifies the
// table in violations.
func (a *Auditor) WatchTable(t *lsf.Table, name string) {
	if a == nil {
		return
	}
	a.watchTable(t, name)
}

func (a *Auditor) watchTable(t *lsf.Table, name string) *tableState {
	ts := &tableState{
		a:             a,
		t:             t,
		name:          name,
		shadowSkipped: make([]int, t.FrameCount()),
		minEndCredit:  t.BufferCap(),
	}
	a.tables = append(a.tables, ts)
	t.SetAudit(ts)
	return ts
}

// RegisterCheck adds an architecture-specific invariant evaluated on every
// periodic sweep; a non-nil error is a violation.
func (a *Auditor) RegisterCheck(name string, fn func() error) {
	if a == nil {
		return
	}
	a.checks = append(a.checks, namedCheck{name, fn})
}

// SetHeatmap attaches a live link-utilization renderer for the HTTP page.
func (a *Auditor) SetHeatmap(fn func() string) {
	if a == nil {
		return
	}
	a.heatmap = fn
}

// Heatmap renders the attached heatmap ("" when none). Must be called from
// the simulation thread (it reads live network state).
func (a *Auditor) Heatmap() string {
	if a == nil || a.heatmap == nil {
		return ""
	}
	return a.heatmap()
}

// OnPublish attaches a callback invoked from the simulation thread every
// cfg.PublishEvery cycles and at run end (the HTTP server's snapshot hook).
func (a *Auditor) OnPublish(fn func()) {
	if a == nil {
		return
	}
	a.publish = fn
}

// StartRun records the planned run length (for progress reporting).
func (a *Auditor) StartRun(totalCycles uint64) {
	if a == nil {
		return
	}
	a.totalCycles = totalCycles
	a.now = 0
}

// OnCycle advances the auditor's clock; on the configured periods it runs
// the full invariant sweep and the publish callback. Called once per cycle
// from the network tick, on the simulation thread.
func (a *Auditor) OnCycle(now uint64) {
	if a == nil {
		return
	}
	a.now = now
	if now > 0 && now%a.cfg.CheckEvery == 0 {
		a.sweep()
	}
	if a.publish != nil && now > 0 && now%a.cfg.PublishEvery == 0 {
		a.publish()
	}
}

// FinishRun runs a final sweep, the quarantine throttle checks and a
// publish at the end of a run.
func (a *Auditor) FinishRun(now uint64) {
	if a == nil {
		return
	}
	a.now = now
	a.sweep()
	a.checkQuarantines()
	if a.publish != nil {
		a.publish()
	}
}

// NowCycle returns the auditor's clock (the last OnCycle/FinishRun time).
func (a *Auditor) NowCycle() uint64 {
	if a == nil {
		return 0
	}
	return a.now
}

// violate records one audit failure.
func (a *Auditor) violate(v Violation) {
	v.Cycle = a.now
	a.totalViolations++
	if len(a.violations) < a.cfg.MaxViolations {
		a.violations = append(a.violations, v)
	}
}

// sweep runs the full O(window) table checks and the registered checks.
func (a *Auditor) sweep() {
	for _, ts := range a.tables {
		a.checkTable(ts)
	}
	for _, c := range a.checks {
		if err := c.fn(); err != nil {
			a.violate(Violation{Kind: "check-failed", Where: c.name, Detail: err.Error()})
		}
	}
	a.sweeps++
}

// Violations returns the retained violation log.
func (a *Auditor) Violations() []Violation {
	if a == nil {
		return nil
	}
	return a.violations
}

// Err returns nil when the audit is clean, or an error naming the first
// violation and the total count.
func (a *Auditor) Err() error {
	if a == nil || a.totalViolations == 0 {
		return nil
	}
	first := "(log empty)"
	if len(a.violations) > 0 {
		first = a.violations[0].String()
	}
	return fmt.Errorf("audit: %d violation(s); first: %s", a.totalViolations, first)
}

// tableState shadows one LSF table's bookkeeping. It implements
// lsf.AuditSink; every hook cross-checks the table's own state against
// independently-maintained shadow counters. The hooks fire adjacent to the
// table's mutations within the single-threaded tick, so any divergence is a
// real scheduler fault, not a race.
type tableState struct {
	a    *Auditor
	t    *lsf.Table
	name string
	// h is set when the table belongs to a node running under a staging
	// Hook: tap violations and grant-check counts are then buffered on the
	// hook instead of hitting the shared Auditor during the compute phase.
	h *Hook

	// shadowOutstanding counts observed grants minus observed returns; it
	// must always equal the table's Outstanding().
	shadowOutstanding int
	// shadowSkipped mirrors the per-frame skipped(i) counters from observed
	// frame advances and recycles.
	shadowSkipped []int
	granted       uint64
	returned      uint64
	clamps        uint64 // last seen CreditClamps
	minEndCredit  int    // worst admission headroom seen (diagnostics)
}

// AuditGrant runs the O(1) per-injection admission check: after the booking
// the window-end cumulative credit must equal BN − outstanding and stay
// non-negative — the constructive form of the paper's condition-(1)/
// Theorem I inequality (see lsf.EndCredit and DESIGN.md §10).
func (ts *tableState) AuditGrant(f flit.FlowID, quantum, slot uint64, frame int) {
	ts.granted++
	ts.shadowOutstanding++
	if ts.h != nil && ts.h.staging {
		ts.h.grants++
	} else {
		ts.a.grantChecks++
	}
	end := ts.t.EndCredit()
	if end < ts.minEndCredit {
		ts.minEndCredit = end
	}
	if end < 0 {
		ts.report(Violation{Kind: "admission-negative-credit", Where: ts.name, Flow: int32(f),
			Detail: fmt.Sprintf("grant of flow %d quantum %d at slot %d left window-end credit %d < 0", f, quantum, slot, end)})
	}
	out := ts.t.Outstanding()
	if end != ts.t.BufferCap()-out {
		ts.report(Violation{Kind: "credit-conservation", Where: ts.name, Flow: int32(f),
			Detail: fmt.Sprintf("window-end credit %d != BN %d - outstanding %d after grant", end, ts.t.BufferCap(), out)})
	}
	if out != ts.shadowOutstanding {
		ts.report(Violation{Kind: "outstanding-mismatch", Where: ts.name,
			Detail: fmt.Sprintf("table outstanding %d != observed grants-returns %d", out, ts.shadowOutstanding)})
	}
	now := ts.t.NowSlot()
	if slot <= now || slot >= now+uint64(ts.t.WindowSlots()) {
		ts.report(Violation{Kind: "slot-outside-window", Where: ts.name, Flow: int32(f),
			Detail: fmt.Sprintf("booked slot %d outside (%d, %d]", slot, now, now+uint64(ts.t.WindowSlots()))})
	}
}

// report raises one tap violation, staging it on the node's hook when the
// table runs under a parallel shard. The violation's cycle stamp is applied
// by violate at replay time, which happens before OnCycle advances the
// clock — exactly the stamp the sequential tap would have produced.
func (ts *tableState) report(v Violation) {
	if ts.h != nil && ts.h.staging {
		ts.h.ops = append(ts.h.ops, func(a *Auditor) { a.violate(v) })
		return
	}
	ts.a.violate(v)
}

// AuditFrameAdvance cross-checks the skipped(i) accounting the §4.2 anomaly
// fix depends on, at the moment a flow abandons reservations.
func (ts *tableState) AuditFrameAdvance(f flit.FlowID, frame, abandoned int) {
	ts.shadowSkipped[frame] += abandoned
	if got := ts.t.Skipped(frame); got != ts.shadowSkipped[frame] {
		ts.report(Violation{Kind: "skipped-accounting", Where: ts.name, Flow: int32(f),
			Detail: fmt.Sprintf("skipped(%d) = %d, observed abandonments say %d", frame, got, ts.shadowSkipped[frame])})
	}
}

func (ts *tableState) AuditRecycle(frame int) { ts.shadowSkipped[frame] = 0 }

func (ts *tableState) AuditReturn(tag uint64) {
	ts.returned++
	ts.shadowOutstanding--
	if ts.shadowOutstanding < 0 {
		ts.report(Violation{Kind: "return-underflow", Where: ts.name,
			Detail: fmt.Sprintf("more virtual-credit returns (%d) than grants (%d)", ts.returned, ts.granted)})
		ts.shadowOutstanding = 0
	}
}

func (ts *tableState) AuditReset() {
	ts.shadowOutstanding = 0
	for i := range ts.shadowSkipped {
		ts.shadowSkipped[i] = 0
	}
}

// checkTable is the periodic O(window) sweep of one table: every live
// slot's credit within [0, BN], busy slots consistent with the booked
// count, the end-of-window credit ledger conserved, and the shadow counters
// in agreement with the table.
func (a *Auditor) checkTable(ts *tableState) {
	t := ts.t
	bn := t.BufferCap()
	now := t.NowSlot()
	minC, maxC, busy := bn, 0, 0
	for i := 0; i < t.WindowSlots(); i++ {
		s := now + uint64(i)
		c := t.CreditAt(s)
		if c < minC {
			minC = c
		}
		if c > maxC {
			maxC = c
		}
		if _, b := t.BusyAt(s); b {
			busy++
		}
	}
	if minC < 0 {
		a.violate(Violation{Kind: "credit-negative", Where: ts.name,
			Detail: fmt.Sprintf("window contains a slot with credit %d < 0", minC)})
	}
	if maxC > bn {
		a.violate(Violation{Kind: "credit-overflow", Where: ts.name,
			Detail: fmt.Sprintf("window contains a slot with credit %d > BN %d", maxC, bn)})
	}
	if end, out := t.EndCredit(), t.Outstanding(); end != bn-out {
		a.violate(Violation{Kind: "credit-conservation", Where: ts.name,
			Detail: fmt.Sprintf("window-end credit %d != BN %d - outstanding %d", end, bn, out)})
	}
	if busy != t.BookedSlots() {
		a.violate(Violation{Kind: "busy-count", Where: ts.name,
			Detail: fmt.Sprintf("window holds %d busy slots, table counts %d", busy, t.BookedSlots())})
	}
	if out := t.Outstanding(); out != ts.shadowOutstanding {
		a.violate(Violation{Kind: "outstanding-mismatch", Where: ts.name,
			Detail: fmt.Sprintf("table outstanding %d != observed grants-returns %d", out, ts.shadowOutstanding)})
	}
	for f := 0; f < t.FrameCount(); f++ {
		if got := t.Skipped(f); got != ts.shadowSkipped[f] {
			a.violate(Violation{Kind: "skipped-accounting", Where: ts.name,
				Detail: fmt.Sprintf("skipped(%d) = %d, observed abandonments say %d", f, got, ts.shadowSkipped[f])})
		}
	}
	if clamps := t.Stats().CreditClamps; clamps != ts.clamps {
		a.violate(Violation{Kind: "credit-clamped", Where: ts.name,
			Detail: fmt.Sprintf("%d credit updates clamped since last sweep (non-strict Theorem I violation)", clamps-ts.clamps)})
		ts.clamps = clamps
	}
}
