package audit_test

import (
	"testing"

	"loft/internal/audit"
	"loft/internal/config"
	"loft/internal/core"
	"loft/internal/flit"
	"loft/internal/loft"
	"loft/internal/lsf"
	"loft/internal/traffic"
)

func flitQID(f flit.FlowID, seq uint64) flit.QuantumID { return flit.QuantumID{Flow: f, Seq: seq} }

// faultTable builds a small non-strict table under audit. Strict mode would
// panic on the injected faults before the auditor sees them, which is
// exactly the redundancy the auditor exists to provide for production
// (non-strict) runs.
func faultTable(t *testing.T) (*audit.Auditor, *lsf.Table) {
	t.Helper()
	aud := audit.New(audit.Config{})
	tb := lsf.NewTable("faulty", lsf.Params{SlotsPerFrame: 4, Frames: 2, BufferQuanta: 4})
	aud.WatchTable(tb, "faulty")
	if err := tb.AddFlow(1, 2); err != nil {
		t.Fatal(err)
	}
	return aud, tb
}

func violationKinds(aud *audit.Auditor) map[string]int {
	kinds := map[string]int{}
	for _, v := range aud.Violations() {
		kinds[v.Kind]++
	}
	return kinds
}

// TestFaultDropSkippedCaught injects the scheduler fault that silently
// drops the skipped(i) accounting the §4.2 anomaly fix depends on, and
// requires the auditor to flag it at the moment of the frame advance.
func TestFaultDropSkippedCaught(t *testing.T) {
	aud, tb := faultTable(t)
	tb.InjectFault(lsf.FaultDropSkipped)
	// minSlot 4 is in frame 1: the flow must abandon its full frame-0
	// reservation (c=2), which the faulty table fails to record.
	if _, ok := tb.Request(1, 0, 4); !ok {
		t.Fatal("request denied")
	}
	if violationKinds(aud)["skipped-accounting"] == 0 {
		t.Fatalf("dropped skipped(i) update not caught; violations: %v", aud.Violations())
	}
	if aud.Err() == nil {
		t.Fatal("Err() is nil despite violations")
	}
}

// TestFaultLeakCreditCaught injects a credit-return fault (the return is
// acknowledged but the slot ledger is never incremented) and requires the
// conservation check on the next grant to flag the divergence.
func TestFaultLeakCreditCaught(t *testing.T) {
	aud, tb := faultTable(t)
	slot, ok := tb.Request(1, 0, 0)
	if !ok {
		t.Fatal("request denied")
	}
	tb.InjectFault(lsf.FaultLeakCredit)
	tb.ReturnCredit(slot)
	if _, ok := tb.Request(1, 1, 0); !ok {
		t.Fatal("second request denied")
	}
	if violationKinds(aud)["credit-conservation"] == 0 {
		t.Fatalf("leaked credit not caught; violations: %v", aud.Violations())
	}
}

// TestFaultFreeTableIsClean is the control: the same drive without faults
// must not trip any check.
func TestFaultFreeTableIsClean(t *testing.T) {
	aud, tb := faultTable(t)
	s0, ok := tb.Request(1, 0, 0)
	if !ok {
		t.Fatal("request denied")
	}
	if _, ok := tb.Request(1, 1, 4); !ok {
		t.Fatal("second request denied")
	}
	tb.ReturnCredit(s0)
	for i := 0; i < 8; i++ {
		tb.Tick()
	}
	aud.FinishRun(8)
	if err := aud.Err(); err != nil {
		t.Fatalf("clean drive flagged: %v", err)
	}
	if aud.Snapshot().GrantChecks != 2 {
		t.Fatalf("grant checks = %d, want 2", aud.Snapshot().GrantChecks)
	}
}

// caseIPattern is the paper's Case Study I (regulated GS victim vs DoS
// aggressors) on the full 8x8 paper configuration — the highest-stakes QoS
// scenario the repo models.
func caseIPattern(cfg config.LOFT) *traffic.Pattern {
	return traffic.CaseStudyI(cfg.Mesh(), 0.2, 0.6, cfg.PacketFlits, cfg.FrameFlits)
}

// TestAuditedCaseStudyIClean is the acceptance run: an unmodified 8x8 LOFT
// simulation under high GS load must report zero invariant and delay-bound
// violations, and attaching the auditor must not change the simulation.
func TestAuditedCaseStudyIClean(t *testing.T) {
	cfg := config.PaperLOFTSpec(12)
	p := caseIPattern(cfg)
	spec := core.RunSpec{Seed: 1, Warmup: 500, Measure: 2500}
	bare, _, err := core.RunLOFT(cfg, p, spec)
	if err != nil {
		t.Fatal(err)
	}
	aud := audit.New(audit.Config{})
	spec.Audit = aud
	audited, _, err := core.RunLOFT(cfg, p, spec)
	if err != nil {
		t.Fatal(err)
	}
	if err := aud.Err(); err != nil {
		t.Fatalf("audit of an unmodified run failed: %v", err)
	}
	snap := aud.Snapshot()
	if !snap.Clean || snap.PacketsChecked == 0 || snap.GrantChecks == 0 || snap.InvariantSweeps == 0 {
		t.Fatalf("audit did no work: %+v", snap)
	}
	if snap.WorstMarginPct <= 0 || snap.WorstMarginPct > 100 {
		t.Fatalf("worst margin %.1f%% outside (0, 100]", snap.WorstMarginPct)
	}
	booked, injected, ejected := aud.RecorderCounts()
	if booked == 0 || injected == 0 || ejected == 0 {
		t.Fatalf("recorder ledger empty: %d/%d/%d", booked, injected, ejected)
	}
	if bare.Packets != audited.Packets || bare.AvgLatency != audited.AvgLatency ||
		bare.TotalRate != audited.TotalRate || bare.MaxLatency != audited.MaxLatency {
		t.Fatalf("auditing changed the simulation: bare %+v vs audited %+v", bare, audited)
	}
}

// TestAuditedGSFClean runs the same acceptance check on the GSF baseline
// (packet-level conformance only, no tables to shadow).
func TestAuditedGSFClean(t *testing.T) {
	lcfg := config.PaperLOFTSpec(12)
	p := caseIPattern(lcfg)
	aud := audit.New(audit.Config{})
	spec := core.RunSpec{Seed: 1, Warmup: 500, Measure: 2000, Audit: aud}
	if _, _, err := core.RunGSF(config.PaperGSF(), p, lcfg.FrameFlits, spec); err != nil {
		t.Fatal(err)
	}
	if err := aud.Err(); err != nil {
		t.Fatalf("audit of an unmodified GSF run failed: %v", err)
	}
	if snap := aud.Snapshot(); snap.PacketsChecked == 0 {
		t.Fatalf("no packets checked: %+v", snap)
	}
}

// TestDelayBoundViolationTimeline forces a conformance failure (bound of 1
// cycle on the victim flow) and checks the reconstructed hop-by-hop
// timeline on the resulting violation.
func TestDelayBoundViolationTimeline(t *testing.T) {
	cfg := config.PaperLOFTSpec(12)
	p := caseIPattern(cfg)
	aud := audit.New(audit.Config{})
	net, err := loft.New(cfg, p, loft.Options{Seed: 1, Audit: aud})
	if err != nil {
		t.Fatal(err)
	}
	aud.SetFlowBound(traffic.CaseStudyIVictim, 1)
	aud.StartRun(2000)
	net.Run(2000)
	aud.FinishRun(net.Now())
	var hit *audit.Violation
	for i, v := range aud.Violations() {
		if v.Kind == "delay-bound-exceeded" {
			hit = &aud.Violations()[i]
			break
		}
	}
	if hit == nil {
		t.Fatalf("no delay-bound-exceeded violation; got %v", aud.Violations())
	}
	if hit.Flow != int32(traffic.CaseStudyIVictim) || hit.Bound != 1 || hit.Latency <= hit.Bound {
		t.Fatalf("violation fields wrong: %+v", hit)
	}
	if len(hit.Timeline) == 0 {
		t.Fatal("violation carries no flight timeline")
	}
	stages := map[string]bool{}
	last := int64(-1)
	for _, h := range hit.Timeline {
		stages[h.Stage] = true
		if int64(h.Cycle) < last {
			t.Fatalf("timeline not time-ordered: %+v", hit.Timeline)
		}
		last = int64(h.Cycle)
	}
	for _, want := range []string{"book", "inject", "eject"} {
		if !stages[want] {
			t.Fatalf("timeline missing stage %q: %+v", want, hit.Timeline)
		}
	}
	summary := aud.Summary()
	if len(summary) == 0 || summary[len(summary)-1][:11] != "audit: FAIL" {
		t.Fatalf("summary does not report failure: %v", summary)
	}
}

// TestNilAuditorInert pins the zero-overhead contract: every method on a
// nil auditor must be a safe no-op.
func TestNilAuditorInert(t *testing.T) {
	var aud *audit.Auditor
	if aud.Enabled() {
		t.Fatal("nil auditor reports enabled")
	}
	aud.StartRun(100)
	aud.OnCycle(50)
	aud.FinishRun(100)
	aud.RegisterCheck("x", func() error { return nil })
	aud.SetHeatmap(func() string { return "" })
	aud.OnPublish(func() {})
	aud.SetFlowBound(0, 1)
	aud.LOFTBook(flitQID(0, 0), 0, 0, 1, 0)
	aud.LOFTInject(flitQID(0, 0), 8, 0, 0)
	aud.GSFInject(0, 0, 0)
	aud.GSFPacketDone(0, 0, 0, 1)
	if aud.Violations() != nil || aud.Err() != nil || aud.Summary() != nil {
		t.Fatal("nil auditor produced data")
	}
	cfg := config.PaperLOFTSpec(12)
	if _, _, err := core.RunLOFT(cfg, caseIPattern(cfg), core.RunSpec{Seed: 1, Warmup: 100, Measure: 400}); err != nil {
		t.Fatal(err)
	}
}
