package audit

import (
	"loft/internal/flit"
	"loft/internal/lsf"
)

// Hook is one node's view of the shared Auditor. In sequential runs it
// forwards every call immediately, so behaviour is unchanged. In parallel
// runs (staging mode) the shared-state effects — flight-recorder updates,
// violations raised by table taps, and the grant-check counter — are
// buffered per node during the compute phase and replayed by Flush at the
// cycle barrier, in node order. Replaying a node's buffered operations in
// their original order reproduces exactly the call sequence the sequential
// kernel would have made, which keeps audit snapshots byte-identical for
// any worker count.
//
// Per-table shadow counters (tableState) are NOT staged: each table belongs
// to one node, so its taps touch only that node's shard during compute.
// Taps read live table state at the call site — deferring the reads would
// change what they observe — and only route the resulting violations
// through the hook.
//
// A nil *Hook is the disabled state; every method is nil-receiver safe.
type Hook struct {
	a       *Auditor
	staging bool
	ops     []func(*Auditor)
	grants  uint64
}

// NewHook returns a hook over the auditor, staging when staged is true.
// A nil auditor yields a nil hook.
func NewHook(a *Auditor, staged bool) *Hook {
	if a == nil {
		return nil
	}
	return &Hook{a: a, staging: staged}
}

// Flush replays the buffered operations onto the auditor, in call order,
// and empties the buffer. No-op for nil or non-staging hooks.
func (h *Hook) Flush() {
	if h == nil || !h.staging {
		return
	}
	for i, op := range h.ops {
		op(h.a)
		h.ops[i] = nil
	}
	h.ops = h.ops[:0]
	h.a.grantChecks += h.grants
	h.grants = 0
}

// WatchTable attaches invariant taps to one LSF table, routing the taps'
// violations through this hook's staging buffer.
func (h *Hook) WatchTable(t *lsf.Table, name string) {
	if h == nil {
		return
	}
	h.a.watchTable(t, name).h = h
}

// LOFTBook forwards Auditor.LOFTBook, staging when in staging mode.
//
// The forwarders are kept out of line so the heap escape of the staged
// closure stays attributed to this file: inlined copies would surface the
// allocation at every call site inside the cycle kernels, where allocbound
// gates against heap traffic. The extra call only runs with auditing on,
// which already forfeits the zero-alloc contract.
//
//go:noinline
func (h *Hook) LOFTBook(id flit.QuantumID, pktSeq uint64, node int32, depart, now uint64) {
	if h == nil {
		return
	}
	if !h.staging {
		h.a.LOFTBook(id, pktSeq, node, depart, now)
		return
	}
	h.ops = append(h.ops, func(a *Auditor) { a.LOFTBook(id, pktSeq, node, depart, now) })
}

// LOFTReserve forwards Auditor.LOFTReserve, staging when in staging mode.
//
//go:noinline
func (h *Hook) LOFTReserve(id flit.QuantumID, node, out int32, depart, now uint64) {
	if h == nil {
		return
	}
	if !h.staging {
		h.a.LOFTReserve(id, node, out, depart, now)
		return
	}
	h.ops = append(h.ops, func(a *Auditor) { a.LOFTReserve(id, node, out, depart, now) })
}

// LOFTInject forwards Auditor.LOFTInject, staging when in staging mode.
//
//go:noinline
func (h *Hook) LOFTInject(id flit.QuantumID, flits int, node int32, now uint64) {
	if h == nil {
		return
	}
	if !h.staging {
		h.a.LOFTInject(id, flits, node, now)
		return
	}
	h.ops = append(h.ops, func(a *Auditor) { a.LOFTInject(id, flits, node, now) })
}

// LOFTForward forwards Auditor.LOFTForward, staging when in staging mode.
//
//go:noinline
func (h *Hook) LOFTForward(id flit.QuantumID, node, out int32, spec bool, now uint64) {
	if h == nil {
		return
	}
	if !h.staging {
		h.a.LOFTForward(id, node, out, spec, now)
		return
	}
	h.ops = append(h.ops, func(a *Auditor) { a.LOFTForward(id, node, out, spec, now) })
}

// LOFTEject forwards Auditor.LOFTEject, staging when in staging mode.
//
//go:noinline
func (h *Hook) LOFTEject(id flit.QuantumID, flits int, node int32, now uint64) {
	if h == nil {
		return
	}
	if !h.staging {
		h.a.LOFTEject(id, flits, node, now)
		return
	}
	h.ops = append(h.ops, func(a *Auditor) { a.LOFTEject(id, flits, node, now) })
}

// LOFTPacketDone forwards Auditor.LOFTPacketDone, staging when in staging
// mode.
//
//go:noinline
func (h *Hook) LOFTPacketDone(flow flit.FlowID, pktSeq, injected, done uint64) {
	if h == nil {
		return
	}
	if !h.staging {
		h.a.LOFTPacketDone(flow, pktSeq, injected, done)
		return
	}
	h.ops = append(h.ops, func(a *Auditor) { a.LOFTPacketDone(flow, pktSeq, injected, done) })
}

// GSFInject forwards Auditor.GSFInject, staging when in staging mode.
//
//go:noinline
func (h *Hook) GSFInject(flow flit.FlowID, pktSeq, now uint64) {
	if h == nil {
		return
	}
	if !h.staging {
		h.a.GSFInject(flow, pktSeq, now)
		return
	}
	h.ops = append(h.ops, func(a *Auditor) { a.GSFInject(flow, pktSeq, now) })
}

// GSFPacketDone forwards Auditor.GSFPacketDone, staging when in staging
// mode.
//
//go:noinline
func (h *Hook) GSFPacketDone(flow flit.FlowID, pktSeq, injected, done uint64) {
	if h == nil {
		return
	}
	if !h.staging {
		h.a.GSFPacketDone(flow, pktSeq, injected, done)
		return
	}
	h.ops = append(h.ops, func(a *Auditor) { a.GSFPacketDone(flow, pktSeq, injected, done) })
}
