package audit

import (
	"fmt"
	"sort"

	"loft/internal/analysis"
	"loft/internal/config"
	"loft/internal/det"
	"loft/internal/flit"
	"loft/internal/stats"
	"loft/internal/topo"
)

// HopEvent is one reconstructed step of a packet's lifecycle.
type HopEvent struct {
	Cycle uint64 `json:"cycle"`
	Node  int32  `json:"node"`
	Link  int32  `json:"link"` // output direction; topo.NumDirs = injection link
	// Stage: "book" (injection-table grant), "reserve" (per-hop look-ahead
	// booking), "inject" (data leaves the NI), "forward" (switch
	// traversal), "eject" (data enters the sink).
	Stage string `json:"stage"`
	Slot  uint64 `json:"slot,omitempty"` // booked departure slot, slot units
	Spec  bool   `json:"spec,omitempty"` // speculative (ahead-of-schedule) traversal
}

type pktKey struct {
	flow flit.FlowID
	seq  uint64
}

// quantumRec accumulates the hop timeline of one in-flight quantum. The
// look-ahead network books per-hop reservations by (flow, quantum sequence)
// — the packet sequence is not carried by look-ahead flits — so records are
// keyed by flit.QuantumID and folded into their packet at ejection.
type quantumRec struct {
	pkt  pktKey
	hops []HopEvent
}

// pktRec collects the hop timelines of a packet's ejected quanta until the
// packet completes.
type pktRec struct {
	hops []HopEvent
}

// flowConf is the per-flow conformance state: the analytical bound and the
// observed latency distribution.
type flowConf struct {
	src, dst topo.NodeID
	hops     int
	bound    uint64 // 0 = best-effort, no bound
	hist     stats.Histogram
	// quarantined marks a flow the fault plan drives adversarially: its
	// delay-bound check is suspended (it misbehaves on purpose) and
	// replaced by an end-of-run throttle check against rateCap.
	quarantined bool
	rateCap     float64 // flits/cycle the scheduler may grant it
}

// recorder is the flight-recorder state, reset per run.
type recorder struct {
	flows   map[flit.FlowID]*flowConf
	quanta  map[flit.QuantumID]*quantumRec
	packets map[pktKey]*pktRec
	// pktFlits is the architecture's packet size, for converting completed
	// packet counts into accepted flit rates (quarantine throttle checks).
	pktFlits int

	bookedQuanta   uint64
	injectedQuanta uint64
	ejectedQuanta  uint64
	injectedFlits  uint64
	ejectedFlits   uint64
	packetsDone    uint64
}

func (r *recorder) reset() {
	*r = recorder{
		flows:   make(map[flit.FlowID]*flowConf),
		quanta:  make(map[flit.QuantumID]*quantumRec),
		packets: make(map[pktKey]*pktRec),
	}
}

// BeginLOFT (re)arms the auditor for one LOFT run: per-flow delay bounds
// over the full implemented path (analysis.DelayBoundLOFTPath) and fresh
// recorder state. Called by loft.New before the run starts; violations and
// totals accumulate across runs.
func (a *Auditor) BeginLOFT(cfg config.LOFT, m topo.Mesh, flows []flit.Flow) {
	if a == nil {
		return
	}
	a.beginRun("loft")
	a.rec.pktFlits = cfg.PacketFlits
	for _, f := range flows {
		h := analysis.FlowHops(m, f)
		a.rec.flows[f.ID] = &flowConf{
			src: f.Src, dst: f.Dst, hops: h,
			bound: analysis.DelayBoundLOFTPath(cfg, h),
		}
	}
}

// BeginGSF (re)arms the auditor for one GSF run: the path-independent GSF
// bound for every flow (no bound in best-effort mode, where the QoS
// machinery is disabled).
func (a *Auditor) BeginGSF(cfg config.GSF, m topo.Mesh, flows []flit.Flow) {
	if a == nil {
		return
	}
	a.beginRun("gsf")
	a.rec.pktFlits = cfg.PacketFlits
	bound := analysis.DelayBoundGSF(cfg)
	if cfg.BestEffort {
		bound = 0
	}
	for _, f := range flows {
		a.rec.flows[f.ID] = &flowConf{
			src: f.Src, dst: f.Dst, hops: analysis.FlowHops(m, f),
			bound: bound,
		}
	}
}

// LOFTBook records an injection-table grant: the birth of a quantum's
// flight record.
func (a *Auditor) LOFTBook(id flit.QuantumID, pktSeq uint64, node int32, depart, now uint64) {
	if a == nil {
		return
	}
	if _, dup := a.rec.quanta[id]; dup {
		a.violate(Violation{Kind: "duplicate-booking", Flow: int32(id.Flow),
			Detail: fmt.Sprintf("quantum %d of flow %d booked twice at the injection table", id.Seq, id.Flow)})
		return
	}
	a.rec.bookedQuanta++
	a.rec.quanta[id] = &quantumRec{
		pkt:  pktKey{id.Flow, pktSeq},
		hops: []HopEvent{{Cycle: now, Node: node, Link: int32(topo.NumDirs), Stage: "book", Slot: depart}},
	}
}

// LOFTReserve records a per-hop look-ahead reservation.
func (a *Auditor) LOFTReserve(id flit.QuantumID, node, out int32, depart, now uint64) {
	if a == nil {
		return
	}
	q := a.rec.quanta[id]
	if q == nil {
		a.violate(Violation{Kind: "reserve-unrecorded", Flow: int32(id.Flow),
			Detail: fmt.Sprintf("look-ahead reservation for quantum %d of flow %d with no injection booking", id.Seq, id.Flow)})
		return
	}
	q.hops = append(q.hops, HopEvent{Cycle: now, Node: node, Link: out, Stage: "reserve", Slot: depart})
}

// LOFTInject records the data quantum physically leaving its NI.
func (a *Auditor) LOFTInject(id flit.QuantumID, flits int, node int32, now uint64) {
	if a == nil {
		return
	}
	a.rec.injectedQuanta++
	a.rec.injectedFlits += uint64(flits)
	if q := a.rec.quanta[id]; q != nil {
		q.hops = append(q.hops, HopEvent{Cycle: now, Node: node, Link: int32(topo.NumDirs), Stage: "inject"})
	}
}

// LOFTForward records one switch traversal (spec marks an ahead-of-schedule
// speculative forward).
func (a *Auditor) LOFTForward(id flit.QuantumID, node, out int32, spec bool, now uint64) {
	if a == nil {
		return
	}
	if q := a.rec.quanta[id]; q != nil {
		q.hops = append(q.hops, HopEvent{Cycle: now, Node: node, Link: out, Stage: "forward", Spec: spec})
	}
}

// LOFTEject folds an ejected quantum's timeline into its packet record.
func (a *Auditor) LOFTEject(id flit.QuantumID, flits int, node int32, now uint64) {
	if a == nil {
		return
	}
	a.rec.ejectedQuanta++
	a.rec.ejectedFlits += uint64(flits)
	q := a.rec.quanta[id]
	if q == nil {
		a.violate(Violation{Kind: "eject-unrecorded", Flow: int32(id.Flow),
			Detail: fmt.Sprintf("quantum %d of flow %d ejected with no flight record", id.Seq, id.Flow)})
		return
	}
	q.hops = append(q.hops, HopEvent{Cycle: now, Node: node, Link: int32(topo.Local), Stage: "eject"})
	delete(a.rec.quanta, id)
	p := a.rec.packets[q.pkt]
	if p == nil {
		p = &pktRec{}
		a.rec.packets[q.pkt] = p
	}
	p.hops = append(p.hops, q.hops...)
}

// LOFTPacketDone verdicts one completed packet: its network latency
// (injection of the first quantum to ejection of the last) against the
// flow's analytical bound. Exceeding the bound is a hard audit failure
// carrying the packet's reconstructed hop-by-hop timeline.
func (a *Auditor) LOFTPacketDone(flow flit.FlowID, pktSeq, injected, done uint64) {
	if a == nil {
		return
	}
	key := pktKey{flow, pktSeq}
	p := a.rec.packets[key]
	delete(a.rec.packets, key)
	a.packetDone(flow, pktSeq, injected, done, p)
}

// GSFInject records a GSF packet's head-flit injection.
func (a *Auditor) GSFInject(flow flit.FlowID, pktSeq, now uint64) {
	if a == nil {
		return
	}
	a.rec.injectedQuanta++
	key := pktKey{flow, pktSeq}
	if _, dup := a.rec.packets[key]; dup {
		a.violate(Violation{Kind: "duplicate-injection", Flow: int32(flow),
			Detail: fmt.Sprintf("packet %d of flow %d injected twice", pktSeq, flow)})
		return
	}
	a.rec.packets[key] = &pktRec{hops: []HopEvent{{Cycle: now, Link: int32(topo.NumDirs), Stage: "inject"}}}
}

// GSFPacketDone verdicts one completed GSF packet against the
// path-independent GSF bound.
func (a *Auditor) GSFPacketDone(flow flit.FlowID, pktSeq, injected, done uint64) {
	if a == nil {
		return
	}
	a.rec.ejectedQuanta++
	key := pktKey{flow, pktSeq}
	p := a.rec.packets[key]
	delete(a.rec.packets, key)
	if p == nil {
		a.violate(Violation{Kind: "eject-unrecorded", Flow: int32(flow),
			Detail: fmt.Sprintf("packet %d of flow %d ejected with no flight record", pktSeq, flow)})
	}
	a.packetDone(flow, pktSeq, injected, done, p)
}

// packetDone is the shared conformance verdict.
func (a *Auditor) packetDone(flow flit.FlowID, pktSeq, injected, done uint64, p *pktRec) {
	a.rec.packetsDone++
	fc := a.rec.flows[flow]
	if fc == nil {
		a.violate(Violation{Kind: "unknown-flow", Flow: int32(flow),
			Detail: fmt.Sprintf("completed packet %d belongs to unregistered flow %d", pktSeq, flow)})
		return
	}
	if done < injected {
		a.violate(Violation{Kind: "time-reversal", Flow: int32(flow),
			Detail: fmt.Sprintf("packet %d completed at %d before its injection at %d", pktSeq, done, injected)})
		return
	}
	lat := done - injected
	fc.hist.Observe(lat)
	if fc.quarantined {
		// An adversarial flow exceeds its reservation on purpose; its
		// per-packet bound is meaningless. checkQuarantines verdicts its
		// accepted rate at run end instead.
		return
	}
	if fc.bound > 0 && lat > fc.bound {
		v := Violation{Kind: "delay-bound-exceeded", Flow: int32(flow), Packet: pktSeq,
			Latency: lat, Bound: fc.bound,
			Where: fmt.Sprintf("flow %d (%d hops)", flow, fc.hops),
			Detail: fmt.Sprintf("packet %d: network latency %d cycles exceeds the %d-cycle bound (injected %d, done %d)",
				pktSeq, lat, fc.bound, injected, done)}
		if p != nil {
			v.Timeline = append(v.Timeline, p.hops...)
			sort.SliceStable(v.Timeline, func(i, j int) bool { return v.Timeline[i].Cycle < v.Timeline[j].Cycle })
			const maxTimeline = 64
			if len(v.Timeline) > maxTimeline {
				v.Timeline = v.Timeline[:maxTimeline]
			}
		}
		a.violate(v)
	}
}

// Quarantine marks a flow as deliberately adversarial (fault.Plan): its
// per-packet delay-bound check is suspended and FinishRun instead asserts
// the scheduler throttled it to at most maxRate flits/cycle — the QoS
// isolation claim from the victim's side of the fence. Must be called
// after Begin* (which resets the per-run flow table).
func (a *Auditor) Quarantine(flow flit.FlowID, maxRate float64) {
	if a == nil {
		return
	}
	fc := a.rec.flows[flow]
	if fc == nil {
		a.violate(Violation{Kind: "unknown-flow", Flow: int32(flow),
			Detail: fmt.Sprintf("quarantine for unregistered flow %d", flow)})
		return
	}
	fc.quarantined = true
	fc.rateCap = maxRate
}

// checkQuarantines verdicts every quarantined flow's accepted rate against
// its cap at run end (called by FinishRun, when `now` spans the full run).
func (a *Auditor) checkQuarantines() {
	if a.now == 0 {
		return
	}
	for _, id := range det.Keys(a.rec.flows) {
		fc := a.rec.flows[id]
		if !fc.quarantined {
			continue
		}
		rate := float64(fc.hist.Count()) * float64(a.rec.pktFlits) / float64(a.now)
		if rate > fc.rateCap {
			a.violate(Violation{Kind: "quarantine-throttle-exceeded", Flow: int32(id),
				Where: fmt.Sprintf("flow %d", id),
				Detail: fmt.Sprintf("adversarial flow %d accepted %.4f flits/cycle, above its %.4f quarantine cap (%d packets over %d cycles)",
					id, rate, fc.rateCap, fc.hist.Count(), a.now)})
		}
	}
}

// SetFlowBound overrides one flow's delay bound (test hook for exercising
// the violation/timeline path without breaking the scheduler).
func (a *Auditor) SetFlowBound(flow flit.FlowID, bound uint64) {
	if a == nil {
		return
	}
	if fc := a.rec.flows[flow]; fc != nil {
		fc.bound = bound
	}
}

// RecorderCounts returns the flight recorder's quantum ledger (booked,
// physically injected, ejected); architectures cross-check these against
// their own counters in a registered conservation check.
func (a *Auditor) RecorderCounts() (booked, injected, ejected uint64) {
	if a == nil {
		return 0, 0, 0
	}
	return a.rec.bookedQuanta, a.rec.injectedQuanta, a.rec.ejectedQuanta
}

// FlowConformance is the per-flow verdict in a Snapshot.
type FlowConformance struct {
	Flow      int32   `json:"flow"`
	Src       int32   `json:"src"`
	Dst       int32   `json:"dst"` // -1: random destination per packet
	Hops      int     `json:"hops"`
	Bound     uint64  `json:"bound_cycles"` // 0: best-effort, unbounded
	Packets   uint64  `json:"packets"`
	Worst     uint64  `json:"worst_observed_cycles"`
	Mean      float64 `json:"mean_cycles"`
	MarginPct float64 `json:"worst_pct_of_bound"`
	Histogram string  `json:"histogram"`
	// Quarantined flows (adversarial under a fault plan) report their
	// accepted rate against the throttle cap instead of a bound margin.
	Quarantined  bool    `json:"quarantined,omitempty"`
	RateCap      float64 `json:"rate_cap,omitempty"`
	AcceptedRate float64 `json:"accepted_rate,omitempty"`
}

// Snapshot is the JSON conformance snapshot served at /audit.
type Snapshot struct {
	Arch            string            `json:"arch"`
	Cycle           uint64            `json:"cycle"`
	TotalCycles     uint64            `json:"total_cycles"`
	Runs            int               `json:"runs"`
	Clean           bool              `json:"clean"`
	Violations      uint64            `json:"violations"`
	PacketsChecked  uint64            `json:"packets_checked"`
	QuantaBooked    uint64            `json:"quanta_booked"`
	QuantaInjected  uint64            `json:"quanta_injected"`
	QuantaEjected   uint64            `json:"quanta_ejected"`
	InFlightQuanta  int               `json:"in_flight_quanta"`
	InFlightPackets int               `json:"in_flight_packets"`
	InvariantSweeps uint64            `json:"invariant_sweeps"`
	GrantChecks     uint64            `json:"grant_checks"`
	WorstMarginPct  float64           `json:"worst_pct_of_bound"`
	Flows           []FlowConformance `json:"flows"`
	ViolationLog    []Violation       `json:"violation_log,omitempty"`
}

// Snapshot assembles the current audit state. Must be called from the
// simulation thread (it reads live recorder maps).
func (a *Auditor) Snapshot() Snapshot {
	if a == nil {
		return Snapshot{Clean: true}
	}
	s := Snapshot{
		Arch:            a.arch,
		Cycle:           a.now,
		TotalCycles:     a.totalCycles,
		Runs:            a.runs,
		Clean:           a.totalViolations == 0,
		Violations:      a.totalViolations,
		PacketsChecked:  a.rec.packetsDone,
		QuantaBooked:    a.rec.bookedQuanta,
		QuantaInjected:  a.rec.injectedQuanta,
		QuantaEjected:   a.rec.ejectedQuanta,
		InFlightQuanta:  len(a.rec.quanta),
		InFlightPackets: len(a.rec.packets),
		InvariantSweeps: a.sweeps,
		GrantChecks:     a.grantChecks,
		ViolationLog:    a.violations,
	}
	for _, id := range det.Keys(a.rec.flows) {
		fc := a.rec.flows[id]
		f := FlowConformance{
			Flow: int32(id), Src: int32(fc.src), Dst: int32(fc.dst),
			Hops: fc.hops, Bound: fc.bound,
			Packets: fc.hist.Count(), Worst: fc.hist.Max(), Mean: fc.hist.Mean(),
			Histogram: fc.hist.String(),
		}
		if fc.quarantined {
			f.Quarantined = true
			f.RateCap = fc.rateCap
			if a.now > 0 {
				f.AcceptedRate = float64(fc.hist.Count()) * float64(a.rec.pktFlits) / float64(a.now)
			}
		} else if fc.bound > 0 {
			f.MarginPct = 100 * float64(fc.hist.Max()) / float64(fc.bound)
			if f.MarginPct > s.WorstMarginPct {
				s.WorstMarginPct = f.MarginPct
			}
		}
		s.Flows = append(s.Flows, f)
	}
	sort.Slice(s.Flows, func(i, j int) bool { return s.Flows[i].Flow < s.Flows[j].Flow })
	return s
}

// Summary renders the audit verdict as human-readable lines.
func (a *Auditor) Summary() []string {
	if a == nil {
		return nil
	}
	s := a.Snapshot()
	lines := []string{
		fmt.Sprintf("audit: %d run(s) (%s), %d invariant sweep(s) over %d table(s), %d per-grant checks",
			s.Runs, s.Arch, s.InvariantSweeps, len(a.tables), s.GrantChecks),
		fmt.Sprintf("audit: %d packet(s) checked against delay bounds, worst case at %.1f%% of bound",
			s.PacketsChecked, s.WorstMarginPct),
	}
	if s.Clean {
		lines = append(lines, "audit: PASS — no invariant or conformance violations")
	} else {
		lines = append(lines, fmt.Sprintf("audit: FAIL — %d violation(s); first: %s", s.Violations, a.violations[0].String()))
	}
	return lines
}
