package audit

import (
	"bytes"
	"encoding/json"
	"fmt"
	"html/template"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"

	"loft/internal/perfmon"
	"loft/internal/probe"
)

// Server is the live introspection endpoint: /metrics (Prometheus text),
// /audit (JSON Snapshot), /perf (JSON perfmon snapshot), / (progress +
// heatmap + worker-utilization HTML), and /debug/pprof.
//
// The simulator is single-threaded and its probe/audit state is not
// concurrency-safe, so the server never reads live simulator state:
// Publish, called on the simulation thread, renders everything to bytes
// under a mutex, and the HTTP handlers only serve the last published copy.
// Sweep workers report coarse job progress through the thread-safe
// JobProgress.
type Server struct {
	ln   net.Listener
	srv  *http.Server
	done chan struct{}

	// mu guards the published copy below; the HTTP handlers and the
	// simulation thread race on it (lockdiscipline enforces the
	// annotations at build time).
	mu        sync.Mutex
	title     string   //loft:guardedby mu
	metrics   []byte   //loft:guardedby mu
	auditJSON []byte   //loft:guardedby mu
	perfJSON  []byte   //loft:guardedby mu
	perfText  string   //loft:guardedby mu
	cycle     uint64   //loft:guardedby mu
	total     uint64   //loft:guardedby mu
	heatmap   string   //loft:guardedby mu
	summary   []string //loft:guardedby mu
	jobsDone  int      //loft:guardedby mu
	jobsTotal int      //loft:guardedby mu
}

// NewServer starts an introspection server on addr (":0" picks a free
// port). The returned server is already serving; Close releases it.
func NewServer(addr string) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("audit: introspection server: %w", err)
	}
	s := &Server{ln: ln, done: make(chan struct{})}
	mux := http.NewServeMux()
	mux.HandleFunc("/", s.handleIndex)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/audit", s.handleAudit)
	mux.HandleFunc("/perf", s.handlePerf)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	s.srv = &http.Server{Handler: mux}
	go func() {
		defer close(s.done)
		_ = s.srv.Serve(ln) // returns on Close
	}()
	return s, nil
}

// Addr returns the bound address (host:port).
func (s *Server) Addr() string { return s.ln.Addr().String() }

// URL returns the server's base URL.
func (s *Server) URL() string { return "http://" + s.Addr() }

// Close stops the server.
func (s *Server) Close() error {
	err := s.srv.Close()
	<-s.done
	return err
}

// SetTitle labels the index page (e.g. the experiment name).
func (s *Server) SetTitle(t string) {
	s.mu.Lock()
	s.title = t
	s.mu.Unlock()
}

// JobProgress reports sweep progress (thread-safe; sweep workers call it
// concurrently).
func (s *Server) JobProgress(done, total int) {
	s.mu.Lock()
	s.jobsDone, s.jobsTotal = done, total
	s.mu.Unlock()
}

// Publish renders the current probe, audit and perfmon state and swaps it
// in for the HTTP handlers. It MUST be called from the simulation thread:
// probe gauges, the audit snapshot and the perf snapshot read live
// simulator state. Any argument may be nil.
func (s *Server) Publish(p *probe.Probe, a *Auditor, mon *perfmon.Monitor) {
	var metrics bytes.Buffer
	_ = probe.WritePrometheus(&metrics, p)
	a.writePrometheus(&metrics)

	var auditJSON []byte
	var summary []string
	var heatmap string
	var cycle, total uint64
	if a != nil {
		snap := a.Snapshot()
		auditJSON, _ = json.MarshalIndent(snap, "", "  ")
		summary = a.Summary()
		heatmap = a.Heatmap()
		cycle, total = snap.Cycle, snap.TotalCycles
	}

	var perfJSON []byte
	var perfText string
	if mon != nil {
		snap := mon.Snapshot()
		perfJSON, _ = json.MarshalIndent(snap, "", "  ")
		var text bytes.Buffer
		snap.WriteText(&text)
		perfText = text.String()
	}

	s.mu.Lock()
	s.metrics = metrics.Bytes()
	s.auditJSON = auditJSON
	s.perfJSON = perfJSON
	s.perfText = perfText
	s.summary = summary
	s.heatmap = heatmap
	s.cycle, s.total = cycle, total
	s.mu.Unlock()
}

// writePrometheus appends the auditor's own metrics to a /metrics payload.
func (a *Auditor) writePrometheus(w *bytes.Buffer) {
	if a == nil {
		return
	}
	s := a.Snapshot()
	counter := func(name, help string, v uint64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	gauge := func(name, help string, v float64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %g\n", name, help, name, name, v)
	}
	counter("audit_violations_total", "Invariant and conformance violations detected.", s.Violations)
	counter("audit_packets_checked_total", "Completed packets verdicted against their delay bound.", s.PacketsChecked)
	counter("audit_invariant_sweeps_total", "Full-window invariant sweeps executed.", s.InvariantSweeps)
	counter("audit_grant_checks_total", "Per-grant admission checks executed.", s.GrantChecks)
	gauge("audit_in_flight_quanta", "Quanta booked but not yet ejected.", float64(s.InFlightQuanta))
	gauge("audit_cycle", "Auditor clock in cycles.", float64(s.Cycle))
	gauge("audit_worst_margin_pct", "Worst observed latency as a percentage of its bound.", s.WorstMarginPct)
}

var indexTmpl = template.Must(template.New("index").Parse(`<!DOCTYPE html>
<html><head><meta charset="utf-8"><meta http-equiv="refresh" content="2">
<title>loft introspection{{with .Title}} — {{.}}{{end}}</title>
<style>body{font-family:monospace;margin:2em}pre{background:#f4f4f4;padding:1em}
.bar{width:30em;height:1em;background:#ddd}.bar div{height:100%;background:#4a8}</style>
</head><body>
<h1>loft introspection{{with .Title}} — {{.}}{{end}}</h1>
{{if .Total}}<p>run: cycle {{.Cycle}} / {{.Total}}</p>
<div class="bar"><div style="width:{{.RunPct}}%"></div></div>{{end}}
{{if .JobsTotal}}<p>sweep: {{.JobsDone}} / {{.JobsTotal}} runs</p>
<div class="bar"><div style="width:{{.JobsPct}}%"></div></div>{{end}}
{{range .Summary}}<p>{{.}}</p>{{end}}
{{with .Heatmap}}<h2>link utilization</h2><pre>{{.}}</pre>{{end}}
{{with .Perf}}<h2>self-profile (stage attribution, worker utilization)</h2><pre>{{.}}</pre>{{end}}
<p><a href="/metrics">/metrics</a> · <a href="/audit">/audit</a> · <a href="/perf">/perf</a> · <a href="/debug/pprof/">/debug/pprof</a></p>
</body></html>
`))

func (s *Server) handleIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	s.mu.Lock()
	data := struct {
		Title               string
		Cycle, Total        uint64
		RunPct, JobsPct     int
		JobsDone, JobsTotal int
		Summary             []string
		Heatmap             string
		Perf                string
	}{
		Title: s.title, Cycle: s.cycle, Total: s.total,
		JobsDone: s.jobsDone, JobsTotal: s.jobsTotal,
		Summary: append([]string(nil), s.summary...), Heatmap: s.heatmap,
		Perf: s.perfText,
	}
	s.mu.Unlock()
	if data.Total > 0 {
		data.RunPct = int(100 * data.Cycle / data.Total)
	}
	if data.JobsTotal > 0 {
		data.JobsPct = 100 * data.JobsDone / data.JobsTotal
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	_ = indexTmpl.Execute(w, data)
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	body := append([]byte(nil), s.metrics...)
	s.mu.Unlock()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if len(body) == 0 {
		fmt.Fprint(w, "# no metrics published yet\n")
		return
	}
	_, _ = w.Write(body)
}

func (s *Server) handleAudit(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	body := append([]byte(nil), s.auditJSON...)
	s.mu.Unlock()
	w.Header().Set("Content-Type", "application/json")
	if len(body) == 0 {
		fmt.Fprint(w, "{}\n")
		return
	}
	_, _ = w.Write(body)
}

func (s *Server) handlePerf(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	body := append([]byte(nil), s.perfJSON...)
	s.mu.Unlock()
	w.Header().Set("Content-Type", "application/json")
	if len(body) == 0 {
		fmt.Fprint(w, "{}\n")
		return
	}
	_, _ = w.Write(body)
}
