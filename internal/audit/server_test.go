package audit_test

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"

	"loft/internal/audit"
	"loft/internal/config"
	"loft/internal/core"
	"loft/internal/perfmon"
	"loft/internal/probe"
)

func get(t *testing.T, url string) (string, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: read: %v", url, err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d: %s", url, resp.StatusCode, body)
	}
	return string(body), resp.Header.Get("Content-Type")
}

func TestServerEndpoints(t *testing.T) {
	srv, err := audit.NewServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	srv.SetTitle("unit test")

	// Before any publish: placeholder payloads, correct content types.
	body, ctype := get(t, srv.URL()+"/metrics")
	if !strings.HasPrefix(body, "#") || !strings.HasPrefix(ctype, "text/plain; version=0.0.4") {
		t.Fatalf("pre-publish /metrics = %q (%s)", body, ctype)
	}
	if body, ctype = get(t, srv.URL()+"/audit"); body != "{}\n" && body != "{}" || ctype != "application/json" {
		t.Fatalf("pre-publish /audit = %q (%s)", body, ctype)
	}
	if body, ctype = get(t, srv.URL()+"/perf"); body != "{}\n" && body != "{}" || ctype != "application/json" {
		t.Fatalf("pre-publish /perf = %q (%s)", body, ctype)
	}

	// Publish a real probe + auditor + perfmon snapshot and re-read
	// everything.
	pr := probe.New(probe.Config{EventCap: 16, SampleEvery: 1})
	pr.Emit(1, probe.KindSpecHit, 0, 0, 0, 0)
	aud := audit.New(audit.Config{})
	aud.StartRun(1000)
	aud.OnCycle(500)
	mon := perfmon.New(perfmon.Config{SampleEvery: 1})
	tm := mon.Timer()
	tm.Begin(0)
	tm.Lap(perfmon.StageBooking)
	mon.OnCycle(0)
	srv.JobProgress(2, 4)
	srv.Publish(pr, aud, mon)

	body, _ = get(t, srv.URL()+"/metrics")
	for _, want := range []string{"probe_events_total", "audit_violations_total 0", "audit_cycle 500"} {
		if !strings.Contains(body, want) {
			t.Fatalf("/metrics missing %q:\n%s", want, body)
		}
	}
	body, _ = get(t, srv.URL()+"/audit")
	var snap audit.Snapshot
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("/audit not valid JSON: %v\n%s", err, body)
	}
	if snap.Cycle != 500 || snap.TotalCycles != 1000 || !snap.Clean {
		t.Fatalf("/audit snapshot = %+v", snap)
	}
	body, _ = get(t, srv.URL()+"/perf")
	var perf perfmon.Snapshot
	if err := json.Unmarshal([]byte(body), &perf); err != nil {
		t.Fatalf("/perf not valid JSON: %v\n%s", err, body)
	}
	if perf.SampledCycles != 1 || len(perf.Stages) == 0 || perf.Stages[0].Name != "booking" {
		t.Fatalf("/perf snapshot = %+v", perf)
	}
	body, ctype = get(t, srv.URL()+"/")
	if !strings.Contains(ctype, "text/html") || !strings.Contains(body, "unit test") ||
		!strings.Contains(body, "2 / 4") || !strings.Contains(body, "stage attribution") {
		t.Fatalf("index page wrong (%s):\n%s", ctype, body)
	}
	if body, _ = get(t, srv.URL()+"/debug/pprof/cmdline"); body == "" {
		t.Fatal("pprof cmdline empty")
	}
}

// TestServerLiveDuringRun exercises the real publish path: HTTP clients
// hammer the endpoints while an audited simulation runs and publishes from
// the simulation goroutine. Run under -race this pins the thread-safety
// contract (Publish renders on the sim thread, handlers copy under mutex).
func TestServerLiveDuringRun(t *testing.T) {
	srv, err := audit.NewServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	pr := probe.New(probe.Config{EventCap: 1 << 12, SampleEvery: 64})
	aud := audit.New(audit.Config{CheckEvery: 128, PublishEvery: 64})
	aud.OnPublish(func() { srv.Publish(pr, aud, nil) })

	done := make(chan error, 1)
	go func() {
		cfg := config.PaperLOFTSpec(12)
		p := caseIPattern(cfg)
		_, _, err := core.RunLOFT(cfg, p, core.RunSpec{Seed: 1, Warmup: 200, Measure: 1500, Probe: pr, Audit: aud})
		done <- err
	}()

	sawMetrics := false
	for running := true; running; {
		select {
		case err := <-done:
			if err != nil {
				t.Fatal(err)
			}
			running = false
		default:
			body, _ := get(t, srv.URL()+"/metrics")
			if strings.Contains(body, "audit_grant_checks_total") {
				sawMetrics = true
			}
			body, _ = get(t, srv.URL()+"/audit")
			if body != "{}" {
				var snap audit.Snapshot
				if err := json.Unmarshal([]byte(body), &snap); err != nil {
					t.Fatalf("/audit mid-run not valid JSON: %v", err)
				}
			}
			get(t, srv.URL()+"/")
		}
	}
	if err := aud.Err(); err != nil {
		t.Fatal(err)
	}
	// The run publishes at least once (FinishRun), so the final state must
	// be visible even if every mid-run poll raced ahead of the first tick.
	if body, _ := get(t, srv.URL()+"/metrics"); !strings.Contains(body, "audit_grant_checks_total") {
		t.Fatalf("final /metrics missing audit metrics:\n%s", body)
	} else {
		sawMetrics = true
	}
	if !sawMetrics {
		t.Fatal("never observed audit metrics")
	}
}
