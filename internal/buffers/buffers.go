// Package buffers provides the storage primitives shared by the router
// models: bounded FIFOs, credit counters, and the central/speculative buffer
// pair used by the LOFT data network (§4.3.1, Fig. 9).
package buffers

import "fmt"

// FIFO is a bounded first-in first-out queue.
type FIFO[T any] struct {
	buf   []T
	head  int
	count int
	cap   int
	name  string
}

// NewFIFO returns a FIFO with the given capacity. Capacity 0 is legal and
// models a buffer that can never accept (used for spec=0 configurations).
func NewFIFO[T any](name string, capacity int) *FIFO[T] {
	if capacity < 0 {
		panic("buffers: negative FIFO capacity")
	}
	return &FIFO[T]{buf: make([]T, capacity), cap: capacity, name: name}
}

// Len returns the number of queued items.
func (f *FIFO[T]) Len() int { return f.count }

// Cap returns the capacity.
func (f *FIFO[T]) Cap() int { return f.cap }

// Free returns the remaining space.
func (f *FIFO[T]) Free() int { return f.cap - f.count }

// Empty reports whether the FIFO holds no items.
func (f *FIFO[T]) Empty() bool { return f.count == 0 }

// Full reports whether no space remains.
func (f *FIFO[T]) Full() bool { return f.count == f.cap }

// Push appends v. It panics on overflow: callers must check Free first
// (credit flow control guarantees it in a correct model).
func (f *FIFO[T]) Push(v T) {
	if f.Full() {
		panic("buffers: overflow on FIFO " + f.name)
	}
	f.buf[(f.head+f.count)%f.cap] = v
	f.count++
}

// Pop removes and returns the oldest item.
func (f *FIFO[T]) Pop() (T, bool) {
	var zero T
	if f.count == 0 {
		return zero, false
	}
	v := f.buf[f.head]
	f.buf[f.head] = zero
	f.head = (f.head + 1) % f.cap
	f.count--
	return v, true
}

// Peek returns the oldest item without removing it.
func (f *FIFO[T]) Peek() (T, bool) {
	var zero T
	if f.count == 0 {
		return zero, false
	}
	return f.buf[f.head], true
}

// At returns the i-th oldest item (0 = head). It panics when out of range.
func (f *FIFO[T]) At(i int) T {
	if i < 0 || i >= f.count {
		panic(fmt.Sprintf("buffers: index %d out of range on FIFO %s (len %d)", i, f.name, f.count))
	}
	return f.buf[(f.head+i)%f.cap]
}

// RemoveFunc removes the first item for which match returns true, preserving
// order of the rest, and reports whether anything was removed.
func (f *FIFO[T]) RemoveFunc(match func(T) bool) (T, bool) {
	var zero T
	for i := 0; i < f.count; i++ {
		idx := (f.head + i) % f.cap
		if match(f.buf[idx]) {
			v := f.buf[idx]
			// Shift the tail segment one slot toward the head.
			for j := i; j < f.count-1; j++ {
				a := (f.head + j) % f.cap
				b := (f.head + j + 1) % f.cap
				f.buf[a] = f.buf[b]
			}
			f.buf[(f.head+f.count-1)%f.cap] = zero
			f.count--
			return v, true
		}
	}
	return zero, false
}

// Credits tracks credit-based flow control toward one downstream buffer.
type Credits struct {
	avail int
	cap   int
	name  string
}

// NewCredits returns a counter initialized to the downstream capacity.
func NewCredits(name string, capacity int) *Credits {
	if capacity < 0 {
		panic("buffers: negative credit capacity")
	}
	return &Credits{avail: capacity, cap: capacity, name: name}
}

// Available returns the current credit count.
func (c *Credits) Available() int { return c.avail }

// Cap returns the downstream capacity.
func (c *Credits) Cap() int { return c.cap }

// Consume spends one credit; it panics when none remain.
func (c *Credits) Consume() {
	if c.avail == 0 {
		panic("buffers: credit underflow on " + c.name)
	}
	c.avail--
}

// Return restores one credit; it panics past the capacity (a protocol bug:
// more returns than sends).
func (c *Credits) Return() {
	if c.avail == c.cap {
		panic("buffers: credit overflow on " + c.name)
	}
	c.avail++
}

// AtCap reports whether every credit is home, i.e. the downstream buffer is
// known empty. LOFT's local status reset uses this condition (§4.3.2).
func (c *Credits) AtCap() bool { return c.avail == c.cap }
