package buffers

import (
	"testing"
	"testing/quick"
)

func TestFIFOOrder(t *testing.T) {
	f := NewFIFO[int]("t", 4)
	for i := 1; i <= 4; i++ {
		f.Push(i)
	}
	if !f.Full() || f.Free() != 0 {
		t.Fatal("FIFO should be full")
	}
	for i := 1; i <= 4; i++ {
		v, ok := f.Pop()
		if !ok || v != i {
			t.Fatalf("Pop = (%d,%v), want (%d,true)", v, ok, i)
		}
	}
	if _, ok := f.Pop(); ok {
		t.Fatal("pop from empty")
	}
}

func TestFIFOWraparound(t *testing.T) {
	f := NewFIFO[int]("t", 3)
	for round := 0; round < 10; round++ {
		f.Push(round * 2)
		f.Push(round*2 + 1)
		if v, _ := f.Pop(); v != round*2 {
			t.Fatalf("round %d: wrong order", round)
		}
		if v, _ := f.Pop(); v != round*2+1 {
			t.Fatalf("round %d: wrong order", round)
		}
	}
}

func TestFIFOOverflowPanics(t *testing.T) {
	f := NewFIFO[int]("t", 1)
	f.Push(1)
	defer func() {
		if recover() == nil {
			t.Fatal("overflow did not panic")
		}
	}()
	f.Push(2)
}

func TestFIFOPeekAt(t *testing.T) {
	f := NewFIFO[int]("t", 4)
	f.Push(10)
	f.Push(20)
	if v, _ := f.Peek(); v != 10 {
		t.Fatalf("Peek = %d", v)
	}
	if f.At(1) != 20 {
		t.Fatalf("At(1) = %d", f.At(1))
	}
	if f.Len() != 2 {
		t.Fatal("peek consumed items")
	}
}

func TestFIFORemoveFunc(t *testing.T) {
	f := NewFIFO[int]("t", 5)
	for _, v := range []int{1, 2, 3, 4} {
		f.Push(v)
	}
	v, ok := f.RemoveFunc(func(x int) bool { return x == 3 })
	if !ok || v != 3 {
		t.Fatalf("RemoveFunc = (%d,%v)", v, ok)
	}
	var rest []int
	for {
		v, ok := f.Pop()
		if !ok {
			break
		}
		rest = append(rest, v)
	}
	if len(rest) != 3 || rest[0] != 1 || rest[1] != 2 || rest[2] != 4 {
		t.Fatalf("order after removal: %v", rest)
	}
	if _, ok := f.RemoveFunc(func(int) bool { return true }); ok {
		t.Fatal("removed from empty FIFO")
	}
}

func TestFIFORemoveFuncQuick(t *testing.T) {
	// Property: removing an element preserves the relative order of the
	// rest, across wraparound states.
	if err := quick.Check(func(ops []uint8, target uint8) bool {
		f := NewFIFO[int]("q", 8)
		var model []int
		n := 0
		for _, op := range ops {
			if op%2 == 0 && !f.Full() {
				f.Push(n)
				model = append(model, n)
				n++
			} else if !f.Empty() {
				f.Pop()
				model = model[1:]
			}
		}
		if len(model) == 0 {
			return true
		}
		tgt := model[int(target)%len(model)]
		f.RemoveFunc(func(x int) bool { return x == tgt })
		var want []int
		for _, v := range model {
			if v != tgt {
				want = append(want, v)
			}
		}
		for _, w := range want {
			v, ok := f.Pop()
			if !ok || v != w {
				return false
			}
		}
		return f.Empty()
	}, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestCredits(t *testing.T) {
	c := NewCredits("t", 2)
	if !c.AtCap() || c.Available() != 2 {
		t.Fatal("bad init")
	}
	c.Consume()
	c.Consume()
	if c.Available() != 0 || c.AtCap() {
		t.Fatal("consume accounting")
	}
	c.Return()
	if c.Available() != 1 {
		t.Fatal("return accounting")
	}
}

func TestCreditUnderflowPanics(t *testing.T) {
	c := NewCredits("t", 0)
	defer func() {
		if recover() == nil {
			t.Fatal("underflow did not panic")
		}
	}()
	c.Consume()
}

func TestCreditOverflowPanics(t *testing.T) {
	c := NewCredits("t", 1)
	defer func() {
		if recover() == nil {
			t.Fatal("overflow did not panic")
		}
	}()
	c.Return()
}
