// Package config holds the simulation parameters of the paper's Table 1 and
// their validation. All sizes are in flits unless noted otherwise.
package config

import (
	"fmt"

	"loft/internal/topo"
)

// LOFT is the parameter set of the LOFT network (Table 1).
type LOFT struct {
	MeshK       int // nodes per dimension (8 → 64-node mesh)
	PacketFlits int // data flits per packet (4)
	MaxFlows    int // maximum flows contending for a link (64)

	// LSF / FRS parameters.
	FrameFlits   int // F, frame size in flits (256)
	FrameWindow  int // WF, number of frames (2)
	QuantumFlits int // data flits led by one look-ahead flit (2)

	// Data network.
	CentralBufFlits int // non-speculative central buffer per input port (256)
	SpecBufFlits    int // speculative buffer per input port (0..16)
	DataStages      int // router pipeline stages (3)
	DataFlitBits    int // data flit and link width (128)

	// Look-ahead network.
	LAVirtualChannels int // 3
	LAVCDepth         int // flits per VC (4)
	LAStages          int // router pipeline stages (3)
	LAFlitBits        int // look-ahead flit width (64)

	// NIQueueFlits bounds the per-node source backlog. LOFT needs no large
	// source queues (Table 2 has none); packets arriving to a full queue
	// are dropped, which bounds saturation latency exactly as GSF's finite
	// source queue does.
	NIQueueFlits int

	// Optimizations (§4.3). The paper treats spec-buffer size 0 as "all
	// optimizations off"; NewLOFT* constructors enforce that coupling.
	SpeculativeSwitching bool
	LocalStatusReset     bool

	// YieldCondition enables the buffer-yield admission policy derived
	// from the paper's condition (1). Off by default (see internal/lsf and
	// DESIGN.md); the ablation benchmarks flip it.
	YieldCondition bool
}

// PaperLOFT returns the Table 1 LOFT configuration with the paper's chosen
// 12-flit speculative buffer.
func PaperLOFT() LOFT { return PaperLOFTSpec(12) }

// PaperLOFTSpec returns the Table 1 LOFT configuration with a specific
// speculative buffer size. spec == 0 disables both §4.3 optimizations,
// matching the paper's definition of the unoptimized baseline.
func PaperLOFTSpec(spec int) LOFT {
	return LOFT{
		MeshK:             8,
		PacketFlits:       4,
		MaxFlows:          64,
		FrameFlits:        256,
		FrameWindow:       2,
		QuantumFlits:      2,
		CentralBufFlits:   256,
		SpecBufFlits:      spec,
		DataStages:        3,
		DataFlitBits:      128,
		LAVirtualChannels: 3,
		LAVCDepth:         4,
		LAStages:          3,
		LAFlitBits:        64,
		NIQueueFlits:      256,

		SpeculativeSwitching: spec > 0,
		LocalStatusReset:     spec > 0,
	}
}

// SlotsPerFrame returns F in quantum slots (the reservation-table frame
// span; 128 with the paper parameters — Table 1's "time window size").
func (c LOFT) SlotsPerFrame() int { return c.FrameFlits / c.QuantumFlits }

// TableSlots returns the total reservation-table entries
// (F·WF/Q = 256 with the paper parameters).
func (c LOFT) TableSlots() int { return c.SlotsPerFrame() * c.FrameWindow }

// BufferQuanta returns the non-speculative buffer capacity in quanta.
func (c LOFT) BufferQuanta() int { return c.CentralBufFlits / c.QuantumFlits }

// SpecQuanta returns the speculative buffer capacity in quanta.
func (c LOFT) SpecQuanta() int { return c.SpecBufFlits / c.QuantumFlits }

// Mesh returns the topology.
func (c LOFT) Mesh() topo.Mesh { return topo.NewMesh(c.MeshK) }

// Validate reports configuration errors.
func (c LOFT) Validate() error {
	switch {
	case c.MeshK < 2:
		return fmt.Errorf("config: mesh dimension %d < 2", c.MeshK)
	case c.QuantumFlits < 1:
		return fmt.Errorf("config: quantum size %d < 1", c.QuantumFlits)
	case c.FrameFlits%c.QuantumFlits != 0:
		return fmt.Errorf("config: frame size %d not a quantum multiple", c.FrameFlits)
	case c.PacketFlits%c.QuantumFlits != 0:
		return fmt.Errorf("config: packet size %d not a quantum multiple", c.PacketFlits)
	case c.FrameWindow < 2:
		return fmt.Errorf("config: frame window %d < 2", c.FrameWindow)
	case c.CentralBufFlits < c.FrameFlits:
		// §4.2/Theorem I: the anomaly fix requires input buffer ≥ F flits.
		return fmt.Errorf("config: central buffer %d smaller than frame size %d breaks Theorem I", c.CentralBufFlits, c.FrameFlits)
	case c.SpecBufFlits < 0:
		return fmt.Errorf("config: negative speculative buffer")
	case c.SpeculativeSwitching && c.SpecBufFlits == 0:
		return fmt.Errorf("config: speculative switching enabled with zero speculative buffer")
	case c.LAVirtualChannels < 1 || c.LAVCDepth < 1:
		return fmt.Errorf("config: look-ahead network needs at least one VC slot")
	}
	return nil
}

// GSF is the parameter set of the GSF baseline (Table 1).
type GSF struct {
	MeshK       int
	PacketFlits int

	VirtualChannels int // 6
	VCDepth         int // 5 flits
	FrameFlits      int // 2000
	FrameWindow     int // 6
	BarrierDelay    int // 16 cycles
	SourceQueue     int // 2000 flits
	DataFlitBits    int // 128
	PipeStages      int // router pipeline stages (3, as the LOFT router)

	// BestEffort disables the QoS machinery (frame tags, injection
	// budgets, barrier), turning the network into a plain virtual-channel
	// wormhole NoC. Used as the unregulated reference point in the
	// cost-of-QoS ablation.
	BestEffort bool
}

// PaperGSF returns the Table 1 GSF configuration.
func PaperGSF() GSF {
	return GSF{
		MeshK:           8,
		PacketFlits:     4,
		VirtualChannels: 6,
		VCDepth:         5,
		FrameFlits:      2000,
		FrameWindow:     6,
		BarrierDelay:    16,
		SourceQueue:     2000,
		DataFlitBits:    128,
		PipeStages:      3,
	}
}

// Mesh returns the topology.
func (c GSF) Mesh() topo.Mesh { return topo.NewMesh(c.MeshK) }

// Validate reports configuration errors.
func (c GSF) Validate() error {
	switch {
	case c.MeshK < 2:
		return fmt.Errorf("config: mesh dimension %d < 2", c.MeshK)
	case c.VirtualChannels < 1 || c.VCDepth < 1:
		return fmt.Errorf("config: GSF needs at least one VC slot")
	case c.FrameWindow < 2:
		return fmt.Errorf("config: GSF frame window %d < 2", c.FrameWindow)
	case c.SourceQueue < c.PacketFlits:
		return fmt.Errorf("config: GSF source queue smaller than one packet")
	}
	return nil
}

// PaperWormhole returns a plain best-effort VC wormhole configuration: the
// GSF router datapath with all QoS machinery disabled. It serves as the
// unregulated reference point for the cost-of-QoS ablation.
func PaperWormhole() GSF {
	c := PaperGSF()
	c.BestEffort = true
	return c
}
