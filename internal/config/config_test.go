package config

import "testing"

func TestPaperLOFTMatchesTable1(t *testing.T) {
	c := PaperLOFT()
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	checks := []struct {
		name      string
		got, want int
	}{
		{"mesh", c.MeshK, 8},
		{"packet flits", c.PacketFlits, 4},
		{"max flows", c.MaxFlows, 64},
		{"frame size", c.FrameFlits, 256},
		{"frame window", c.FrameWindow, 2},
		{"central buffer", c.CentralBufFlits, 256},
		{"spec buffer", c.SpecBufFlits, 12},
		{"LA VCs", c.LAVirtualChannels, 3},
		{"LA VC depth", c.LAVCDepth, 4},
		{"LA flit bits", c.LAFlitBits, 64},
		{"data flit bits", c.DataFlitBits, 128},
		{"router stages", c.DataStages, 3},
		// Derived: Table 1's reservation table size and per-frame slots.
		{"table slots", c.TableSlots(), 256},
		{"slots per frame", c.SlotsPerFrame(), 128},
		{"buffer quanta", c.BufferQuanta(), 128},
	}
	for _, ch := range checks {
		if ch.got != ch.want {
			t.Errorf("%s = %d, want %d", ch.name, ch.got, ch.want)
		}
	}
}

func TestSpecZeroDisablesOptimizations(t *testing.T) {
	c := PaperLOFTSpec(0)
	if c.SpeculativeSwitching || c.LocalStatusReset {
		t.Fatal("spec=0 must disable §4.3 optimizations")
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	c16 := PaperLOFTSpec(16)
	if !c16.SpeculativeSwitching || !c16.LocalStatusReset {
		t.Fatal("spec=16 must enable §4.3 optimizations")
	}
}

func TestPaperGSFMatchesTable1(t *testing.T) {
	c := PaperGSF()
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if c.VirtualChannels != 6 || c.VCDepth != 5 || c.FrameFlits != 2000 ||
		c.FrameWindow != 6 || c.BarrierDelay != 16 || c.SourceQueue != 2000 {
		t.Fatalf("GSF config mismatch: %+v", c)
	}
}

func TestLOFTValidateRejectsBadConfigs(t *testing.T) {
	cases := []func(*LOFT){
		func(c *LOFT) { c.MeshK = 1 },
		func(c *LOFT) { c.FrameFlits = 255 }, // not a quantum multiple
		func(c *LOFT) { c.PacketFlits = 3 },  // not a quantum multiple
		func(c *LOFT) { c.FrameWindow = 1 },
		func(c *LOFT) { c.CentralBufFlits = 128 }, // < frame: breaks Theorem I
		func(c *LOFT) { c.SpecBufFlits = -1 },
		func(c *LOFT) { c.LAVCDepth = 0 },
	}
	for i, mutate := range cases {
		c := PaperLOFT()
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

func TestGSFValidateRejectsBadConfigs(t *testing.T) {
	cases := []func(*GSF){
		func(c *GSF) { c.MeshK = 0 },
		func(c *GSF) { c.VirtualChannels = 0 },
		func(c *GSF) { c.FrameWindow = 1 },
		func(c *GSF) { c.SourceQueue = 2 },
	}
	for i, mutate := range cases {
		c := PaperGSF()
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}
