// Package core is the public facade of the LOFT reproduction: it builds and
// runs LOFT and GSF networks against the paper's traffic patterns and
// returns uniform result summaries. Command-line tools, examples and the
// benchmark harness all drive the system through this package.
package core

import (
	"loft/internal/audit"
	"loft/internal/config"
	"loft/internal/fault"
	"loft/internal/flit"
	"loft/internal/gsf"
	"loft/internal/loft"
	"loft/internal/perfmon"
	"loft/internal/probe"
	"loft/internal/stats"
	"loft/internal/traffic"
)

// Arch names a network architecture.
type Arch string

// Supported architectures.
const (
	ArchLOFT Arch = "loft"
	ArchGSF  Arch = "gsf"
)

// RunSpec describes one simulation run.
type RunSpec struct {
	// Seed drives all traffic generators deterministically.
	Seed uint64
	// Warmup cycles are excluded from every statistic.
	Warmup uint64
	// Measure cycles are simulated after warmup.
	Measure uint64
	// Probe attaches the observability layer when non-nil. Probing never
	// changes simulation results.
	Probe *probe.Probe
	// Audit attaches the runtime QoS auditor when non-nil: it shadows
	// scheduler invariants, records per-packet flight timelines and checks
	// delivered latencies against the analytical delay bounds. Auditing
	// never changes simulation results. Violations accumulate on the
	// auditor across runs; callers decide whether they are fatal.
	Audit *audit.Auditor
	// Workers selects the intra-run cycle engine: 0 or 1 runs sequentially,
	// N > 1 shards node ticking across N OS threads. Results are
	// byte-identical for any value (see DESIGN.md §13).
	Workers int
	// Perf attaches the self-profiler when non-nil: stage-level wall-time
	// attribution, parallel-engine telemetry and occupancy gauges.
	// Profiling never changes simulation results (see DESIGN.md §14).
	Perf *perfmon.Monitor
	// Stop, when non-nil, is polled between simulation chunks; once it
	// returns true the run ends early at a chunk boundary. The partial run
	// still finishes cleanly (audit FinishRun, stats close), so CLIs use it
	// to flush final snapshots on SIGINT.
	Stop func() bool
	// Fault arms a deterministic fault-injection plan when non-nil: timed
	// link/router faults and adversarial flows with graceful degradation.
	// A faulted run is byte-reproducible for a given (plan, seed) under
	// any worker count (see DESIGN.md §16). GSF accepts adversary-only
	// plans.
	Fault *fault.Plan
}

// Total returns warmup + measure cycles.
func (r RunSpec) Total() uint64 { return r.Warmup + r.Measure }

// stopChunk is the polling granularity for RunSpec.Stop: small enough that
// interrupt latency stays imperceptible, large enough that the per-chunk
// overhead (a closure call and a stats close) vanishes in the noise.
const stopChunk = 1024

// runNetwork advances a network Total() cycles, honoring the optional Stop
// poll at chunk boundaries. Chunked Run calls are byte-identical to one big
// Run: every cycle's work depends only on the cycle number, and
// Throughput.Close is monotonic in `now`, so the last call wins.
func runNetwork(run func(n uint64), spec RunSpec) {
	total := spec.Total()
	if spec.Stop == nil {
		run(total)
		return
	}
	for total > 0 && !spec.Stop() {
		c := uint64(stopChunk)
		if total < c {
			c = total
		}
		run(c)
		total -= c
	}
}

// Result summarizes one run.
type Result struct {
	Arch Arch
	// AvgLatency/MaxLatency are total packet latencies from generation to
	// delivery (source queueing included, as in the paper's Fig. 12).
	AvgLatency float64
	MaxLatency uint64
	P50Latency float64
	P99Latency float64
	// AvgNetLatency/MaxNetLatency count from network injection to
	// delivery (the paper's Fig. 11 load-latency curves).
	AvgNetLatency float64
	MaxNetLatency uint64
	Packets       uint64
	TotalRate     float64 // aggregate accepted throughput, flits/cycle
	FlowRate      map[flit.FlowID]float64
	FlowLatency   map[flit.FlowID]float64 // per-flow average total latency
	NodeRate      map[int]float64
	SpecForward   uint64 // LOFT only
	Resets        uint64 // LOFT only
	Drops         uint64 // GSF only (source queue overflow)
	// Fault-injection accounting (zero on clean runs; LOFT only — GSF
	// plans are adversary-only and inject nothing at the link level).
	FaultsInjected uint64 // discrete fault applications
	FlitsLost      uint64 // flits in fault-denied forwards (all retried)
	Retries        uint64 // fault-denied quanta that later crossed their link
}

func summarize(arch Arch, lat, latNet *stats.Latency, latFlow *stats.FlowLatency, thr *stats.Throughput, flows []flit.Flow, nodes int) Result {
	res := Result{
		Arch:          arch,
		AvgLatency:    lat.Mean(),
		MaxLatency:    lat.Max(),
		P50Latency:    lat.Percentile(50),
		P99Latency:    lat.Percentile(99),
		AvgNetLatency: latNet.Mean(),
		MaxNetLatency: latNet.Max(),
		Packets:       lat.Count(),
		TotalRate:     thr.Total(),
		FlowRate:      make(map[flit.FlowID]float64, len(flows)),
		FlowLatency:   make(map[flit.FlowID]float64, len(flows)),
		NodeRate:      make(map[int]float64, nodes),
	}
	for _, f := range flows {
		res.FlowRate[f.ID] = thr.Flow(f.ID)
		res.FlowLatency[f.ID] = latFlow.Mean(f.ID)
	}
	for n := 0; n < nodes; n++ {
		res.NodeRate[n] = thr.Node(n)
	}
	return res
}

// RunLOFT builds a LOFT network for cfg and pattern, runs it, and returns
// the result summary together with the network for further inspection.
func RunLOFT(cfg config.LOFT, p *traffic.Pattern, spec RunSpec) (Result, *loft.Network, error) {
	net, err := loft.New(cfg, p, loft.Options{Seed: spec.Seed, Warmup: spec.Warmup, Probe: spec.Probe, Audit: spec.Audit, Workers: spec.Workers, Perf: spec.Perf, Fault: spec.Fault})
	if err != nil {
		return Result{}, nil, err
	}
	if spec.Audit != nil {
		spec.Audit.StartRun(spec.Total())
	}
	runNetwork(net.Run, spec)
	if spec.Audit != nil {
		spec.Audit.FinishRun(net.Now())
	}
	net.Close()
	res := summarize(ArchLOFT, net.Latency(), net.NetLatency(), net.FlowLatency(), net.Throughput(), p.Flows, p.Mesh.N())
	s := net.TotalStats()
	res.SpecForward = s.SpecForwards
	res.Resets = net.ResetCount()
	res.Drops = s.Drops
	res.FaultsInjected = s.FaultsInjected
	res.FlitsLost = s.FlitsLost
	res.Retries = s.Retries
	return res, net, nil
}

// RunGSF builds a GSF network for cfg and pattern and runs it. The
// pattern's reservations (expressed against baseFrameFlits) are rescaled to
// GSF's frame size.
func RunGSF(cfg config.GSF, p *traffic.Pattern, baseFrameFlits int, spec RunSpec) (Result, *gsf.Network, error) {
	net, err := gsf.New(cfg, p, gsf.Options{Seed: spec.Seed, Warmup: spec.Warmup, BaseFrameFlits: baseFrameFlits, Probe: spec.Probe, Audit: spec.Audit, Workers: spec.Workers, Perf: spec.Perf, Fault: spec.Fault})
	if err != nil {
		return Result{}, nil, err
	}
	if spec.Audit != nil {
		spec.Audit.StartRun(spec.Total())
	}
	runNetwork(net.Run, spec)
	if spec.Audit != nil {
		spec.Audit.FinishRun(net.Now())
	}
	net.Close()
	res := summarize(ArchGSF, net.Latency(), net.NetLatency(), net.FlowLatency(), net.Throughput(), p.Flows, p.Mesh.N())
	res.Drops = net.Drops()
	return res, net, nil
}
