package core

import (
	"testing"

	"loft/internal/config"
	"loft/internal/traffic"
)

func smallLOFT() config.LOFT {
	cfg := config.PaperLOFTSpec(8)
	cfg.MeshK = 4
	cfg.FrameFlits = 32
	cfg.CentralBufFlits = 32
	return cfg
}

func TestRunLOFTProducesResult(t *testing.T) {
	cfg := smallLOFT()
	p := traffic.SingleFlow(cfg.Mesh(), 0, 15, 0.1, cfg.PacketFlits, cfg.FrameFlits)
	res, net, err := RunLOFT(cfg, p, RunSpec{Seed: 1, Warmup: 500, Measure: 4000})
	if err != nil {
		t.Fatal(err)
	}
	if net == nil || res.Arch != ArchLOFT {
		t.Fatal("bad result envelope")
	}
	if res.Packets == 0 || res.AvgLatency <= 0 || res.AvgNetLatency <= 0 {
		t.Fatalf("no traffic measured: %+v", res)
	}
	if res.AvgNetLatency > res.AvgLatency+1e-9 {
		t.Fatalf("network latency %.1f above total %.1f", res.AvgNetLatency, res.AvgLatency)
	}
	if res.FlowRate[0] <= 0 || res.NodeRate[0] <= 0 {
		t.Fatal("per-flow/per-node rates missing")
	}
	if res.FlowLatency[0] <= 0 {
		t.Fatal("per-flow latency missing")
	}
}

func TestRunGSFProducesResult(t *testing.T) {
	gcfg := config.PaperGSF()
	gcfg.MeshK = 4
	gcfg.FrameFlits = 200
	gcfg.SourceQueue = 200
	p := traffic.SingleFlow(gcfg.Mesh(), 0, 15, 0.1, gcfg.PacketFlits, 32)
	res, _, err := RunGSF(gcfg, p, 32, RunSpec{Seed: 1, Warmup: 500, Measure: 4000})
	if err != nil {
		t.Fatal(err)
	}
	if res.Arch != ArchGSF || res.Packets == 0 {
		t.Fatalf("no traffic measured: %+v", res)
	}
}

func TestRunLOFTDeterministic(t *testing.T) {
	cfg := smallLOFT()
	run := func() Result {
		p := traffic.Uniform(cfg.Mesh(), 0.2, cfg.PacketFlits, cfg.FrameFlits)
		res, _, err := RunLOFT(cfg, p, RunSpec{Seed: 9, Warmup: 500, Measure: 3000})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.Packets != b.Packets || a.AvgLatency != b.AvgLatency || a.TotalRate != b.TotalRate {
		t.Fatalf("same-seed runs differ: %+v vs %+v", a, b)
	}
}

func TestRunLOFTRejectsBadConfig(t *testing.T) {
	cfg := smallLOFT()
	cfg.CentralBufFlits = 8 // breaks the Theorem I precondition
	p := traffic.SingleFlow(cfg.Mesh(), 0, 15, 0.1, cfg.PacketFlits, cfg.FrameFlits)
	if _, _, err := RunLOFT(cfg, p, RunSpec{}); err == nil {
		t.Fatal("invalid config accepted")
	}
}
