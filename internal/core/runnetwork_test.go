package core

import "testing"

// chunkRecorder captures the chunk sizes runNetwork hands to the network.
type chunkRecorder struct {
	chunks []uint64
	total  uint64
}

func (c *chunkRecorder) run(n uint64) {
	c.chunks = append(c.chunks, n)
	c.total += n
}

func TestRunNetworkNoStopRunsWholeSpan(t *testing.T) {
	rec := &chunkRecorder{}
	runNetwork(rec.run, RunSpec{Warmup: 700, Measure: 4321})
	if rec.total != 5021 || len(rec.chunks) != 1 {
		t.Fatalf("want one 5021-cycle call, got %v", rec.chunks)
	}
}

func TestRunNetworkChunkAccountingExact(t *testing.T) {
	// Total deliberately not a multiple of stopChunk: the tail chunk must
	// carry exactly the remainder so warmup+measure accounting stays exact.
	spec := RunSpec{Warmup: 100, Measure: 3000, Stop: func() bool { return false }}
	rec := &chunkRecorder{}
	runNetwork(rec.run, spec)
	if rec.total != spec.Total() {
		t.Fatalf("ran %d cycles, want %d", rec.total, spec.Total())
	}
	for i, c := range rec.chunks[:len(rec.chunks)-1] {
		if c != stopChunk {
			t.Fatalf("chunk %d = %d, want %d", i, c, stopChunk)
		}
	}
	if tail := rec.chunks[len(rec.chunks)-1]; tail != spec.Total()%stopChunk {
		t.Fatalf("tail chunk = %d, want %d", tail, spec.Total()%stopChunk)
	}
}

func TestRunNetworkStopBeforeStart(t *testing.T) {
	rec := &chunkRecorder{}
	runNetwork(rec.run, RunSpec{Warmup: 10, Measure: 10, Stop: func() bool { return true }})
	if rec.total != 0 {
		t.Fatalf("stopped run still advanced %d cycles", rec.total)
	}
}

func TestRunNetworkStopAtWarmupBoundaryChunk(t *testing.T) {
	// Warmup 1500 straddles the second chunk: a Stop firing during that
	// chunk must still let the chunk finish (cycle accounting stays on a
	// chunk boundary) and then halt before any further measure chunks run.
	polls := 0
	spec := RunSpec{Warmup: 1500, Measure: 8192, Stop: func() bool {
		polls++
		return polls > 2 // fires after the chunk covering the boundary
	}}
	rec := &chunkRecorder{}
	runNetwork(rec.run, spec)
	if rec.total != 2*stopChunk {
		t.Fatalf("ran %d cycles, want %d (two chunks then stop)", rec.total, 2*stopChunk)
	}
}

func TestRunNetworkEarlyStopMidMeasure(t *testing.T) {
	polls := 0
	spec := RunSpec{Warmup: 0, Measure: 100 * stopChunk, Stop: func() bool {
		polls++
		return polls > 5
	}}
	rec := &chunkRecorder{}
	runNetwork(rec.run, spec)
	if rec.total != 5*stopChunk {
		t.Fatalf("ran %d cycles, want %d", rec.total, 5*stopChunk)
	}
}
