package core

import (
	"encoding/json"
	"math"
	"testing"

	"loft/internal/traffic"
)

// probeNaN walks every float in a Result looking for NaN/Inf: any one of
// them poisons encoding/json in the runio manifest export.
func probeNaN(t *testing.T, res Result) {
	t.Helper()
	check := func(name string, v float64) {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Errorf("%s = %v", name, v)
		}
	}
	check("AvgLatency", res.AvgLatency)
	check("P50Latency", res.P50Latency)
	check("P99Latency", res.P99Latency)
	check("AvgNetLatency", res.AvgNetLatency)
	check("TotalRate", res.TotalRate)
	for id, v := range res.FlowLatency {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Errorf("FlowLatency[%d] = %v", id, v)
		}
	}
	for id, v := range res.FlowRate {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Errorf("FlowRate[%d] = %v", id, v)
		}
	}
	if _, err := json.Marshal(res); err != nil {
		t.Errorf("json.Marshal(Result): %v", err)
	}
}

func TestZeroMeasureRunHasNoNaN(t *testing.T) {
	cfg := smallLOFT()
	p := traffic.SingleFlow(cfg.Mesh(), 0, 15, 0.1, cfg.PacketFlits, cfg.FrameFlits)
	res, _, err := RunLOFT(cfg, p, RunSpec{Seed: 1, Warmup: 0, Measure: 0})
	if err != nil {
		t.Fatal(err)
	}
	if res.Packets != 0 {
		t.Fatalf("zero-cycle run measured %d packets", res.Packets)
	}
	probeNaN(t, res)
}

func TestWarmupOnlyRunHasNoNaN(t *testing.T) {
	cfg := smallLOFT()
	p := traffic.SingleFlow(cfg.Mesh(), 0, 15, 0.1, cfg.PacketFlits, cfg.FrameFlits)
	res, _, err := RunLOFT(cfg, p, RunSpec{Seed: 1, Warmup: 2000, Measure: 0})
	if err != nil {
		t.Fatal(err)
	}
	if res.Packets != 0 {
		t.Fatalf("warmup-only run measured %d packets", res.Packets)
	}
	probeNaN(t, res)
}
