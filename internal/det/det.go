// Package det provides deterministic iteration over Go maps.
//
// Go randomizes map iteration order per run, so any map range whose body
// order reaches simulation state, output bytes, or returned values breaks
// the repo's byte-identity contracts (parallel sweep ≡ sequential run,
// probe/audit exports stable across reruns). The determinism analyzer in
// internal/lint flags such ranges in simulation packages; the fix is to
// iterate over det.Keys (or det.KeysFunc for non-ordered key types), which
// materializes the key set and sorts it. This package is the single blessed
// place where a raw map range is allowed to feed an ordered result.
package det

import (
	"cmp"
	"sort"
)

// Keys returns m's keys sorted ascending.
func Keys[K cmp.Ordered, V any](m map[K]V) []K {
	out := make([]K, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// KeysFunc returns m's keys sorted by less, for key types without a total
// order of their own (structs like topo.Link).
func KeysFunc[K comparable, V any](m map[K]V, less func(a, b K) bool) []K {
	out := make([]K, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return less(out[i], out[j]) })
	return out
}
