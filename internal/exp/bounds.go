package exp

import (
	"loft/internal/analysis"
	"loft/internal/core"
	"loft/internal/route"
	"loft/internal/sweep"
	"loft/internal/traffic"
)

// DelayBoundRow compares an analytical worst-case latency bound (§5.3.1)
// with the maximum latency observed under heavy contention.
type DelayBoundRow struct {
	Arch        string
	Hops        int
	BoundCycles uint64
	MaxObserved uint64
	Holds       bool
}

// DelayBounds validates §5.3.1: LOFT's per-path bound F·WF·NumHops (512
// cycles per hop with Table 1 parameters) against the maximum network
// latency of the Case Study I victim under maximum aggression, and reports
// GSF's path-independent worst-case estimate (24000 cycles) alongside its
// observed maximum for the same scenario.
func DelayBounds(o Options) ([]DelayBoundRow, error) {
	lcfg := loftCfg(12)
	mesh := lcfg.Mesh()
	p := traffic.CaseStudyI(mesh, 0.2, 0.8, lcfg.PacketFlits, lcfg.FrameFlits)
	hops := route.Hops(mesh, p.Flows[0].Src, p.Flows[0].Dst)

	spec := o.runSpec()
	gcfg := gsfCfg()
	// Job 0 is LOFT, job 1 is GSF; each builds its own pattern copy (the
	// original pattern p stays untouched for the hops computation above).
	return sweep.Run(o.workers(), 2, func(i int) (DelayBoundRow, error) {
		pi := traffic.CaseStudyI(mesh, 0.2, 0.8, lcfg.PacketFlits, lcfg.FrameFlits)
		if i == 0 {
			_, lnet, err := core.RunLOFT(lcfg, pi, spec)
			if err != nil {
				return DelayBoundRow{}, err
			}
			lmax := lnet.NetLatency().Max()
			lbound := analysis.DelayBoundLOFT(lcfg, hops)
			return DelayBoundRow{
				Arch: "LOFT", Hops: hops, BoundCycles: lbound,
				MaxObserved: lmax, Holds: lmax <= lbound,
			}, nil
		}
		_, gnet, err := core.RunGSF(gcfg, pi, lcfg.FrameFlits, spec)
		if err != nil {
			return DelayBoundRow{}, err
		}
		gmax := gnet.NetLatency().Max()
		gbound := analysis.DelayBoundGSF(gcfg)
		return DelayBoundRow{
			Arch: "GSF", Hops: hops, BoundCycles: gbound,
			MaxObserved: gmax, Holds: gmax <= gbound,
		}, nil
	}, o.sweepOpts()...)
}
