package exp

import (
	"loft/internal/analysis"
	"loft/internal/core"
	"loft/internal/route"
	"loft/internal/traffic"
)

// DelayBoundRow compares an analytical worst-case latency bound (§5.3.1)
// with the maximum latency observed under heavy contention.
type DelayBoundRow struct {
	Arch        string
	Hops        int
	BoundCycles uint64
	MaxObserved uint64
	Holds       bool
}

// DelayBounds validates §5.3.1: LOFT's per-path bound F·WF·NumHops (512
// cycles per hop with Table 1 parameters) against the maximum network
// latency of the Case Study I victim under maximum aggression, and reports
// GSF's path-independent worst-case estimate (24000 cycles) alongside its
// observed maximum for the same scenario.
func DelayBounds(o Options) ([]DelayBoundRow, error) {
	lcfg := loftCfg(12)
	mesh := lcfg.Mesh()
	p := traffic.CaseStudyI(mesh, 0.2, 0.8, lcfg.PacketFlits, lcfg.FrameFlits)
	hops := route.Hops(mesh, p.Flows[0].Src, p.Flows[0].Dst)

	spec := o.runSpec()
	var rows []DelayBoundRow

	lres, lnet, err := core.RunLOFT(lcfg, p, spec)
	if err != nil {
		return nil, err
	}
	_ = lres
	lmax := lnet.NetLatency().Max()
	lbound := analysis.DelayBoundLOFT(lcfg, hops)
	rows = append(rows, DelayBoundRow{
		Arch: "LOFT", Hops: hops, BoundCycles: lbound,
		MaxObserved: lmax, Holds: lmax <= lbound,
	})

	p2 := traffic.CaseStudyI(mesh, 0.2, 0.8, lcfg.PacketFlits, lcfg.FrameFlits)
	_, gnet, err := core.RunGSF(gsfCfg(), p2, lcfg.FrameFlits, spec)
	if err != nil {
		return nil, err
	}
	gmax := gnet.NetLatency().Max()
	gbound := analysis.DelayBoundGSF(gsfCfg())
	rows = append(rows, DelayBoundRow{
		Arch: "GSF", Hops: hops, BoundCycles: gbound,
		MaxObserved: gmax, Holds: gmax <= gbound,
	})
	return rows, nil
}
