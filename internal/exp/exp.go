// Package exp reproduces every table and figure of the paper's evaluation
// (§5–§6). Each experiment has one runner returning the same rows/series the
// paper reports; cmd/loftexp renders them as text tables and bench_test.go
// wraps them as benchmarks. EXPERIMENTS.md records paper-vs-measured values.
package exp

import (
	"fmt"

	"loft/internal/audit"
	"loft/internal/config"
	"loft/internal/core"
	"loft/internal/fault"
	"loft/internal/perfmon"
	"loft/internal/probe"
	"loft/internal/sweep"
)

// Options tune experiment runs.
type Options struct {
	// Seed drives all traffic deterministically.
	Seed uint64
	// Quick reduces cycle counts and sweep densities for tests/benches.
	Quick bool
	// Workers bounds the number of simulations an experiment runs
	// concurrently; <= 0 selects GOMAXPROCS. Every run owns its RNGs,
	// pattern state, and network, so results are identical whatever the
	// worker count (the cmd-level -j flag lands here).
	Workers int
	// NodeWorkers shards node ticking inside each simulation across the
	// given number of OS threads (the cmd-level -jnode flag lands here).
	// 0 or 1 runs each simulation sequentially; results are byte-identical
	// either way. Compose with Workers carefully: total thread demand is
	// roughly Workers x NodeWorkers.
	NodeWorkers int
	// Probe attaches the observability layer to every simulation the
	// experiment runs. Runs reuse one probe, so events of consecutive
	// simulations interleave in the trace (each run restarts at cycle 0);
	// combine with a single-experiment selection for a readable trace.
	Probe *probe.Probe
	// Audit attaches the runtime QoS auditor to every simulation the
	// experiment runs. Like Probe, all runs share the one auditor, so
	// audited experiments are forced sequential; violations accumulate
	// across runs and the caller checks Audit.Err() at the end.
	Audit *audit.Auditor
	// Perf attaches the self-profiler to every simulation the experiment
	// runs. Like Probe/Audit, all runs share the one monitor, so profiled
	// experiments are forced sequential; stage attribution accumulates
	// across the sweep.
	Perf *perfmon.Monitor
	// Stop, when non-nil, is polled between simulation chunks; once it
	// returns true the current run ends early at a chunk boundary (the
	// cmd-level SIGINT handler lands here).
	Stop func() bool
	// Fault arms the same deterministic fault-injection plan on every
	// simulation the experiment runs (the cmd-level -fault flag lands
	// here). GSF runs accept adversary-only plans; experiments that mix
	// architectures must restrict their plans accordingly.
	Fault *fault.Plan
	// Progress, when non-nil, is called after every finished simulation
	// with (done, total) for that experiment's sweep. It must be safe for
	// concurrent use (parallel sweeps call it from worker goroutines).
	Progress func(done, total int)
}

// workers resolves the effective worker count. Probe, audit and perf runs
// are forced sequential: all runs share one probe/auditor/monitor, which is
// neither safe nor readable under concurrent emission.
func (o Options) workers() int {
	if o.Probe != nil || o.Audit != nil || o.Perf != nil {
		return 1
	}
	return sweep.Workers(o.Workers)
}

// sweepOpts translates Options into sweep.Run options.
func (o Options) sweepOpts() []sweep.Option {
	if o.Progress == nil {
		return nil
	}
	return []sweep.Option{sweep.WithProgress(o.Progress)}
}

// runSpec returns the RunSpec for the chosen fidelity.
func (o Options) runSpec() core.RunSpec {
	if o.Quick {
		return core.RunSpec{Seed: o.Seed, Warmup: 2000, Measure: 6000, Probe: o.Probe, Audit: o.Audit, Workers: o.NodeWorkers, Perf: o.Perf, Stop: o.Stop, Fault: o.Fault}
	}
	return core.RunSpec{Seed: o.Seed, Warmup: 5000, Measure: 20000, Probe: o.Probe, Audit: o.Audit, Workers: o.NodeWorkers, Perf: o.Perf, Stop: o.Stop, Fault: o.Fault}
}

// loftCfg returns the paper LOFT configuration with the given speculative
// buffer size.
func loftCfg(spec int) config.LOFT { return config.PaperLOFTSpec(spec) }

// gsfCfg returns the paper GSF configuration.
func gsfCfg() config.GSF { return config.PaperGSF() }

// archLabel names a simulated architecture in result tables.
func archLabel(arch core.Arch, spec int) string {
	if arch == core.ArchGSF {
		return "GSF"
	}
	return fmt.Sprintf("LOFT spec=%d", spec)
}
