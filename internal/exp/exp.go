// Package exp reproduces every table and figure of the paper's evaluation
// (§5–§6). Each experiment has one runner returning the same rows/series the
// paper reports; cmd/loftexp renders them as text tables and bench_test.go
// wraps them as benchmarks. EXPERIMENTS.md records paper-vs-measured values.
package exp

import (
	"fmt"

	"loft/internal/config"
	"loft/internal/core"
	"loft/internal/probe"
	"loft/internal/sweep"
)

// Options tune experiment runs.
type Options struct {
	// Seed drives all traffic deterministically.
	Seed uint64
	// Quick reduces cycle counts and sweep densities for tests/benches.
	Quick bool
	// Workers bounds the number of simulations an experiment runs
	// concurrently; <= 0 selects GOMAXPROCS. Every run owns its RNGs,
	// pattern state, and network, so results are identical whatever the
	// worker count (the cmd-level -j flag lands here).
	Workers int
	// Probe attaches the observability layer to every simulation the
	// experiment runs. Runs reuse one probe, so events of consecutive
	// simulations interleave in the trace (each run restarts at cycle 0);
	// combine with a single-experiment selection for a readable trace.
	Probe *probe.Probe
}

// workers resolves the effective worker count. Probe runs are forced
// sequential: all runs share one probe, which is neither safe nor readable
// under concurrent emission.
func (o Options) workers() int {
	if o.Probe != nil {
		return 1
	}
	return sweep.Workers(o.Workers)
}

// runSpec returns the RunSpec for the chosen fidelity.
func (o Options) runSpec() core.RunSpec {
	if o.Quick {
		return core.RunSpec{Seed: o.Seed, Warmup: 2000, Measure: 6000, Probe: o.Probe}
	}
	return core.RunSpec{Seed: o.Seed, Warmup: 5000, Measure: 20000, Probe: o.Probe}
}

// loftCfg returns the paper LOFT configuration with the given speculative
// buffer size.
func loftCfg(spec int) config.LOFT { return config.PaperLOFTSpec(spec) }

// gsfCfg returns the paper GSF configuration.
func gsfCfg() config.GSF { return config.PaperGSF() }

// archLabel names a simulated architecture in result tables.
func archLabel(arch core.Arch, spec int) string {
	if arch == core.ArchGSF {
		return "GSF"
	}
	return fmt.Sprintf("LOFT spec=%d", spec)
}
