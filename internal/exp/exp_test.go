package exp

import (
	"testing"

	"loft/internal/core"
)

func TestFig6Ordering(t *testing.T) {
	rows := Fig6FlowControl()
	if len(rows) != 3 {
		t.Fatalf("want 3 schemes, got %d", len(rows))
	}
	wormhole, gsf, frs := rows[0], rows[1], rows[2]
	// FRS achieves zero turn-around: strictly fastest; GSF's
	// one-packet-per-VC rule makes it strictly slower than wormhole.
	if !(frs.DoneCycle < wormhole.DoneCycle) {
		t.Fatalf("FRS (%d) not faster than wormhole (%d)", frs.DoneCycle, wormhole.DoneCycle)
	}
	if !(wormhole.DoneCycle < gsf.DoneCycle) {
		t.Fatalf("wormhole (%d) not faster than GSF (%d)", wormhole.DoneCycle, gsf.DoneCycle)
	}
	// After the look-ahead lead, FRS is perfectly back-to-back.
	if frs.LinkBusy != 16 || frs.DoneCycle > 16+4 {
		t.Fatalf("FRS not back-to-back: %+v", frs)
	}
}

func TestFig10EqualFairness(t *testing.T) {
	rows, err := Fig10Fairness(AllocEqual, Options{Seed: 1, Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("equal allocation should report one region, got %d", len(rows))
	}
	r := rows[0]
	if r.Flows != 63 {
		t.Fatalf("want 63 flows, got %d", r.Flows)
	}
	// Paper Fig 10a: avg 0.0156 flits/cycle/node, stdev 0.4%.
	if r.Avg < 0.012 || r.Avg > 0.02 {
		t.Fatalf("average throughput %.5f outside hotspot share band", r.Avg)
	}
	if r.StdevPct > 10 {
		t.Fatalf("throughput stdev %.1f%% too high for equal allocation", r.StdevPct)
	}
}

func TestFig10DifferentiatedRatios(t *testing.T) {
	rows, err := Fig10Fairness(AllocDiff2, Options{Seed: 2, Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("want 2 regions, got %d", len(rows))
	}
	ratio := rows[0].Avg / rows[1].Avg
	// Weights 3:1 → paper reports 0.0226 vs 0.0078 ≈ 2.9.
	if ratio < 2 || ratio > 4 {
		t.Fatalf("R1/R2 throughput ratio %.2f, want ≈ 3", ratio)
	}
}

func TestFig12IsolationShape(t *testing.T) {
	o := Options{Seed: 3, Quick: true}
	loft, err := Fig12CaseI(core.ArchLOFT, o)
	if err != nil {
		t.Fatal(err)
	}
	gsf, err := Fig12CaseI(core.ArchGSF, o)
	if err != nil {
		t.Fatal(err)
	}
	lFirst, lLast := loft[0], loft[len(loft)-1]
	gFirst, gLast := gsf[0], gsf[len(gsf)-1]

	// LOFT: the victim's latency stays within a small factor as aggressors
	// saturate; its throughput stays at the regulated 0.2.
	if lLast.Latency[0] > 4*lFirst.Latency[0]+50 {
		t.Fatalf("LOFT victim latency not isolated: %.1f -> %.1f", lFirst.Latency[0], lLast.Latency[0])
	}
	if lLast.Throughput[0] < 0.15 {
		t.Fatalf("LOFT victim throughput degraded to %.3f", lLast.Throughput[0])
	}
	// LOFT penalizes the aggressors: their latency grows far more than the
	// victim's.
	if lLast.Latency[1] < 2*lLast.Latency[0] {
		t.Fatalf("LOFT aggressor latency %.1f not penalized vs victim %.1f", lLast.Latency[1], lLast.Latency[0])
	}
	// GSF: the victim's latency degrades much more than under LOFT.
	gsfDeg := gLast.Latency[0] / (gFirst.Latency[0] + 1)
	loftDeg := lLast.Latency[0] / (lFirst.Latency[0] + 1)
	if gsfDeg < 2*loftDeg {
		t.Fatalf("GSF victim degradation %.2fx not clearly worse than LOFT %.2fx", gsfDeg, loftDeg)
	}
	// LOFT keeps the hotspot link highly utilized under attack (paper:
	// >90%; our GSF reimplementation is more efficient than the authors'
	// and also reaches high utilization, so the comparative <60% claim is
	// recorded in EXPERIMENTS.md rather than asserted).
	if lLast.Aggregate < 0.8 {
		t.Fatalf("LOFT aggregate %.3f under attack, want > 0.8", lLast.Aggregate)
	}
}

func TestFig13PathologicalShape(t *testing.T) {
	o := Options{Seed: 4, Quick: true}
	loft, err := Fig13CaseII(core.ArchLOFT, o)
	if err != nil {
		t.Fatal(err)
	}
	gsf, err := Fig13CaseII(core.ArchGSF, o)
	if err != nil {
		t.Fatal(err)
	}
	lLast := loft[len(loft)-1]
	gLast := gsf[len(gsf)-1]
	// LOFT: the stripped node exploits its private link far beyond the grey
	// nodes' saturated share.
	if lLast.Stripped < 4*lLast.Grey {
		t.Fatalf("LOFT stripped %.3f not isolated from grey %.3f", lLast.Stripped, lLast.Grey)
	}
	// GSF: global frame recycling throttles the stripped node near the grey
	// nodes' rate.
	if gLast.Stripped > gLast.Grey*6 {
		t.Fatalf("GSF stripped %.3f unexpectedly isolated from grey %.3f", gLast.Stripped, gLast.Grey)
	}
	// LOFT's stripped node clearly beats GSF's.
	if lLast.Stripped < 2*gLast.Stripped {
		t.Fatalf("LOFT stripped %.4f not above GSF stripped %.4f", lLast.Stripped, gLast.Stripped)
	}
}

func TestDelayBoundsHold(t *testing.T) {
	rows, err := DelayBounds(Options{Seed: 5, Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.Arch == "LOFT" {
			if !r.Holds {
				t.Fatalf("LOFT bound violated: observed %d > bound %d", r.MaxObserved, r.BoundCycles)
			}
			if r.BoundCycles != 512*uint64(r.Hops) {
				t.Fatalf("LOFT bound %d, want %d", r.BoundCycles, 512*r.Hops)
			}
		}
		if r.Arch == "GSF" && r.BoundCycles != 24000 {
			t.Fatalf("GSF bound %d, want 24000", r.BoundCycles)
		}
	}
}
