package exp

import (
	"fmt"

	"loft/internal/core"
	"loft/internal/stats"
	"loft/internal/sweep"
	"loft/internal/topo"
	"loft/internal/traffic"
)

// FairnessRow is one region of Fig. 10: the max/min/avg and relative
// standard deviation of per-flow accepted throughput (flits/cycle/node).
type FairnessRow struct {
	Region        string
	Max, Min, Avg float64
	StdevPct      float64
	Flows         int
}

// Allocation names the three Fig. 10 experiments.
type Allocation string

// Fig. 10 allocations: equal shares (10a), four weighted quadrants (10b),
// two weighted halves (10c).
const (
	AllocEqual Allocation = "equal"
	AllocDiff4 Allocation = "diff4"
	AllocDiff2 Allocation = "diff2"
)

// Fig10All runs all three Fig. 10 allocations, fanned across the sweep
// worker pool (each allocation is one independent simulation).
func Fig10All(o Options) (map[Allocation][]FairnessRow, error) {
	allocs := []Allocation{AllocEqual, AllocDiff4, AllocDiff2}
	rows, err := sweep.Run(o.workers(), len(allocs), func(i int) ([]FairnessRow, error) {
		return Fig10Fairness(allocs[i], o)
	}, o.sweepOpts()...)
	if err != nil {
		return nil, err
	}
	out := make(map[Allocation][]FairnessRow, len(allocs))
	for i, a := range allocs {
		out[a] = rows[i]
	}
	return out, nil
}

// Fig10Fairness reproduces Fig. 10: hotspot traffic (every node sends to
// node 63) at saturating injection, with equal or differentiated
// reservations; it reports per-region throughput summaries. The paper does
// not publish its differentiated weights; 3:2:2:1 (quadrants) and 3:1
// (halves) reproduce the reported throughput ratios.
func Fig10Fairness(alloc Allocation, o Options) ([]FairnessRow, error) {
	cfg := loftCfg(12)
	mesh := cfg.Mesh()
	hot := topo.NodeID(mesh.N() - 1)

	var weight func(topo.NodeID) int
	var region func(topo.NodeID) string
	switch alloc {
	case AllocEqual:
		weight = nil
		region = func(topo.NodeID) string { return "all" }
	case AllocDiff4:
		weight = traffic.QuadrantWeight(mesh, [4]int{3, 2, 2, 1})
		region = func(n topo.NodeID) string {
			c := mesh.Coord(n)
			q := 1
			if c.X >= mesh.K/2 {
				q++
			}
			if c.Y >= mesh.K/2 {
				q += 2
			}
			return fmt.Sprintf("R%d", q)
		}
	case AllocDiff2:
		weight = traffic.HalfWeight(mesh, 3, 1)
		region = func(n topo.NodeID) string {
			if mesh.Coord(n).X < mesh.K/2 {
				return "R1"
			}
			return "R2"
		}
	default:
		return nil, fmt.Errorf("exp: unknown allocation %q", alloc)
	}

	// Saturating offered load: every flow injects far above its share.
	p := traffic.Hotspot(mesh, hot, 0.5, cfg.PacketFlits, cfg.FrameFlits, cfg.QuantumFlits, weight)
	res, _, err := core.RunLOFT(cfg, p, o.runSpec())
	if err != nil {
		return nil, err
	}
	groups := make(map[string][]float64)
	order := []string{}
	for _, f := range p.Flows {
		r := region(f.Src)
		if _, seen := groups[r]; !seen {
			order = append(order, r)
		}
		groups[r] = append(groups[r], res.FlowRate[f.ID])
	}
	var rows []FairnessRow
	for _, r := range order {
		s := stats.Summarize(groups[r])
		rows = append(rows, FairnessRow{
			Region: r, Max: s.Max, Min: s.Min, Avg: s.Avg,
			StdevPct: s.Stdev * 100, Flows: s.N,
		})
	}
	return rows, nil
}
