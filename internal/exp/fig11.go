package exp

import (
	"fmt"

	"loft/internal/config"
	"loft/internal/core"
	"loft/internal/sweep"
	"loft/internal/topo"
	"loft/internal/traffic"
)

// LoadPoint is one x-position of a Fig. 11 curve: per-architecture average
// network packet latency (cycles) and accepted throughput
// (flits/cycle/node) at one offered load.
type LoadPoint struct {
	Load       float64
	Latency    map[string]float64
	Throughput map[string]float64
}

// Fig11Result bundles one Fig. 11 panel.
type Fig11Result struct {
	Pattern string
	Archs   []string
	Points  []LoadPoint
	// SaturationThroughput is each architecture's accepted throughput at
	// the highest offered load, normalized to GSF (the paper's right-hand
	// bar chart).
	SaturationThroughput map[string]float64
}

// Fig11 reproduces Fig. 11: average packet latency against offered load and
// total accepted throughput for (a) uniform and (b) hotspot traffic, for
// GSF and LOFT with the paper's speculative buffer sweeps ({0,4,8,12,16}
// uniform, {0,2,4,6,8} hotspot).
func Fig11(pattern string, o Options) (*Fig11Result, error) {
	var loads []float64
	var specs []int
	switch pattern {
	case "uniform":
		loads = []float64{0.02, 0.08, 0.14, 0.2, 0.26, 0.32, 0.38, 0.44, 0.5, 0.56, 0.62, 0.68}
		specs = []int{0, 4, 8, 12, 16}
	case "hotspot":
		loads = []float64{0.001, 0.003, 0.005, 0.007, 0.009, 0.011, 0.013, 0.015, 0.017}
		specs = []int{0, 2, 4, 6, 8}
	default:
		return nil, fmt.Errorf("exp: unknown Fig 11 pattern %q", pattern)
	}
	if o.Quick {
		loads = thin(loads, 2)
	}
	res := &Fig11Result{
		Pattern:              pattern,
		Archs:                []string{"GSF"},
		SaturationThroughput: make(map[string]float64),
	}
	for _, s := range specs {
		res.Archs = append(res.Archs, archLabel(core.ArchLOFT, s))
	}
	// Invariant inputs, hoisted out of the sweep: the base config, the
	// per-spec configs, the node count, and one traffic pattern per load
	// point. Patterns are read-only during runs, so every architecture at a
	// load point shares the same one.
	cfg := loftCfg(12)
	gcfg := gsfCfg()
	nodes := float64(cfg.Mesh().N())
	specCfgs := make([]config.LOFT, len(specs))
	for i, s := range specs {
		specCfgs[i] = loftCfg(s)
	}
	patterns := make([]*traffic.Pattern, len(loads))
	for i, load := range loads {
		p, err := fig11Pattern(cfg, pattern, load)
		if err != nil {
			return nil, err
		}
		patterns[i] = p
	}
	// One job per (load, architecture) cell; arch 0 is GSF, arch k is
	// LOFT spec=specs[k-1].
	archs := 1 + len(specs)
	type cell struct{ lat, thr float64 }
	cells, err := sweep.Run(o.workers(), len(loads)*archs, func(i int) (cell, error) {
		p := patterns[i/archs]
		var r core.Result
		var err error
		if a := i % archs; a == 0 {
			r, _, err = core.RunGSF(gcfg, p, cfg.FrameFlits, o.runSpec())
		} else {
			r, _, err = core.RunLOFT(specCfgs[a-1], p, o.runSpec())
		}
		if err != nil {
			return cell{}, err
		}
		return cell{lat: r.AvgNetLatency, thr: r.TotalRate / nodes}, nil
	}, o.sweepOpts()...)
	if err != nil {
		return nil, err
	}
	for li, load := range loads {
		pt := LoadPoint{
			Load:       load,
			Latency:    make(map[string]float64),
			Throughput: make(map[string]float64),
		}
		for ai, label := range res.Archs {
			c := cells[li*archs+ai]
			pt.Latency[label] = c.lat
			pt.Throughput[label] = c.thr
		}
		res.Points = append(res.Points, pt)
	}
	last := res.Points[len(res.Points)-1]
	gsfThr := last.Throughput["GSF"]
	for _, a := range res.Archs {
		if gsfThr > 0 {
			res.SaturationThroughput[a] = last.Throughput[a] / gsfThr
		}
	}
	return res, nil
}

func fig11Pattern(cfg config.LOFT, pattern string, load float64) (*traffic.Pattern, error) {
	mesh := cfg.Mesh()
	switch pattern {
	case "uniform":
		return traffic.Uniform(mesh, load, cfg.PacketFlits, cfg.FrameFlits), nil
	case "hotspot":
		hot := topo.NodeID(mesh.N() - 1)
		return traffic.Hotspot(mesh, hot, load, cfg.PacketFlits, cfg.FrameFlits, cfg.QuantumFlits, nil), nil
	}
	return nil, fmt.Errorf("exp: unknown pattern %q", pattern)
}

// thin keeps every k-th element (plus the last).
func thin(xs []float64, k int) []float64 {
	var out []float64
	for i := 0; i < len(xs); i += k {
		out = append(out, xs[i])
	}
	if out[len(out)-1] != xs[len(xs)-1] {
		out = append(out, xs[len(xs)-1])
	}
	return out
}
