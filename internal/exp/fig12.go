package exp

import (
	"loft/internal/core"
	"loft/internal/sweep"
	"loft/internal/traffic"
)

// CaseIRow is one aggressor-rate point of Fig. 12: per-flow average total
// packet latency (cycles, source queueing included) and accepted throughput
// (flits/cycle/node) for the regulated victim (node 0) and the two
// aggressors (nodes 48 and 56), all sending to hotspot node 63.
type CaseIRow struct {
	AggressorRate float64
	// Latency and Throughput are indexed victim, aggressor48, aggressor56.
	Latency    [3]float64
	Throughput [3]float64
	// Aggregate is the total accepted throughput of the three flows.
	Aggregate float64
}

// Fig12CaseI reproduces Case Study I (§6.3a), the denial-of-service
// scenario: each flow is allocated 1/4 of the link bandwidth, the victim
// injects at a constant 0.2 flits/cycle, and the aggressors sweep their
// injection rate. The paper's claim: under GSF the victim's latency
// explodes with aggressor rate while under LOFT it stays nearly flat and
// the aggressors are the ones penalized.
func Fig12CaseI(arch core.Arch, o Options) ([]CaseIRow, error) {
	rates := []float64{0.1, 0.2, 0.4, 0.6, 0.8}
	if o.Quick {
		rates = []float64{0.1, 0.4, 0.8}
	}
	cfg := loftCfg(12)
	gcfg := gsfCfg()
	return sweep.Run(o.workers(), len(rates), func(i int) (CaseIRow, error) {
		rate := rates[i]
		p := traffic.CaseStudyI(cfg.Mesh(), 0.2, rate, cfg.PacketFlits, cfg.FrameFlits)
		var res core.Result
		var err error
		if arch == core.ArchGSF {
			res, _, err = core.RunGSF(gcfg, p, cfg.FrameFlits, o.runSpec())
		} else {
			res, _, err = core.RunLOFT(cfg, p, o.runSpec())
		}
		if err != nil {
			return CaseIRow{}, err
		}
		row := CaseIRow{AggressorRate: rate}
		for j, id := range []int{0, 1, 2} {
			row.Throughput[j] = res.FlowRate[p.Flows[id].ID]
			row.Latency[j] = res.FlowLatency[p.Flows[id].ID]
			row.Aggregate += row.Throughput[j]
		}
		return row, nil
	}, o.sweepOpts()...)
}
