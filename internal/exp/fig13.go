package exp

import (
	"loft/internal/core"
	"loft/internal/sweep"
	"loft/internal/traffic"
)

// CaseIIRow is one injection-rate point of Fig. 13: the average accepted
// throughput (flits/cycle/node) of the grey nodes (column 0 sending to the
// central hotspot) and of the stripped node (sending to its uncontended
// nearest neighbor).
type CaseIIRow struct {
	Rate     float64
	Grey     float64
	Stripped float64
}

// Fig13CaseII reproduces Case Study II (§6.3b), the Fig. 1 pathological
// pattern with equal reservations for all flows. The paper's claim: GSF's
// globally-synchronized frame recycling throttles the stripped node along
// with the grey nodes, while LOFT's local status reset lets the stripped
// node exploit its private bandwidth.
func Fig13CaseII(arch core.Arch, o Options) ([]CaseIIRow, error) {
	rates := []float64{0.02, 0.04, 0.08, 0.16, 0.32, 0.64, 0.95}
	if o.Quick {
		rates = []float64{0.02, 0.16, 0.95}
	}
	cfg := loftCfg(12)
	gcfg := gsfCfg()
	return sweep.Run(o.workers(), len(rates), func(i int) (CaseIIRow, error) {
		rate := rates[i]
		p := traffic.CaseStudyII(cfg.Mesh(), rate, cfg.PacketFlits, cfg.FrameFlits)
		var res core.Result
		var err error
		if arch == core.ArchGSF {
			res, _, err = core.RunGSF(gcfg, p, cfg.FrameFlits, o.runSpec())
		} else {
			res, _, err = core.RunLOFT(cfg, p, o.runSpec())
		}
		if err != nil {
			return CaseIIRow{}, err
		}
		row := CaseIIRow{Rate: rate}
		grey := traffic.CaseStudyIIGrey(p)
		for _, id := range grey {
			row.Grey += res.FlowRate[id]
		}
		row.Grey /= float64(len(grey))
		row.Stripped = res.FlowRate[traffic.CaseStudyIIStripped(p)]
		return row, nil
	}, o.sweepOpts()...)
}
