package exp

import "fmt"

// Fig6Row is one flow-control scheme in the Fig. 6 comparison: the cycle at
// which the last of 4 back-to-back 4-flit packets finishes crossing a
// single link into a nearly-full 4-flit downstream buffer, plus the
// resulting link utilization.
type Fig6Row struct {
	Scheme      string
	DoneCycle   int
	LinkBusy    int     // cycles the link carried a data flit
	Utilization float64 // LinkBusy / DoneCycle
	Timeline    string  // one char per cycle: F = flit, L = look-ahead lead, . = stall
}

// Fig6FlowControl reproduces Fig. 6's three-way comparison of flow-control
// overhead using the figure's idealized accounting (the full dynamics are
// covered by the complete simulators; this regenerates the illustrative
// time graph): 16 flits (4 packets × 4 flits) cross one link into a 4-flit
// buffer that is close to full, with 1-cycle credit turn-around.
//
//   - Wormhole: with the buffer full, every slot reuse is stop-and-wait —
//     one cycle for the downstream to free the slot, one turn-around cycle
//     for the credit — a bubble after every flit (the paper's "F ␣ F ␣"
//     pattern).
//   - GSF: additionally, a virtual channel may hold flits of only one
//     packet, so each new packet waits for the previous packet to fully
//     drain from the downstream VC plus the turn-around ("GSF flow control
//     delay" between packet blocks).
//   - FRS: look-ahead flits pre-schedule departures against known future
//     buffer state, achieving zero turn-around: data flits move
//     back-to-back after the look-ahead leading delay.
func Fig6FlowControl() []Fig6Row {
	const (
		packets    = 4
		pktFlits   = 4
		turnaround = 1
		laLead     = 3
	)
	build := func(scheme string) Fig6Row {
		var tl []byte
		switch scheme {
		case "Wormhole":
			// First flit uses the one free slot; every subsequent flit
			// waits one drain + one turn-around bubble.
			tl = append(tl, 'F')
			for i := 1; i < packets*pktFlits; i++ {
				tl = append(tl, '.', 'F')
			}
		case "GSF":
			for p := 0; p < packets; p++ {
				if p > 0 {
					// Wait for the previous packet to drain the VC
					// (pktFlits cycles) plus the credit turn-around.
					for i := 0; i < pktFlits+turnaround; i++ {
						tl = append(tl, '.')
					}
				}
				for i := 0; i < pktFlits; i++ {
					if i > 0 {
						tl = append(tl, '.') // per-flit turn-around bubble
					}
					tl = append(tl, 'F')
				}
			}
		case "FRS (LOFT)":
			for i := 0; i < laLead; i++ {
				tl = append(tl, 'L')
			}
			for i := 0; i < packets*pktFlits; i++ {
				tl = append(tl, 'F')
			}
		}
		busy := 0
		for _, c := range tl {
			if c == 'F' {
				busy++
			}
		}
		return Fig6Row{
			Scheme:      scheme,
			DoneCycle:   len(tl),
			LinkBusy:    busy,
			Utilization: float64(busy) / float64(len(tl)),
			Timeline:    string(tl),
		}
	}
	return []Fig6Row{build("Wormhole"), build("GSF"), build("FRS (LOFT)")}
}

// String renders the row compactly.
func (r Fig6Row) String() string {
	return fmt.Sprintf("%-10s done=%3d busy=%2d util=%.2f %s", r.Scheme, r.DoneCycle, r.LinkBusy, r.Utilization, r.Timeline)
}
