//go:build race

package exp

// raceEnabled reports whether this test binary runs under the race
// detector (the race build tag is set by -race).
const raceEnabled = true
