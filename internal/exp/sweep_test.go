package exp

import (
	"reflect"
	"testing"
)

// The sweep determinism contract: every simulation owns its RNGs, pattern
// state, and network, so a parallel sweep (-j 8) must reproduce the
// sequential runner (-j 1) exactly — not approximately. These goldens gate
// the parallel experiment engine; go test ./internal/sweep -race covers the
// pool itself.

func TestFig11SweepDeterminism(t *testing.T) {
	if raceEnabled {
		// The full Fig. 11 grid is ~42 runs; under the race detector's
		// slowdown that dwarfs the rest of the suite. TestFig10SweepDeterminism
		// exercises the same shared-state surface under -race.
		t.Skip("skipped under -race; covered by TestFig10SweepDeterminism")
	}
	seq, err := Fig11("uniform", Options{Seed: 11, Quick: true, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	par, err := Fig11("uniform", Options{Seed: 11, Quick: true, Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq, par) {
		t.Fatalf("Fig11 parallel run diverged from sequential:\nseq: %+v\npar: %+v", seq, par)
	}
}

func TestFig10SweepDeterminism(t *testing.T) {
	seq, err := Fig10All(Options{Seed: 10, Quick: true, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	par, err := Fig10All(Options{Seed: 10, Quick: true, Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq, par) {
		t.Fatalf("Fig10 parallel run diverged from sequential:\nseq: %+v\npar: %+v", seq, par)
	}
}
