// Package fault is the deterministic fault-injection layer: a Plan parsed
// from a small directive language schedules timed faults — transient
// link-down windows, probabilistic flit loss, credit-return stalls, whole
// router stalls and adversarial flows exceeding their reservation — against
// named simulator surfaces. Faults are applied by the owning node during
// its compute phase using node-local state and a dedicated per-node RNG
// stream (sim.SeedFor over a fault-specific component id), so a faulted run
// is byte-reproducible regardless of worker count, exactly like a clean
// one.
//
// Degradation is graceful by construction: a denied forward leaves the
// quantum's reservation entry live, so the existing overdue/emergent path
// retries it on a later slot; a stalled credit return is deferred and
// replayed in order, which the cumulative-ledger semantics of
// lsf.Table.ReturnCredit absorb exactly (a late tag increments the whole
// live window). Nothing is silently dropped — every injected fault, lost
// flit and successful retry is counted.
package fault

import (
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Kind enumerates the fault surfaces a Plan can target.
type Kind uint8

const (
	// LinkDown disables an output link for a cycle window: every forward
	// through it is denied, so booked quanta go overdue and retry.
	LinkDown Kind = iota
	// FlitLoss denies forwards through a link with a per-attempt Bernoulli
	// probability inside the window (transient loss; the quantum retries).
	FlitLoss
	// CreditStall withholds virtual-credit returns arriving on a link's
	// reverse channel for the window, releasing them in order afterwards.
	// The scheduler sees understated credit and throttles conservatively.
	CreditStall
	// RouterStall freezes a node's switch pass (data forwarding and NI
	// injection) for the window; bookings and look-aheads continue.
	RouterStall
	// Adversary scales a flow's injection rate past its reservation for
	// the window. The flow is quarantined: the auditor swaps its
	// delay-bound check for a throttle check against Cap.
	Adversary
)

// String returns the directive name of the kind.
func (k Kind) String() string {
	switch k {
	case LinkDown:
		return "link-down"
	case FlitLoss:
		return "flit-loss"
	case CreditStall:
		return "credit-stall"
	case RouterStall:
		return "router-stall"
	case Adversary:
		return "adversary"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Link-fault direction indices. The first five match topo.Dir (north, east,
// south, west, eject = the ejection link at topo.Local); DirInject is the
// NI→router injection link, which runs the same framed reservation table as
// any router output.
const (
	DirNorth = iota
	DirEast
	DirSouth
	DirWest
	DirEject
	DirInject
	NumDirs
)

var dirNames = [NumDirs]string{"north", "east", "south", "west", "eject", "inject"}

// DirName renders a direction index for display. Out-of-range values —
// including the -1 "not applicable" encoding probe events use — render
// as "-".
func DirName(d int) string {
	if d < 0 || d >= NumDirs {
		return "-"
	}
	return dirNames[d]
}

func dirByName(s string) (int, bool) {
	for i, n := range dirNames {
		if n == s {
			return i, true
		}
	}
	return 0, false
}

// Event is one scheduled fault. The active window is [From, To) in cycles;
// To == 0 means open-ended (active until the run ends).
type Event struct {
	Kind   Kind
	Node   int     // target node (all kinds except Adversary)
	Dir    int     // target link direction (LinkDown, FlitLoss, CreditStall)
	Flow   int     // target flow (Adversary)
	Rate   float64 // FlitLoss: per-attempt loss probability
	Factor float64 // Adversary: injection-rate multiplier
	Cap    float64 // Adversary: quarantine throttle cap, flits/cycle
	From   uint64
	To     uint64
}

// active reports whether the event's window contains cycle now.
func (e Event) active(now uint64) bool {
	return now >= e.From && (e.To == 0 || now < e.To)
}

// String renders the event in canonical directive form (parse round-trips).
func (e Event) String() string {
	var b strings.Builder
	b.WriteString(e.Kind.String())
	switch e.Kind {
	case RouterStall:
		fmt.Fprintf(&b, " node=%d", e.Node)
	case Adversary:
		fmt.Fprintf(&b, " flow=%d factor=%s cap=%s", e.Flow, formatFloat(e.Factor), formatFloat(e.Cap))
	default:
		fmt.Fprintf(&b, " node=%d dir=%s", e.Node, dirNames[e.Dir])
		if e.Kind == FlitLoss {
			fmt.Fprintf(&b, " rate=%s", formatFloat(e.Rate))
		}
	}
	fmt.Fprintf(&b, " from=%d", e.From)
	if e.To != 0 {
		fmt.Fprintf(&b, " to=%d", e.To)
	}
	return b.String()
}

func formatFloat(f float64) string { return strconv.FormatFloat(f, 'g', -1, 64) }

// Plan is a parsed, validated fault schedule. The zero Plan (or nil) arms
// nothing.
type Plan struct {
	Events []Event
}

// Parse reads a fault plan from its directive language: one directive per
// line or semicolon-separated, '#' starts a comment. Directives:
//
//	link-down    node=N dir=D from=C [to=C]
//	flit-loss    node=N dir=D rate=P from=C [to=C]
//	credit-stall node=N dir=D from=C [to=C]
//	router-stall node=N from=C [to=C]
//	adversary    flow=F factor=X [cap=R] from=C [to=C]
//
// dir is one of north, east, south, west, eject, inject. Windows are
// [from, to) in cycles; omitting to leaves the fault active to the end of
// the run. adversary's cap defaults to 0.5 flits/cycle.
func Parse(spec string) (*Plan, error) {
	p := &Plan{}
	for _, line := range strings.FieldsFunc(spec, func(r rune) bool { return r == '\n' || r == ';' }) {
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		ev, err := parseEvent(fields)
		if err != nil {
			return nil, fmt.Errorf("fault: %q: %w", strings.TrimSpace(line), err)
		}
		p.Events = append(p.Events, ev)
	}
	if len(p.Events) == 0 {
		return nil, fmt.Errorf("fault: empty plan")
	}
	return p, nil
}

// Load parses a plan from the argument of a -fault flag: if arg names an
// existing file its contents are the spec, otherwise arg itself is the
// inline spec.
func Load(arg string) (*Plan, error) {
	if st, err := os.Stat(arg); err == nil && !st.IsDir() {
		data, err := os.ReadFile(arg)
		if err != nil {
			return nil, fmt.Errorf("fault: %s: %w", arg, err)
		}
		return Parse(string(data))
	}
	return Parse(arg)
}

func parseEvent(fields []string) (Event, error) {
	ev := Event{Dir: -1, Node: -1, Flow: -1, Cap: 0.5}
	switch fields[0] {
	case "link-down":
		ev.Kind = LinkDown
	case "flit-loss":
		ev.Kind = FlitLoss
	case "credit-stall":
		ev.Kind = CreditStall
	case "router-stall":
		ev.Kind = RouterStall
	case "adversary":
		ev.Kind = Adversary
	default:
		return ev, fmt.Errorf("unknown fault kind %q", fields[0])
	}
	seen := map[string]bool{}
	for _, f := range fields[1:] {
		key, val, ok := strings.Cut(f, "=")
		if !ok {
			return ev, fmt.Errorf("malformed field %q (want key=value)", f)
		}
		if seen[key] {
			return ev, fmt.Errorf("duplicate field %q", key)
		}
		seen[key] = true
		var err error
		switch key {
		case "node":
			ev.Node, err = strconv.Atoi(val)
		case "dir":
			d, ok := dirByName(val)
			if !ok {
				return ev, fmt.Errorf("unknown dir %q (want north|east|south|west|eject|inject)", val)
			}
			ev.Dir = d
		case "flow":
			ev.Flow, err = strconv.Atoi(val)
		case "rate":
			ev.Rate, err = strconv.ParseFloat(val, 64)
		case "factor":
			ev.Factor, err = strconv.ParseFloat(val, 64)
		case "cap":
			ev.Cap, err = strconv.ParseFloat(val, 64)
		case "from":
			ev.From, err = strconv.ParseUint(val, 10, 64)
		case "to":
			ev.To, err = strconv.ParseUint(val, 10, 64)
		default:
			err = fmt.Errorf("unknown field %q", key)
		}
		if err != nil {
			return ev, fmt.Errorf("field %q: %w", f, err)
		}
	}
	return ev, ev.check(seen)
}

// check enforces per-kind required and forbidden fields at parse time, so
// the error names the offending directive rather than surfacing mid-run.
func (e Event) check(seen map[string]bool) error {
	need := func(keys ...string) error {
		for _, k := range keys {
			if !seen[k] {
				return fmt.Errorf("%s requires %s=", e.Kind, k)
			}
		}
		return nil
	}
	forbid := func(keys ...string) error {
		for _, k := range keys {
			if seen[k] {
				return fmt.Errorf("%s does not take %s=", e.Kind, k)
			}
		}
		return nil
	}
	if e.To != 0 && e.To <= e.From {
		return fmt.Errorf("window [%d,%d) is empty", e.From, e.To)
	}
	switch e.Kind {
	case LinkDown, CreditStall:
		if err := need("node", "dir", "from"); err != nil {
			return err
		}
		if e.Kind == CreditStall && e.Dir == DirInject {
			// NI-side credit returns ride the look-ahead booking path and
			// have no reverse channel to stall; use router-stall instead.
			return fmt.Errorf("credit-stall does not support dir=inject")
		}
		return forbid("rate", "factor", "cap", "flow")
	case FlitLoss:
		if err := need("node", "dir", "rate", "from"); err != nil {
			return err
		}
		if e.Rate <= 0 || e.Rate > 1 {
			return fmt.Errorf("flit-loss rate %g outside (0,1]", e.Rate)
		}
		return forbid("factor", "cap", "flow")
	case RouterStall:
		if err := need("node", "from"); err != nil {
			return err
		}
		return forbid("dir", "rate", "factor", "cap", "flow")
	case Adversary:
		if err := need("flow", "factor", "from"); err != nil {
			return err
		}
		if e.Factor <= 0 {
			return fmt.Errorf("adversary factor %g must be positive", e.Factor)
		}
		if e.Cap <= 0 {
			return fmt.Errorf("adversary cap %g must be positive", e.Cap)
		}
		return forbid("node", "dir", "rate")
	}
	return nil
}

// Validate checks every event against the simulated topology: node ids in
// [0, nodes), flow ids in [0, flows).
func (p *Plan) Validate(nodes, flows int) error {
	if p == nil {
		return nil
	}
	for _, e := range p.Events {
		if e.Kind == Adversary {
			if e.Flow < 0 || e.Flow >= flows {
				return fmt.Errorf("fault: %s: flow %d outside [0,%d)", e, e.Flow, flows)
			}
			continue
		}
		if e.Node < 0 || e.Node >= nodes {
			return fmt.Errorf("fault: %s: node %d outside [0,%d)", e, e.Node, nodes)
		}
	}
	return nil
}

// String renders the whole plan in canonical single-line form: directives
// joined by "; ", suitable for a run manifest (Parse round-trips it).
func (p *Plan) String() string {
	if p == nil || len(p.Events) == 0 {
		return ""
	}
	parts := make([]string, len(p.Events))
	for i, e := range p.Events {
		parts[i] = e.String()
	}
	return strings.Join(parts, "; ")
}

// Adversarial reports whether the plan contains only Adversary events
// (the subset architectures without link-level fault surfaces support).
func (p *Plan) Adversarial() bool {
	if p == nil {
		return true
	}
	for _, e := range p.Events {
		if e.Kind != Adversary {
			return false
		}
	}
	return true
}

// Quarantine pairs a misbehaving flow with its throttle cap.
type Quarantine struct {
	Flow int
	Cap  float64 // flits/cycle the auditor allows the flow to accept
}

// Quarantines lists the flows the plan drives adversarially, with the
// tightest cap named for each, sorted by flow id (deterministic iteration).
func (p *Plan) Quarantines() []Quarantine {
	if p == nil {
		return nil
	}
	caps := map[int]float64{}
	for _, e := range p.Events {
		if e.Kind != Adversary {
			continue
		}
		if c, ok := caps[e.Flow]; !ok || e.Cap < c {
			caps[e.Flow] = e.Cap
		}
	}
	out := make([]Quarantine, 0, len(caps))
	for f, c := range caps {
		out = append(out, Quarantine{Flow: f, Cap: c})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Flow < out[j].Flow })
	return out
}

// RateScale returns the injection-rate multiplier for flow at cycle now:
// the product of every active adversary event targeting it. Pure and
// node-local, so injectors can call it from the compute phase.
func (p *Plan) RateScale(flow int, now uint64) float64 {
	scale := 1.0
	for _, e := range p.Events {
		if e.Kind == Adversary && e.Flow == flow && e.active(now) {
			scale *= e.Factor
		}
	}
	return scale
}

// HasAdversary reports whether any adversary event exists (whether
// injectors need the rate-scale hook at all).
func (p *Plan) HasAdversary() bool {
	if p == nil {
		return false
	}
	for _, e := range p.Events {
		if e.Kind == Adversary {
			return true
		}
	}
	return false
}

// ActiveAt counts the events whose window contains cycle now (the
// perfmon gauge behind loft.fault.active).
func (p *Plan) ActiveAt(now uint64) int {
	if p == nil {
		return 0
	}
	k := 0
	for _, e := range p.Events {
		if e.active(now) {
			k++
		}
	}
	return k
}
