package fault

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestParseRoundTrip(t *testing.T) {
	spec := `
		# chaos plan for the dos-isolation scenario
		link-down node=23 dir=south from=2000 to=2600
		flit-loss node=55 dir=south rate=0.02 from=1000 to=5000; router-stall node=7 from=3000 to=3064
		credit-stall node=15 dir=east from=100 to=400
		adversary flow=1 factor=4 cap=0.5 from=0
	`
	p, err := Parse(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Events) != 5 {
		t.Fatalf("parsed %d events, want 5", len(p.Events))
	}
	canon := p.String()
	p2, err := Parse(canon)
	if err != nil {
		t.Fatalf("canonical form %q does not re-parse: %v", canon, err)
	}
	if p2.String() != canon {
		t.Fatalf("canonical form is not a fixed point:\n  first  %q\n  second %q", canon, p2.String())
	}
	if len(p2.Events) != len(p.Events) {
		t.Fatalf("round trip changed event count: %d != %d", len(p2.Events), len(p.Events))
	}
	for i := range p.Events {
		if p.Events[i] != p2.Events[i] {
			t.Errorf("event %d changed in round trip:\n  %+v\n  %+v", i, p.Events[i], p2.Events[i])
		}
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		spec, want string
	}{
		{"", "empty plan"},
		{"melt-cpu node=1 from=0", "unknown fault kind"},
		{"link-down node=1 from=0", "requires dir="},
		{"link-down node=1 dir=up from=0", "unknown dir"},
		{"link-down dir=south from=0", "requires node="},
		{"link-down node=1 dir=south", "requires from="},
		{"link-down node=1 dir=south from=100 to=100", "window [100,100) is empty"},
		{"link-down node=1 dir=south from=100 to=50", "window [100,50) is empty"},
		{"link-down node=1 dir=south from=0 rate=0.5", "does not take rate="},
		{"link-down node=1 dir=south from=0 node=2", "duplicate field"},
		{"link-down node=x dir=south from=0", "invalid syntax"},
		{"link-down node=1 dir=south from=0 turbo=9", "unknown field"},
		{"link-down node=1 dir south from=0", "want key=value"},
		{"flit-loss node=1 dir=south from=0", "requires rate="},
		{"flit-loss node=1 dir=south rate=1.5 from=0", "outside (0,1]"},
		{"flit-loss node=1 dir=south rate=0 from=0", "outside (0,1]"},
		{"credit-stall node=1 dir=inject from=0", "does not support dir=inject"},
		{"router-stall node=1 dir=south from=0", "does not take dir="},
		{"adversary flow=1 from=0", "requires factor="},
		{"adversary flow=1 factor=0 from=0", "must be positive"},
		{"adversary flow=1 factor=2 cap=0 from=0", "must be positive"},
		{"adversary flow=1 factor=2 node=3 from=0", "does not take node="},
	}
	for _, c := range cases {
		if _, err := Parse(c.spec); err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("Parse(%q) error = %v, want substring %q", c.spec, err, c.want)
		}
	}
}

func TestLoadFileAndInline(t *testing.T) {
	spec := "link-down node=3 dir=east from=10 to=20"
	p, err := Load(spec)
	if err != nil {
		t.Fatalf("inline Load: %v", err)
	}
	path := filepath.Join(t.TempDir(), "plan.fault")
	if err := os.WriteFile(path, []byte(spec+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	pf, err := Load(path)
	if err != nil {
		t.Fatalf("file Load: %v", err)
	}
	if p.String() != pf.String() {
		t.Fatalf("inline and file plans differ: %q vs %q", p.String(), pf.String())
	}
}

func TestValidate(t *testing.T) {
	p, err := Parse("link-down node=63 dir=south from=0; adversary flow=2 factor=2 from=0")
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(64, 3); err != nil {
		t.Fatalf("valid plan rejected: %v", err)
	}
	if err := p.Validate(63, 3); err == nil || !strings.Contains(err.Error(), "node 63") {
		t.Errorf("node range: err = %v", err)
	}
	if err := p.Validate(64, 2); err == nil || !strings.Contains(err.Error(), "flow 2") {
		t.Errorf("flow range: err = %v", err)
	}
	var nilPlan *Plan
	if err := nilPlan.Validate(1, 1); err != nil {
		t.Errorf("nil plan Validate: %v", err)
	}
}

func TestWindows(t *testing.T) {
	e := Event{From: 100, To: 200}
	for _, c := range []struct {
		now  uint64
		want bool
	}{{99, false}, {100, true}, {199, true}, {200, false}} {
		if got := e.active(c.now); got != c.want {
			t.Errorf("active(%d) = %v, want %v", c.now, got, c.want)
		}
	}
	open := Event{From: 50}
	if !open.active(1 << 40) {
		t.Error("open-ended window should stay active")
	}
	if open.active(49) {
		t.Error("open-ended window active before From")
	}
}

func TestNodeCompile(t *testing.T) {
	p, err := Parse(`
		link-down node=5 dir=south from=100 to=200
		router-stall node=5 from=300 to=400
		adversary flow=7 factor=3 from=50 to=60
	`)
	if err != nil {
		t.Fatal(err)
	}
	if n := p.Node(4, nil, 1); n != nil {
		t.Error("untargeted node should compile to nil")
	}
	n := p.Node(5, nil, 1)
	if n == nil {
		t.Fatal("targeted node compiled to nil")
	}
	if !n.LinkDown(DirSouth, 150) || n.LinkDown(DirSouth, 200) || n.LinkDown(DirNorth, 150) {
		t.Error("LinkDown window wrong")
	}
	if !n.DenyForward(DirSouth, 100) || n.DenyForward(DirSouth, 99) {
		t.Error("DenyForward window wrong")
	}
	if !n.RouterStalled(350) || n.RouterStalled(400) {
		t.Error("RouterStalled window wrong")
	}
	// Node 9 sources flow 7: it gets the adversary timeline edges only.
	src := p.Node(9, []int{7}, 1)
	if src == nil {
		t.Fatal("adversary source node compiled to nil")
	}
	if src.LinkDown(DirSouth, 150) {
		t.Error("adversary source must not inherit link faults")
	}
	edges := src.Edges(50)
	if len(edges) != 1 || edges[0].Up || edges[0].Ev.Kind != Adversary {
		t.Fatalf("edges at 50 = %+v, want one adversary down edge", edges)
	}
	edges = src.Edges(60)
	if len(edges) != 1 || !edges[0].Up {
		t.Fatalf("edges at 60 = %+v, want one up edge", edges)
	}
}

func TestEdgesTimeline(t *testing.T) {
	p, err := Parse(`
		link-down node=0 dir=east from=20 to=30
		flit-loss node=0 dir=west rate=0.5 from=20 to=25
		credit-stall node=0 dir=east from=10
	`)
	if err != nil {
		t.Fatal(err)
	}
	n := p.Node(0, nil, 42)
	var got []Edge
	for now := uint64(0); now < 40; now++ {
		got = append(got, n.Edges(now)...)
	}
	want := []struct {
		cycle uint64
		kind  Kind
		up    bool
	}{
		{10, CreditStall, false},
		{20, LinkDown, false},
		{20, FlitLoss, false},
		{25, FlitLoss, true},
		{30, LinkDown, true},
	}
	if len(got) != len(want) {
		t.Fatalf("saw %d edges, want %d: %+v", len(got), len(want), got)
	}
	for i, w := range want {
		if got[i].Cycle != w.cycle || got[i].Ev.Kind != w.kind || got[i].Up != w.up {
			t.Errorf("edge %d = {cycle %d %s up=%v}, want {cycle %d %s up=%v}",
				i, got[i].Cycle, got[i].Ev.Kind, got[i].Up, w.cycle, w.kind, w.up)
		}
	}
}

func TestLoseFlitDeterministic(t *testing.T) {
	p, err := Parse("flit-loss node=0 dir=south rate=0.5 from=0 to=1000")
	if err != nil {
		t.Fatal(err)
	}
	draw := func() []bool {
		n := p.Node(0, nil, 77)
		var out []bool
		for now := uint64(0); now < 1000; now++ {
			out = append(out, n.LoseFlit(DirSouth, now))
		}
		return out
	}
	a, b := draw(), draw()
	losses := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("draw %d differs between identically seeded nodes", i)
		}
		if a[i] {
			losses++
		}
	}
	if losses < 400 || losses > 600 {
		t.Errorf("rate=0.5 over 1000 draws lost %d, far from expectation", losses)
	}
	// Outside the window no RNG is consumed and nothing is lost.
	n := p.Node(0, nil, 77)
	if n.LoseFlit(DirSouth, 5000) {
		t.Error("loss outside window")
	}
}

func TestCreditDeferral(t *testing.T) {
	p, err := Parse("credit-stall node=1 dir=east from=100 to=200")
	if err != nil {
		t.Fatal(err)
	}
	n := p.Node(1, nil, 1)
	if n.StallCredits(DirEast, 99) || !n.StallCredits(DirEast, 100) || n.StallCredits(DirEast, 200) {
		t.Fatal("StallCredits window wrong")
	}
	n.DeferCredits(DirEast, []uint64{7, 8})
	n.DeferCredits(DirEast, []uint64{9})
	if n.Deferred(DirEast) != 3 {
		t.Fatalf("deferred %d tags, want 3", n.Deferred(DirEast))
	}
	if got := n.ReleaseCredits(DirEast, 150); got != nil {
		t.Fatalf("released %v inside the stall window", got)
	}
	got := n.ReleaseCredits(DirEast, 200)
	if len(got) != 3 || got[0] != 7 || got[1] != 8 || got[2] != 9 {
		t.Fatalf("released %v, want [7 8 9] in order", got)
	}
	if n.Deferred(DirEast) != 0 {
		t.Error("queue not emptied after release")
	}
	if n.ReleaseCredits(DirEast, 201) != nil {
		t.Error("second release returned tags")
	}
}

func TestRateScaleAndQuarantines(t *testing.T) {
	p, err := Parse(`
		adversary flow=1 factor=4 cap=0.5 from=100 to=200
		adversary flow=1 factor=2 cap=0.3 from=150 to=250
		adversary flow=2 factor=8 from=0
	`)
	if err != nil {
		t.Fatal(err)
	}
	if s := p.RateScale(1, 50); s != 1 {
		t.Errorf("scale before window = %g", s)
	}
	if s := p.RateScale(1, 120); s != 4 {
		t.Errorf("scale in first window = %g", s)
	}
	if s := p.RateScale(1, 175); s != 8 {
		t.Errorf("overlapping windows should multiply: %g", s)
	}
	if s := p.RateScale(0, 120); s != 1 {
		t.Errorf("untargeted flow scaled: %g", s)
	}
	qs := p.Quarantines()
	if len(qs) != 2 || qs[0] != (Quarantine{Flow: 1, Cap: 0.3}) || qs[1] != (Quarantine{Flow: 2, Cap: 0.5}) {
		t.Fatalf("Quarantines() = %+v", qs)
	}
	if !p.HasAdversary() {
		t.Error("HasAdversary false")
	}
	if !p.Adversarial() {
		// every event here is an adversary event, so Adversarial must hold
		t.Error("Adversarial() = false for an all-adversary plan")
	}
}

func TestAdversarialClassification(t *testing.T) {
	mixed, err := Parse("adversary flow=1 factor=2 from=0; link-down node=0 dir=east from=0")
	if err != nil {
		t.Fatal(err)
	}
	if mixed.Adversarial() {
		t.Error("mixed plan classified adversarial-only")
	}
	if mixed.ActiveAt(0) != 2 || mixed.ActiveAt(1<<30) != 2 {
		t.Errorf("ActiveAt open windows = %d, %d", mixed.ActiveAt(0), mixed.ActiveAt(1<<30))
	}
	var nilPlan *Plan
	if !nilPlan.Adversarial() || nilPlan.HasAdversary() || nilPlan.ActiveAt(0) != 0 {
		t.Error("nil plan classification wrong")
	}
}
