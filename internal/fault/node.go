package fault

import "loft/internal/sim"

// rngStreamBase offsets the fault layer's per-node RNG streams away from
// the traffic injectors' (which use sim.SeedFor(seed, nodeID) directly), so
// arming a plan never perturbs clean-path draws.
const rngStreamBase = 1 << 20

// deferCap pre-sizes each direction's deferred-credit queue. A window slot
// books at most one quantum per output table, so even long stall windows
// accumulate tags slowly; the append grows past this only under pathological
// plans.
const deferCap = 64

// Edge is one fault window boundary on this node's timeline: the cycle a
// fault arms (Up == false) or lifts (Up == true). The owning node emits
// these as probe events, so chaos runs decompose like clean ones.
type Edge struct {
	Cycle uint64
	Ev    Event
	Up    bool
}

// Node is the per-node fault runtime compiled from a Plan: the events
// targeting one mesh node, a dedicated RNG stream for its loss draws, the
// deferred-credit queues, and the precompiled edge timeline. All state is
// owned by the node that ticks it, so every method is compute-phase safe
// and worker-count independent.
type Node struct {
	rng *sim.RNG

	// Per-direction link fault lists (indexes DirNorth..DirInject). Plans
	// name a handful of events, so linear scans beat any index.
	down  [NumDirs][]Event
	loss  [NumDirs][]Event
	stall [NumDirs][]Event
	// router holds RouterStall windows for this node.
	router []Event

	edges []Edge
	next  int // cursor into edges; cycles only move forward

	deferred [NumDirs][]uint64
}

// Node compiles the plan's per-node runtime for mesh node id: its targeted
// link and router faults plus timeline edges for adversary events whose
// source NI lives here (srcFlows). Returns nil when nothing targets the
// node, preserving the clean-path `fault == nil` fast check.
func (p *Plan) Node(id int, srcFlows []int, seed uint64) *Node {
	if p == nil {
		return nil
	}
	src := func(flow int) bool {
		for _, f := range srcFlows {
			if f == flow {
				return true
			}
		}
		return false
	}
	var n *Node
	ensure := func() *Node {
		if n == nil {
			n = &Node{rng: sim.NewRNG(sim.SeedFor(seed, rngStreamBase+id))}
			for d := range n.deferred {
				n.deferred[d] = make([]uint64, 0, deferCap)
			}
		}
		return n
	}
	for _, e := range p.Events {
		switch {
		case e.Kind == Adversary:
			if !src(e.Flow) {
				continue
			}
			ensure().addEdges(e)
		case e.Node != id:
			continue
		case e.Kind == LinkDown:
			m := ensure()
			m.down[e.Dir] = append(m.down[e.Dir], e)
			m.addEdges(e)
		case e.Kind == FlitLoss:
			m := ensure()
			m.loss[e.Dir] = append(m.loss[e.Dir], e)
			m.addEdges(e)
		case e.Kind == CreditStall:
			m := ensure()
			m.stall[e.Dir] = append(m.stall[e.Dir], e)
			m.addEdges(e)
		case e.Kind == RouterStall:
			m := ensure()
			m.router = append(m.router, e)
			m.addEdges(e)
		}
	}
	if n != nil {
		n.sortEdges()
	}
	return n
}

func (n *Node) addEdges(e Event) {
	n.edges = append(n.edges, Edge{Cycle: e.From, Ev: e})
	if e.To != 0 {
		n.edges = append(n.edges, Edge{Cycle: e.To, Ev: e, Up: true})
	}
}

// sortEdges orders the timeline by cycle, insertion-stable so equal-cycle
// edges replay in plan order.
func (n *Node) sortEdges() {
	es := n.edges
	for i := 1; i < len(es); i++ {
		for j := i; j > 0 && es[j].Cycle < es[j-1].Cycle; j-- {
			es[j], es[j-1] = es[j-1], es[j]
		}
	}
}

// Edges returns the fault window boundaries crossing at cycle now. The
// cursor only moves forward: calls must be made with non-decreasing cycles
// (one per node tick). The returned slice aliases the precompiled timeline.
//
//loft:hotpath
func (n *Node) Edges(now uint64) []Edge {
	for n.next < len(n.edges) && n.edges[n.next].Cycle < now {
		n.next++
	}
	lo := n.next
	hi := lo
	for hi < len(n.edges) && n.edges[hi].Cycle == now {
		hi++
	}
	n.next = hi
	return n.edges[lo:hi]
}

// LinkDown reports whether output direction d is inside a link-down window.
//
//loft:hotpath
func (n *Node) LinkDown(d int, now uint64) bool {
	for _, e := range n.down[d] {
		if e.active(now) {
			return true
		}
	}
	return false
}

// LoseFlit draws the loss decision for one forward attempt through
// direction d. The RNG is consumed only inside an active loss window, and
// only for attempts that actually reach the link — both functions of this
// node's own deterministic tick sequence, so draws replay identically under
// any worker count.
//
//loft:hotpath
func (n *Node) LoseFlit(d int, now uint64) bool {
	for _, e := range n.loss[d] {
		if e.active(now) && n.rng.Bernoulli(e.Rate) {
			return true
		}
	}
	return false
}

// DenyForward reports whether a forward through direction d at cycle now is
// denied by an active fault — a link-down window (checked first, no RNG
// draw) or a flit-loss draw.
//
//loft:hotpath
func (n *Node) DenyForward(d int, now uint64) bool {
	return n.LinkDown(d, now) || n.LoseFlit(d, now)
}

// RouterStalled reports whether the node's switch pass is frozen at now.
//
//loft:hotpath
func (n *Node) RouterStalled(now uint64) bool {
	for _, e := range n.router {
		if e.active(now) {
			return true
		}
	}
	return false
}

// StallCredits reports whether credit returns arriving on direction d's
// reverse channel are withheld at cycle now.
//
//loft:hotpath
func (n *Node) StallCredits(d int, now uint64) bool {
	for _, e := range n.stall[d] {
		if e.active(now) {
			return true
		}
	}
	return false
}

// DeferCredits withholds a batch of virtual-credit tags for direction d.
// The tags are copied: wire messages alias the sender's double-buffered
// accumulators, which recycle one cycle later.
//
//loft:hotpath
func (n *Node) DeferCredits(d int, tags []uint64) {
	n.deferred[d] = append(n.deferred[d], tags...)
}

// ReleaseCredits returns the deferred tags for direction d once its stall
// window has passed, in arrival order, and empties the queue. The returned
// slice aliases the queue: consume it before the next DeferCredits call.
// Late application is exact — lsf.Table.ReturnCredit treats a stale tag as
// a whole-window increment and new slots inherit cumulative credit, so each
// deferred return still counts exactly once.
//
//loft:hotpath
func (n *Node) ReleaseCredits(d int, now uint64) []uint64 {
	q := n.deferred[d]
	if len(q) == 0 || n.StallCredits(d, now) {
		return nil
	}
	n.deferred[d] = q[:0]
	return q
}

// Deferred reports the number of withheld credit tags for direction d
// (diagnostics and tests).
func (n *Node) Deferred(d int) int { return len(n.deferred[d]) }
