package flit

import (
	"fmt"

	"loft/internal/topo"
)

// Wire encoding of look-ahead flits (§5.1.1): the paper packs destination
// (6 bits), flow number (6 bits), quantum number (10 bits) and departure time
// (10 bits) into a 32-bit payload carried on a 64-bit look-ahead link. We
// reproduce that layout exactly; the codec is exercised by the router model
// so that field-width truncation behaves like the hardware (times and
// quantum numbers wrap modulo 2^10 and are reconstructed against the current
// cycle at the receiver).
const (
	dstBits     = 6
	flowBits    = 6
	quantumBits = 10
	departBits  = 10

	dstShift     = 0
	flowShift    = dstShift + dstBits
	quantumShift = flowShift + flowBits
	departShift  = quantumShift + quantumBits

	quantumMask = (1 << quantumBits) - 1
	departMask  = (1 << departBits) - 1
)

// EncodeLookahead packs l into the 32-bit wire payload. It returns an error
// when a field does not fit its width (a configuration bug: e.g. more than 64
// nodes or flows with the paper's field widths).
func EncodeLookahead(l Lookahead) (uint32, error) {
	if l.Dst < 0 || int(l.Dst) >= 1<<dstBits {
		return 0, fmt.Errorf("flit: destination %d exceeds %d-bit field", l.Dst, dstBits)
	}
	if l.Flow < 0 || int(l.Flow) >= 1<<flowBits {
		return 0, fmt.Errorf("flit: flow %d exceeds %d-bit field", l.Flow, flowBits)
	}
	w := uint32(l.Dst)<<dstShift |
		uint32(l.Flow)<<flowShift |
		uint32(l.Quantum&quantumMask)<<quantumShift |
		uint32(l.DepartPrev&departMask)<<departShift
	return w, nil
}

// DecodeLookahead unpacks a wire payload. now anchors the 10-bit wrapped
// departure time and refQuantum anchors the 10-bit wrapped quantum number,
// reconstructing the nearest absolute values (the hardware keeps the same
// small counters and compares modulo the field width).
func DecodeLookahead(w uint32, now uint64, refQuantum uint64) Lookahead {
	return Lookahead{
		Dst:        topo.NodeID(w >> dstShift & ((1 << dstBits) - 1)),
		Flow:       FlowID(w >> flowShift & ((1 << flowBits) - 1)),
		Quantum:    unwrap(uint64(w>>quantumShift&quantumMask), refQuantum, quantumBits),
		DepartPrev: unwrap(uint64(w>>departShift&departMask), now, departBits),
	}
}

// unwrap reconstructs the absolute value whose low `bits` equal v and which
// is nearest to ref.
func unwrap(v, ref uint64, bits uint) uint64 {
	mod := uint64(1) << bits
	base := ref &^ (mod - 1)
	cand := base | v
	// Choose among cand-mod, cand, cand+mod the one closest to ref.
	best := cand
	bestD := absDiff(cand, ref)
	if cand >= mod {
		if d := absDiff(cand-mod, ref); d < bestD {
			best, bestD = cand-mod, d
		}
	}
	if d := absDiff(cand+mod, ref); d < bestD {
		best = cand + mod
	}
	return best
}

func absDiff(a, b uint64) uint64 {
	if a > b {
		return a - b
	}
	return b - a
}
