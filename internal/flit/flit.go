// Package flit defines the protocol units shared by all network models:
// flows, packets, data flits, and LOFT look-ahead flits with their 64-bit
// wire encoding (paper Fig. 3).
package flit

import (
	"fmt"

	"loft/internal/topo"
)

// FlowID uniquely identifies a flow. The paper treats a flow as the traffic
// from one source to one destination (flow_ij); for the uniform pattern each
// source is one flow (§6). We encode both cases in a single integer id
// assigned by the traffic setup.
type FlowID int

// Flow describes a QoS flow: its endpoints and its per-frame reservation in
// flits (R_ij, identical on every link of the path, §5.1).
type Flow struct {
	ID       FlowID
	Src, Dst topo.NodeID
	// Reservation is R_ij in flits per frame.
	Reservation int
}

// Packet is the unit of injection. The paper uses 4-flit packets split into
// two 2-flit quanta.
type Packet struct {
	Flow     FlowID
	Src, Dst topo.NodeID
	Seq      uint64 // per-flow packet sequence number
	Flits    int    // number of data flits
	Created  uint64 // cycle the packet was generated at the source
}

// Flit is one data flit. Head/Tail mark packet boundaries for wormhole-style
// networks; LOFT does not need them for switching (routing and scheduling are
// done by look-ahead flits) but keeps them for accounting.
type Flit struct {
	Flow     FlowID
	Src, Dst topo.NodeID
	PktSeq   uint64
	Index    int // flit index within the packet
	Head     bool
	Tail     bool
	Created  uint64 // packet creation cycle
	Injected uint64 // cycle the flit entered the network (first router)
	// Frame carries the GSF frame tag; unused by LOFT and wormhole.
	Frame int
}

// String formats a flit for diagnostics.
func (f Flit) String() string {
	return fmt.Sprintf("flit{flow=%d %d->%d pkt=%d idx=%d}", f.Flow, f.Src, f.Dst, f.PktSeq, f.Index)
}

// QuantumID names one scheduling quantum of a flow: the paper's (flow number,
// quantum number) pair that an input reservation table stores to identify
// arriving data flits uniquely (§4.3.1).
type QuantumID struct {
	Flow FlowID
	Seq  uint64 // global per-flow quantum sequence number
}

// Lookahead is a look-ahead flit (paper Fig. 3). One look-ahead flit leads a
// single data quantum of Q data flits (Q=2 in the paper setup) and is
// scheduled in its entirety.
//
// Fields mirror §5.1.1: destination, flow number, quantum number, and the
// departure time of the quantum from the previous router. Dst drives routing;
// DepartPrev tells the input scheduler when the data will arrive.
type Lookahead struct {
	Dst        topo.NodeID
	Flow       FlowID
	Quantum    uint64
	DepartPrev uint64 // absolute cycle the quantum leaves the previous router
	// Src is carried for LSF per-flow accounting (§3.2: added for LSF).
	Src topo.NodeID
	// Flits is the quantum size in data flits (tail quanta may be short).
	Flits int
	// Created is the leading packet's creation cycle (statistics only; the
	// hardware does not carry it).
	Created uint64
}
