package flit

import (
	"testing"
	"testing/quick"

	"loft/internal/topo"
)

func TestEncodeLookaheadRoundTrip(t *testing.T) {
	l := Lookahead{Dst: 63, Flow: 42, Quantum: 500, DepartPrev: 900}
	w, err := EncodeLookahead(l)
	if err != nil {
		t.Fatal(err)
	}
	got := DecodeLookahead(w, 890, 495)
	if got.Dst != l.Dst || got.Flow != l.Flow || got.Quantum != l.Quantum || got.DepartPrev != l.DepartPrev {
		t.Fatalf("round trip: %+v -> %+v", l, got)
	}
}

func TestEncodeFieldOverflow(t *testing.T) {
	if _, err := EncodeLookahead(Lookahead{Dst: 64}); err == nil {
		t.Fatal("64-node destination fits a 6-bit field?")
	}
	if _, err := EncodeLookahead(Lookahead{Flow: 64}); err == nil {
		t.Fatal("flow 64 fits a 6-bit field?")
	}
}

func TestEncodeQuickRoundTrip(t *testing.T) {
	// Property: encoding and decoding against a reference within the
	// field's unambiguous range reconstructs the absolute values.
	if err := quick.Check(func(dst, flow uint8, q, td uint32, base uint32) bool {
		l := Lookahead{
			Dst:        topo.NodeID(dst % 64),
			Flow:       FlowID(flow % 64),
			Quantum:    uint64(base) + uint64(q%256),
			DepartPrev: uint64(base) + uint64(td%256),
		}
		w, err := EncodeLookahead(l)
		if err != nil {
			return false
		}
		// References within ±(2^9) of the true values.
		got := DecodeLookahead(w, l.DepartPrev+100, l.Quantum+100)
		return got.Dst == l.Dst && got.Flow == l.Flow &&
			got.Quantum == l.Quantum && got.DepartPrev == l.DepartPrev
	}, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestUnwrapNearest(t *testing.T) {
	cases := []struct {
		v, ref uint64
		bits   uint
		want   uint64
	}{
		{5, 1000, 10, 1029}, // 1029 is nearer to 1000 than 5
		{1000, 1030, 10, 1000},
		{5, 1020, 10, 1029}, // wraps up to the next 1024 window
		{1020, 1030, 10, 1020},
		{0, 1023, 10, 1024},
		{5, 20, 10, 5}, // small values stay put near small references
	}
	for _, c := range cases {
		if got := unwrap(c.v, c.ref, c.bits); got != c.want {
			t.Errorf("unwrap(%d, %d) = %d, want %d", c.v, c.ref, got, c.want)
		}
	}
}
