// Package gsf reimplements Globally-Synchronized Frames (Lee et al.,
// ISCA'08), the baseline the paper compares LOFT against, with the Table 1
// parameters: a 6-VC wormhole network where every flit carries a frame tag,
// routers arbitrate oldest-frame-first, sources meter injection against
// per-flow per-frame budgets inside a WF=6 window behind 2000-flit source
// queues, and a global barrier network recycles the head frame 16 cycles
// after the network holds no head-frame flits.
//
// Two properties the LOFT paper calls out are modeled faithfully because
// its evaluation depends on them (§2.2): frame recycling is globally
// synchronized (one slow hotspot stalls every flow's window), and a virtual
// channel may hold flits of only one packet at a time, which lengthens
// credit turn-around and caps link utilization.
package gsf

import (
	"fmt"

	"loft/internal/audit"
	"loft/internal/buffers"
	"loft/internal/config"
	"loft/internal/flit"
	"loft/internal/perfmon"
	"loft/internal/probe"
	"loft/internal/route"
	"loft/internal/sim"
	"loft/internal/topo"
)

// linkMsg is one flit on a link, demultiplexed by downstream VC index.
type linkMsg struct {
	F  flit.Flit
	VC int
}

// creditMsg returns one credit for a VC; Tail marks that the VC drained a
// complete packet and may be reallocated (one-packet-per-VC rule).
type creditMsg struct {
	VC   int
	Tail bool
}

// vcEntry is a flit with its pipeline readiness cycle.
type vcEntry struct {
	f       flit.Flit
	readyAt uint64
}

// inputVC is one virtual channel of an input port.
type inputVC struct {
	fifo   *buffers.FIFO[vcEntry]
	outDir topo.Dir
	routed bool
	downVC int // allocated VC at the next router; -1 when unallocated
}

// downVCState is the upstream-side bookkeeping of one downstream VC.
type downVCState struct {
	allocated bool
	credits   int
}

// outPort is one output port with its downstream VC state.
type outPort struct {
	down []downVCState
}

func (o *outPort) freeVC() int {
	for i := range o.down {
		if !o.down[i].allocated {
			return i
		}
	}
	return -1
}

// flowState meters one flow's injection (per-frame budget within the
// window; GSF forbids injecting into the head frame, so IF >= H+1).
type flowState struct {
	id  flit.FlowID
	r   int // budget per frame in flits
	ifr int // current absolute injection frame
	c   int // remaining budget in ifr
	// throttled marks a source stalled on an exhausted window, so the
	// probe emits one event per stall instead of one per stalled cycle.
	throttled bool
}

// node is one GSF mesh node: router, source queue, sink.
type node struct {
	id   topo.NodeID
	net  *Network
	vcs  [topo.NumDirs][]*inputVC // Local = injection port
	outs [topo.NumDirs]*outPort   // Local = ejection (modeled creditless)

	srcQueue *buffers.FIFO[flit.Flit]
	flows    map[flit.FlowID]*flowState
	injVC    int // local input VC currently carrying the injected packet

	flitOut [4]*sim.Reg[linkMsg]
	flitIn  [4]*sim.Reg[linkMsg]
	credOut [4]*sim.Reg[creditMsg]
	credIn  [4]*sim.Reg[creditMsg]
	// pendCred holds at most one credit return per direction per cycle;
	// pendCredSet marks occupancy (value storage — no per-flit allocation).
	pendCred    [4]creditMsg
	pendCredSet [4]bool

	pktFlits map[pktKey]pktProgress

	// linkBusy counts flits forwarded per mesh output (link utilization).
	linkBusy [4]uint64

	// probe is this node's staging view of net.probe; audit is this node's
	// (possibly staging) auditor hook.
	probe *probe.Stage
	audit *audit.Hook
	// perf is this node's stage timer (nil when profiling is off);
	// owner-local, so shard-local under the parallel engine.
	perf *perfmon.Timer
	// Effects on network-global state (frame census, throttle counter, stats
	// collectors) always buffer here during the compute phase and replay at
	// the cycle barrier in node-id order, under both engines.
	frameDeltas    []frameDelta
	throttleStaged uint64
	stagedObs      []gsfObs

	drops uint64
}

// frameDelta is one deferred frame-census update.
type frameDelta struct {
	frame, delta int
}

// gsfObs is one deferred ejection observation: throughput always, packet
// latencies when the flit is a tail.
type gsfObs struct {
	f        flit.Flit
	injected uint64
	now      uint64
	tail     bool
}

type pktKey struct {
	flow flit.FlowID
	seq  uint64
}

type pktProgress struct {
	flits    int
	injected uint64
}

func newNode(id topo.NodeID, cfg config.GSF, net *Network) *node {
	// Probe emissions and global-state effects always stage (see the field
	// comments); the audit hook stages only when sharded because its staged
	// ops are allocating closures.
	n := &node{
		id:       id,
		net:      net,
		srcQueue: buffers.NewFIFO[flit.Flit](fmt.Sprintf("gsf.n%d.src", id), cfg.SourceQueue),
		flows:    make(map[flit.FlowID]*flowState),
		injVC:    -1,
		pktFlits: make(map[pktKey]pktProgress),
		probe:    net.probe.NewStage(),
		audit:    audit.NewHook(net.audit, net.workers > 1),
		perf:     net.perf.Timer(),
	}
	for d := topo.North; d < topo.NumDirs; d++ {
		n.vcs[d] = make([]*inputVC, cfg.VirtualChannels)
		for v := range n.vcs[d] {
			n.vcs[d][v] = &inputVC{
				fifo:   buffers.NewFIFO[vcEntry](fmt.Sprintf("gsf.n%d.%s.vc%d", id, d, v), cfg.VCDepth),
				downVC: -1,
			}
		}
		if d == topo.Local {
			continue // ejection handled without credits (1 flit/cycle sink)
		}
		if _, ok := net.mesh.Neighbor(id, d); ok {
			out := &outPort{down: make([]downVCState, cfg.VirtualChannels)}
			for v := range out.down {
				out.down[v].credits = cfg.VCDepth
			}
			n.outs[d] = out
		}
	}
	return n
}

// Tick advances this node one cycle (sim.Ticker): it drains the node's
// traffic injector into the source queue, then runs the router pipeline.
// Under the parallel engine every node is its own ticker; the sequential
// Network ticker calls the same method in node-id order, so both paths
// execute identical per-node work.
//
//loft:hotpath
//loft:computephase
func (n *node) Tick(now uint64) {
	if n.perf != nil {
		n.perf.Begin(now)
	}
	for _, pkt := range n.net.injectors[n.id].Next(now) {
		n.enqueue(pkt)
	}
	if n.perf != nil {
		n.perf.Lap(perfmon.StageBooking)
	}
	n.tick(now)
}

// addFrame adjusts the global frame census: the update is staged and
// replayed at the cycle barrier (frameCount is commit-only state).
func (n *node) addFrame(frame, delta int) {
	n.frameDeltas = append(n.frameDeltas, frameDelta{frame, delta})
}

// flushStaged commits this node's buffered cycle effects. Called by the
// network's commit hook in node-id order, which reproduces one fixed
// schedule byte for byte regardless of worker count.
//
//loft:hotpath
//loft:commitphase
func (n *node) flushStaged() {
	for _, fd := range n.frameDeltas {
		n.net.frameCount[fd.frame] += fd.delta
	}
	n.frameDeltas = n.frameDeltas[:0]
	if n.throttleStaged > 0 {
		n.net.throttleCycles.Add(n.throttleStaged)
		n.throttleStaged = 0
	}
	for i := range n.stagedObs {
		r := &n.stagedObs[i]
		n.net.thr.Observe(r.f.Flow, int(r.f.Src), r.now)
		if r.tail {
			n.net.lat.Observe(r.f.Created, r.now+1)
			n.net.latFlow.Observe(r.f.Flow, r.f.Created, r.now+1)
			if r.f.Created >= n.net.latNet.Warmup() {
				n.net.latNet.Observe(r.injected, r.now+1)
			}
		}
	}
	n.stagedObs = n.stagedObs[:0]
	if n.probe != nil {
		n.probe.FlushStage()
	}
	if n.audit != nil {
		n.audit.Flush()
	}
}

// tick advances one cycle: drain links, eject, switch, inject.
func (n *node) tick(now uint64) {
	cfg := n.net.cfg
	for d := 0; d < 4; d++ {
		if n.flitIn[d] != nil {
			if msg, ok := n.flitIn[d].Take(); ok {
				vc := n.vcs[d][msg.VC]
				if !vc.routed {
					vc.outDir = topo.Local
					if msg.F.Dst != n.id {
						vc.outDir = route.XY(n.net.mesh, n.id, msg.F.Dst)
					}
					vc.routed = true
				}
				vc.fifo.Push(vcEntry{f: msg.F, readyAt: now + uint64(cfg.PipeStages) - 1})
			}
		}
		if n.credIn[d] != nil {
			if msg, ok := n.credIn[d].Take(); ok {
				out := n.outs[d]
				out.down[msg.VC].credits++
				if msg.Tail {
					out.down[msg.VC].allocated = false
				}
			}
		}
	}
	if n.perf != nil {
		n.perf.Lap(perfmon.StageDrain)
	}
	n.allocateVCs(now)
	if n.perf != nil {
		n.perf.Lap(perfmon.StageVCAlloc)
	}
	n.switchFlits(now)
	if n.perf != nil {
		n.perf.Lap(perfmon.StageSwitch)
	}
	n.inject(now)
	if n.perf != nil {
		n.perf.Lap(perfmon.StageBooking)
	}
	for d := 0; d < 4; d++ {
		if n.pendCredSet[d] {
			n.credOut[d].Write(n.pendCred[d])
			n.pendCredSet[d] = false
		}
	}
	if n.perf != nil {
		n.perf.Lap(perfmon.StageFlush)
	}
}

// allocateVCs performs VC allocation: per output port, the oldest-frame
// head flit awaiting a downstream VC gets a free one (one per cycle per
// output; a VC is granted only when empty, per the one-packet rule).
func (n *node) allocateVCs(now uint64) {
	for o := topo.North; o < topo.Local; o++ {
		out := n.outs[o]
		if out == nil {
			continue
		}
		free := out.freeVC()
		if free < 0 {
			continue
		}
		var best *inputVC
		for d := topo.North; d < topo.NumDirs; d++ {
			for _, vc := range n.vcs[d] {
				head, ok := vc.fifo.Peek()
				if !ok || !vc.routed || vc.outDir != o || vc.downVC >= 0 || !head.f.Head || head.readyAt > now {
					continue
				}
				if best == nil || head.f.Frame < mustPeek(best).f.Frame {
					best = vc
				}
			}
		}
		if best != nil {
			best.downVC = free
			out.down[free].allocated = true
		}
	}
}

func mustPeek(vc *inputVC) vcEntry {
	e, ok := vc.fifo.Peek()
	if !ok {
		panic("gsf: peek on empty VC")
	}
	return e
}

// switchFlits performs switch allocation and traversal: per output port the
// oldest-frame ready flit with credits wins; each input port sends at most
// one flit per cycle (single crossbar input).
func (n *node) switchFlits(now uint64) {
	var usedInput [topo.NumDirs]bool
	for o := topo.North; o < topo.NumDirs; o++ {
		if o != topo.Local && n.outs[o] == nil {
			continue
		}
		var best *inputVC
		var bestDir topo.Dir
		for d := topo.North; d < topo.NumDirs; d++ {
			if usedInput[d] {
				continue
			}
			for _, vc := range n.vcs[d] {
				head, ok := vc.fifo.Peek()
				if !ok || !vc.routed || vc.outDir != o || head.readyAt > now {
					continue
				}
				if o != topo.Local {
					if vc.downVC < 0 || n.outs[o].down[vc.downVC].credits == 0 {
						continue
					}
				}
				if best == nil || head.f.Frame < mustPeek(best).f.Frame {
					best, bestDir = vc, d
				}
			}
		}
		if best == nil {
			continue
		}
		usedInput[bestDir] = true
		e, _ := best.fifo.Pop()
		if o == topo.Local {
			n.eject(e.f, now)
			n.addFrame(e.f.Frame, -1) // the flit left the network
		} else {
			n.outs[o].down[best.downVC].credits--
			n.flitOut[o].Write(linkMsg{F: e.f, VC: best.downVC})
			n.linkBusy[o]++
		}
		if bestDir != topo.Local {
			// Return the credit; tail also frees the VC upstream.
			n.pendCred[bestDir] = creditMsg{VC: indexOf(n.vcs[bestDir], best), Tail: e.f.Tail}
			n.pendCredSet[bestDir] = true
		}
		if e.f.Tail {
			best.routed = false
			best.downVC = -1
		}
	}
}

func indexOf(vcs []*inputVC, vc *inputVC) int {
	for i := range vcs {
		if vcs[i] == vc {
			return i
		}
	}
	panic("gsf: VC not found")
}

// eject delivers a flit to the local sink. Statistics observations stage
// under the parallel engine (the collectors are network-global and
// order-sensitive); per-packet reassembly state is node-local.
func (n *node) eject(f flit.Flit, now uint64) {
	key := pktKey{flow: f.Flow, seq: f.PktSeq}
	prog := n.pktFlits[key]
	if prog.flits == 0 || f.Injected < prog.injected {
		prog.injected = f.Injected
	}
	prog.flits++
	tail := f.Tail
	n.stagedObs = append(n.stagedObs, gsfObs{f: f, injected: prog.injected, now: now, tail: tail})
	if !tail {
		n.pktFlits[key] = prog
		return
	}
	delete(n.pktFlits, key)
	if n.audit != nil {
		n.audit.GSFPacketDone(f.Flow, f.PktSeq, prog.injected, now+1)
	}
}

// enqueue adds a freshly generated packet to the source queue, dropping it
// when the 2000-flit queue cannot hold it.
func (n *node) enqueue(p flit.Packet) {
	if n.srcQueue.Free() < p.Flits {
		n.drops++
		return
	}
	for i := 0; i < p.Flits; i++ {
		n.srcQueue.Push(flit.Flit{
			Flow: p.Flow, Src: p.Src, Dst: p.Dst,
			PktSeq: p.Seq, Index: i,
			Head: i == 0, Tail: i == p.Flits-1,
			Created: p.Created,
		})
	}
}

// inject meters one flit per cycle from the source queue into the router's
// local input port, assigning frame tags against the flow's budget. GSF
// does not allow injection into the head frame, so frames H+1..H+W-1 are
// usable; an exhausted window stalls the source (the queue backs up). In
// best-effort mode the budget and frame machinery are skipped: flits are
// injected whenever a VC is free, giving a plain wormhole network.
func (n *node) inject(now uint64) {
	head, ok := n.srcQueue.Peek()
	if !ok {
		return
	}
	cfg := n.net.cfg
	fs := n.flows[head.Flow]
	if fs == nil && !cfg.BestEffort {
		panic(fmt.Sprintf("gsf: node %d: flow %d has no reservation", n.id, head.Flow))
	}
	if head.Head && n.injVC < 0 {
		// A head flit needs an empty, unallocated local-input VC
		// (one-packet-per-VC rule).
		for v, vc := range n.vcs[topo.Local] {
			if vc.fifo.Empty() && !vc.routed {
				n.injVC = v
				break
			}
		}
	}
	if n.injVC < 0 {
		return // no VC available: stall
	}
	vc := n.vcs[topo.Local][n.injVC]
	if vc.fifo.Full() {
		return
	}
	frame := 0
	if !cfg.BestEffort {
		// Budget check: each flit consumes one unit of the frame budget.
		h := n.net.head
		if fs.ifr <= h {
			fs.ifr = h + 1
			fs.c = fs.r
		}
		if fs.c == 0 {
			if fs.ifr >= h+cfg.FrameWindow-1 {
				// Window exhausted: source throttled. Emit one event per
				// stall edge and count every stalled cycle (staged: the
				// shared counter commits at the barrier).
				n.throttleStaged++
				if !fs.throttled {
					fs.throttled = true
					if n.probe != nil {
						n.probe.Emit(now, probe.KindGSFThrottle, int32(n.id), -1, int32(fs.id), uint64(h))
					}
				}
				return
			}
			fs.ifr++
			fs.c = fs.r
		}
		fs.throttled = false
		frame = fs.ifr
		fs.c--
	}
	f, _ := n.srcQueue.Pop()
	f.Frame = frame
	f.Injected = now
	if n.audit != nil && f.Head {
		n.audit.GSFInject(f.Flow, f.PktSeq, now)
	}
	if !vc.routed {
		vc.outDir = topo.Local
		if f.Dst != n.id {
			vc.outDir = route.XY(n.net.mesh, n.id, f.Dst)
		}
		vc.routed = true
	}
	vc.fifo.Push(vcEntry{f: f, readyAt: now + uint64(cfg.PipeStages) - 1})
	n.addFrame(f.Frame, 1)
	if f.Tail {
		n.injVC = -1
	}
}
