package gsf

import (
	"testing"

	"loft/internal/config"
	"loft/internal/topo"
	"loft/internal/traffic"
)

func smallGSF() config.GSF {
	cfg := config.PaperGSF()
	cfg.MeshK = 4
	cfg.FrameFlits = 200
	cfg.SourceQueue = 200
	return cfg
}

func mustNet(t *testing.T, cfg config.GSF, p *traffic.Pattern, seed, warmup uint64) *Network {
	t.Helper()
	net, err := New(cfg, p, Options{Seed: seed, Warmup: warmup, BaseFrameFlits: 32})
	if err != nil {
		t.Fatal(err)
	}
	return net
}

func TestGSFSingleFlowDelivers(t *testing.T) {
	cfg := smallGSF()
	p := traffic.SingleFlow(cfg.Mesh(), 0, 15, 0.1, cfg.PacketFlits, 32)
	net := mustNet(t, cfg, p, 1, 0)
	net.Run(5000)
	if net.Throughput().TotalFlits() == 0 {
		t.Fatal("no flits delivered")
	}
	if net.Latency().Count() == 0 {
		t.Fatal("no packet latencies")
	}
	if mean := net.Latency().Mean(); mean > 300 {
		t.Fatalf("mean latency %.1f too high for light load", mean)
	}
}

func TestGSFConservation(t *testing.T) {
	cfg := smallGSF()
	p := traffic.NearestNeighbor(cfg.Mesh(), 0.2, cfg.PacketFlits, 32)
	net := mustNet(t, cfg, p, 7, 0)
	net.Run(4000)
	p.SetRate(0)
	net.Run(6000)
	if net.InFlight() != 0 || net.Backlog() != 0 {
		t.Fatalf("flits stuck after drain: in-flight %d, backlog %d", net.InFlight(), net.Backlog())
	}
}

func TestGSFFramesRecycle(t *testing.T) {
	cfg := smallGSF()
	p := traffic.Uniform(cfg.Mesh(), 0.1, cfg.PacketFlits, 32)
	net := mustNet(t, cfg, p, 3, 0)
	net.Run(5000)
	if net.Head() == 0 {
		t.Fatal("head frame never advanced")
	}
}

func TestGSFHotspotRegulation(t *testing.T) {
	cfg := smallGSF()
	mesh := cfg.Mesh()
	hot := topo.NodeID(mesh.N() - 1)
	p := traffic.Hotspot(mesh, hot, 0.5, cfg.PacketFlits, 32, 2, nil)
	net := mustNet(t, cfg, p, 5, 2000)
	net.Run(20000)
	var total float64
	var min, max float64
	for i, f := range p.Flows {
		r := net.Throughput().Flow(f.ID)
		total += r
		if i == 0 || r < min {
			min = r
		}
		if r > max {
			max = r
		}
	}
	if total < 0.3 {
		t.Fatalf("hotspot total throughput %.3f too low", total)
	}
	if min <= 0 {
		t.Fatal("a flow was starved")
	}
	if max > 4*min {
		t.Fatalf("hotspot unfair: min %.4f max %.4f", min, max)
	}
}

func TestGSFOnePacketPerVC(t *testing.T) {
	// Structural: after a tail flit leaves a VC, the VC resets its route
	// and downstream allocation; mid-packet it must not.
	cfg := smallGSF()
	p := traffic.SingleFlow(cfg.Mesh(), 0, 15, 0.5, cfg.PacketFlits, 32)
	net := mustNet(t, cfg, p, 11, 0)
	net.Run(3000)
	// Flow ran at a healthy rate despite the single-packet rule.
	if net.Throughput().Flow(0) < 0.2 {
		t.Fatalf("single flow rate %.3f too low", net.Throughput().Flow(0))
	}
}

func TestGSFBarrierDelayMatters(t *testing.T) {
	// A larger barrier delay slows frame recycling and thus the head-frame
	// counter advance.
	run := func(delay int) int {
		cfg := smallGSF()
		cfg.BarrierDelay = delay
		p := traffic.Uniform(cfg.Mesh(), 0.05, cfg.PacketFlits, 32)
		net := mustNet(t, cfg, p, 13, 0)
		net.Run(5000)
		return net.Head()
	}
	fast, slow := run(1), run(200)
	if fast <= slow {
		t.Fatalf("head advance: delay=1 → %d, delay=200 → %d; want faster recycling with smaller delay", fast, slow)
	}
}

func TestGSFSourceQueueDropsWhenFull(t *testing.T) {
	cfg := smallGSF()
	cfg.SourceQueue = 20
	hot := topo.NodeID(cfg.Mesh().N() - 1)
	p := traffic.Hotspot(cfg.Mesh(), hot, 0.9, cfg.PacketFlits, 32, 2, nil)
	net := mustNet(t, cfg, p, 17, 0)
	net.Run(8000)
	if net.Drops() == 0 {
		t.Fatal("no drops with a 20-flit source queue at 0.9 offered")
	}
	if net.Backlog() > cfg.Mesh().N()*cfg.SourceQueue {
		t.Fatal("backlog exceeds source queue capacity")
	}
}

func TestGSFFramePriorityHelpsOlderFrames(t *testing.T) {
	// Under contention the network drains head-frame flits first, so the
	// head frame keeps advancing even at full load.
	cfg := smallGSF()
	hot := topo.NodeID(cfg.Mesh().N() - 1)
	p := traffic.Hotspot(cfg.Mesh(), hot, 0.5, cfg.PacketFlits, 32, 2, nil)
	net := mustNet(t, cfg, p, 19, 0)
	net.Run(10000)
	if net.Head() < 3 {
		t.Fatalf("head frame stuck at %d under hotspot load", net.Head())
	}
	if net.Throughput().Total() < 0.3 {
		t.Fatalf("hotspot throughput %.3f too low", net.Throughput().Total())
	}
}

func TestGSFDeterminism(t *testing.T) {
	run := func() uint64 {
		cfg := smallGSF()
		p := traffic.Uniform(cfg.Mesh(), 0.2, cfg.PacketFlits, 32)
		net := mustNet(t, cfg, p, 29, 500)
		net.Run(4000)
		return net.Throughput().TotalFlits()
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("same-seed GSF runs differ: %d vs %d", a, b)
	}
}

func TestBestEffortWormholeDelivers(t *testing.T) {
	cfg := smallGSF()
	cfg.BestEffort = true
	p := traffic.Uniform(cfg.Mesh(), 0.2, cfg.PacketFlits, 32)
	net := mustNet(t, cfg, p, 3, 500)
	net.Run(5000)
	if net.Throughput().TotalFlits() == 0 {
		t.Fatal("best-effort network delivered nothing")
	}
	if net.Head() != 0 {
		t.Fatalf("barrier active in best-effort mode: head=%d", net.Head())
	}
}

func TestBestEffortHasNoIsolation(t *testing.T) {
	// The whole point of the QoS machinery: without it the DoS aggressors
	// take bandwidth from the victim beyond its share.
	cfg := smallGSF()
	cfg.BestEffort = true
	mesh := cfg.Mesh()
	hot := topo.NodeID(mesh.N() - 1)
	p := traffic.Hotspot(mesh, hot, 0.5, cfg.PacketFlits, 32, 2, nil)
	net := mustNet(t, cfg, p, 7, 2000)
	net.Run(15000)
	var min, max float64 = 1, 0
	for _, f := range p.Flows {
		r := net.Throughput().Flow(f.ID)
		if r < min {
			min = r
		}
		if r > max {
			max = r
		}
	}
	// Unregulated wormhole under a saturated hotspot is positionally
	// unfair; the spread is far beyond what the QoS variants allow.
	if min*3 > max {
		t.Fatalf("best-effort hotspot unexpectedly fair: min=%.4f max=%.4f", min, max)
	}
}
