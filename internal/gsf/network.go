package gsf

import (
	"fmt"

	"loft/internal/audit"
	"loft/internal/config"
	"loft/internal/det"
	"loft/internal/fault"
	"loft/internal/flit"
	"loft/internal/perfmon"
	"loft/internal/probe"
	"loft/internal/sim"
	"loft/internal/stats"
	"loft/internal/topo"
	"loft/internal/traffic"
)

// Network is a complete GSF mesh driving a traffic pattern.
type Network struct {
	cfg     config.GSF
	mesh    topo.Mesh
	pattern *traffic.Pattern
	nodes   []*node
	engine  sim.Engine
	par     *sim.ParallelKernel // non-nil when workers > 1
	workers int
	probe   *probe.Probe
	audit   *audit.Auditor
	// perf is the attached self-profiler (nil = off); perfT is the
	// network-owned stage timer for the frame census and serial commit.
	perf  *perfmon.Monitor
	perfT *perfmon.Timer
	// fault is the armed (adversary-only) fault plan, nil on clean runs.
	fault *fault.Plan

	injectors []*traffic.Injector

	// Barrier / global frame state. Commit-only: the compute phase may read
	// head (stable between barriers) but every write happens in the serial
	// commit phase — nodes stage census updates as frameDeltas instead.
	//
	//loft:commitonly
	head int // H: the head frame (absolute)
	//loft:commitonly
	frameCount map[int]int
	//loft:commitonly
	barrier int // countdown; 0 = idle

	// throttleCycles counts source-stall cycles for the probe registry
	// (events fire only on the stall edge).
	throttleCycles *probe.Counter

	lat     *stats.Latency // total latency (generation → delivery)
	latNet  *stats.Latency // network latency (injection → delivery)
	latFlow *stats.FlowLatency
	thr     *stats.Throughput
}

// Options mirror the LOFT network options.
type Options struct {
	Seed   uint64
	Warmup uint64
	// BaseFrameFlits is the frame size the pattern's reservations were
	// computed against (the LOFT frame, 256); GSF budgets are rescaled to
	// its own 2000-flit frames preserving each flow's bandwidth fraction.
	BaseFrameFlits int
	// Probe enables the observability layer when non-nil (frame rollover
	// and source-throttle events, link-utilization gauges).
	Probe *probe.Probe
	// Audit enables runtime invariant checking and per-packet delay-bound
	// conformance when non-nil. Auditing never changes simulation results.
	Audit *audit.Auditor
	// Workers selects the cycle engine: 0 or 1 runs the sequential kernel,
	// N > 1 shards node ticking across N OS threads with a two-phase
	// compute/commit step. Results are byte-identical either way (see
	// DESIGN.md §13).
	Workers int
	// Perf enables the self-profiler when non-nil (stage attribution,
	// engine telemetry, occupancy gauges). Profiling never changes
	// simulation results; see DESIGN.md §14.
	Perf *perfmon.Monitor
	// Fault arms a fault-injection plan when non-nil. GSF models no
	// link-level fault surfaces, so only adversary events are accepted —
	// New rejects plans with any other kind; see DESIGN.md §16.
	Fault *fault.Plan
}

// New builds a GSF network for the given pattern.
func New(cfg config.GSF, pattern *traffic.Pattern, opts Options) (*Network, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	mesh := cfg.Mesh()
	if pattern.Mesh.K != mesh.K {
		return nil, fmt.Errorf("gsf: pattern mesh %d does not match config mesh %d", pattern.Mesh.K, mesh.K)
	}
	if opts.BaseFrameFlits <= 0 {
		return nil, fmt.Errorf("gsf: BaseFrameFlits must be positive")
	}
	workers := opts.Workers
	if workers < 1 {
		workers = 1
	}
	net := &Network{
		cfg:        cfg,
		mesh:       mesh,
		pattern:    pattern,
		workers:    workers,
		probe:      opts.Probe,
		audit:      opts.Audit,
		perf:       opts.Perf,
		head:       0,
		frameCount: make(map[int]int),
		lat:        stats.NewLatencySeeded(opts.Warmup, opts.Seed),
		latNet:     stats.NewLatencySeeded(opts.Warmup, opts.Seed),
		latFlow:    stats.NewFlowLatency(opts.Warmup),
		thr:        stats.NewThroughput(opts.Warmup),
	}
	if workers > 1 {
		net.par = sim.NewParallelKernel(workers)
		net.engine = net.par
	} else {
		net.engine = sim.NewKernel()
	}
	net.throttleCycles = net.probe.Registry().Counter("gsf.throttle.cycles")
	for i := 0; i < mesh.N(); i++ {
		net.nodes = append(net.nodes, newNode(topo.NodeID(i), cfg, net))
		net.injectors = append(net.injectors, traffic.NewInjector(pattern, topo.NodeID(i), opts.Seed))
	}
	if opts.Fault != nil {
		if !opts.Fault.Adversarial() {
			return nil, fmt.Errorf("gsf: fault plan %q uses link-level faults; GSF supports adversary events only", opts.Fault)
		}
		if err := opts.Fault.Validate(mesh.N(), len(pattern.Flows)); err != nil {
			return nil, err
		}
		net.fault = opts.Fault
		if opts.Fault.HasAdversary() {
			plan := opts.Fault
			scale := func(id flit.FlowID, now uint64) float64 {
				return plan.RateScale(int(id), now)
			}
			for _, in := range net.injectors {
				in.SetRateScale(scale)
			}
		}
	}
	// Install per-flow injection budgets at the sources, rescaled from the
	// pattern's base frame to GSF's frame size. Best-effort mode carries no
	// budgets.
	for _, f := range pattern.Flows {
		if cfg.BestEffort {
			break
		}
		r := f.Reservation * cfg.FrameFlits / opts.BaseFrameFlits
		if r < cfg.PacketFlits {
			r = cfg.PacketFlits
		}
		src := net.nodes[f.Src]
		src.flows[f.ID] = &flowState{id: f.ID, r: r, ifr: 1, c: r}
	}
	net.wire()
	net.registerGauges()
	net.registerPerfGauges()
	net.bindAudit()
	net.perfT = net.perf.Timer()
	if workers > 1 {
		net.perf.SetWorkers(workers)
	}
	if net.par != nil {
		for i, n := range net.nodes {
			net.par.AddTicker(i, n)
		}
		net.par.AddSerial(net.commitCycle)
		if net.perf != nil {
			net.par.SetPerf(net.perf.Engine(workers))
		}
	} else {
		net.engine.(*sim.Kernel).Add(net)
	}
	return net, nil
}

// bindAudit registers the GSF-side conformance and invariant hooks. GSF has
// no reservation tables to shadow, so the auditor only tracks per-packet
// latency against analysis.DelayBoundGSF plus the head-frame flit census.
func (net *Network) bindAudit() {
	aud := net.audit
	if aud == nil {
		return
	}
	aud.BeginGSF(net.cfg, net.mesh, net.pattern.Flows)
	// Adversarial flows trade their delay-bound check for a throttle
	// check, exactly as under LOFT (see loft.Network.bindAudit).
	for _, q := range net.fault.Quarantines() {
		aud.Quarantine(flit.FlowID(q.Flow), q.Cap)
	}
	aud.SetHeatmap(net.Heatmap)
	aud.RegisterCheck("gsf.frame-count", func() error {
		for _, frame := range det.Keys(net.frameCount) {
			c := net.frameCount[frame]
			if c < 0 {
				return fmt.Errorf("frame %d flit census is negative (%d)", frame, c)
			}
			if c > 0 && !net.cfg.BestEffort && frame < net.head {
				return fmt.Errorf("retired frame %d still holds %d flits (head %d)", frame, c, net.head)
			}
		}
		return nil
	})
}

// registerGauges publishes per-link utilization (per-cycle flit rate) and
// source-queue backlog gauges to the probe registry. The heatmap reads the
// same counters, so `loftsim -heatmap` works for GSF exactly as for LOFT.
func (net *Network) registerGauges() {
	reg := net.probe.Registry()
	if reg == nil {
		return
	}
	for _, n := range net.nodes {
		n := n
		for d := topo.North; d < topo.Local; d++ {
			d := d
			if n.flitOut[d] == nil {
				continue
			}
			reg.Rate(fmt.Sprintf("gsf.link.n%d.%s", n.id, d), func() float64 {
				return float64(n.linkBusy[d])
			})
		}
		reg.Gauge(fmt.Sprintf("gsf.srcq.n%d", n.id), func() float64 {
			return float64(n.srcQueue.Len())
		})
	}
}

// registerPerfGauges publishes the self-profiler's occupancy gauges:
// aggregate source-queue backlog and in-network flit census. Gauges run on
// the coordinator, so reading shared state is safe. No-op when profiling is
// off.
func (net *Network) registerPerfGauges() {
	if net.perf == nil {
		return
	}
	net.perf.Gauge("gsf.srcq.flits", func() float64 {
		total := 0
		for _, n := range net.nodes {
			total += n.srcQueue.Len()
		}
		return float64(total)
	})
	net.perf.Gauge("gsf.inflight.flits", func() float64 {
		total := 0
		for _, c := range net.frameCount {
			total += c
		}
		return float64(total)
	})
}

func (net *Network) wire() {
	// Each register's updater lives on the shard of the node that Writes it,
	// so the commit phase touches only shard-local registers.
	addUpdater := func(owner int, u sim.Updater) {
		if net.par != nil {
			net.par.AddUpdater(owner, u)
		} else {
			net.engine.(*sim.Kernel).AddUpdater(u)
		}
	}
	for _, n := range net.nodes {
		for d := topo.North; d < topo.Local; d++ {
			nb, ok := net.mesh.Neighbor(n.id, d)
			if !ok {
				continue
			}
			fo := sim.NewReg[linkMsg](fmt.Sprintf("gsf.flit %d->%d", n.id, nb))
			addUpdater(int(n.id), fo)
			n.flitOut[d] = fo
			peer := net.nodes[nb]
			opp := d.Opposite()
			peer.flitIn[opp] = fo
			co := sim.NewReg[creditMsg](fmt.Sprintf("gsf.cred %d->%d", nb, n.id))
			addUpdater(int(nb), co)
			peer.credOut[opp] = co
			n.credIn[d] = co
		}
	}
}

// Tick advances every node and the barrier controller (sim.Ticker, used by
// the sequential kernel; the parallel engine ticks nodes directly and runs
// commitCycle as its serial barrier hook). Nodes stage their global-state
// effects even here, so the sequential cycle runs the same
// compute-then-commit sequence as the parallel engine.
//
//loft:hotpath
func (net *Network) Tick(now uint64) {
	for _, n := range net.nodes {
		n.Tick(now)
	}
	net.commitCycle(now)
}

// commitCycle is the serial commit half of a cycle (the parallel engine's
// AddSerial hook, and the tail of the sequential Tick): it replays every
// node's staged effects in node-id order, then advances the barrier
// controller and the per-cycle observers.
//
//loft:hotpath
//loft:commitphase
func (net *Network) commitCycle(now uint64) {
	if net.perfT != nil {
		net.perfT.Begin(now)
	}
	for _, n := range net.nodes {
		n.flushStaged()
	}
	if net.perfT != nil {
		net.perfT.Lap(perfmon.StageCommit)
	}
	net.tickBarrier(now)
	if net.perfT != nil {
		net.perfT.Lap(perfmon.StageGSFFrame)
	}
	if net.probe != nil {
		net.probe.MaybeSample(now)
	}
	if net.audit != nil {
		net.audit.OnCycle(now)
	}
	if net.perfT != nil {
		net.perfT.Lap(perfmon.StageCommit)
	}
	if net.perf != nil {
		net.perf.OnCycle(now)
	}
}

// tickBarrier models the global barrier network: once no head-frame flit
// remains in the network, the window shifts after the barrier round-trip
// delay (16 cycles in Table 1). Best-effort mode has no barrier.
func (net *Network) tickBarrier(now uint64) {
	if net.cfg.BestEffort {
		return
	}
	if net.barrier > 0 {
		net.barrier--
		if net.barrier == 0 {
			delete(net.frameCount, net.head)
			net.head++
			if net.probe != nil {
				net.probe.Emit(now, probe.KindGSFFrameRoll, -1, -1, -1, uint64(net.head))
			}
		}
		return
	}
	if net.frameCount[net.head] == 0 {
		net.barrier = net.cfg.BarrierDelay
	}
}

// Run advances the simulation n cycles.
func (net *Network) Run(n uint64) {
	net.engine.Run(n)
	net.thr.Close(net.engine.Now())
}

// Now returns the current cycle.
func (net *Network) Now() uint64 { return net.engine.Now() }

// Workers returns the configured worker count (1 = sequential engine).
func (net *Network) Workers() int { return net.workers }

// Close releases the cycle engine's worker pool. Safe to call for the
// sequential engine too; the network must not be Run after Close.
func (net *Network) Close() { net.engine.Close() }

// Latency returns the total packet latency collector.
func (net *Network) Latency() *stats.Latency { return net.lat }

// NetLatency returns the network latency collector (injection to delivery).
func (net *Network) NetLatency() *stats.Latency { return net.latNet }

// FlowLatency returns the per-flow latency collector.
func (net *Network) FlowLatency() *stats.FlowLatency { return net.latFlow }

// Throughput returns the ejection throughput collector.
func (net *Network) Throughput() *stats.Throughput { return net.thr }

// Head returns the current head frame (diagnostics).
func (net *Network) Head() int { return net.head }

// Drops returns packets dropped at full source queues.
func (net *Network) Drops() uint64 {
	var total uint64
	for _, n := range net.nodes {
		total += n.drops
	}
	return total
}

// Backlog returns total flits waiting in source queues.
func (net *Network) Backlog() int {
	total := 0
	for _, n := range net.nodes {
		total += n.srcQueue.Len()
	}
	return total
}

// InFlight returns the number of flits inside the network (diagnostics).
func (net *Network) InFlight() int {
	total := 0
	for _, c := range net.frameCount {
		total += c
	}
	return total
}

// Probe returns the attached probe (nil when observability is disabled).
func (net *Network) Probe() *probe.Probe { return net.probe }

// Audit returns the attached auditor (nil when -audit is off).
func (net *Network) Audit() *audit.Auditor { return net.audit }

// LinkUtilization returns, for every live mesh output link, the fraction of
// cycles it carried a flit over the run so far (links move at most one flit
// per cycle).
func (net *Network) LinkUtilization() map[topo.Link]float64 {
	cycles := float64(net.engine.Now())
	if cycles == 0 {
		return nil
	}
	out := make(map[topo.Link]float64)
	for _, n := range net.nodes {
		for d := topo.North; d < topo.Local; d++ {
			if n.flitOut[d] == nil {
				continue
			}
			out[topo.Link{From: n.id, D: d}] = float64(n.linkBusy[d]) / cycles
		}
	}
	return out
}

// Heatmap renders per-node link utilization as an ASCII grid (see
// topo.RenderHeatmap).
func (net *Network) Heatmap() string {
	return topo.RenderHeatmap(net.mesh, net.LinkUtilization())
}
