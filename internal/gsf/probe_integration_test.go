package gsf

import (
	"testing"

	"loft/internal/probe"
	"loft/internal/topo"
	"loft/internal/traffic"
)

func TestGSFProbeFrameRollAndThrottle(t *testing.T) {
	cfg := smallGSF()
	mesh := cfg.Mesh()
	// A saturated hotspot exhausts frame windows, forcing source throttling.
	p := traffic.Hotspot(mesh, topo.NodeID(mesh.N()-1), 0.9, cfg.PacketFlits, 32, 2, nil)
	pr := probe.New(probe.Config{SampleEvery: 64})
	net, err := New(cfg, p, Options{Seed: 1, Warmup: 0, BaseFrameFlits: 32, Probe: pr})
	if err != nil {
		t.Fatal(err)
	}
	net.Run(5000)
	if pr.Tracer().Count(probe.KindGSFFrameRoll) == 0 {
		t.Error("no frame rollover events")
	}
	if pr.Tracer().Count(probe.KindGSFThrottle) == 0 {
		t.Error("no source-throttle events under saturation")
	}
	if pr.Registry().Counter("gsf.throttle.cycles").Value() == 0 {
		t.Error("throttle cycle counter never incremented")
	}
	if len(pr.Series()) == 0 {
		t.Fatal("no time series sampled")
	}
}

func TestGSFHeatmapAndUtilization(t *testing.T) {
	cfg := smallGSF()
	p := traffic.Uniform(cfg.Mesh(), 0.2, cfg.PacketFlits, 32)
	net := mustNet(t, cfg, p, 2, 0)
	net.Run(4000)
	util := net.LinkUtilization()
	if len(util) == 0 {
		t.Fatal("no link utilization reported")
	}
	busy := 0.0
	for _, u := range util {
		if u < 0 || u > 1 {
			t.Fatalf("utilization out of range: %f", u)
		}
		busy += u
	}
	if busy == 0 {
		t.Fatal("all links idle under uniform traffic")
	}
	if hm := net.Heatmap(); len(hm) == 0 {
		t.Fatal("empty heatmap")
	}
}
