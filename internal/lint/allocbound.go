package lint

import (
	"go/ast"
	"go/token"
)

// AllocBound returns the analyzer that turns the steady-state zero-alloc
// contract into a build gate. Where hotpath flags allocation *patterns* the
// AST can see (fmt, log, growing slices), allocbound asks the compiler
// itself: it maps the escape-analysis verdicts of `go build -gcflags=-m`
// (built once per run by the driver, replayed from the build cache) onto the
// same //loft:hotpath call-graph closure and reports every "escapes to heap"
// / "moved to heap" finding whose position falls inside a hot function.
//
// The division of labor with TestSteadyStateZeroAlloc: the test measures one
// configuration's exercised path at run time; allocbound bounds every path
// the compiler can prove allocates, including branches no test drives. The
// two can disagree in one direction only — an escape the runtime never hits
// (a cold branch inside a hot function) still fails the gate, because a hot
// function is a promise about all of its branches; genuinely cold work
// belongs behind a //loft:coldpath helper. Arguments of panic(...) are
// exempt, matching hotpath: a panicking simulator may allocate its last
// words.
func AllocBound() *Analyzer {
	return &Analyzer{
		Name:         "allocbound",
		Doc:          "compiler escape analysis must report no heap allocation inside the //loft:hotpath closure",
		Match:        matchPaths(simulationPackages, tracePackages),
		Run:          allocboundRun,
		NeedsEscapes: true,
	}
}

func allocboundRun(pass *Pass) {
	if pass.escapes == nil {
		return // driver builds the index before any NeedsEscapes analyzer runs
	}
	decls, cold, seeds := hotClosureSeeds(pass)
	if len(seeds) == 0 {
		return
	}
	for fn, seed := range callClosure(pass, seeds, decls, cold) {
		fd := decls[fn]
		tf := pass.Fset.File(fd.Pos())
		if tf == nil {
			continue
		}
		diags := pass.escapes[tf.Name()]
		if len(diags) == 0 {
			continue
		}
		start := tf.Line(fd.Pos())
		end := tf.Line(fd.End())
		exempt := panicArgLines(pass, tf, fd.Body)
		for _, ed := range diags {
			if ed.Line < start || ed.Line > end || exempt[ed.Line] {
				continue
			}
			pass.Reportf(escapePos(tf, ed.Line, ed.Col),
				"heap allocation on a hot path (reachable from //loft:hotpath %s): %s; hoist the allocation to setup, reuse a receiver-owned buffer, or move the branch behind a //loft:coldpath helper",
				seed.Name(), ed.Message)
		}
	}
}

// panicArgLines expands the panic-argument source ranges of a body to the set
// of lines they cover: escape findings on those lines (the fmt.Sprintf
// feeding a panic, its arguments spilling to heap) are exempt.
func panicArgLines(pass *Pass, tf *token.File, body *ast.BlockStmt) map[int]bool {
	out := make(map[int]bool)
	for _, r := range panicArgRanges(pass, body) {
		for line := tf.Line(r[0]); line <= tf.Line(r[1]-1); line++ {
			out[line] = true
		}
	}
	return out
}

// escapePos converts a compiler line:col (1-based, col in bytes) back to a
// token.Pos in the analyzed fileset so the diagnostic sorts and renders like
// every other finding.
func escapePos(tf *token.File, line, col int) token.Pos {
	if line < 1 || line > tf.LineCount() {
		return tf.Pos(0)
	}
	pos := tf.LineStart(line) + token.Pos(col-1)
	// Clamp to the file in case the compiler's column exceeds what the parser
	// recorded (tabs, BOM, build-injected code).
	if pos < tf.LineStart(line) || int(pos)-tf.Base() >= tf.Size() {
		return tf.LineStart(line)
	}
	return pos
}
