package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// All returns every loftcheck analyzer in reporting order.
func All() []*Analyzer {
	return []*Analyzer{
		Determinism(),
		HookGuard(),
		HotPath(),
		LockDiscipline(),
		StagePurity(),
		AllocBound(),
	}
}

// ByName returns the named analyzers, or nil with the unknown name when one
// does not exist.
func ByName(names []string) ([]*Analyzer, string) {
	var out []*Analyzer
	for _, n := range names {
		found := false
		for _, a := range All() {
			if a.Name == n {
				out = append(out, a)
				found = true
				break
			}
		}
		if !found {
			return nil, n
		}
	}
	return out, ""
}

// simulationPackages are the packages whose execution must be bit-exact
// across reruns and worker counts: the cycle kernels, schedulers, traffic
// generators and the experiment/sweep drivers above them.
var simulationPackages = []string{
	"loft/internal/lsf",
	"loft/internal/loft",
	"loft/internal/gsf",
	"loft/internal/sim",
	"loft/internal/sweep",
	"loft/internal/exp",
	"loft/internal/traffic",
	"loft/internal/tdm",
	"loft/internal/core",
}

// observabilityPackages additionally feed exported artifacts (JSONL/CSV
// traces, Prometheus text, audit snapshots, heatmaps) that goldens and
// baseline diffs compare byte-for-byte, so their iteration order matters
// just as much.
var observabilityPackages = []string{
	"loft/internal/probe",
	"loft/internal/audit",
	"loft/internal/stats",
	"loft/internal/topo",
}

// tracePackages are the offline analysis layer: manifest and diff output
// must be byte-stable so self-diffs report zero delta and artifact checksums
// reproduce, which makes them determinism-checked like the exporters.
// internal/runenv and internal/perfmon are deliberately absent from every
// list — they are the two places below the CLIs allowed to read wall time
// (runenv for provenance, perfmon for stage timers); neither feeds values
// back into simulation state, so profiled runs remain byte-identical. The
// perfmon sink calls made from simulation packages still go through
// hookguard, because those call sites live in the listed packages.
var tracePackages = []string{
	"loft/internal/trace",
	"loft/internal/runio",
	"loft/cmd/lofttrace",
}

func matchPaths(lists ...[]string) func(string) bool {
	set := make(map[string]bool)
	for _, l := range lists {
		for _, p := range l {
			set[p] = true
		}
	}
	return func(path string) bool { return set[path] }
}

// --- shared AST/type helpers ---

// funcMarker reports whether decl's doc comment carries the given
// //loft:... marker on a line of its own.
func funcMarker(decl *ast.FuncDecl, marker string) bool {
	if decl.Doc == nil {
		return false
	}
	for _, c := range decl.Doc.List {
		if strings.TrimSpace(c.Text) == marker {
			return true
		}
	}
	return false
}

// usedFunc resolves an identifier to the function object it uses, if any.
func usedFunc(info *types.Info, id *ast.Ident) *types.Func {
	if obj, ok := info.Uses[id]; ok {
		if fn, ok := obj.(*types.Func); ok {
			return fn
		}
	}
	return nil
}

// calleeFunc resolves a call expression to its static callee: a package
// function, or a method on a concrete (non-interface) receiver. Interface
// dispatch and indirect calls through function values return nil.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return usedFunc(info, fun)
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			if sel.Kind() != types.MethodVal {
				return nil
			}
			if types.IsInterface(sel.Recv()) {
				return nil
			}
			fn, _ := sel.Obj().(*types.Func)
			return fn
		}
		// Qualified identifier (pkg.Func).
		return usedFunc(info, fun.Sel)
	}
	return nil
}

// namedRecv resolves the static receiver type of a method call to its
// defining package path and type name (pointers dereferenced), or ok=false
// for non-named receivers.
func namedRecv(t types.Type) (pkgPath, name string, ok bool) {
	if ptr, isPtr := t.(*types.Pointer); isPtr {
		t = ptr.Elem()
	}
	named, isNamed := t.(*types.Named)
	if !isNamed || named.Obj().Pkg() == nil {
		return "", "", false
	}
	return named.Obj().Pkg().Path(), named.Obj().Name(), true
}

// isBuiltin reports whether the call invokes the named builtin.
func isBuiltin(info *types.Info, call *ast.CallExpr, name string) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	b, ok := info.Uses[id].(*types.Builtin)
	return ok && b.Name() == name
}

// pkgFuncPath returns the import path and name of the package-level
// function (or method) a call resolves to, or "" when unresolvable.
func pkgFuncPath(info *types.Info, call *ast.CallExpr) (path, name string) {
	fn := calleeFunc(info, call)
	if fn == nil || fn.Pkg() == nil {
		return "", ""
	}
	return fn.Pkg().Path(), fn.Name()
}

// funcDecls collects every function declaration of the package with a body,
// keyed by its defining object.
func funcDecls(pass *Pass) map[*types.Func]*ast.FuncDecl {
	decls := make(map[*types.Func]*ast.FuncDecl)
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if obj, _ := pass.Info.Defs[fd.Name].(*types.Func); obj != nil {
				decls[obj] = fd
			}
		}
	}
	return decls
}

// callClosure computes the static per-package call-graph closure from the
// seed functions, returning root[f] = the seed that makes f reachable (for
// diagnostic provenance). Functions in stop are not entered and do not
// propagate. Interface dispatch and calls through function values are not
// followed (calleeFunc returns nil for them); cross-package callees are out
// of scope — each package declares its own entry points.
func callClosure(pass *Pass, seeds []*types.Func, decls map[*types.Func]*ast.FuncDecl, stop map[*types.Func]bool) map[*types.Func]*types.Func {
	root := make(map[*types.Func]*types.Func)
	queue := append([]*types.Func(nil), seeds...)
	for _, s := range seeds {
		root[s] = s
	}
	for len(queue) > 0 {
		fn := queue[0]
		queue = queue[1:]
		ast.Inspect(decls[fn].Body, func(n ast.Node) bool {
			if _, isLit := n.(*ast.FuncLit); isLit {
				return false // closures run on their own schedule
			}
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := calleeFunc(pass.Info, call)
			if callee == nil || callee.Pkg() != pass.Pkg || stop[callee] {
				return true
			}
			if _, declared := decls[callee]; !declared {
				return true
			}
			if _, seen := root[callee]; !seen {
				root[callee] = root[fn]
				queue = append(queue, callee)
			}
			return true
		})
	}
	return root
}

// terminates reports whether a statement list unconditionally transfers
// control out of the enclosing block (return, panic, continue, break,
// goto): the guard `if x == nil { return }` dominates everything after it.
func terminates(stmts []ast.Stmt) bool {
	if len(stmts) == 0 {
		return false
	}
	switch s := stmts[len(stmts)-1].(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	case *ast.BlockStmt:
		return terminates(s.List)
	}
	return false
}
