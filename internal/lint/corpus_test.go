package lint

import (
	"fmt"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// The corpus harness: each analyzer has a true-positive package (a) whose
// findings are pinned by `// want "regexp"` comments, and a clean-negative
// package (clean) that must produce nothing. Packages are loaded through the
// same loader as real runs, with Match bypassed so import paths don't
// matter.

var corpusAnalyzers = []struct {
	name string
	mk   func() *Analyzer
}{
	{"determinism", Determinism},
	{"hookguard", HookGuard},
	{"hotpath", HotPath},
	{"lockdiscipline", LockDiscipline},
	{"stagepurity", StagePurity},
	{"allocbound", AllocBound},
}

func TestCorpus(t *testing.T) {
	ld, err := newLoader(".")
	if err != nil {
		t.Fatalf("loader: %v", err)
	}
	for _, ca := range corpusAnalyzers {
		for _, variant := range []string{"a", "clean"} {
			t.Run(ca.name+"/"+variant, func(t *testing.T) {
				dir := filepath.Join("testdata", "src", ca.name, variant)
				pkg, err := ld.loadDir("corpus/"+ca.name+"/"+variant, dir)
				if err != nil {
					t.Fatalf("load %s: %v", dir, err)
				}
				a := ca.mk()
				var escapes escapeIndex
				if a.NeedsEscapes {
					// Corpus packages sit under testdata/ (invisible to ./...
					// wildcards), so the index is built from the explicit dir.
					escapes, err = buildEscapeIndex(ld.root, []string{"./internal/lint/" + filepath.ToSlash(dir)})
					if err != nil {
						t.Fatalf("escape index for %s: %v", dir, err)
					}
				}
				active, suppressed := runPackage(pkg, []*Analyzer{a}, true, escapes)
				if len(suppressed) != 0 {
					t.Errorf("corpus package %s has suppressions; corpora must pin findings with want comments", dir)
				}
				checkWants(t, pkg, active)
				if variant == "clean" && len(active) != 0 {
					t.Errorf("clean corpus produced %d diagnostics", len(active))
				}
				if variant == "a" && len(active) == 0 {
					t.Errorf("true-positive corpus produced no diagnostics")
				}
			})
		}
	}
}

// wantEntry is one expected diagnostic, parsed from a `// want "re"` comment.
type wantEntry struct {
	file    string
	line    int
	re      *regexp.Regexp
	matched bool
}

var wantRE = regexp.MustCompile("//\\s*want\\s+(.*)$")
var wantArgRE = regexp.MustCompile("`([^`]+)`|\"((?:[^\"\\\\]|\\\\.)*)\"")

// collectWants parses the want comments of a loaded package. Each comment
// may carry several quoted regexps (backquoted or double-quoted), each
// expecting one diagnostic on the comment's line.
func collectWants(t *testing.T, pkg *Package) []*wantEntry {
	t.Helper()
	var wants []*wantEntry
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				args := wantArgRE.FindAllStringSubmatch(m[1], -1)
				if len(args) == 0 {
					t.Errorf("%s:%d: want comment with no quoted pattern", pos.Filename, pos.Line)
					continue
				}
				for _, a := range args {
					pat := a[1]
					if pat == "" {
						pat = a[2]
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Errorf("%s:%d: bad want pattern %q: %v", pos.Filename, pos.Line, pat, err)
						continue
					}
					wants = append(wants, &wantEntry{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}
	return wants
}

// checkWants verifies the diagnostics of one corpus package against its want
// comments: every diagnostic must match an unconsumed want on its line, and
// every want must be consumed.
func checkWants(t *testing.T, pkg *Package, diags []Diagnostic) {
	t.Helper()
	wants := collectWants(t, pkg)
	for _, d := range diags {
		found := false
		for _, w := range wants {
			if w.matched || w.file != d.Pos.Filename || w.line != d.Pos.Line {
				continue
			}
			if w.re.MatchString(d.Message) {
				w.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	var missing []string
	for _, w := range wants {
		if !w.matched {
			missing = append(missing, fmt.Sprintf("%s:%d: %s", w.file, w.line, w.re))
		}
	}
	if len(missing) > 0 {
		t.Errorf("expected diagnostics not reported:\n  %s", strings.Join(missing, "\n  "))
	}
}
