package lint

import (
	"go/ast"
	"go/types"
)

// Determinism returns the analyzer enforcing the byte-identity contract of
// the simulation and observability packages: results and exported artifacts
// must be functions of (config, seed) alone. It flags
//
//   - wall-clock reads (time.Now/Since/Until): cycle counts and seeded RNGs
//     are the only clocks a simulator may consult;
//   - the global math/rand generators (rand.Intn, rand.Float64, ...): their
//     stream is shared process-wide, so concurrent sweep jobs interleave
//     draws nondeterministically — every RNG must be a per-run seeded
//     instance (internal/sim.RNG);
//   - ranges over maps whose iteration order can escape the loop: a body
//     that appends to an outer slice, sends on a channel, emits output, or
//     returns a value derived from the iteration sees Go's randomized map
//     order. Iterate det.Keys(m) (internal/det) instead;
//   - environment reads (os.Getenv/LookupEnv/Environ): results must not
//     depend on the invoking shell. internal/runenv is the one sanctioned
//     environment reader below the CLIs, and it is absent from every
//     checked-package list.
func Determinism() *Analyzer {
	return &Analyzer{
		Name:  "determinism",
		Doc:   "forbid wall clocks, global RNGs, env reads, and order-dependent map iteration in simulation packages",
		Match: matchPaths(simulationPackages, observabilityPackages, tracePackages),
		Run:   determinismRun,
	}
}

// randConstructors are the math/rand top-level functions that build local
// generators rather than drawing from the shared global source.
var randConstructors = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true,
	"NewPCG":     true, // math/rand/v2
	"NewChaCha8": true,
}

func determinismRun(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.Ident:
				checkForbiddenFunc(pass, n)
			case *ast.RangeStmt:
				checkMapRange(pass, n)
			}
			return true
		})
	}
}

func checkForbiddenFunc(pass *Pass, id *ast.Ident) {
	fn := usedFunc(pass.Info, id)
	if fn == nil || fn.Pkg() == nil {
		return
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() != nil {
		return // methods (e.g. (*rand.Rand).Intn) are fine: the receiver owns its stream
	}
	switch fn.Pkg().Path() {
	case "time":
		switch fn.Name() {
		case "Now", "Since", "Until":
			pass.Reportf(id.Pos(), "call to time.%s in a simulation package: results must depend on (config, seed) only; use cycle counts", fn.Name())
		}
	case "math/rand", "math/rand/v2":
		if !randConstructors[fn.Name()] {
			pass.Reportf(id.Pos(), "use of global %s.%s: the process-wide stream breaks sweep determinism; draw from a per-run seeded RNG (internal/sim.RNG)", fn.Pkg().Name(), fn.Name())
		}
	case "os":
		switch fn.Name() {
		case "Getenv", "LookupEnv", "Environ":
			pass.Reportf(id.Pos(), "call to os.%s in a simulation package: environment reads make results depend on the invoking shell; internal/runenv is the sanctioned environment reader", fn.Name())
		}
	}
}

// checkMapRange flags order-dependent map iteration. The loop body is
// order-dependent when iteration order can escape the loop: an append to
// state declared outside the loop, a channel send, an output call, or a
// return whose value derives from the iteration.
func checkMapRange(pass *Pass, rng *ast.RangeStmt) {
	tv, ok := pass.Info.Types[rng.X]
	if !ok {
		return
	}
	if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
		return
	}

	// tainted holds objects whose value is (or may be) iteration-order
	// dependent: the range key/value plus every variable declared inside
	// the body.
	tainted := make(map[types.Object]bool)
	addDef := func(e ast.Expr) {
		if id, ok := e.(*ast.Ident); ok {
			if obj := pass.Info.Defs[id]; obj != nil {
				tainted[obj] = true
			}
		}
	}
	addDef(rng.Key)
	addDef(rng.Value)
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj := pass.Info.Defs[id]; obj != nil {
				tainted[obj] = true
			}
		}
		return true
	})

	keyObj := rangeVarObj(pass.Info, rng.Key)

	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SendStmt:
			pass.Reportf(n.Pos(), "channel send inside map iteration: delivery order follows Go's randomized map order; iterate det.Keys instead")
		case *ast.ReturnStmt:
			for _, res := range n.Results {
				if refsTainted(pass.Info, res, tainted) {
					pass.Reportf(n.Pos(), "return value depends on which map entry is visited first; iterate det.Keys instead")
					break
				}
			}
		case *ast.CallExpr:
			if isBuiltin(pass.Info, n, "append") {
				if dest := appendDest(n); dest != nil && escapesLoop(pass.Info, dest, tainted, keyObj) {
					pass.Reportf(n.Pos(), "append inside map iteration builds a slice in randomized map order; iterate det.Keys instead")
				}
				return true
			}
			if path, name := pkgFuncPath(pass.Info, n); path == "fmt" && outputFmtFuncs[name] {
				pass.Reportf(n.Pos(), "output written inside map iteration follows Go's randomized map order; iterate det.Keys instead")
			}
			if isBuiltin(pass.Info, n, "print") || isBuiltin(pass.Info, n, "println") {
				pass.Reportf(n.Pos(), "output written inside map iteration follows Go's randomized map order; iterate det.Keys instead")
			}
		}
		return true
	})
}

// outputFmtFuncs are the fmt functions that write bytes somewhere (as
// opposed to Sprintf-style formatting into a value).
var outputFmtFuncs = map[string]bool{
	"Print": true, "Printf": true, "Println": true,
	"Fprint": true, "Fprintf": true, "Fprintln": true,
}

func rangeVarObj(info *types.Info, e ast.Expr) types.Object {
	if id, ok := e.(*ast.Ident); ok {
		return info.Defs[id]
	}
	return nil
}

// appendDest returns the expression receiving the append (its first
// argument).
func appendDest(call *ast.CallExpr) ast.Expr {
	if len(call.Args) == 0 {
		return nil
	}
	return ast.Unparen(call.Args[0])
}

// escapesLoop reports whether an append destination outlives the loop body
// in iteration order. Appending to a variable declared inside the body is
// fine (rebuilt per entry); so is appending to a map entry indexed by the
// range key (each entry lands in its own slot regardless of visit order).
func escapesLoop(info *types.Info, dest ast.Expr, tainted map[types.Object]bool, keyObj types.Object) bool {
	switch d := dest.(type) {
	case *ast.Ident:
		obj := info.Uses[d]
		if obj == nil {
			obj = info.Defs[d]
		}
		return obj == nil || !tainted[obj]
	case *ast.IndexExpr:
		if keyObj != nil && refsObject(info, d.Index, keyObj) {
			return false
		}
		return true
	default:
		// Selector, deref, ...: state outside the loop.
		return true
	}
}

func refsTainted(info *types.Info, e ast.Expr, tainted map[types.Object]bool) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj := info.Uses[id]; obj != nil && tainted[obj] {
				found = true
			}
		}
		return !found
	})
	return found
}

func refsObject(info *types.Info, e ast.Expr, want types.Object) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && info.Uses[id] == want {
			found = true
		}
		return !found
	})
	return found
}
