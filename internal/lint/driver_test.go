package lint

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// loadSuppressCorpus loads testdata/src/suppress, which carries one justified
// suppression (line above), one same-line suppression, one malformed
// directive, and one stale directive.
func loadSuppressCorpus(t *testing.T) (active, suppressed []Diagnostic) {
	t.Helper()
	ld, err := newLoader(".")
	if err != nil {
		t.Fatalf("loader: %v", err)
	}
	pkg, err := ld.loadDir("corpus/suppress", "testdata/src/suppress")
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	return runPackage(pkg, []*Analyzer{Determinism()}, true, nil)
}

func TestSuppressions(t *testing.T) {
	active, suppressed := loadSuppressCorpus(t)

	if len(suppressed) != 2 {
		t.Fatalf("suppressed = %d diagnostics, want 2:\n%v", len(suppressed), suppressed)
	}
	for _, d := range suppressed {
		if d.Analyzer != "determinism" {
			t.Errorf("suppressed diagnostic from %q, want determinism", d.Analyzer)
		}
		if d.SuppressedBy == "" {
			t.Errorf("suppressed diagnostic lost its reason: %s", d)
		}
	}

	// Active findings: the malformed directive, the time.Now it therefore
	// failed to suppress, and the stale directive.
	var gotMalformed, gotUnsuppressed, gotStale bool
	for _, d := range active {
		switch {
		case strings.Contains(d.Message, "malformed //lint:ignore"):
			gotMalformed = true
		case strings.Contains(d.Message, "time.Now"):
			gotUnsuppressed = true
		case strings.Contains(d.Message, "unused //lint:ignore"):
			gotStale = true
		default:
			t.Errorf("unexpected active diagnostic: %s", d)
		}
	}
	if !gotMalformed || !gotUnsuppressed || !gotStale {
		t.Errorf("active findings incomplete (malformed=%v unsuppressed=%v stale=%v):\n%v",
			gotMalformed, gotUnsuppressed, gotStale, active)
	}
}

func TestSuppressionForUnknownAnalyzerNotReportedUnused(t *testing.T) {
	// When only hookguard runs, the determinism ignores in the suppress
	// corpus are for an analyzer not in this run — they must not be
	// reported as unused (a partial -run must not invalidate directives
	// belonging to the full run).
	ld, err := newLoader(".")
	if err != nil {
		t.Fatalf("loader: %v", err)
	}
	pkg, err := ld.loadDir("corpus/suppress", "testdata/src/suppress")
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	active, _ := runPackage(pkg, []*Analyzer{HookGuard()}, true, nil)
	for _, d := range active {
		if strings.Contains(d.Message, "unused //lint:ignore") {
			t.Errorf("ignore for an analyzer outside this run reported unused: %s", d)
		}
	}
}

func TestWriteJSONSchema(t *testing.T) {
	active, suppressed := loadSuppressCorpus(t)
	res := Result{
		Diagnostics: active,
		Suppressed:  suppressed,
		Packages:    1,
		Analyzers:   []string{"determinism"},
		Revision:    "deadbeef",
	}

	var buf bytes.Buffer
	if err := WriteJSON(&buf, res); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	var doc struct {
		Packages    int      `json:"packages"`
		Clean       bool     `json:"clean"`
		Analyzers   []string `json:"analyzers"`
		Revision    string   `json:"revision"`
		Diagnostics []struct {
			Analyzer string `json:"analyzer"`
			File     string `json:"file"`
			Line     int    `json:"line"`
			Col      int    `json:"col"`
			Message  string `json:"message"`
		} `json:"diagnostics"`
		Suppressed []struct {
			Suppressed string `json:"suppressed"`
		} `json:"suppressed"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, buf.String())
	}
	if doc.Packages != 1 || doc.Clean {
		t.Errorf("packages=%d clean=%v, want 1/false", doc.Packages, doc.Clean)
	}
	if len(doc.Analyzers) != 1 || doc.Analyzers[0] != "determinism" || doc.Revision != "deadbeef" {
		t.Errorf("envelope analyzers=%v revision=%q, want [determinism]/deadbeef", doc.Analyzers, doc.Revision)
	}
	if len(doc.Diagnostics) != len(active) {
		t.Errorf("diagnostics count %d, want %d", len(doc.Diagnostics), len(active))
	}
	for _, d := range doc.Diagnostics {
		if d.Analyzer == "" || d.File == "" || d.Line <= 0 || d.Message == "" {
			t.Errorf("incomplete diagnostic in JSON: %+v", d)
		}
	}
	for _, s := range doc.Suppressed {
		if s.Suppressed == "" {
			t.Errorf("suppressed entry lost its reason")
		}
	}
}

func TestWriteJSONEmptyDiagnosticsIsArray(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteJSON(&buf, Result{Packages: 3}); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	if strings.Contains(buf.String(), "\"diagnostics\": null") {
		t.Errorf("clean result must encode diagnostics as [], got:\n%s", buf.String())
	}
	var doc map[string]any
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if doc["clean"] != true {
		t.Errorf("clean=%v, want true", doc["clean"])
	}
}

func TestByName(t *testing.T) {
	as, unknown := ByName([]string{"hotpath", "determinism"})
	if unknown != "" || len(as) != 2 || as[0].Name != "hotpath" || as[1].Name != "determinism" {
		t.Errorf("ByName returned %v (unknown=%q)", as, unknown)
	}
	if _, unknown := ByName([]string{"nosuch"}); unknown != "nosuch" {
		t.Errorf("unknown analyzer not reported, got %q", unknown)
	}
}

func TestTextOutputFormat(t *testing.T) {
	active, _ := loadSuppressCorpus(t)
	if len(active) == 0 {
		t.Fatal("suppress corpus produced no active diagnostics")
	}
	var buf bytes.Buffer
	WriteText(&buf, Result{Diagnostics: active})
	first := strings.SplitN(buf.String(), "\n", 2)[0]
	// file:line:col: message [analyzer]
	if !strings.Contains(first, "testdata/src/suppress/s.go:") || !strings.HasSuffix(first, "]") {
		t.Errorf("text diagnostic not in file:line:col ... [analyzer] form: %q", first)
	}
}
