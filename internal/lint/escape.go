package lint

import (
	"bytes"
	"fmt"
	"os/exec"
	"regexp"
	"strconv"
	"strings"
)

// escapeDiag is one compiler escape-analysis finding.
type escapeDiag struct {
	Line, Col int
	Message   string // e.g. "make([]byte, n) escapes to heap"
}

// escapeIndex maps module-root-relative files to their escape findings.
type escapeIndex map[string][]escapeDiag

// escapeLineRE matches one -gcflags=-m diagnostic line. The compiler prints
// paths relative to the directory it runs in; buildEscapeIndex runs in the
// module root, so the captured file matches the loader's position labels.
var escapeLineRE = regexp.MustCompile(`^(\.[/\\])?(.+\.go):(\d+):(\d+): (.+)$`)

// buildEscapeIndex runs the compiler's escape analysis over the given
// package patterns and indexes the heap-allocation findings by file. The
// -gcflags=-m=2 diagnostics replay from the build cache on unchanged code,
// so repeat runs cost milliseconds, not a rebuild. A build failure is a
// driver error: allocbound cannot vouch for code that does not compile.
//
// -m=2 (rather than -m) buys the flow traces: every heap verdict is followed
// by indented "flow:"/"from ..." lines at the same position explaining why
// the value escapes. A position whose trace contains "from panic(" is panic
// material — the string a guard concatenates for its last words, often
// attributed to the caller's line when the panicking callee is inlined — and
// is exempt, because that allocation only happens on the failure path the
// zero-alloc contract already forfeits.
func buildEscapeIndex(root string, patterns []string) (escapeIndex, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cmd := exec.Command("go", append([]string{"build", "-gcflags=-m=2"}, patterns...)...)
	cmd.Dir = root
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("lint: go build -gcflags=-m=2 %s: %v\n%s",
			strings.Join(patterns, " "), err, stderr.String())
	}
	type posKey struct {
		file      string
		line, col int
	}
	order := make(map[string][]escapeDiag)
	panicFlow := make(map[posKey]bool)
	seen := make(map[string]bool) // inlining replays a finding at the same position once per inline site
	for _, line := range strings.Split(stderr.String(), "\n") {
		m := escapeLineRE.FindStringSubmatch(line)
		if m == nil {
			continue // package headers, notes without positions
		}
		msg := m[5]
		ln, _ := strconv.Atoi(m[3])
		col, _ := strconv.Atoi(m[4])
		file := strings.ReplaceAll(m[2], "\\", "/")
		if strings.HasPrefix(msg, " ") {
			// Indented flow-trace line belonging to the verdict at the same
			// position.
			if strings.Contains(msg, "from panic(") {
				panicFlow[posKey{file, ln, col}] = true
			}
			continue
		}
		// Keep only the heap verdicts: "... escapes to heap" and "moved to
		// heap: x" (stack-confirming "does not escape" lines and inlining
		// chatter are the bulk of -m output). -m=2 suffixes traced verdicts
		// with ":".
		msg = strings.TrimSuffix(msg, ":")
		if !strings.HasSuffix(msg, "escapes to heap") && !strings.HasPrefix(msg, "moved to heap") {
			continue
		}
		if strings.Contains(msg, "does not escape") {
			continue
		}
		key := file + ":" + m[3] + ":" + m[4] + ":" + msg
		if seen[key] {
			continue
		}
		seen[key] = true
		order[file] = append(order[file], escapeDiag{Line: ln, Col: col, Message: msg})
	}
	idx := make(escapeIndex)
	for file, diags := range order {
		// "moved to heap: x" comes with a traced twin "x escapes to heap" at
		// the same position; keep the moved-to-heap wording, it names the
		// variable more directly.
		moved := make(map[string]bool)
		for _, d := range diags {
			if v, ok := strings.CutPrefix(d.Message, "moved to heap: "); ok {
				moved[fmt.Sprintf("%d:%d:%s", d.Line, d.Col, v)] = true
			}
		}
		for _, d := range diags {
			if panicFlow[posKey{file, d.Line, d.Col}] {
				continue
			}
			if v, ok := strings.CutSuffix(d.Message, " escapes to heap"); ok &&
				moved[fmt.Sprintf("%d:%d:%s", d.Line, d.Col, v)] {
				continue
			}
			idx[file] = append(idx[file], d)
		}
	}
	return idx, nil
}

// headRevision returns the repo's HEAD commit, best effort: empty outside a
// git checkout or when git is unavailable.
func headRevision(root string) string {
	cmd := exec.Command("git", "rev-parse", "HEAD")
	cmd.Dir = root
	out, err := cmd.Output()
	if err != nil {
		return ""
	}
	return strings.TrimSpace(string(out))
}
