package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// HookGuard returns the analyzer enforcing the hook-free disabled path: every
// call to a probe/audit/perfmon sink method (probe.Probe.Emit/MaybeSample,
// probe.Stage.Emit/FlushStage, probe.Tracer.Emit, the lsf.AuditSink
// interface, audit.Auditor taps, perfmon.Timer/EngineTimer laps and
// Monitor.OnCycle) must be dominated by a nil check of its receiver. The sinks happen to be nil-receiver-safe today,
// but the guard is what keeps an un-instrumented run from paying a call (and
// pointer chase) per cycle — and keeps that guarantee when a sink later
// grows state its methods dereference unconditionally. This is also what
// makes -perf provably zero-overhead when disabled: the profiler's hot-path
// entry points cannot be reached without a nil guard compiling to a single
// predictable branch.
func HookGuard() *Analyzer {
	return &Analyzer{
		Name:  "hookguard",
		Doc:   "probe/audit/perfmon sink calls must be dominated by a nil check of the receiver",
		Match: matchPaths(simulationPackages, tracePackages),
		Run:   hookguardRun,
	}
}

func hookguardRun(pass *Pass) {
	w := &guardWalker{pass: pass}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				w.stmts(fd.Body.List, nil)
			}
		}
	}
}

// guardWalker walks a function body tracking, per statement, the set of
// expressions (rendered with types.ExprString) known non-nil at that point:
// conjuncts of an enclosing `if x != nil`, the else-branch of `x == nil`, or
// everything after a terminating `if x == nil { return/panic/... }`.
type guardWalker struct {
	pass *Pass
}

func (w *guardWalker) stmts(list []ast.Stmt, guarded map[string]bool) {
	g := guarded
	for _, s := range list {
		w.stmt(s, g)
		// A terminating nil-guard dominates every later statement.
		if ifs, ok := s.(*ast.IfStmt); ok && ifs.Else == nil && ifs.Init == nil {
			if x, ok := nilEqExpr(ifs.Cond); ok && terminates(ifs.Body.List) {
				g = cloneAdd(g, x)
			}
		}
	}
}

func (w *guardWalker) stmt(s ast.Stmt, g map[string]bool) {
	switch s := s.(type) {
	case nil:
	case *ast.IfStmt:
		if s.Init != nil {
			w.stmt(s.Init, g)
		}
		w.expr(s.Cond, g)
		w.stmts(s.Body.List, cloneAdd(g, nilNeqExprs(s.Cond)...))
		if s.Else != nil {
			eg := g
			if x, ok := nilEqExpr(s.Cond); ok {
				eg = cloneAdd(g, x)
			}
			if blk, ok := s.Else.(*ast.BlockStmt); ok {
				w.stmts(blk.List, eg)
			} else {
				w.stmt(s.Else, eg)
			}
		}
	case *ast.BlockStmt:
		w.stmts(s.List, g)
	case *ast.ForStmt:
		w.stmt(s.Init, g)
		w.expr(s.Cond, g)
		w.stmt(s.Post, g)
		w.stmts(s.Body.List, g)
	case *ast.RangeStmt:
		w.expr(s.X, g)
		w.stmts(s.Body.List, g)
	case *ast.SwitchStmt:
		w.stmt(s.Init, g)
		w.expr(s.Tag, g)
		for _, c := range s.Body.List {
			w.stmts(c.(*ast.CaseClause).Body, g)
		}
	case *ast.TypeSwitchStmt:
		w.stmt(s.Init, g)
		w.stmt(s.Assign, g)
		for _, c := range s.Body.List {
			w.stmts(c.(*ast.CaseClause).Body, g)
		}
	case *ast.SelectStmt:
		for _, c := range s.Body.List {
			cc := c.(*ast.CommClause)
			w.stmt(cc.Comm, g)
			w.stmts(cc.Body, g)
		}
	case *ast.LabeledStmt:
		w.stmt(s.Stmt, g)
	default:
		// Simple statements: scan their expressions in the current guard set.
		ast.Inspect(s, func(n ast.Node) bool {
			switch n := n.(type) {
			case ast.Stmt:
				if n == s {
					return true
				}
				// Nested statements only occur under FuncLit, handled below.
				return true
			case *ast.FuncLit:
				// Lexical approximation: guards in scope at the closure's
				// definition are assumed to hold when it runs.
				w.stmts(n.Body.List, g)
				return false
			case *ast.CallExpr:
				w.checkCall(n, g)
			}
			return true
		})
	}
}

func (w *guardWalker) expr(e ast.Expr, g map[string]bool) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			w.stmts(n.Body.List, g)
			return false
		case *ast.CallExpr:
			w.checkCall(n, g)
		}
		return true
	})
}

func (w *guardWalker) checkCall(call *ast.CallExpr, g map[string]bool) {
	recv, sink, ok := sinkReceiver(w.pass, call)
	if !ok {
		return
	}
	key := types.ExprString(recv)
	if g[key] {
		return
	}
	w.pass.Reportf(call.Pos(), "sink call %s on unguarded receiver %s: dominate it with `if %s != nil { ... }` so a run without hooks stays hook-free", sink, key, key)
}

// auditorSinkMethods are the audit.Auditor tap names outside the LOFT*/GSF*
// prefix families.
var auditorSinkMethods = map[string]bool{
	"OnCycle":   true,
	"StartRun":  true,
	"FinishRun": true,
}

// sinkReceiver reports whether the call targets a probe/audit sink method,
// returning the receiver expression to guard. Handles both concrete receivers
// (*probe.Probe, *probe.Tracer, *audit.Auditor) and the lsf.AuditSink
// interface (every method of which is a sink).
//
// Deliberately excluded: probe.Registry/probe.Counter and friends — those
// follow the handle-is-nil-safe pattern where the cheap no-op lives in the
// handle itself and call sites are expected to stay unconditional.
func sinkReceiver(pass *Pass, call *ast.CallExpr) (recv ast.Expr, sink string, ok bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return nil, "", false
	}
	selection, isMethod := pass.Info.Selections[sel]
	if !isMethod || selection.Kind() != types.MethodVal {
		return nil, "", false
	}
	pkgPath, typeName, named := namedRecv(selection.Recv())
	if !named {
		return nil, "", false
	}
	name := sel.Sel.Name
	switch {
	case strings.HasSuffix(pkgPath, "internal/lsf") && typeName == "AuditSink":
		return sel.X, "lsf.AuditSink." + name, true
	case strings.HasSuffix(pkgPath, "internal/probe") && typeName == "Probe" && (name == "Emit" || name == "EmitSeq" || name == "MaybeSample"):
		return sel.X, "probe.Probe." + name, true
	case strings.HasSuffix(pkgPath, "internal/probe") && typeName == "Stage" && (name == "Emit" || name == "EmitSeq" || name == "FlushStage"):
		return sel.X, "probe.Stage." + name, true
	case strings.HasSuffix(pkgPath, "internal/probe") && typeName == "Tracer" && name == "Emit":
		return sel.X, "probe.Tracer." + name, true
	case strings.HasSuffix(pkgPath, "internal/audit") && typeName == "Auditor" &&
		(auditorSinkMethods[name] || strings.HasPrefix(name, "LOFT") || strings.HasPrefix(name, "GSF") || strings.HasPrefix(name, "Audit")):
		return sel.X, "audit.Auditor." + name, true
	case strings.HasSuffix(pkgPath, "internal/audit") && typeName == "Hook" &&
		(name == "Flush" || name == "WatchTable" || strings.HasPrefix(name, "LOFT") || strings.HasPrefix(name, "GSF")):
		// audit.Hook forwards the Auditor taps (possibly staged); the
		// disabled path must skip the forwarder for the same reason it skips
		// the auditor itself.
		return sel.X, "audit.Hook." + name, true
	case strings.HasSuffix(pkgPath, "internal/perfmon") && typeName == "Timer" && (name == "Begin" || name == "Lap"):
		return sel.X, "perfmon.Timer." + name, true
	case strings.HasSuffix(pkgPath, "internal/perfmon") && typeName == "EngineTimer" &&
		(name == "CycleStart" || name == "PhaseDone" || name == "WorkerStart" || name == "WorkerDone"):
		return sel.X, "perfmon.EngineTimer." + name, true
	case strings.HasSuffix(pkgPath, "internal/perfmon") && typeName == "Monitor" && name == "OnCycle":
		// Monitor's registration/handle methods (Timer, Engine, Gauge,
		// SetWorkers, Snapshot) are nil-receiver-safe setup calls, not
		// per-cycle sinks — only the cycle tap needs the guard.
		return sel.X, "perfmon.Monitor." + name, true
	}
	return nil, "", false
}

// nilNeqExprs collects the expressions compared `!= nil` in the &&-conjuncts
// of cond.
func nilNeqExprs(cond ast.Expr) []string {
	var out []string
	var walk func(e ast.Expr)
	walk = func(e ast.Expr) {
		b, ok := ast.Unparen(e).(*ast.BinaryExpr)
		if !ok {
			return
		}
		switch b.Op {
		case token.LAND:
			walk(b.X)
			walk(b.Y)
		case token.NEQ:
			if x, ok := nilComparand(b); ok {
				out = append(out, x)
			}
		}
	}
	walk(cond)
	return out
}

// nilEqExpr reports whether cond is exactly `x == nil` (or `nil == x`),
// returning x's rendering.
func nilEqExpr(cond ast.Expr) (string, bool) {
	b, ok := ast.Unparen(cond).(*ast.BinaryExpr)
	if !ok || b.Op != token.EQL {
		return "", false
	}
	return nilComparand(b)
}

// nilComparand returns the non-nil side of a binary comparison against nil.
func nilComparand(b *ast.BinaryExpr) (string, bool) {
	if isNilIdent(b.Y) {
		return types.ExprString(ast.Unparen(b.X)), true
	}
	if isNilIdent(b.X) {
		return types.ExprString(ast.Unparen(b.Y)), true
	}
	return "", false
}

func isNilIdent(e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && id.Name == "nil"
}

func cloneAdd(g map[string]bool, keys ...string) map[string]bool {
	if len(keys) == 0 {
		return g
	}
	n := make(map[string]bool, len(g)+len(keys))
	for k := range g {
		n[k] = true
	}
	for _, k := range keys {
		n[k] = true
	}
	return n
}
