package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// HotPath returns the analyzer keeping per-cycle code allocation- and
// formatting-free. Functions whose doc comment carries //loft:hotpath are the
// cycle entry points (Tick, Step, schedule/grant paths); the analyzer closes
// over the static per-package call graph from those seeds and flags, in every
// reachable function:
//
//   - calls into fmt (Sprintf, Errorf, ...): each formats through reflection
//     and allocates, at millions of calls per sweep;
//   - calls into log (and methods on *log.Logger): hot loops must not write
//     logs — emit a probe event or fail via the audit layer instead;
//   - fresh slices grown per call (`var s []T` + append): the growth
//     reallocates every invocation — keep a scratch buffer on the receiver.
//
// A //loft:coldpath marker stops propagation: rare branches (fault
// formatting, debug dumps) hang their expensive work off a coldpath helper.
// Arguments of panic(...) are exempt — a panicking simulator is allowed to
// spend allocations on its last words.
func HotPath() *Analyzer {
	return &Analyzer{
		Name:  "hotpath",
		Doc:   "no fmt/log/per-call allocation in functions reachable from //loft:hotpath entry points",
		Match: matchPaths(simulationPackages, tracePackages),
		Run:   hotpathRun,
	}
}

func hotpathRun(pass *Pass) {
	decls, cold, seeds := hotClosureSeeds(pass)
	if len(seeds) == 0 {
		return
	}
	for fn, seed := range callClosure(pass, seeds, decls, cold) {
		checkHotFunc(pass, decls[fn], seed)
	}
}

// hotClosureSeeds collects the package's function declarations, its
// //loft:coldpath stop set and its //loft:hotpath seeds (in declaration
// order, so multi-seed reachability attributes deterministically). hotpath
// and allocbound share the exact same closure: what must not allocate via
// AST heuristics must not allocate per the compiler's escape analysis
// either.
func hotClosureSeeds(pass *Pass) (decls map[*types.Func]*ast.FuncDecl, cold map[*types.Func]bool, seeds []*types.Func) {
	decls = funcDecls(pass)
	cold = make(map[*types.Func]bool)
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, _ := pass.Info.Defs[fd.Name].(*types.Func)
			if obj == nil {
				continue
			}
			if funcMarker(fd, "//loft:coldpath") {
				cold[obj] = true
			} else if funcMarker(fd, "//loft:hotpath") {
				seeds = append(seeds, obj)
			}
		}
	}
	return decls, cold, seeds
}

func checkHotFunc(pass *Pass, fd *ast.FuncDecl, seed *types.Func) {
	panicArgs := panicArgRanges(pass, fd.Body)
	inPanic := func(pos token.Pos) bool {
		for _, r := range panicArgs {
			if r[0] <= pos && pos < r[1] {
				return true
			}
		}
		return false
	}

	// Function-local slices that start empty; flagged if grown via append.
	emptyDecls := make(map[types.Object]token.Pos)
	grown := make(map[types.Object]bool)

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.DeclStmt:
			gd, ok := n.Decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.VAR {
				return true
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok || len(vs.Values) != 0 {
					continue
				}
				for _, name := range vs.Names {
					recordEmptySlice(pass, name, emptyDecls)
				}
			}
		case *ast.AssignStmt:
			if n.Tok != token.DEFINE || len(n.Lhs) != len(n.Rhs) {
				return true
			}
			for i, lhs := range n.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok || !emptySliceExpr(pass, n.Rhs[i]) {
					continue
				}
				recordEmptySlice(pass, id, emptyDecls)
			}
		case *ast.CallExpr:
			if isBuiltin(pass.Info, n, "append") {
				if id, ok := ast.Unparen(appendDest(n)).(*ast.Ident); ok {
					if obj := pass.Info.Uses[id]; obj != nil {
						grown[obj] = true
					}
				}
				return true
			}
			if inPanic(n.Pos()) {
				return true
			}
			path, name := pkgFuncPath(pass.Info, n)
			switch {
			case path == "fmt":
				pass.Reportf(n.Pos(), "fmt.%s on a hot path (reachable from //loft:hotpath %s): formatting allocates per call; precompute, use a probe event, or move it behind a //loft:coldpath helper", name, seed.Name())
			case path == "log":
				pass.Reportf(n.Pos(), "log call on a hot path (reachable from //loft:hotpath %s): hot loops must not log; emit a probe event or audit fault instead", seed.Name())
			}
		}
		return true
	})

	for obj, pos := range emptyDecls {
		if grown[obj] {
			pass.Reportf(pos, "slice %s starts empty and grows per call on a hot path (reachable from //loft:hotpath %s): reuse a scratch buffer on the receiver", obj.Name(), seed.Name())
		}
	}
}

// recordEmptySlice notes name as a function-local slice that starts empty.
func recordEmptySlice(pass *Pass, name *ast.Ident, out map[types.Object]token.Pos) {
	obj := pass.Info.Defs[name]
	if obj == nil {
		return
	}
	if _, ok := obj.Type().Underlying().(*types.Slice); ok {
		out[obj] = name.Pos()
	}
}

// emptySliceExpr reports whether e constructs an empty slice: `[]T{}` or
// `make([]T, 0[, cap])`.
func emptySliceExpr(pass *Pass, e ast.Expr) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.CompositeLit:
		tv, ok := pass.Info.Types[e]
		if !ok {
			return false
		}
		_, isSlice := tv.Type.Underlying().(*types.Slice)
		return isSlice && len(e.Elts) == 0
	case *ast.CallExpr:
		if !isBuiltin(pass.Info, e, "make") || len(e.Args) < 2 {
			return false
		}
		tv, ok := pass.Info.Types[e]
		if !ok {
			return false
		}
		if _, isSlice := tv.Type.Underlying().(*types.Slice); !isSlice {
			return false
		}
		lenTV, ok := pass.Info.Types[e.Args[1]]
		return ok && lenTV.Value != nil && lenTV.Value.String() == "0"
	}
	return false
}

// panicArgRanges returns the source ranges of panic(...) argument lists;
// formatting inside them is exempt.
func panicArgRanges(pass *Pass, body *ast.BlockStmt) [][2]token.Pos {
	var out [][2]token.Pos
	ast.Inspect(body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
				if _, isBuiltinPanic := pass.Info.Uses[id].(*types.Builtin); isBuiltinPanic {
					out = append(out, [2]token.Pos{call.Lparen, call.Rparen + 1})
				}
			}
		}
		return true
	})
	return out
}
