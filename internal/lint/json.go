package lint

import (
	"encoding/json"
	"io"
)

// jsonDiagnostic is the machine-readable rendering of one diagnostic, the
// schema behind `loftcheck -json`.
type jsonDiagnostic struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Message  string `json:"message"`
	// Suppressed carries the //lint:ignore reason when the finding was
	// neutralized; absent for active diagnostics.
	Suppressed string `json:"suppressed,omitempty"`
}

// jsonResult is the top-level `loftcheck -json` document. Analyzers and
// revision make an archived artifact self-describing: a CI diff between two
// runs can tell "code changed" apart from "the analyzer set changed".
type jsonResult struct {
	Packages    int              `json:"packages"`
	Analyzers   []string         `json:"analyzers"`
	Revision    string           `json:"revision,omitempty"`
	Diagnostics []jsonDiagnostic `json:"diagnostics"`
	Suppressed  []jsonDiagnostic `json:"suppressed,omitempty"`
	Clean       bool             `json:"clean"`
}

func toJSONDiag(d Diagnostic) jsonDiagnostic {
	return jsonDiagnostic{
		Analyzer:   d.Analyzer,
		File:       d.Pos.Filename,
		Line:       d.Pos.Line,
		Col:        d.Pos.Column,
		Message:    d.Message,
		Suppressed: d.SuppressedBy,
	}
}

// WriteJSON renders a result as one indented JSON document. Diagnostics is
// always an array (never null) so consumers can index it unconditionally.
func WriteJSON(w io.Writer, r Result) error {
	out := jsonResult{
		Packages:    r.Packages,
		Analyzers:   append([]string{}, r.Analyzers...),
		Revision:    r.Revision,
		Diagnostics: make([]jsonDiagnostic, 0, len(r.Diagnostics)),
		Clean:       r.Clean(),
	}
	for _, d := range r.Diagnostics {
		out.Diagnostics = append(out.Diagnostics, toJSONDiag(d))
	}
	for _, d := range r.Suppressed {
		out.Suppressed = append(out.Suppressed, toJSONDiag(d))
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}
