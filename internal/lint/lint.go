// Package lint is loftcheck's analyzer framework: a stdlib-only static
// analysis driver (go/ast, go/parser, go/token, go/types) that proves the
// repo's engineering invariants at build time instead of observing them at
// run time.
//
// The framework loads packages from source, type-checks them against export
// data produced by the go tool (load.go), and runs a set of repo-specific
// analyzers over the typed syntax trees:
//
//   - determinism: simulation packages must not consult wall-clock time,
//     the global math/rand generators, or iterate maps where the iteration
//     order can leak into results (the parallel-sweep ≡ sequential
//     byte-identity contract).
//   - hookguard: every probe/audit sink call must be dominated by a nil
//     check of its receiver (the "un-audited run takes the exact same hot
//     path" guarantee).
//   - hotpath: functions reachable from a //loft:hotpath cycle entry point
//     must not format, log, or allocate per call.
//   - lockdiscipline: struct fields annotated //loft:guardedby <mutex> may
//     only be accessed while that mutex is held.
//   - stagepurity: functions reachable from a parallel compute-phase entry
//     point (//loft:computephase, or registered via ParallelKernel.AddTicker/
//     AddUpdater) must not call serial-only sinks or write //loft:commitonly
//     fields — all order-sensitive effects go through the staging buffers.
//   - allocbound: the compiler's own escape analysis (go build -gcflags=-m)
//     must report no heap allocation inside the //loft:hotpath closure.
//
// Diagnostics carry file:line:col positions and can be suppressed — with a
// mandatory reason — by a `//lint:ignore <analyzer> <reason>` comment on the
// flagged line or the line above it. Suppressions are reported separately so
// a gate can refuse them in designated packages.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"io"
	"regexp"
	"sort"
	"strings"
)

// Analyzer is one invariant checker. Run is invoked once per loaded package
// whose import path satisfies Match.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and //lint:ignore
	// comments. Lower-case, no spaces.
	Name string
	// Doc is a one-line description shown by loftcheck -list.
	Doc string
	// Match reports whether the analyzer applies to a package. A nil Match
	// applies to every package. The corpus harness bypasses Match so
	// testdata packages exercise analyzers regardless of their import path.
	Match func(importPath string) bool
	// Run inspects one package and reports findings through the pass.
	Run func(*Pass)
	// NeedsEscapes marks analyzers consuming the compiler escape-analysis
	// index; the driver builds it once per run when any selected analyzer
	// sets it, and fails the run (not the package) if the build breaks.
	NeedsEscapes bool
}

// Pass carries one package's typed syntax to an analyzer.
type Pass struct {
	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info

	analyzer *Analyzer
	diags    *[]Diagnostic
	// escapes is the run-wide escape-analysis index (nil unless a selected
	// analyzer declared NeedsEscapes), keyed by module-root-relative file.
	escapes escapeIndex
}

// Reportf records one diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// Diagnostic is one finding, positioned for editors (file:line:col).
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
	// SuppressedBy holds the reason of the //lint:ignore comment that
	// suppressed this diagnostic (empty for active diagnostics).
	SuppressedBy string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s [%s]", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Message, d.Analyzer)
}

// Result is the outcome of one driver run.
type Result struct {
	// Diagnostics are the active findings, sorted by (file, line, column,
	// analyzer) across every analyzed package.
	Diagnostics []Diagnostic
	// Suppressed are findings neutralized by //lint:ignore comments, sorted
	// the same way.
	Suppressed []Diagnostic
	// Packages counts the packages analyzed.
	Packages int
	// Analyzers names the analyzers that ran, in reporting order.
	Analyzers []string
	// Revision is the repo HEAD commit the run analyzed (best effort; empty
	// outside a git checkout). It makes archived -json artifacts diffable
	// across CI runs.
	Revision string
}

// Clean reports whether the run produced no active diagnostics.
func (r Result) Clean() bool { return len(r.Diagnostics) == 0 }

// ignoreDirective is one parsed //lint:ignore comment.
type ignoreDirective struct {
	analyzer string
	reason   string
	file     string
	line     int
	used     bool
}

var ignoreRE = regexp.MustCompile(`^//lint:ignore\s+(\S+)(?:\s+(.*))?$`)

// collectIgnores extracts the //lint:ignore directives of one file, keyed by
// the line the directive ends on. Malformed directives (missing analyzer or
// reason) are themselves diagnostics: a suppression without a recorded
// rationale is how invariants rot silently.
func collectIgnores(fset *token.FileSet, f *ast.File, diags *[]Diagnostic) map[int][]*ignoreDirective {
	out := make(map[int][]*ignoreDirective)
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text := strings.TrimSpace(c.Text)
			if !strings.HasPrefix(text, "//lint:ignore") {
				continue
			}
			pos := fset.Position(c.Pos())
			m := ignoreRE.FindStringSubmatch(text)
			if m == nil || strings.TrimSpace(m[2]) == "" {
				*diags = append(*diags, Diagnostic{
					Analyzer: "lint",
					Pos:      pos,
					Message:  "malformed //lint:ignore: need `//lint:ignore <analyzer> <reason>` with a non-empty reason",
				})
				continue
			}
			end := fset.Position(c.End()).Line
			out[end] = append(out[end], &ignoreDirective{
				analyzer: m[1],
				reason:   strings.TrimSpace(m[2]),
				file:     pos.Filename,
				line:     end,
			})
		}
	}
	return out
}

// runPackage executes every applicable analyzer over one loaded package and
// returns its active and suppressed diagnostics. escapes may be nil when no
// selected analyzer needs the escape-analysis index.
func runPackage(pkg *Package, analyzers []*Analyzer, bypassMatch bool, escapes escapeIndex) (active, suppressed []Diagnostic) {
	var diags []Diagnostic
	for _, a := range analyzers {
		if !bypassMatch && a.Match != nil && !a.Match(pkg.Pkg.Path()) {
			continue
		}
		pass := &Pass{
			Fset:     pkg.Fset,
			Files:    pkg.Files,
			Pkg:      pkg.Pkg,
			Info:     pkg.Info,
			analyzer: a,
			diags:    &diags,
			escapes:  escapes,
		}
		a.Run(pass)
	}

	// Suppression pass: a diagnostic at line L is neutralized by a matching
	// //lint:ignore directive ending on line L or L-1 in the same file.
	ignores := make(map[string]map[int][]*ignoreDirective)
	for _, f := range pkg.Files {
		name := pkg.Fset.Position(f.Pos()).Filename
		ignores[name] = collectIgnores(pkg.Fset, f, &diags)
	}
	for _, d := range diags {
		dir := matchIgnore(ignores[d.Pos.Filename], d)
		if dir == nil {
			active = append(active, d)
			continue
		}
		dir.used = true
		d.SuppressedBy = dir.reason
		suppressed = append(suppressed, d)
	}
	// Unused directives are diagnostics too: a stale ignore hides nothing
	// today but will silently swallow a real finding tomorrow.
	for _, file := range ignores {
		for _, dirs := range file {
			for _, dir := range dirs {
				if !dir.used && analyzerKnown(analyzers, dir.analyzer) {
					active = append(active, Diagnostic{
						Analyzer: "lint",
						Pos:      token.Position{Filename: dir.file, Line: dir.line},
						Message:  fmt.Sprintf("unused //lint:ignore %s directive (no diagnostic to suppress)", dir.analyzer),
					})
				}
			}
		}
	}
	sortDiags(active)
	sortDiags(suppressed)
	return active, suppressed
}

func analyzerKnown(analyzers []*Analyzer, name string) bool {
	for _, a := range analyzers {
		if a.Name == name {
			return true
		}
	}
	return false
}

func matchIgnore(byLine map[int][]*ignoreDirective, d Diagnostic) *ignoreDirective {
	if byLine == nil {
		return nil
	}
	for _, line := range []int{d.Pos.Line, d.Pos.Line - 1} {
		for _, dir := range byLine[line] {
			if dir.analyzer == d.Analyzer {
				return dir
			}
		}
	}
	return nil
}

func sortDiags(ds []Diagnostic) {
	sort.Slice(ds, func(i, j int) bool {
		a, b := ds[i], ds[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
}

// Config parameterizes a driver run.
type Config struct {
	// Patterns are go-tool package patterns (e.g. "./...") resolved relative
	// to the module root.
	Patterns []string
	// Analyzers to run; defaults to All() when empty.
	Analyzers []*Analyzer
	// Dir is the module root; "" means: locate go.mod upward from the
	// working directory.
	Dir string
}

// Run loads every package matching cfg.Patterns and executes the analyzers.
// A non-nil error means the analysis itself could not run (load or type
// failure) — distinct from a clean run that found diagnostics.
func Run(cfg Config) (Result, error) {
	analyzers := cfg.Analyzers
	if len(analyzers) == 0 {
		analyzers = All()
	}
	ld, err := newLoader(cfg.Dir)
	if err != nil {
		return Result{}, err
	}
	targets, err := ld.targets(cfg.Patterns)
	if err != nil {
		return Result{}, err
	}
	var escapes escapeIndex
	for _, a := range analyzers {
		if a.NeedsEscapes {
			escapes, err = buildEscapeIndex(ld.root, cfg.Patterns)
			if err != nil {
				return Result{}, err
			}
			break
		}
	}
	var res Result
	for _, a := range analyzers {
		res.Analyzers = append(res.Analyzers, a.Name)
	}
	res.Revision = headRevision(ld.root)
	for _, t := range targets {
		pkg, err := ld.load(t)
		if err != nil {
			return Result{}, err
		}
		res.Packages++
		active, suppressed := runPackage(pkg, analyzers, false, escapes)
		res.Diagnostics = append(res.Diagnostics, active...)
		res.Suppressed = append(res.Suppressed, suppressed...)
	}
	// Per-package runs emit sorted; re-sort globally so the emission order is
	// a pure function of the findings, not of package iteration order.
	sortDiags(res.Diagnostics)
	sortDiags(res.Suppressed)
	return res, nil
}

// WriteText renders a result in the conventional file:line:col format.
func WriteText(w io.Writer, r Result) {
	for _, d := range r.Diagnostics {
		fmt.Fprintln(w, d.String())
	}
	if n := len(r.Suppressed); n > 0 {
		fmt.Fprintf(w, "(%d diagnostic(s) suppressed by //lint:ignore)\n", n)
	}
}
