package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package.
type Package struct {
	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
}

// target describes one package to analyze, as reported by the go tool.
type target struct {
	ImportPath string
	Dir        string
	GoFiles    []string
}

// extraStdPackages are stdlib packages the corpus testdata imports beyond
// what the module itself depends on; their export data must be in the
// universe even when no repo package imports them.
var extraStdPackages = []string{"fmt", "log", "math/rand", "sync", "time"}

// loader type-checks packages from source against export data produced by
// the go tool. One `go list -export -deps` invocation builds the import
// universe (compiled export data for every dependency, stdlib included);
// each analyzed package is then parsed and type-checked from its .go files,
// so analyzers see full syntax plus full type information without any
// non-stdlib dependency.
type loader struct {
	root     string // module root (directory containing go.mod)
	fset     *token.FileSet
	imp      types.Importer
	exports  map[string]string // import path -> export data file
	universe []string          // patterns the universe was built from
}

// findModuleRoot walks upward from dir to the directory containing go.mod.
func findModuleRoot(dir string) (string, error) {
	d, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			return d, nil
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", fmt.Errorf("lint: no go.mod found upward of %s", dir)
		}
		d = parent
	}
}

func newLoader(dir string) (*loader, error) {
	if dir == "" {
		dir = "."
	}
	root, err := findModuleRoot(dir)
	if err != nil {
		return nil, err
	}
	ld := &loader{root: root, fset: token.NewFileSet()}
	if err := ld.buildUniverse(); err != nil {
		return nil, err
	}
	lookup := func(path string) (io.ReadCloser, error) {
		f, ok := ld.exports[path]
		if !ok {
			return nil, fmt.Errorf("lint: no export data for %q (is it built?)", path)
		}
		return os.Open(f)
	}
	ld.imp = importer.ForCompiler(ld.fset, "gc", lookup)
	return ld, nil
}

// goList runs the go tool in the module root and returns its stdout.
func (ld *loader) goList(args ...string) ([]byte, error) {
	cmd := exec.Command("go", append([]string{"list"}, args...)...)
	cmd.Dir = ld.root
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("lint: go list %s: %v\n%s", strings.Join(args, " "), err, stderr.String())
	}
	return out, nil
}

// buildUniverse records export data for every dependency of the module plus
// the corpus extras. -export compiles (or reuses from the build cache) each
// package's export data; -e tolerates packages that fail to list, surfaced
// later only if something actually imports them.
func (ld *loader) buildUniverse() error {
	args := append([]string{"-e", "-export", "-deps", "-json=ImportPath,Export", "./..."}, extraStdPackages...)
	out, err := ld.goList(args...)
	if err != nil {
		return err
	}
	ld.exports = make(map[string]string)
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var m struct{ ImportPath, Export string }
		if err := dec.Decode(&m); err == io.EOF {
			break
		} else if err != nil {
			return fmt.Errorf("lint: decoding go list output: %v", err)
		}
		if m.Export != "" {
			ld.exports[m.ImportPath] = m.Export
		}
	}
	return nil
}

// targets resolves package patterns to the list of packages to analyze,
// sorted by import path.
func (ld *loader) targets(patterns []string) ([]target, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{"-json=ImportPath,Dir,GoFiles"}, patterns...)
	out, err := ld.goList(args...)
	if err != nil {
		return nil, err
	}
	var ts []target
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var t target
		if err := dec.Decode(&t); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("lint: decoding go list output: %v", err)
		}
		if len(t.GoFiles) > 0 {
			ts = append(ts, t)
		}
	}
	sort.Slice(ts, func(i, j int) bool { return ts[i].ImportPath < ts[j].ImportPath })
	return ts, nil
}

// load parses and type-checks one target from source.
func (ld *loader) load(t target) (*Package, error) {
	return ld.loadFiles(t.ImportPath, t.Dir, t.GoFiles)
}

// LoadDir parses and type-checks every non-test .go file of dir as a single
// package with the given import path. The corpus harness uses it to load
// testdata packages the go tool refuses to enumerate.
func (ld *loader) loadDir(importPath, dir string) (*Package, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []string
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		files = append(files, name)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("lint: no .go files in %s", dir)
	}
	sort.Strings(files)
	return ld.loadFiles(importPath, dir, files)
}

func (ld *loader) loadFiles(importPath, dir string, goFiles []string) (*Package, error) {
	var files []*ast.File
	for _, gf := range goFiles {
		path := filepath.Join(dir, gf)
		src, err := os.ReadFile(path)
		if err != nil {
			return nil, fmt.Errorf("lint: %v", err)
		}
		// The module-root-relative name is the position label, so
		// diagnostics read the same from any working directory.
		f, err := parser.ParseFile(ld.fset, ld.rel(path), src, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint: %v", err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: ld.imp}
	pkg, err := conf.Check(importPath, ld.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %v", importPath, err)
	}
	return &Package{Fset: ld.fset, Files: files, Pkg: pkg, Info: info}, nil
}

// rel renders path relative to the module root when possible: diagnostics
// then read the same from any working directory inside the repo, and the
// labels line up with the compiler's root-relative escape-analysis output.
func (ld *loader) rel(path string) string {
	abs, err := filepath.Abs(path)
	if err != nil {
		return path
	}
	if r, err := filepath.Rel(ld.root, abs); err == nil && !strings.HasPrefix(r, "..") {
		return filepath.ToSlash(r)
	}
	return path
}
