package lint

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// The loader's failure paths must surface as errors naming the offending
// path — a lint driver that panics on malformed input cannot gate CI.

func TestLoadUnparsablePackageIsError(t *testing.T) {
	ld, err := newLoader(".")
	if err != nil {
		t.Fatalf("loader: %v", err)
	}
	// The broken package must live inside the module (the loader resolves
	// positions against the module root), so build it on the fly rather than
	// checking in a file that would trip gofmt.
	dir, err := os.MkdirTemp(".", "broken-corpus-")
	if err != nil {
		t.Fatal(err)
	}
	defer os.RemoveAll(dir)
	src := filepath.Join(dir, "bad.go")
	if err := os.WriteFile(src, []byte("package bad\n\nfunc oops( {\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = ld.loadDir("corpus/broken", dir)
	if err == nil {
		t.Fatal("loading an unparsable package succeeded")
	}
	if !strings.Contains(err.Error(), "bad.go") {
		t.Errorf("error does not name the unparsable file: %v", err)
	}
}

func TestLoadMissingExportDataIsError(t *testing.T) {
	ld, err := newLoader(".")
	if err != nil {
		t.Fatalf("loader: %v", err)
	}
	dir, err := os.MkdirTemp(".", "noexport-corpus-")
	if err != nil {
		t.Fatal(err)
	}
	defer os.RemoveAll(dir)
	src := filepath.Join(dir, "imp.go")
	code := "package imp\n\nimport \"nonexistent/dependency\"\n\nvar _ = dependency.Thing\n"
	if err := os.WriteFile(src, []byte(code), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = ld.loadDir("corpus/noexport", dir)
	if err == nil {
		t.Fatal("loading a package with an unbuildable import succeeded")
	}
	if !strings.Contains(err.Error(), "no export data") || !strings.Contains(err.Error(), "nonexistent/dependency") {
		t.Errorf("error does not name the missing import: %v", err)
	}
}

func TestLoadEmptyDirIsError(t *testing.T) {
	ld, err := newLoader(".")
	if err != nil {
		t.Fatalf("loader: %v", err)
	}
	dir, err := os.MkdirTemp(".", "empty-corpus-")
	if err != nil {
		t.Fatal(err)
	}
	defer os.RemoveAll(dir)
	_, err = ld.loadDir("corpus/empty", dir)
	if err == nil {
		t.Fatal("loading a directory without .go files succeeded")
	}
	if !strings.Contains(err.Error(), "no .go files") || !strings.Contains(err.Error(), dir) {
		t.Errorf("error does not name the empty directory: %v", err)
	}
}

func TestTargetsNoMatchIsError(t *testing.T) {
	ld, err := newLoader(".")
	if err != nil {
		t.Fatalf("loader: %v", err)
	}
	_, err = ld.targets([]string{"./nonexistent/..."})
	if err == nil {
		t.Fatal("pattern matching nothing succeeded")
	}
	if !strings.Contains(err.Error(), "./nonexistent/...") {
		t.Errorf("error does not echo the pattern: %v", err)
	}
}

func TestRunNoMatchIsError(t *testing.T) {
	_, err := Run(Config{Patterns: []string{"./nonexistent/..."}, Analyzers: []*Analyzer{Determinism()}})
	if err == nil {
		t.Fatal("Run with a no-match pattern succeeded")
	}
	if !strings.Contains(err.Error(), "./nonexistent/...") {
		t.Errorf("error does not echo the pattern: %v", err)
	}
}
