package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// LockDiscipline returns the analyzer enforcing //loft:guardedby annotations:
// a struct field whose doc comment carries `//loft:guardedby <mutexField>`
// may only be read or written while that mutex is held. "Held" is
// approximated lexically — the access must be preceded, in the same function
// body, by a call to `<base>.<mutexField>.Lock()` or `.RLock()` on the same
// base expression. Two escape hatches keep the rule usable:
//
//   - functions whose name ends in "Locked" are callee-side helpers that
//     document (by convention) that the caller holds the mutex; their bodies
//     are exempt;
//   - accesses through a variable declared inside the current function body
//     (a value still under construction, e.g. in a New* constructor before
//     it is shared) are exempt.
//
// The annotation itself is validated: a marker without a mutex name, or one
// naming a field the struct does not have, is a diagnostic.
func LockDiscipline() *Analyzer {
	return &Analyzer{
		Name: "lockdiscipline",
		Doc:  "fields annotated //loft:guardedby <mutexField> are only accessed with the mutex held",
		Run:  lockdisciplineRun,
	}
}

const guardedbyMarker = "//loft:guardedby"

func lockdisciplineRun(pass *Pass) {
	guarded := collectGuardedFields(pass)
	if len(guarded) == 0 {
		return
	}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if strings.HasSuffix(fd.Name.Name, "Locked") {
				continue
			}
			checkLockedAccesses(pass, fd, guarded)
		}
	}
}

// collectGuardedFields parses the //loft:guardedby annotations of every
// struct declared in the package, returning field object -> mutex field name.
func collectGuardedFields(pass *Pass) map[types.Object]string {
	out := make(map[types.Object]string)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok || st.Fields == nil {
				return true
			}
			names := make(map[string]bool)
			for _, fld := range st.Fields.List {
				for _, name := range fld.Names {
					names[name.Name] = true
				}
			}
			for _, fld := range st.Fields.List {
				mutex, found, malformed := guardedbyOf(fld)
				if malformed {
					pass.Reportf(fld.Pos(), "malformed %s: need `%s <mutexField>`", guardedbyMarker, guardedbyMarker)
					continue
				}
				if !found {
					continue
				}
				if !names[mutex] {
					pass.Reportf(fld.Pos(), "%s %s names a field this struct does not have", guardedbyMarker, mutex)
					continue
				}
				for _, name := range fld.Names {
					if obj := pass.Info.Defs[name]; obj != nil {
						out[obj] = mutex
					}
				}
			}
			return true
		})
	}
	return out
}

// guardedbyOf extracts the //loft:guardedby annotation from a field's doc or
// trailing comment.
func guardedbyOf(fld *ast.Field) (mutex string, found, malformed bool) {
	for _, cg := range []*ast.CommentGroup{fld.Doc, fld.Comment} {
		if cg == nil {
			continue
		}
		for _, c := range cg.List {
			text := strings.TrimSpace(c.Text)
			if !strings.HasPrefix(text, guardedbyMarker) {
				continue
			}
			rest := strings.TrimSpace(strings.TrimPrefix(text, guardedbyMarker))
			if rest == "" || len(strings.Fields(rest)) != 1 {
				return "", false, true
			}
			return rest, true, false
		}
	}
	return "", false, false
}

// checkLockedAccesses verifies every guarded-field access in fd against the
// lock acquisitions that lexically precede it.
func checkLockedAccesses(pass *Pass, fd *ast.FuncDecl, guarded map[types.Object]string) {
	// acquired maps "base.mutexField" renderings to the position of the
	// first Lock()/RLock() call on them.
	acquired := make(map[string]ast.Node)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok || (sel.Sel.Name != "Lock" && sel.Sel.Name != "RLock") {
			return true
		}
		key := types.ExprString(ast.Unparen(sel.X))
		if _, seen := acquired[key]; !seen {
			acquired[key] = call
		}
		return true
	})
	lockPos := func(key string) (ast.Node, bool) {
		n, ok := acquired[key]
		return n, ok
	}

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		selection, ok := pass.Info.Selections[sel]
		if !ok || selection.Kind() != types.FieldVal {
			return true
		}
		mutex, isGuarded := guarded[selection.Obj()]
		if !isGuarded {
			return true
		}
		base := ast.Unparen(sel.X)
		if locallyConstructed(pass, fd, base) {
			return true
		}
		key := types.ExprString(base) + "." + mutex
		if lock, held := lockPos(key); held && lock.Pos() < sel.Pos() {
			return true
		}
		pass.Reportf(sel.Sel.Pos(), "access to %s (guarded by %s) without a preceding %s.Lock() in this function: hold the mutex or move the access into a *Locked helper", types.ExprString(sel), mutex, key)
		return true
	})
}

// locallyConstructed reports whether base is an identifier declared inside
// fd's body — a value this function built and has not yet shared, which no
// other goroutine can race on. Receivers and parameters are declared in the
// signature, so they stay subject to the check.
func locallyConstructed(pass *Pass, fd *ast.FuncDecl, base ast.Expr) bool {
	id, ok := base.(*ast.Ident)
	if !ok {
		return false
	}
	obj := pass.Info.Uses[id]
	if obj == nil {
		obj = pass.Info.Defs[id]
	}
	if obj == nil {
		return false
	}
	return fd.Body.Pos() <= obj.Pos() && obj.Pos() < fd.Body.End()
}
