package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// StagePurity returns the analyzer proving the parallel byte-identity
// contract structurally: code running inside the parallel compute phase must
// not touch shared, order-sensitive state directly. The compute-phase entry
// points are functions annotated //loft:computephase plus every concrete
// Tick/Update method registered through sim.ParallelKernel.AddTicker/
// AddUpdater; the analyzer closes over the static per-package call graph
// from those seeds (a //loft:commitphase marker stops propagation — that is
// the sanctioned serial side) and rejects, inside the closure:
//
//   - calls to serial-only sinks: probe.Probe.Emit/EmitSeq/MaybeSample,
//     probe.Stage.FlushStage, probe.Tracer.Emit, probe.Registry.Sample,
//     probe.Counter.Inc/Add, the audit.Auditor taps, audit.Hook.Flush, the
//     shared stats reservoir mutators (Latency/FlowLatency/Throughput/
//     Histogram observations consume per-run RNG draws in call order), and
//     perfmon.Monitor.OnCycle. The staged surfaces — probe.Stage.Emit/
//     EmitSeq, the audit.Hook forwarders, per-node delta buffers — stay
//     allowed: they buffer locally and replay at the barrier;
//   - the global math/rand generators (also caught by determinism, but a
//     compute-phase draw additionally breaks cross-worker replay);
//   - writes to struct fields annotated //loft:commitonly (assignment,
//     compound assignment, ++/--, delete): those fields may be read during
//     compute (they are stable between barriers) but only the serial commit
//     phase may mutate them.
//
// What this buys: a future contributor cannot silently reintroduce a direct
// shared-state effect into node ticking — the convention TestParallelDeterminism*
// checks at run time on exercised paths becomes a compile-gate on all paths.
func StagePurity() *Analyzer {
	return &Analyzer{
		Name:  "stagepurity",
		Doc:   "no serial-only sinks or //loft:commitonly writes reachable from parallel compute-phase entry points",
		Match: matchPaths(simulationPackages),
		Run:   stagepurityRun,
	}
}

func stagepurityRun(pass *Pass) {
	decls := funcDecls(pass)
	commit := make(map[*types.Func]bool)
	var seeds []*types.Func
	seen := make(map[*types.Func]bool)
	addSeed := func(fn *types.Func) {
		if fn == nil || seen[fn] {
			return
		}
		if _, declared := decls[fn]; !declared {
			return
		}
		seen[fn] = true
		seeds = append(seeds, fn)
	}
	// Marker pass in declaration order, so multi-seed reachability attributes
	// deterministically.
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, _ := pass.Info.Defs[fd.Name].(*types.Func)
			if obj == nil {
				continue
			}
			if funcMarker(fd, "//loft:commitphase") {
				commit[obj] = true
				continue
			}
			if funcMarker(fd, "//loft:computephase") {
				addSeed(obj)
			}
		}
	}
	// Auto-seeding: anything this package registers on the parallel kernel
	// runs in the compute phase whether or not its author remembered the
	// annotation. AddTicker also registers the component's Update method when
	// it has one (the kernel does the same type assertion).
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			for _, m := range parallelRegistration(pass, call) {
				addSeed(m)
			}
			return true
		})
	}
	if len(seeds) == 0 {
		return
	}

	fields := commitOnlyFields(pass)
	for fn, seed := range callClosure(pass, seeds, decls, commit) {
		checkComputeFunc(pass, decls[fn], seed, fields)
	}
}

// parallelRegistration resolves a (*sim.ParallelKernel).AddTicker/AddUpdater
// call to the concrete phase methods it registers, looked up on the static
// type of the component argument.
func parallelRegistration(pass *Pass, call *ast.CallExpr) []*types.Func {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || len(call.Args) < 2 {
		return nil
	}
	selection, isMethod := pass.Info.Selections[sel]
	if !isMethod || selection.Kind() != types.MethodVal {
		return nil
	}
	pkgPath, typeName, named := namedRecv(selection.Recv())
	if !named || !strings.HasSuffix(pkgPath, "internal/sim") || typeName != "ParallelKernel" {
		return nil
	}
	var methods []string
	switch sel.Sel.Name {
	case "AddTicker":
		methods = []string{"Tick", "Update"}
	case "AddUpdater":
		methods = []string{"Update"}
	default:
		return nil
	}
	tv, ok := pass.Info.Types[call.Args[1]]
	if !ok || tv.Type == nil {
		return nil
	}
	var out []*types.Func
	for _, m := range methods {
		obj, _, _ := types.LookupFieldOrMethod(tv.Type, true, pass.Pkg, m)
		if fn, ok := obj.(*types.Func); ok && fn.Pkg() == pass.Pkg {
			out = append(out, fn)
		}
	}
	return out
}

// commitOnlyFields collects the struct fields annotated //loft:commitonly.
func commitOnlyFields(pass *Pass) map[types.Object]bool {
	out := make(map[types.Object]bool)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				if !fieldMarker(field, "//loft:commitonly") {
					continue
				}
				for _, name := range field.Names {
					if obj := pass.Info.Defs[name]; obj != nil {
						out[obj] = true
					}
				}
			}
			return true
		})
	}
	return out
}

// fieldMarker reports whether a struct field's doc or line comment carries
// the given //loft:... marker on a line of its own.
func fieldMarker(field *ast.Field, marker string) bool {
	for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if cg == nil {
			continue
		}
		for _, c := range cg.List {
			if strings.TrimSpace(c.Text) == marker {
				return true
			}
		}
	}
	return false
}

// checkComputeFunc flags serial-only effects inside one compute-phase
// function.
func checkComputeFunc(pass *Pass, fd *ast.FuncDecl, seed *types.Func, fields map[types.Object]bool) {
	reportWrite := func(pos ast.Node, obj types.Object) {
		pass.Reportf(pos.Pos(), "write to //loft:commitonly field %s in the parallel compute phase (reachable from compute-phase entry %s): stage a delta and apply it from the commit phase", obj.Name(), seed.Name())
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false // closures run on their own schedule
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if obj := baseFieldObj(pass, lhs); obj != nil && fields[obj] {
					reportWrite(lhs, obj)
				}
			}
		case *ast.IncDecStmt:
			if obj := baseFieldObj(pass, n.X); obj != nil && fields[obj] {
				reportWrite(n.X, obj)
			}
		case *ast.CallExpr:
			if isBuiltin(pass.Info, n, "delete") && len(n.Args) > 0 {
				if obj := baseFieldObj(pass, n.Args[0]); obj != nil && fields[obj] {
					reportWrite(n.Args[0], obj)
				}
				return true
			}
			if sink, ok := serialOnlySink(pass, n); ok {
				pass.Reportf(n.Pos(), "serial-only sink %s called in the parallel compute phase (reachable from compute-phase entry %s): emit through the staged surface (probe.Stage, audit.Hook, per-node buffers) and replay it from the commit phase", sink, seed.Name())
			}
		}
		return true
	})
}

// baseFieldObj peels indexing, derefs and parens off an lvalue and returns
// the struct-field object at its base selector (x.f, x.f[i], *x.f → f), or
// nil when the lvalue does not bottom out in a field.
func baseFieldObj(pass *Pass, e ast.Expr) types.Object {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.SelectorExpr:
			obj := pass.Info.Uses[x.Sel]
			if v, ok := obj.(*types.Var); ok && v.IsField() {
				return v
			}
			return nil
		default:
			return nil
		}
	}
}

// serialOnlySink reports whether the call targets a method that may only run
// in the serial commit phase, with its diagnostic name.
func serialOnlySink(pass *Pass, call *ast.CallExpr) (string, bool) {
	// Package-level global RNG draws first (no receiver).
	if fn := calleeFunc(pass.Info, call); fn != nil && fn.Pkg() != nil {
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() == nil {
			switch fn.Pkg().Path() {
			case "math/rand", "math/rand/v2":
				if !randConstructors[fn.Name()] {
					return fn.Pkg().Name() + "." + fn.Name(), true
				}
			}
		}
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	selection, isMethod := pass.Info.Selections[sel]
	if !isMethod || selection.Kind() != types.MethodVal {
		return "", false
	}
	pkgPath, typeName, named := namedRecv(selection.Recv())
	if !named {
		return "", false
	}
	name := sel.Sel.Name
	switch {
	case strings.HasSuffix(pkgPath, "internal/probe") && typeName == "Probe" && (name == "Emit" || name == "EmitSeq" || name == "MaybeSample"):
		return "probe.Probe." + name, true
	case strings.HasSuffix(pkgPath, "internal/probe") && typeName == "Stage" && name == "FlushStage":
		return "probe.Stage." + name, true
	case strings.HasSuffix(pkgPath, "internal/probe") && typeName == "Tracer" && name == "Emit":
		return "probe.Tracer." + name, true
	case strings.HasSuffix(pkgPath, "internal/probe") && typeName == "Registry" && name == "Sample":
		return "probe.Registry." + name, true
	case strings.HasSuffix(pkgPath, "internal/probe") && typeName == "Counter" && (name == "Inc" || name == "Add"):
		return "probe.Counter." + name, true
	case strings.HasSuffix(pkgPath, "internal/audit") && typeName == "Auditor" &&
		(auditorSinkMethods[name] || strings.HasPrefix(name, "LOFT") || strings.HasPrefix(name, "GSF") || strings.HasPrefix(name, "Audit")):
		return "audit.Auditor." + name, true
	case strings.HasSuffix(pkgPath, "internal/audit") && typeName == "Hook" && name == "Flush":
		return "audit.Hook." + name, true
	case strings.HasSuffix(pkgPath, "internal/stats") && typeName == "Latency" && name == "Observe":
		return "stats.Latency." + name, true
	case strings.HasSuffix(pkgPath, "internal/stats") && typeName == "FlowLatency" && name == "Observe":
		return "stats.FlowLatency." + name, true
	case strings.HasSuffix(pkgPath, "internal/stats") && typeName == "Throughput" && (name == "Observe" || name == "ObserveN" || name == "Close"):
		return "stats.Throughput." + name, true
	case strings.HasSuffix(pkgPath, "internal/stats") && typeName == "Histogram" && name == "Observe":
		return "stats.Histogram." + name, true
	case strings.HasSuffix(pkgPath, "internal/perfmon") && typeName == "Monitor" && name == "OnCycle":
		return "perfmon.Monitor." + name, true
	}
	return "", false
}
