// Package a is the allocbound true-positive corpus: heap allocations the
// compiler's escape analysis proves inside the //loft:hotpath closure.
package a

type ring struct {
	buf    []byte
	latest *int
	notify func()
}

// Tick is the hot entry point; the variable-sized make leaks into the
// receiver, so escape analysis moves it to the heap.
//
//loft:hotpath
func (r *ring) Tick(now uint64) {
	n := int(now % 64)
	r.buf = make([]byte, n) // want `heap allocation on a hot path \(reachable from //loft:hotpath Tick\)`
	r.fill(n)               // want `moved to heap: x` (the inlined copy replays the finding at the call site)
	r.arm()                 // want `func literal escapes to heap`
}

// fill is hot by reachability; taking the address of a local that outlives
// the call moves it to the heap.
func (r *ring) fill(n int) {
	x := n * 2 // want `heap allocation on a hot path .*moved to heap: x`
	r.latest = &x
}

// arm stores a capturing closure: the func literal escapes.
func (r *ring) arm() {
	r.notify = func() { r.buf = r.buf[:0] } // want `heap allocation on a hot path .*func literal escapes to heap`
}
