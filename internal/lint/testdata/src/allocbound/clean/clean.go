// Package clean is the allocbound clean-negative corpus: a hot path whose
// every allocation is either stack-proven, hoisted behind a //loft:coldpath
// helper, or spent on panic arguments.
package clean

import "fmt"

type ring struct {
	buf   [64]byte
	count int
}

// Tick allocates nothing the compiler can't keep on the stack: fixed-size
// scratch stays local and the commit write reuses receiver storage.
//
//loft:hotpath
func (r *ring) Tick(now uint64) {
	scratch := make([]byte, 8) // stack: constant size, never leaves the frame
	for i := range scratch {
		scratch[i] = byte(now >> (8 * i))
	}
	copy(r.buf[:], scratch)
	r.count++
	if r.count < 0 {
		panic(fmt.Sprintf("ring wrapped at cycle %d", now)) // last words may allocate
	}
}

// dump formats the ring for debugging; the //loft:coldpath marker keeps its
// allocations out of the hot closure.
//
//loft:coldpath
func (r *ring) dump() string {
	return fmt.Sprintf("count=%d buf=%x", r.count, r.buf)
}

// Report is not reachable from any hot seed, so its allocation is fine.
func (r *ring) Report() []byte {
	out := make([]byte, len(r.buf))
	copy(out, r.buf[:])
	return out
}
