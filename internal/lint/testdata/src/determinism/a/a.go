// Package a is the determinism true-positive corpus: every construct here
// must be flagged.
package a

import (
	"fmt"
	"math/rand"
	"os"
	"time"
)

func wallClock() int64 {
	return time.Now().UnixNano() // want `call to time\.Now`
}

func elapsed(t0 time.Time) time.Duration {
	return time.Since(t0) // want `call to time\.Since`
}

func deadline(t1 time.Time) time.Duration {
	return time.Until(t1) // want `call to time\.Until`
}

func globalRand() int {
	return rand.Intn(16) // want `use of global rand\.Intn`
}

func globalFloat() float64 {
	return rand.Float64() // want `use of global rand\.Float64`
}

func envRead() string {
	return os.Getenv("LOFT_MODE") // want `call to os\.Getenv`
}

func envLookup() bool {
	_, ok := os.LookupEnv("LOFT_MODE") // want `call to os\.LookupEnv`
	return ok
}

func envDump() []string {
	return os.Environ() // want `call to os\.Environ`
}

func mapAppend(m map[int]string) []string {
	var out []string
	for _, v := range m {
		out = append(out, v) // want `append inside map iteration`
	}
	return out
}

func mapAppendToField(s *struct{ log []int }, m map[int]int) {
	for _, v := range m {
		s.log = append(s.log, v) // want `append inside map iteration`
	}
}

func mapSend(m map[int]int, ch chan int) {
	for _, v := range m {
		ch <- v // want `channel send inside map iteration`
	}
}

func mapPrint(m map[int]int) {
	for k := range m {
		fmt.Println(k) // want `output written inside map iteration`
	}
}

func mapReturn(m map[int]int) int {
	for k := range m {
		return k // want `return value depends on which map entry`
	}
	return 0
}
