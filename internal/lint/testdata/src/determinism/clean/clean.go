// Package clean is the determinism clean-negative corpus: nothing here may
// be flagged.
package clean

import (
	"math/rand"
	"time"

	"loft/internal/det"
)

// Sleeping is not a clock read; only Now/Since/Until are forbidden.
func pause() { time.Sleep(time.Millisecond) }

// Constant durations are fine.
func window() time.Duration { return 5 * time.Second }

// A locally seeded generator is the blessed RNG pattern; its methods draw
// from a stream the caller owns.
func localRand(seed int64) int {
	r := rand.New(rand.NewSource(seed))
	return r.Intn(16)
}

// det.Keys is the blessed fix for ordered iteration.
func sortedValues(m map[int]string) []string {
	out := make([]string, 0, len(m))
	for _, k := range det.Keys(m) {
		out = append(out, m[k])
	}
	return out
}

// Commutative aggregation does not depend on visit order.
func sum(m map[int]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

// Writes keyed by the range key land in per-entry slots regardless of visit
// order.
func double(m map[int][]int) {
	for k, v := range m {
		m[k] = append(m[k], v...)
	}
}

// A slice rebuilt inside the body belongs to one entry; visit order cannot
// reach it.
func perEntry(m map[int][]int) int {
	n := 0
	for _, vs := range m {
		var local []int
		local = append(local, vs...)
		n += len(local)
	}
	return n
}
