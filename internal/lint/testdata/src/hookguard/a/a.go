// Package a is the hookguard true-positive corpus: every sink call here
// lacks a dominating nil check and must be flagged.
package a

import (
	"loft/internal/audit"
	"loft/internal/lsf"
	"loft/internal/perfmon"
	"loft/internal/probe"
)

type router struct {
	probe *probe.Probe
	stage *probe.Stage
	trc   *probe.Tracer
	aud   lsf.AuditSink
	live  *audit.Auditor
	hook  *audit.Hook
	perf  *perfmon.Timer
	eng   *perfmon.EngineTimer
	mon   *perfmon.Monitor
}

func (r *router) tick(now uint64) {
	r.probe.Emit(now, probe.KindReserveGrant, 0, 0, 0, 0)     // want `sink call probe\.Probe\.Emit on unguarded receiver r\.probe`
	r.probe.EmitSeq(now, probe.KindLAIssue, 0, 0, 0, 1, 0)    // want `sink call probe\.Probe\.EmitSeq on unguarded receiver`
	r.probe.MaybeSample(now)                                  // want `sink call probe\.Probe\.MaybeSample on unguarded receiver`
	r.stage.Emit(now, probe.KindReserveGrant, 0, 0, 0, 0)     // want `sink call probe\.Stage\.Emit on unguarded receiver r\.stage`
	r.stage.EmitSeq(now, probe.KindDataInject, 0, 0, 0, 1, 0) // want `sink call probe\.Stage\.EmitSeq on unguarded receiver`
	r.stage.FlushStage()                                      // want `sink call probe\.Stage\.FlushStage on unguarded receiver`
	r.trc.Emit(probe.Event{})                                 // want `sink call probe\.Tracer\.Emit on unguarded receiver`
	r.live.OnCycle(now)                                       // want `sink call audit\.Auditor\.OnCycle on unguarded receiver`
	r.hook.GSFInject(0, 0, now)                               // want `sink call audit\.Hook\.GSFInject on unguarded receiver`
	r.hook.Flush()                                            // want `sink call audit\.Hook\.Flush on unguarded receiver`
}

func (r *router) profile(now uint64) {
	r.perf.Begin(now)                             // want `sink call perfmon\.Timer\.Begin on unguarded receiver r\.perf`
	r.perf.Lap(perfmon.StageBooking)              // want `sink call perfmon\.Timer\.Lap on unguarded receiver`
	r.eng.CycleStart(now)                         // want `sink call perfmon\.EngineTimer\.CycleStart on unguarded receiver`
	r.eng.PhaseDone(perfmon.PhaseTick)            // want `sink call perfmon\.EngineTimer\.PhaseDone on unguarded receiver`
	start := r.eng.WorkerStart()                  // want `sink call perfmon\.EngineTimer\.WorkerStart on unguarded receiver`
	r.eng.WorkerDone(0, perfmon.PhaseTick, start) // want `sink call perfmon\.EngineTimer\.WorkerDone on unguarded receiver`
	r.mon.OnCycle(now)                            // want `sink call perfmon\.Monitor\.OnCycle on unguarded receiver`
}

func (r *router) grant(slot uint64) {
	r.aud.AuditGrant(0, 1, slot, 0) // want `sink call lsf\.AuditSink\.AuditGrant on unguarded receiver`
}

// A guard on a different receiver does not dominate this one.
func (r *router) wrongGuard(other *probe.Probe, now uint64) {
	if other != nil {
		r.probe.Emit(now, probe.KindReserveGrant, 0, 0, 0, 0) // want `sink call probe\.Probe\.Emit on unguarded receiver`
	}
}

// A non-terminating nil check does not dominate the statements after it.
func (r *router) fallthroughGuard(now uint64) {
	if r.probe == nil {
		now++
	}
	r.probe.MaybeSample(now) // want `sink call probe\.Probe\.MaybeSample on unguarded receiver`
}
