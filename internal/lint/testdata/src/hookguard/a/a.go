// Package a is the hookguard true-positive corpus: every sink call here
// lacks a dominating nil check and must be flagged.
package a

import (
	"loft/internal/audit"
	"loft/internal/lsf"
	"loft/internal/probe"
)

type router struct {
	probe *probe.Probe
	trc   *probe.Tracer
	aud   lsf.AuditSink
	live  *audit.Auditor
	hook  *audit.Hook
}

func (r *router) tick(now uint64) {
	r.probe.Emit(now, probe.KindReserveGrant, 0, 0, 0, 0) // want `sink call probe\.Probe\.Emit on unguarded receiver r\.probe`
	r.probe.MaybeSample(now)                              // want `sink call probe\.Probe\.MaybeSample on unguarded receiver`
	r.probe.FlushStage()                                  // want `sink call probe\.Probe\.FlushStage on unguarded receiver`
	r.trc.Emit(probe.Event{})                             // want `sink call probe\.Tracer\.Emit on unguarded receiver`
	r.live.OnCycle(now)                                   // want `sink call audit\.Auditor\.OnCycle on unguarded receiver`
	r.hook.GSFInject(0, 0, now)                           // want `sink call audit\.Hook\.GSFInject on unguarded receiver`
	r.hook.Flush()                                        // want `sink call audit\.Hook\.Flush on unguarded receiver`
}

func (r *router) grant(slot uint64) {
	r.aud.AuditGrant(0, 1, slot, 0) // want `sink call lsf\.AuditSink\.AuditGrant on unguarded receiver`
}

// A guard on a different receiver does not dominate this one.
func (r *router) wrongGuard(other *probe.Probe, now uint64) {
	if other != nil {
		r.probe.Emit(now, probe.KindReserveGrant, 0, 0, 0, 0) // want `sink call probe\.Probe\.Emit on unguarded receiver`
	}
}

// A non-terminating nil check does not dominate the statements after it.
func (r *router) fallthroughGuard(now uint64) {
	if r.probe == nil {
		now++
	}
	r.probe.MaybeSample(now) // want `sink call probe\.Probe\.MaybeSample on unguarded receiver`
}
