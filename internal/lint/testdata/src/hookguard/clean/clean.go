// Package clean is the hookguard clean-negative corpus: every sink call is
// dominated by a nil check of its receiver.
package clean

import (
	"loft/internal/audit"
	"loft/internal/lsf"
	"loft/internal/perfmon"
	"loft/internal/probe"
)

type router struct {
	probe   *probe.Probe
	stage   *probe.Stage
	trc     *probe.Tracer
	aud     lsf.AuditSink
	live    *audit.Auditor
	hook    *audit.Hook
	perf    *perfmon.Timer
	eng     *perfmon.EngineTimer
	mon     *perfmon.Monitor
	enabled bool
}

// Enclosing if.
func (r *router) tick(now uint64) {
	if r.probe != nil {
		r.probe.MaybeSample(now)
	}
	if r.stage != nil {
		r.stage.EmitSeq(now, probe.KindDataInject, 0, 0, 0, 1, 0)
		r.stage.FlushStage()
	}
	if r.live != nil {
		r.live.OnCycle(now)
	}
	if r.hook != nil {
		r.hook.GSFInject(0, 0, now)
		r.hook.Flush()
	}
}

// Conjunct of an && chain.
func (r *router) conditional(now uint64) {
	if r.enabled && r.probe != nil {
		r.probe.Emit(now, probe.KindReserveGrant, 0, 0, 0, 0)
	}
}

// Terminating early-return guard dominates the rest of the function.
func (r *router) earlyReturn(slot uint64) {
	if r.aud == nil {
		return
	}
	r.aud.AuditGrant(0, 1, slot, 0)
	r.aud.AuditReturn(slot)
}

// Else branch of an == nil check.
func (r *router) elseBranch(now uint64) {
	if r.trc == nil {
		now++
	} else {
		r.trc.Emit(probe.Event{})
	}
}

// Guards survive into nested loops and switches.
func (r *router) nested(now uint64) {
	if r.probe == nil {
		return
	}
	for i := 0; i < 4; i++ {
		switch {
		case i%2 == 0:
			r.probe.Emit(now, probe.KindReserveGrant, 0, 0, int32(i), 0)
		}
	}
}

// Perfmon sinks under every guard shape the analyzer recognizes.
func (r *router) profiled(now uint64) {
	if r.perf != nil {
		r.perf.Begin(now)
		r.perf.Lap(perfmon.StageBooking)
	}
	if r.enabled && r.eng != nil {
		r.eng.CycleStart(now)
		r.eng.PhaseDone(perfmon.PhaseTick)
	}
	if r.mon == nil {
		return
	}
	r.mon.OnCycle(now)
}

// Worker-side engine laps behind an early-return guard, as the parallel
// kernel's shard loop writes them.
func (r *router) shard(now uint64) {
	if r.eng == nil {
		return
	}
	start := r.eng.WorkerStart()
	r.eng.WorkerDone(0, perfmon.PhaseTick, start)
}

// Handle-style calls (Registry/Counter, Monitor.Timer/Engine/Gauge/
// Snapshot) are deliberately not sinks: the no-op lives in the handle
// itself and call sites are expected to stay unconditional.
func (r *router) handles() {
	r.probe.Registry().Counter("clean.count").Inc()
	r.perf = r.mon.Timer()
	r.eng = r.mon.Engine(2)
	_ = r.mon.Snapshot()
}
