// Package clean is the hookguard clean-negative corpus: every sink call is
// dominated by a nil check of its receiver.
package clean

import (
	"loft/internal/audit"
	"loft/internal/lsf"
	"loft/internal/probe"
)

type router struct {
	probe   *probe.Probe
	trc     *probe.Tracer
	aud     lsf.AuditSink
	live    *audit.Auditor
	hook    *audit.Hook
	enabled bool
}

// Enclosing if.
func (r *router) tick(now uint64) {
	if r.probe != nil {
		r.probe.MaybeSample(now)
		r.probe.FlushStage()
	}
	if r.live != nil {
		r.live.OnCycle(now)
	}
	if r.hook != nil {
		r.hook.GSFInject(0, 0, now)
		r.hook.Flush()
	}
}

// Conjunct of an && chain.
func (r *router) conditional(now uint64) {
	if r.enabled && r.probe != nil {
		r.probe.Emit(now, probe.KindReserveGrant, 0, 0, 0, 0)
	}
}

// Terminating early-return guard dominates the rest of the function.
func (r *router) earlyReturn(slot uint64) {
	if r.aud == nil {
		return
	}
	r.aud.AuditGrant(0, 1, slot, 0)
	r.aud.AuditReturn(slot)
}

// Else branch of an == nil check.
func (r *router) elseBranch(now uint64) {
	if r.trc == nil {
		now++
	} else {
		r.trc.Emit(probe.Event{})
	}
}

// Guards survive into nested loops and switches.
func (r *router) nested(now uint64) {
	if r.probe == nil {
		return
	}
	for i := 0; i < 4; i++ {
		switch {
		case i%2 == 0:
			r.probe.Emit(now, probe.KindReserveGrant, 0, 0, int32(i), 0)
		}
	}
}

// Handle-style calls (Registry/Counter) are deliberately not sinks: the
// no-op lives in the handle itself.
func (r *router) handles() {
	r.probe.Registry().Counter("clean.count").Inc()
}
