// Package a is the hotpath true-positive corpus: functions reachable from a
// //loft:hotpath seed that format, log, or grow fresh slices per call.
package a

import (
	"fmt"
	"log"
)

type engine struct {
	cycle uint64
	buf   []int
}

// Tick is the cycle entry point of this corpus.
//
//loft:hotpath
func (e *engine) Tick(now uint64) {
	e.cycle = now
	name := fmt.Sprintf("cycle-%d", now) // want `fmt\.Sprintf on a hot path \(reachable from //loft:hotpath Tick\)`
	_ = name
	e.step(now)
}

// step is hot only by reachability: Tick calls it.
func (e *engine) step(now uint64) {
	log.Printf("step %d", now) // want `log call on a hot path`
	var out []int              // want `slice out starts empty and grows per call on a hot path`
	for i := 0; i < 4; i++ {
		out = append(out, int(now)+i)
	}
	e.buf = out
	e.deeper()
}

// deeper is two hops from the seed; the closure still reaches it.
func (e *engine) deeper() {
	_ = fmt.Sprint(e.cycle) // want `fmt\.Sprint on a hot path`
}

// emptyLit is reachable and grows a literal-initialized slice.
func grown(n int) []int {
	return fill(n)
}

//loft:hotpath
func entry(n int) []int {
	return grown(n)
}

func fill(n int) []int {
	out := []int{} // want `slice out starts empty and grows per call`
	for i := 0; i < n; i++ {
		out = append(out, i)
	}
	return out
}
