// Package clean is the hotpath clean-negative corpus: cold helpers, panic
// messages, scratch-buffer reuse, and unreachable formatting.
package clean

import "fmt"

type engine struct {
	cycle   uint64
	scratch []int
}

// Tick formats only in panic arguments and dispatches expensive work to a
// //loft:coldpath helper.
//
//loft:hotpath
func (e *engine) Tick(now uint64) {
	if now < e.cycle {
		panic(fmt.Sprintf("clock moved backwards: %d < %d", now, e.cycle))
	}
	e.cycle = now
	if now%1_000_000 == 0 {
		e.report(now)
	}
	_ = e.collect(now)
}

// report is explicitly cold: propagation stops here, so its formatting is
// allowed.
//
//loft:coldpath
func (e *engine) report(now uint64) {
	fmt.Printf("engine at cycle %d\n", now)
}

// collect reuses a scratch buffer instead of growing a fresh slice.
func (e *engine) collect(now uint64) []int {
	out := e.scratch[:0]
	for i := 0; i < 4; i++ {
		out = append(out, int(now)+i)
	}
	e.scratch = out
	return out
}

// debugDump formats freely: nothing on the hot path calls it.
func (e *engine) debugDump() string {
	return fmt.Sprintf("engine{cycle: %d}", e.cycle)
}
