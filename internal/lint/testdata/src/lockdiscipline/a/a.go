// Package a is the lockdiscipline true-positive corpus: guarded fields
// accessed without the mutex, plus malformed annotations.
package a

import "sync"

type state struct {
	mu sync.Mutex
	// count is the published progress counter.
	//loft:guardedby mu
	count int
	total int //loft:guardedby mu
}

func (s *state) read() int {
	return s.count // want `access to s\.count \(guarded by mu\) without a preceding s\.mu\.Lock\(\)`
}

func (s *state) write(n int) {
	s.total = n // want `access to s\.total \(guarded by mu\) without a preceding`
}

// Locking the wrong mutex does not help.
func (s *state) wrongLock(other *sync.Mutex) int {
	other.Lock()
	defer other.Unlock()
	return s.count // want `access to s\.count \(guarded by mu\)`
}

type broken struct {
	mu sync.Mutex
	//loft:guardedby
	a int // want `malformed //loft:guardedby`
	//loft:guardedby missing
	b int // want `//loft:guardedby missing names a field this struct does not have`
}

func (x *broken) use() int { return x.a + x.b }
