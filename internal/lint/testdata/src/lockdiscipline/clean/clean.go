// Package clean is the lockdiscipline clean-negative corpus: guarded fields
// accessed correctly.
package clean

import "sync"

type state struct {
	mu sync.Mutex
	// count is the published progress counter.
	//loft:guardedby mu
	count int
	total int //loft:guardedby mu

	// name is immutable after construction: unannotated fields carry no
	// obligation.
	name string
}

// Plain lock/unlock around the access.
func (s *state) read() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.count
}

// RLock-style acquisition also counts (sync.RWMutex shape).
type rwstate struct {
	mu sync.RWMutex
	//loft:guardedby mu
	snapshot []byte
}

func (s *rwstate) get() []byte {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.snapshot
}

// *Locked helpers document the caller-holds-the-mutex convention and are
// exempt by name.
func (s *state) bumpLocked(n int) {
	s.count += n
	s.total += n
}

func (s *state) bump(n int) {
	s.mu.Lock()
	s.bumpLocked(n)
	s.mu.Unlock()
}

// A value still under construction is unshared: constructors may set
// guarded fields freely.
func newState(name string) *state {
	s := &state{name: name}
	s.count = 1
	s.total = 1
	return s
}

func (s *state) label() string { return s.name }
