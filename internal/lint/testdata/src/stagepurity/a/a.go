// Package a is the stagepurity true-positive corpus: serial-only sinks and
// //loft:commitonly writes reachable from parallel compute-phase entry
// points, both annotated (//loft:computephase) and auto-seeded
// (ParallelKernel.AddTicker).
package a

import (
	"math/rand"

	"loft/internal/audit"
	"loft/internal/perfmon"
	"loft/internal/probe"
	"loft/internal/sim"
	"loft/internal/stats"
)

type fabric struct {
	//loft:commitonly
	head int
	//loft:commitonly
	frameCount map[int]int
	//loft:commitonly
	barrier int
}

type node struct {
	net   *fabric
	probe *probe.Probe
	trc   *probe.Tracer
	reg   *probe.Registry
	ctr   *probe.Counter
	stage *probe.Stage
	aud   *audit.Auditor
	hook  *audit.Hook
	lat   *stats.Latency
	thr   *stats.Throughput
	hist  *stats.Histogram
	mon   *perfmon.Monitor
}

// Tick is a compute-phase entry point by annotation.
//
//loft:computephase
func (n *node) Tick(now uint64) {
	n.probe.Emit(now, probe.KindReserveGrant, 0, 0, 0, 0) // want `serial-only sink probe\.Probe\.Emit called in the parallel compute phase \(reachable from compute-phase entry Tick\)`
	n.stage.FlushStage()                                  // want `serial-only sink probe\.Stage\.FlushStage called in the parallel compute phase`
	n.trc.Emit(probe.Event{})                             // want `serial-only sink probe\.Tracer\.Emit called in the parallel compute phase`
	n.hook.Flush()                                        // want `serial-only sink audit\.Hook\.Flush called in the parallel compute phase`
	n.net.head = int(now)                                 // want `write to //loft:commitonly field head in the parallel compute phase`
	n.net.barrier--                                       // want `write to //loft:commitonly field barrier in the parallel compute phase`
	n.net.frameCount[0]++                                 // want `write to //loft:commitonly field frameCount in the parallel compute phase`
	delete(n.net.frameCount, 1)                           // want `write to //loft:commitonly field frameCount in the parallel compute phase`
	_ = n.net.head                                        // reads of commit-only state are fine: it is stable between barriers
	n.observe(now)
	n.commit(now)
}

// observe is hot only by reachability: Tick calls it.
func (n *node) observe(now uint64) {
	n.probe.MaybeSample(now) // want `serial-only sink probe\.Probe\.MaybeSample called in the parallel compute phase \(reachable from compute-phase entry Tick\)`
	n.reg.Sample(now)        // want `serial-only sink probe\.Registry\.Sample called in the parallel compute phase`
	n.ctr.Inc()              // want `serial-only sink probe\.Counter\.Inc called in the parallel compute phase`
	n.aud.OnCycle(now)       // want `serial-only sink audit\.Auditor\.OnCycle called in the parallel compute phase`
	n.lat.Observe(0, now)    // want `serial-only sink stats\.Latency\.Observe called in the parallel compute phase`
	n.thr.Observe(0, 0, now) // want `serial-only sink stats\.Throughput\.Observe called in the parallel compute phase`
	n.hist.Observe(now)      // want `serial-only sink stats\.Histogram\.Observe called in the parallel compute phase`
	n.mon.OnCycle(now)       // want `serial-only sink perfmon\.Monitor\.OnCycle called in the parallel compute phase`
	_ = rand.Intn(4)         // want `serial-only sink rand\.Intn called in the parallel compute phase`
}

// commit is marked //loft:commitphase: propagation stops here, so its sinks
// and commit-only writes are sanctioned.
//
//loft:commitphase
func (n *node) commit(now uint64) {
	n.net.head = int(now)
	n.stage.FlushStage()
	n.probe.Emit(now, probe.KindReserveGrant, 0, 0, 0, 0)
}

// faultGate is the fault-layer shape done wrong: probe events emitted on the
// shared (serial-only) probe instead of the per-node stage, and a global
// fault tally mutated during compute.
type faultGate struct {
	probe *probe.Probe
	net   *fabric
}

//loft:computephase
func (g *faultGate) Tick(now uint64) {
	g.probe.EmitSeq(now, probe.KindReserveGrant, 0, 0, 0, 0, 0) // want `serial-only sink probe\.Probe\.EmitSeq called in the parallel compute phase \(reachable from compute-phase entry Tick\)`
	g.net.head++                                                // want `write to //loft:commitonly field head in the parallel compute phase`
}

// comp is seeded without any annotation: wire registers it on the parallel
// kernel, so both its Tick and its Update run in the compute phase.
type comp struct {
	probe *probe.Probe
	lat   *stats.Latency
}

func (c *comp) Tick(now uint64) {
	c.probe.Emit(now, probe.KindReserveGrant, 0, 0, 0, 0) // want `serial-only sink probe\.Probe\.Emit called in the parallel compute phase \(reachable from compute-phase entry Tick\)`
}

func (c *comp) Update(now uint64) {
	c.lat.Observe(0, now) // want `serial-only sink stats\.Latency\.Observe called in the parallel compute phase \(reachable from compute-phase entry Update\)`
}

func wire(k *sim.ParallelKernel, c *comp) {
	k.AddTicker(0, c)
}
