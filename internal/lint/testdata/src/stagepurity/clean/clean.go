// Package clean is the stagepurity clean-negative corpus: a compute phase
// that stages every shared-state effect and a commit phase that replays
// them. None of this may be flagged.
package clean

import (
	"loft/internal/audit"
	"loft/internal/lsf"
	"loft/internal/perfmon"
	"loft/internal/probe"
	"loft/internal/sim"
	"loft/internal/stats"
)

type fabric struct {
	//loft:commitonly
	head int
	//loft:commitonly
	frameCount map[int]int
}

type node struct {
	net         *fabric
	probe       *probe.Probe
	stage       *probe.Stage
	hook        *audit.Hook
	aud         lsf.AuditSink
	perf        *perfmon.Timer
	lat         *stats.Latency
	frameDeltas []int
	rng         *sim.RNG
}

// Tick stages: probe.Stage buffers locally, audit.Hook forwarders stage in
// parallel mode, lsf.AuditSink taps route through the hook, perfmon timers
// never feed results, commit-only fields are only read, and census changes
// accumulate in a per-node delta slice for the commit phase to apply.
//
//loft:computephase
func (n *node) Tick(now uint64) {
	n.stage.Emit(now, probe.KindReserveGrant, 0, 0, 0, 0)
	n.stage.EmitSeq(now, probe.KindDataInject, 0, 0, 0, 1, 0)
	n.hook.GSFInject(0, 0, now)
	n.aud.AuditGrant(0, 1, now, 0)
	n.perf.Begin(now)
	if n.net.head > 0 { // reading commit-only state is fine between barriers
		n.frameDeltas = append(n.frameDeltas, n.net.head)
	}
	_ = n.rng.Float64() // a per-run seeded instance owns its stream
	n.commit(now)
}

// commit replays the staged effects at the barrier; the //loft:commitphase
// marker is what keeps its serial-only sinks and commit-only writes legal.
//
//loft:commitphase
func (n *node) commit(now uint64) {
	n.stage.FlushStage()
	n.hook.Flush()
	n.lat.Observe(0, now)
	for _, h := range n.frameDeltas {
		n.net.frameCount[h]++
	}
	n.frameDeltas = n.frameDeltas[:0]
	n.net.head = int(now)
}

// faultGate mirrors the fault-injection layer: a per-node seeded RNG, a
// pre-compiled event timeline walked by a forward-only cursor, and a
// deferred-credit queue that recycles its backing array. All of it is
// node-local, so none of it may be flagged in the compute phase.
type faultGate struct {
	rng      *sim.RNG
	next     int
	edges    []uint64
	deferred []uint64
	stage    *probe.Stage
}

//loft:computephase
func (g *faultGate) Tick(now uint64) {
	for g.next < len(g.edges) && g.edges[g.next] <= now {
		g.stage.EmitSeq(now, probe.KindReserveGrant, 0, 0, 0, 0, g.edges[g.next])
		g.next++
	}
	if g.rng.Bernoulli(0.5) { // per-node stream: draws stay in node order
		g.deferred = append(g.deferred, now)
	}
	if now%64 == 0 {
		g.deferred = g.deferred[:0] // recycling node-local state is fine
	}
}

// comp is auto-seeded via AddTicker but only touches staged surfaces.
type comp struct {
	stage *probe.Stage
}

func (c *comp) Tick(now uint64) {
	c.stage.Emit(now, probe.KindReserveGrant, 0, 0, 0, 0)
}

func wire(k *sim.ParallelKernel, c *comp) {
	k.AddTicker(0, c)
}
