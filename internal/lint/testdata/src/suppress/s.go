// Package suppress exercises the //lint:ignore machinery: a justified
// suppression, a malformed directive, and a stale one.
package suppress

import "time"

// suppressed carries a justified ignore on the line above the finding.
func suppressed() int64 {
	//lint:ignore determinism wall clock feeds a log label only, never results
	return time.Now().UnixNano()
}

// suppressedSameLine carries the ignore on the flagged line itself.
func suppressedSameLine(t0 time.Time) time.Duration {
	return time.Since(t0) //lint:ignore determinism duration feeds a human-facing progress line
}

// malformed is missing its reason and must be reported.
func malformed() int64 {
	//lint:ignore determinism
	return time.Now().UnixNano()
}

// stale suppresses nothing: the directive itself must be reported.
func stale() int {
	//lint:ignore determinism nothing here anymore
	return 42
}
