package loft

import (
	"fmt"

	"loft/internal/buffers"
	"loft/internal/flit"
	"loft/internal/probe"
	"loft/internal/route"
	"loft/internal/topo"
)

// laEnt is a look-ahead flit progressing through the look-ahead router.
type laEnt struct {
	fl      flit.Lookahead
	entry   *inEntry // the input reservation entry written on accept
	inDir   topo.Dir
	outDir  topo.Dir
	readyAt uint64 // cycle the flit has passed RC/VA and may arbitrate
	// failVersion suppresses re-requests until the output table changes
	// (lsf.Table.Version).
	failVersion uint64
}

// laRouter models the look-ahead-network router of Fig. 4: per-input
// virtual channels, a 3-stage pipeline (modeled as a readiness delay plus
// per-output arbitration), credit flow control toward neighbors, and the
// output-scheduling stage that runs the LSF injection procedure.
type laRouter struct {
	n *Node
	// vcs[d] are the input VCs for direction d (topo.Local = from the NI).
	vcs [topo.NumDirs][]*buffers.FIFO[*laEnt]
	// pending[o] counts buffered look-ahead flits routed to output o, so
	// idle outputs are skipped without scanning the VCs.
	pending [topo.NumDirs]int
	// credits[o] tracks free look-ahead buffer slots at the neighbor
	// reached through output o (aggregate over its VCs).
	credits [4]*buffers.Credits
	rr      [topo.NumDirs]int // rotating priority per output over input dirs
	// pool recycles laEnt records between accept and process, keeping the
	// steady state allocation-free.
	pool []*laEnt
}

// allocEnt returns a recycled laEnt or a fresh one.
func (la *laRouter) allocEnt() *laEnt {
	if k := len(la.pool); k > 0 {
		e := la.pool[k-1]
		la.pool = la.pool[:k-1]
		return e
	}
	return newEnt()
}

// newEnt is the refill path. init seeds the pool to the exact live bound, so
// this only runs if that bound is ever wrong; out of line so the heap
// allocation stays off the Tick closure.
//
//loft:coldpath
//go:noinline
func newEnt() *laEnt {
	return new(laEnt)
}

func (la *laRouter) init(n *Node) {
	la.n = n
	// Every live laEnt occupies a VC slot, so total look-ahead buffering
	// bounds the pool exactly: seeding it here makes allocEnt heap-free.
	ents := make([]laEnt, n.cfg.LAVirtualChannels*n.cfg.LAVCDepth*int(topo.NumDirs))
	la.pool = make([]*laEnt, len(ents))
	for i := range ents {
		la.pool[i] = &ents[i]
	}
	for d := topo.North; d < topo.NumDirs; d++ {
		la.vcs[d] = make([]*buffers.FIFO[*laEnt], n.cfg.LAVirtualChannels)
		for v := range la.vcs[d] {
			la.vcs[d][v] = buffers.NewFIFO[*laEnt](fmt.Sprintf("n%d.la.%s.vc%d", n.id, d, v), n.cfg.LAVCDepth)
		}
	}
	for o := 0; o < 4; o++ {
		if _, ok := n.mesh.Neighbor(n.id, topo.Dir(o)); ok {
			la.credits[o] = buffers.NewCredits(fmt.Sprintf("n%d.la.%s", n.id, topo.Dir(o)), n.cfg.LAVirtualChannels*n.cfg.LAVCDepth)
		}
	}
}

// freeLocal returns free look-ahead buffer space at the local input (used
// by the NI before booking, so a booked quantum always gets its look-ahead
// flit injected in the same cycle).
func (la *laRouter) freeLocal() int {
	free := 0
	for _, vc := range la.vcs[topo.Local] {
		free += vc.Free()
	}
	return free
}

// accept receives a look-ahead flit on input dir d. Step 1 of the §3.2
// scheduling procedure happens here: the flit writes its quantum's identity
// and expected arrival into the input reservation table before entering the
// router pipeline.
func (la *laRouter) accept(fl flit.Lookahead, d topo.Dir, now uint64) {
	n := la.n
	outDir := topo.Local
	if fl.Dst != n.id {
		outDir = route.XY(n.mesh, n.id, fl.Dst)
	}
	qid := flit.QuantumID{Flow: fl.Flow, Seq: fl.Quantum}
	ip := n.inputs[d]
	entry := ip.alloc()
	*entry = inEntry{
		q: Quantum{
			ID:  qid,
			Src: fl.Src, Dst: fl.Dst,
			Flits:   fl.Flits,
			Created: fl.Created,
		},
		outDir:     outDir,
		arriveSlot: fl.DepartPrev + 1,
	}
	ip.insert(entry, n.id)
	// Pick the shortest VC with space; flow control guarantees one exists.
	var best *buffers.FIFO[*laEnt]
	for _, vc := range la.vcs[d] {
		if vc.Full() {
			continue
		}
		if best == nil || vc.Len() < best.Len() {
			best = vc
		}
	}
	if best == nil {
		panic(fmt.Sprintf("loft: node %d: look-ahead buffer overflow on input %s", n.id, d))
	}
	ent := la.allocEnt()
	*ent = laEnt{fl: fl, entry: entry, inDir: d, outDir: outDir, readyAt: now + uint64(n.cfg.LAStages) - 1}
	best.Push(ent)
	la.pending[outDir]++
}

// process runs one cycle of look-ahead switching: per output port, at most
// one ready flit wins the output-scheduling stage, runs the LSF injection
// procedure (Algorithm 1) on that output's reservation table, updates the
// input reservation entry, returns the virtual credit upstream and moves
// on.
//
// Every ready look-ahead flit buffered at an input — not only VC heads —
// may request scheduling: its reservation request was recorded in the
// input reservation table on arrival (§3.2 step 1), so the output
// scheduler serves requests in any order. Without this, a flit of a
// window-exhausted flow would block its VC head for up to a frame period,
// and that head-of-line blocking compounds into starvation of long-path
// flows at every merge point. Flits of throttled flows stay buffered and
// retry when the table state changes (version gating avoids busy-wait).
func (la *laRouter) process(now uint64) {
	n := la.n
	for o := topo.North; o < topo.NumDirs; o++ {
		table := n.outTables[o]
		if table == nil || la.pending[o] == 0 {
			continue
		}
		if o != topo.Local && la.credits[o].Available() == 0 {
			continue // no look-ahead buffer downstream
		}
		version := table.Version()
		var won *laEnt
		var wonVC *buffers.FIFO[*laEnt]
		var depart uint64
	inputs:
		for i := 0; i < int(topo.NumDirs); i++ {
			d := topo.Dir((la.rr[o] + i) % int(topo.NumDirs))
			for _, vc := range la.vcs[d] {
				for j := 0; j < vc.Len(); j++ {
					ent := vc.At(j)
					if ent.outDir != o || ent.readyAt > now || ent.failVersion == version {
						continue
					}
					slot, booked := table.Request(ent.fl.Flow, ent.fl.Quantum, ent.arriveSlotPlusPipe())
					if !booked {
						ent.failVersion = version
						continue
					}
					won, wonVC, depart = ent, vc, slot
					la.rr[o] = (int(d) + 1) % int(topo.NumDirs)
					break inputs
				}
			}
		}
		if won == nil {
			continue
		}
		if _, ok := wonVC.RemoveFunc(func(e *laEnt) bool { return e == won }); !ok {
			panic("loft: booked look-ahead flit missing from its VC")
		}
		la.pending[o]--
		d := won.inDir
		entry := won.entry // written by accept; skips the map lookup
		entry.booked = true
		entry.departSlot = depart
		if n.audit != nil {
			n.audit.LOFTReserve(flit.QuantumID{Flow: won.fl.Flow, Seq: won.fl.Quantum}, int32(n.id), int32(o), depart, now)
		}
		if entry.arrived {
			n.inputs[d].avail = append(n.inputs[d].avail, entry)
		}
		// Step 4 (§3.2): the input scheduler returns the virtual credit
		// to the previous router, tagged with the booked departure.
		if d == topo.Local {
			n.injTable.ReturnCredit(depart)
		} else {
			n.pendVcred[d] = append(n.pendVcred[d], depart)
			n.pendLaCred[d]++ // freed look-ahead VC slot
		}
		if o != topo.Local {
			fl := won.fl
			fl.DepartPrev = depart
			n.laOut[o].Write(fl)
			la.credits[o].Consume()
			if n.probe != nil {
				n.probe.EmitSeq(now, probe.KindLAIssue, int32(n.id), int32(o), int32(fl.Flow), fl.Quantum, depart*uint64(n.cfg.QuantumFlits))
			}
		}
		la.pool = append(la.pool, won)
	}
}

// arriveSlotPlusPipe returns the earliest departure slot for the quantum
// this look-ahead flit leads: its arrival slot plus one slot of router
// pipeline (§5.1.2's 3-stage data router spans at most one 2-cycle slot
// beyond arrival).
func (e laEnt) arriveSlotPlusPipe() uint64 { return e.fl.DepartPrev + 2 }
