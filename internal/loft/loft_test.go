package loft

import (
	"math"
	"testing"

	"loft/internal/config"
	"loft/internal/topo"
	"loft/internal/traffic"
)

// smallCfg returns a 4x4 LOFT configuration scaled down for unit tests but
// honoring all structural constraints (buffer >= frame, quantum multiples).
func smallCfg(spec int) config.LOFT {
	cfg := config.PaperLOFTSpec(spec)
	cfg.MeshK = 4
	cfg.FrameFlits = 32
	cfg.CentralBufFlits = 32
	return cfg
}

func mustNet(t *testing.T, cfg config.LOFT, p *traffic.Pattern, seed uint64, warmup uint64) *Network {
	t.Helper()
	net, err := New(cfg, p, Options{Seed: seed, Warmup: warmup})
	if err != nil {
		t.Fatal(err)
	}
	return net
}

func TestSingleFlowDelivers(t *testing.T) {
	cfg := smallCfg(12)
	p := traffic.SingleFlow(cfg.Mesh(), 0, 15, 0.1, cfg.PacketFlits, cfg.FrameFlits)
	net := mustNet(t, cfg, p, 1, 0)
	net.Run(5000)
	s := net.TotalStats()
	if s.EjectedFlits == 0 {
		t.Fatal("no flits delivered")
	}
	if s.LateArrivals != 0 {
		t.Fatalf("late arrivals: %d", s.LateArrivals)
	}
	if net.Latency().Count() == 0 {
		t.Fatal("no packet latencies recorded")
	}
	// 6-hop path at 0.1 flits/cycle: average latency must be moderate.
	if mean := net.Latency().Mean(); mean > 200 {
		t.Fatalf("mean latency %f too high for light load", mean)
	}
}

func TestConservationNoLossNoDuplication(t *testing.T) {
	cfg := smallCfg(8)
	p := traffic.NearestNeighbor(cfg.Mesh(), 0.2, cfg.PacketFlits, cfg.FrameFlits)
	net := mustNet(t, cfg, p, 7, 0)
	net.Run(4000)
	// Drain: stop injection by running with rate 0.
	p.SetRate(0)
	net.Run(4000)
	s := net.TotalStats()
	if s.InjectedQuanta == 0 {
		t.Fatal("nothing injected")
	}
	if s.EjectedQuanta != s.InjectedQuanta {
		t.Fatalf("conservation violated: injected %d quanta, ejected %d (backlog %d)",
			s.InjectedQuanta, s.EjectedQuanta, net.Backlog())
	}
}

func TestSpecZeroDisablesOptimizations(t *testing.T) {
	cfg := smallCfg(0)
	if cfg.SpeculativeSwitching || cfg.LocalStatusReset {
		t.Fatal("spec=0 must disable §4.3 optimizations")
	}
	p := traffic.SingleFlow(cfg.Mesh(), 0, 3, 0.05, cfg.PacketFlits, cfg.FrameFlits)
	net := mustNet(t, cfg, p, 3, 0)
	net.Run(6000)
	s := net.TotalStats()
	if s.EjectedFlits == 0 {
		t.Fatal("no flits delivered with optimizations off")
	}
	if s.SpecForwards != 0 {
		t.Fatalf("speculative forwards %d with speculation disabled", s.SpecForwards)
	}
	if net.ResetCount() != 0 {
		t.Fatalf("local resets %d with reset disabled", net.ResetCount())
	}
}

func TestSpeculationReducesLatency(t *testing.T) {
	mesh := topo.NewMesh(4)
	run := func(spec int) float64 {
		cfg := smallCfg(spec)
		p := traffic.SingleFlow(mesh, 0, 15, 0.05, cfg.PacketFlits, cfg.FrameFlits)
		net := mustNet(t, cfg, p, 11, 0)
		net.Run(8000)
		if net.Latency().Count() == 0 {
			t.Fatal("no packets delivered")
		}
		return net.Latency().Mean()
	}
	l0, l12 := run(0), run(12)
	if l12 >= l0 {
		t.Fatalf("speculation did not reduce latency: spec0=%.1f spec12=%.1f", l0, l12)
	}
}

func TestHotspotThroughputMatchesReservation(t *testing.T) {
	cfg := smallCfg(8)
	mesh := cfg.Mesh()
	hot := topo.NodeID(mesh.N() - 1)
	p := traffic.Hotspot(mesh, hot, 0.5, cfg.PacketFlits, cfg.FrameFlits, cfg.QuantumFlits, nil)
	net := mustNet(t, cfg, p, 5, 4000)
	net.Run(20000)
	// 15 flows share the hotspot ejection link; all inject far above their
	// share, so each should converge near its guaranteed rate and the
	// ejection link should be nearly fully utilized.
	var total float64
	var rates []float64
	for _, f := range p.Flows {
		r := net.Throughput().Flow(f.ID)
		rates = append(rates, r)
		total += r
	}
	if total < 0.75 {
		t.Fatalf("hotspot ejection utilization %.3f, want > 0.75", total)
	}
	mean := total / float64(len(rates))
	for i, r := range rates {
		if math.Abs(r-mean) > 0.5*mean {
			t.Fatalf("flow %d rate %.4f deviates from mean %.4f beyond 50%%", i, r, mean)
		}
	}
}

func TestUniformDeliversUnderLoad(t *testing.T) {
	cfg := smallCfg(8)
	p := traffic.Uniform(cfg.Mesh(), 0.2, cfg.PacketFlits, cfg.FrameFlits)
	net := mustNet(t, cfg, p, 13, 2000)
	net.Run(10000)
	if net.Throughput().Total() < 0.2*float64(cfg.Mesh().N())*0.5 {
		t.Fatalf("uniform accepted throughput %.3f too low", net.Throughput().Total())
	}
	if s := net.TotalStats(); s.LateArrivals > s.EjectedQuanta/100 {
		t.Fatalf("late arrivals %d out of %d quanta", s.LateArrivals, s.EjectedQuanta)
	}
}

func TestPaperConfigRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("full 8x8 paper configuration")
	}
	cfg := config.PaperLOFT()
	p := traffic.Uniform(cfg.Mesh(), 0.1, cfg.PacketFlits, cfg.FrameFlits)
	net := mustNet(t, cfg, p, 42, 1000)
	net.Run(5000)
	if net.Throughput().TotalFlits() == 0 {
		t.Fatal("paper configuration delivered nothing")
	}
}

// TestVerifiedBookkeeping runs a contended workload with per-slot
// verification of the incremental LSF bookkeeping (the O(1) last-zero
// tracking against a full scan) enabled on every table.
func TestVerifiedBookkeeping(t *testing.T) {
	EnableVerify()
	defer DisableVerify()
	cfg := smallCfg(8)
	mesh := cfg.Mesh()
	hot := topo.NodeID(mesh.N() - 1)
	p := traffic.Hotspot(mesh, hot, 0.5, cfg.PacketFlits, cfg.FrameFlits, cfg.QuantumFlits, nil)
	net := mustNet(t, cfg, p, 21, 0)
	net.Run(6000)
	if net.Throughput().TotalFlits() == 0 {
		t.Fatal("nothing delivered under verification")
	}
}

// TestYieldConditionRuns exercises the optional condition-(1)-derived yield
// policy end to end: the network must stay live and deliver traffic.
func TestYieldConditionRuns(t *testing.T) {
	cfg := smallCfg(8)
	cfg.YieldCondition = true
	p := traffic.NearestNeighbor(cfg.Mesh(), 0.2, cfg.PacketFlits, cfg.FrameFlits)
	net := mustNet(t, cfg, p, 31, 0)
	net.Run(6000)
	if net.Throughput().TotalFlits() == 0 {
		t.Fatal("yield policy starved the network")
	}
}

// TestNIDropsUnderOverload verifies the bounded NI queue policy: a flow
// offering far beyond its share drops packets instead of queueing without
// bound, keeping measured latency finite.
func TestNIDropsUnderOverload(t *testing.T) {
	cfg := smallCfg(8)
	mesh := cfg.Mesh()
	hot := topo.NodeID(mesh.N() - 1)
	p := traffic.Hotspot(mesh, hot, 0.9, cfg.PacketFlits, cfg.FrameFlits, cfg.QuantumFlits, nil)
	net := mustNet(t, cfg, p, 17, 1000)
	net.Run(10000)
	s := net.TotalStats()
	if s.Drops == 0 {
		t.Fatal("no drops at 0.9 offered into a saturated hotspot")
	}
	if net.Backlog() > mesh.N()*cfg.NIQueueFlits/cfg.QuantumFlits {
		t.Fatalf("backlog %d exceeds the NI queue bound", net.Backlog())
	}
}

// TestPerFlowOrderWithinFlowAtSink checks packet reassembly: every packet
// completes exactly once with the right quantum count (no duplication).
func TestPacketReassemblyExactlyOnce(t *testing.T) {
	cfg := smallCfg(12)
	p := traffic.SingleFlow(cfg.Mesh(), 0, 15, 0.3, cfg.PacketFlits, cfg.FrameFlits)
	net := mustNet(t, cfg, p, 23, 0)
	net.Run(4000)
	p.SetRate(0)
	net.Run(4000)
	s := net.TotalStats()
	quantaPerPkt := uint64(cfg.PacketFlits / cfg.QuantumFlits)
	if s.EjectedQuanta%quantaPerPkt != 0 {
		t.Fatalf("ejected %d quanta not a whole number of packets", s.EjectedQuanta)
	}
	if got := net.Latency().Count(); got != s.EjectedQuanta/quantaPerPkt {
		t.Fatalf("completed packets %d != ejected quanta/2 = %d", got, s.EjectedQuanta/quantaPerPkt)
	}
}

// TestLocalResetsOnlyOnIdleLinks verifies the §4.3.2 trigger: a saturated
// single-flow path resets far less than an intermittent one.
func TestLocalResetsHelpIdleLinks(t *testing.T) {
	cfg := smallCfg(8)
	// Intermittent light flow: many resets expected.
	p1 := traffic.SingleFlow(cfg.Mesh(), 0, 3, 0.02, cfg.PacketFlits, cfg.FrameFlits)
	n1 := mustNet(t, cfg, p1, 3, 0)
	n1.Run(8000)
	if n1.ResetCount() == 0 {
		t.Fatal("no resets on an intermittent flow")
	}
	// The whole offered load is accepted: resets keep recycling the idle
	// links' frames so the flow never stalls on its window.
	if rate := n1.Throughput().Flow(0); rate < 0.015 {
		t.Fatalf("accepted rate %.4f, want ≈ offered 0.02", rate)
	}
}

// TestLivenessMixedTraffic runs a long mixed workload and asserts the
// network keeps making forward progress (no wedge: ejections strictly
// increase across every window).
func TestLivenessMixedTraffic(t *testing.T) {
	cfg := smallCfg(8)
	p := traffic.Transpose(cfg.Mesh(), 0.3, cfg.PacketFlits, cfg.FrameFlits)
	net := mustNet(t, cfg, p, 37, 0)
	last := uint64(0)
	for i := 0; i < 10; i++ {
		net.Run(2000)
		got := net.TotalStats().EjectedFlits
		if got <= last {
			t.Fatalf("no progress in window %d: ejected stuck at %d", i, got)
		}
		last = got
	}
}

// TestSpecBufferNeverOverflows drives heavy speculative forwarding and
// relies on the routers' internal overflow panics as the assertion.
func TestSpecBufferNeverOverflows(t *testing.T) {
	cfg := smallCfg(4) // tiny 2-quantum speculative buffers
	p := traffic.Uniform(cfg.Mesh(), 0.4, cfg.PacketFlits, cfg.FrameFlits)
	net := mustNet(t, cfg, p, 41, 0)
	net.Run(8000)
	if net.TotalStats().SpecForwards == 0 {
		t.Fatal("workload did not exercise speculative forwarding")
	}
}

// TestBurstAbsorption exercises the frame window's stated purpose: a bursty
// flow books multiple on-the-fly frames ahead (plus local resets between
// bursts) and delivers its bursts without loss at low average load.
func TestBurstAbsorption(t *testing.T) {
	cfg := smallCfg(12)
	p := traffic.Bursty(cfg.Mesh(), 0, 15, 40, 400, cfg.PacketFlits, cfg.FrameFlits)
	net := mustNet(t, cfg, p, 43, 0)
	net.Run(12000)
	p.Gens[0][0].Burst = 0 // stop generating
	p.Gens[0][0].Gap = 0
	net.Run(6000)
	s := net.TotalStats()
	if s.InjectedQuanta == 0 {
		t.Fatal("no bursts generated")
	}
	if s.Drops > 0 {
		t.Fatalf("%d packets dropped at ~14%% duty cycle", s.Drops)
	}
	if s.EjectedQuanta != s.InjectedQuanta {
		t.Fatalf("burst flits lost: injected %d, ejected %d", s.InjectedQuanta, s.EjectedQuanta)
	}
}

// TestTraceReplayThroughNetwork drives a replayed synthetic trace end to
// end: every trace packet must be delivered once the network drains.
func TestTraceReplayThroughNetwork(t *testing.T) {
	cfg := smallCfg(8)
	mesh := cfg.Mesh()
	events := traffic.SyntheticTrace(mesh, 80, 4000, cfg.PacketFlits, 9)
	p, err := traffic.FromTrace(mesh, events, cfg.PacketFlits, cfg.FrameFlits, cfg.QuantumFlits)
	if err != nil {
		t.Fatal(err)
	}
	net := mustNet(t, cfg, p, 1, 0)
	net.Run(12000)
	if got := net.Latency().Count(); got != uint64(len(events)) {
		t.Fatalf("delivered %d packets, trace has %d (backlog %d)", got, len(events), net.Backlog())
	}
}

// TestLinkUtilizationAccounting drives a single flow and checks the
// utilization accounting: the links on its path are busy at roughly the
// accepted rate, all others idle.
func TestLinkUtilizationAccounting(t *testing.T) {
	cfg := smallCfg(12)
	p := traffic.SingleFlow(cfg.Mesh(), 0, 3, 0.2, cfg.PacketFlits, cfg.FrameFlits)
	net := mustNet(t, cfg, p, 19, 0)
	net.Run(8000)
	util := net.LinkUtilization()
	rate := net.Throughput().Flow(0)
	onPath := map[topo.Link]bool{}
	for _, l := range []topo.Link{
		{From: 0, D: topo.East}, {From: 1, D: topo.East},
		{From: 2, D: topo.East}, {From: 3, D: topo.Local},
	} {
		onPath[l] = true
		if math.Abs(util[l]-rate) > 0.35*rate+0.01 {
			t.Fatalf("link %s utilization %.4f, want ≈ accepted rate %.4f", l, util[l], rate)
		}
	}
	for l, u := range util {
		if !onPath[l] && u != 0 {
			t.Fatalf("off-path link %s utilization %.4f", l, u)
		}
	}
	if net.Heatmap() == "" {
		t.Fatal("empty heatmap")
	}
}
