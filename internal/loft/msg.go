// Package loft assembles the full LOFT network-on-chip of the paper: a mesh
// of nodes, each combining a look-ahead-network router, a data-network
// router with framed output reservation tables (package lsf), a network
// interface that regulates injection, and a sink. The package implements
// the FRS integration of §4, the speculative flit switching of §4.3.1 and
// the local status reset of §4.3.2.
//
// The data network is modeled at quantum granularity: one look-ahead flit
// leads one quantum of Q data flits, which is scheduled and switched in its
// entirety (§5.1). A reservation-table slot therefore spans Q cycles and
// every link moves at most one quantum per slot, preserving the paper's
// 1 flit/cycle link bandwidth. The look-ahead network runs at single-cycle
// granularity.
package loft

import (
	"loft/internal/flit"
	"loft/internal/topo"
)

// Quantum is the data-network transfer unit: Q data flits of one flow
// moving together under a single look-ahead reservation.
type Quantum struct {
	ID        flit.QuantumID
	Src, Dst  topo.NodeID
	PktSeq    uint64
	PktQuanta int // quanta per packet (for sink reassembly accounting)
	Flits     int // data flits carried (== Q except short tails)
	Created   uint64
	// Injected is the cycle the quantum left the NI into the router; the
	// difference between total and network latency is source queueing.
	Injected uint64
}

// dataMsg is one quantum on a data link. Spec tags the downstream buffer
// class chosen by the sender (§4.3.1): true → speculative buffer. Depart is
// the quantum's booked departure slot on this link — the DepartPrev its
// look-ahead flit carried — which keys the receiver's input reservation
// slab (arrival slot = Depart+1) without a map lookup.
type dataMsg struct {
	Q      Quantum
	Spec   bool
	Depart uint64
}

// vcredMsg returns virtual credits to the upstream output reservation
// table. Each tag is the absolute slot at which the quantum departs this
// router, booked by its look-ahead flit (§3.2 step 4). Several bookings for
// the same upstream link can complete in one cycle (one per output port),
// hence the slice.
type vcredMsg struct {
	Tags []uint64
}

// rcredMsg returns real (actual-occupancy) credits for the central and
// speculative buffers, added by §4.3.1 for speculative switching.
type rcredMsg struct {
	NonSpec, Spec int
}

// laCredMsg returns look-ahead-network buffer credits (count of freed VC
// slots).
type laCredMsg struct {
	N int
}
