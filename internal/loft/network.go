package loft

import (
	"fmt"

	"loft/internal/audit"
	"loft/internal/config"
	"loft/internal/det"
	"loft/internal/fault"
	"loft/internal/flit"
	"loft/internal/lsf"
	"loft/internal/perfmon"
	"loft/internal/probe"
	"loft/internal/sim"
	"loft/internal/stats"
	"loft/internal/topo"
	"loft/internal/traffic"
)

// Network is a complete LOFT mesh driving a traffic pattern.
type Network struct {
	cfg     config.LOFT
	mesh    topo.Mesh
	pattern *traffic.Pattern
	nodes   []*Node
	engine  sim.Engine
	// par is the engine's parallel form (nil when sequential); workers is
	// the resolved worker count (>= 1).
	par     *sim.ParallelKernel
	workers int
	probe   *probe.Probe
	audit   *audit.Auditor
	// perf is the attached self-profiler (nil = off); perfT is the
	// network-owned stage timer for serial-commit work.
	perf  *perfmon.Monitor
	perfT *perfmon.Timer
	// fault is the armed fault plan (nil = clean run).
	fault *fault.Plan

	lat     *stats.Latency // total latency (generation → delivery)
	latNet  *stats.Latency // network latency (injection → delivery)
	latFlow *stats.FlowLatency
	thr     *stats.Throughput
}

// Options tune a simulation run.
type Options struct {
	// Seed drives every traffic injector deterministically.
	Seed uint64
	// Warmup is the cycle before which packets are excluded from stats.
	Warmup uint64
	// Probe enables the observability layer when non-nil: event tracing at
	// every scheduler and switch, plus periodic gauge sampling. Probing
	// never changes simulation results.
	Probe *probe.Probe
	// Audit enables the runtime QoS auditor when non-nil: a per-packet
	// flight recorder with delay-bound conformance checking plus scheduler
	// invariant taps on every reservation table. Auditing never changes
	// simulation results.
	Audit *audit.Auditor
	// Workers selects the cycle engine: 0 or 1 runs the sequential kernel,
	// N > 1 shards node stepping across N workers (sim.ParallelKernel).
	// Results are byte-identical either way; see DESIGN.md §13.
	Workers int
	// Perf enables the self-profiler when non-nil: per-stage wall-time
	// attribution on every node, engine phase telemetry under the parallel
	// kernel, and occupancy gauges. Profiling never changes simulation
	// results; see DESIGN.md §14.
	Perf *perfmon.Monitor
	// Fault arms a deterministic fault-injection plan when non-nil: timed
	// link-down windows, flit loss, credit stalls, router stalls and
	// adversarial flows. Faulted runs stay byte-reproducible for a given
	// (plan, seed) under any worker count; see DESIGN.md §16.
	Fault *fault.Plan
}

// New builds a LOFT network for the given configuration and traffic
// pattern, installing the pattern's per-link flow reservations on every
// framed output reservation table (including injection and ejection links).
func New(cfg config.LOFT, pattern *traffic.Pattern, opts Options) (*Network, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := pattern.Validate(cfg.FrameFlits); err != nil {
		return nil, err
	}
	mesh := cfg.Mesh()
	if pattern.Mesh.K != mesh.K {
		return nil, fmt.Errorf("loft: pattern mesh %d does not match config mesh %d", pattern.Mesh.K, mesh.K)
	}
	workers := opts.Workers
	if workers < 1 {
		workers = 1
	}
	net := &Network{
		cfg:     cfg,
		mesh:    mesh,
		pattern: pattern,
		workers: workers,
		probe:   opts.Probe,
		audit:   opts.Audit,
		perf:    opts.Perf,
		lat:     stats.NewLatencySeeded(opts.Warmup, opts.Seed),
		latNet:  stats.NewLatencySeeded(opts.Warmup, opts.Seed),
		latFlow: stats.NewFlowLatency(opts.Warmup),
		thr:     stats.NewThroughput(opts.Warmup),
	}
	if workers > 1 {
		net.par = sim.NewParallelKernel(workers)
		net.engine = net.par
	} else {
		net.engine = sim.NewKernel()
	}
	for i := 0; i < mesh.N(); i++ {
		net.nodes = append(net.nodes, newNode(topo.NodeID(i), cfg, mesh, net))
	}
	net.wire()
	if err := net.installReservations(); err != nil {
		return nil, err
	}
	for i, n := range net.nodes {
		n.ni.setInjector(traffic.NewInjector(pattern, topo.NodeID(i), opts.Seed))
	}
	if err := net.armFault(opts.Fault, opts.Seed); err != nil {
		return nil, err
	}
	net.registerGauges()
	net.registerPerfGauges()
	net.bindAudit()
	net.perfT = net.perf.Timer()
	if workers > 1 {
		net.perf.SetWorkers(workers)
	}
	if net.par != nil {
		for i, n := range net.nodes {
			net.par.AddTicker(i, n)
		}
		net.par.AddSerial(net.commitCycle)
		if net.perf != nil {
			net.par.SetPerf(net.perf.Engine(workers))
		}
	} else {
		net.engine.(*sim.Kernel).Add(net)
	}
	return net, nil
}

// Close releases engine resources (the parallel worker pool). The network
// stays usable: a later Run restarts the pool transparently.
func (net *Network) Close() { net.engine.Close() }

// armFault validates and compiles the fault plan: each node gets its own
// runtime (nil when untargeted, preserving the clean fast path), adversary
// events hook every injector's rate scale, and quarantines bind later in
// bindAudit. No-op when no plan is given.
func (net *Network) armFault(plan *fault.Plan, seed uint64) error {
	if plan == nil {
		return nil
	}
	if err := plan.Validate(net.mesh.N(), len(net.pattern.Flows)); err != nil {
		return err
	}
	net.fault = plan
	srcFlows := make([][]int, net.mesh.N())
	for _, f := range net.pattern.Flows {
		srcFlows[f.Src] = append(srcFlows[f.Src], int(f.ID))
	}
	for i, n := range net.nodes {
		n.fault = plan.Node(i, srcFlows[i], seed)
	}
	if plan.HasAdversary() {
		scale := func(id flit.FlowID, now uint64) float64 {
			return plan.RateScale(int(id), now)
		}
		for _, n := range net.nodes {
			n.ni.injector.SetRateScale(scale)
		}
	}
	return nil
}

// bindAudit arms the runtime QoS auditor for this run: per-flow delay
// bounds from the pattern, invariant taps on every reservation table
// (injection, mesh output and ejection links), the cross-layer quantum
// conservation check, input-buffer occupancy bounds, and the live heatmap.
// No-op when auditing is disabled.
func (net *Network) bindAudit() {
	aud := net.audit
	if aud == nil {
		return
	}
	aud.BeginLOFT(net.cfg, net.mesh, net.pattern.Flows)
	// Quarantine the plan's adversarial flows: their delay-bound check is
	// meaningless (they exceed their reservation on purpose), so the
	// auditor instead asserts they are throttled to their cap — and every
	// victim flow keeps its full per-packet bound conformance.
	for _, q := range net.fault.Quarantines() {
		aud.Quarantine(flit.FlowID(q.Flow), q.Cap)
	}
	for _, n := range net.nodes {
		// Watch through the node's hook so tap violations stage with the
		// rest of the node's audit traffic under the parallel engine.
		if n.audit != nil {
			for d := topo.North; d < topo.NumDirs; d++ {
				if t := n.outTables[d]; t != nil {
					n.audit.WatchTable(t, t.Name())
				}
			}
			n.audit.WatchTable(n.injTable, n.injTable.Name())
		}
	}
	aud.SetHeatmap(net.Heatmap)
	// The flight recorder's quantum ledger must agree with the nodes' own
	// counters: every booked quantum was counted by an NI and every ejected
	// quantum by a sink, with nothing lost or duplicated in between.
	aud.RegisterCheck("loft.quantum-conservation", func() error {
		s := net.TotalStats()
		booked, _, ejected := aud.RecorderCounts()
		if booked != s.InjectedQuanta || ejected != s.EjectedQuanta {
			return fmt.Errorf("recorder saw %d booked / %d ejected quanta, nodes count %d / %d",
				booked, ejected, s.InjectedQuanta, s.EjectedQuanta)
		}
		return nil
	})
	// Input buffer occupancy: the credit protocol must keep every port
	// within its configured capacity and never drive it negative.
	aud.RegisterCheck("loft.input-buffers", func() error {
		for _, n := range net.nodes {
			for d := topo.North; d < topo.NumDirs; d++ {
				ip := n.inputs[d]
				if ip.nonspecUsed < 0 || ip.nonspecUsed > net.cfg.BufferQuanta() {
					return fmt.Errorf("n%d.%s non-speculative occupancy %d outside [0,%d]",
						n.id, d, ip.nonspecUsed, net.cfg.BufferQuanta())
				}
				if ip.specUsed < 0 || ip.specUsed > net.cfg.SpecQuanta() {
					return fmt.Errorf("n%d.%s speculative occupancy %d outside [0,%d]",
						n.id, d, ip.specUsed, net.cfg.SpecQuanta())
				}
			}
		}
		return nil
	})
}

// registerGauges publishes the sampled time series of the probe layer:
// per-link utilization (per-cycle rate of flits forwarded), per-VC
// look-ahead buffer occupancy, data input-buffer occupancy, and the fill of
// every framed output reservation table. No-op when probing is disabled.
func (net *Network) registerGauges() {
	reg := net.probe.Registry()
	if reg == nil {
		return
	}
	q := float64(net.cfg.QuantumFlits)
	for _, n := range net.nodes {
		n := n
		for d := topo.North; d < topo.NumDirs; d++ {
			d := d
			if n.outTables[d] != nil {
				reg.Rate(fmt.Sprintf("loft.link.n%d.%s", n.id, d), func() float64 {
					return float64(n.linkBusy[d]) * q
				})
				t := n.outTables[d]
				reg.Gauge(fmt.Sprintf("loft.table.n%d.%s", n.id, d), t.Occupancy)
			}
			ip := n.inputs[d]
			reg.Gauge(fmt.Sprintf("loft.buf.n%d.%s", n.id, d), func() float64 {
				return float64(ip.nonspecUsed + ip.specUsed)
			})
			for v, vc := range n.la.vcs[d] {
				vc := vc
				reg.Gauge(fmt.Sprintf("loft.lavc.n%d.%s.vc%d", n.id, d, v), func() float64 {
					return float64(vc.Len())
				})
			}
		}
		reg.Gauge(fmt.Sprintf("loft.table.n%d.inject", n.id), n.injTable.Occupancy)
	}
}

// registerPerfGauges publishes the self-profiler's occupancy gauges:
// aggregate NI backlog and mean reservation-table fill. They poll shared
// node state, which is safe because gauges run on the coordinator (the
// serial hook under the parallel engine). No-op when profiling is off.
func (net *Network) registerPerfGauges() {
	if net.perf == nil {
		return
	}
	net.perf.Gauge("loft.ni.backlog", func() float64 {
		total := 0
		for _, n := range net.nodes {
			total += n.ni.backlog()
		}
		return float64(total)
	})
	if net.fault != nil {
		net.perf.Gauge("loft.fault.active", func() float64 {
			return float64(net.fault.ActiveAt(net.engine.Now()))
		})
	}
	net.perf.Gauge("loft.table.occupancy", func() float64 {
		var sum float64
		var k int
		for _, n := range net.nodes {
			sum += n.injTable.Occupancy()
			k++
			for d := topo.North; d < topo.NumDirs; d++ {
				if t := n.outTables[d]; t != nil {
					sum += t.Occupancy()
					k++
				}
			}
		}
		return sum / float64(k)
	})
}

// wire creates the link registers between neighbors and registers every
// register with the engine's update phase. Under the parallel engine a
// register goes to the shard of the node that created it — any partition is
// correct (barriers separate the phases), this one just balances load.
func (net *Network) wire() {
	for i, n := range net.nodes {
		reg := func(u sim.Updater) {
			if net.par != nil {
				net.par.AddUpdater(i, u)
			} else {
				net.engine.(*sim.Kernel).AddUpdater(u)
			}
		}
		reg(n.niData)
		for d := topo.North; d < topo.Local; d++ {
			nb, ok := net.mesh.Neighbor(n.id, d)
			if !ok {
				continue
			}
			// Forward-direction registers owned by n toward nb.
			n.dataOut[d] = sim.NewReg[dataMsg](fmt.Sprintf("data %d->%d", n.id, nb))
			n.laOut[d] = sim.NewReg[flit.Lookahead](fmt.Sprintf("la %d->%d", n.id, nb))
			reg(n.dataOut[d])
			reg(n.laOut[d])
			peer := net.nodes[nb]
			opp := d.Opposite()
			peer.dataIn[opp] = n.dataOut[d]
			peer.laIn[opp] = n.laOut[d]
			// Reverse-direction credit registers owned by nb's input side.
			vc := sim.NewReg[vcredMsg](fmt.Sprintf("vcred %d->%d", nb, n.id))
			rc := sim.NewReg[rcredMsg](fmt.Sprintf("rcred %d->%d", nb, n.id))
			lc := sim.NewReg[laCredMsg](fmt.Sprintf("lacred %d->%d", nb, n.id))
			reg(vc)
			reg(rc)
			reg(lc)
			peer.vcredOut[opp] = vc
			peer.rcredOut[opp] = rc
			peer.laCredOut[opp] = lc
			n.vcredIn[d] = vc
			n.rcredIn[d] = rc
			n.laCredIn[d] = lc
		}
	}
}

// installReservations registers every flow on the tables of every link it
// may use, with R converted from flits to quanta. The injection link uses
// the flow's own reservation like every other link of its path (§5.1: "a
// flow uses the same reservation R_ij for all links of its path"): this
// paces look-ahead generation to the flow's guaranteed rate (plus local
// status resets when the source is underusing its share), keeping the
// look-ahead network lightly loaded as the paper assumes. Without this
// pacing, sources flood the look-ahead VCs with unschedulable flits whose
// head-of-line blocking starves distant flows.
func (net *Network) installReservations() error {
	linkFlows := net.pattern.LinkFlows()
	for _, link := range det.KeysFunc(linkFlows, topo.Link.Less) {
		flows := linkFlows[link]
		if link.D == topo.NumDirs { // injection link
			table := net.nodes[link.From].injTable
			for _, id := range flows {
				r := net.pattern.Flow(id).Reservation / net.cfg.QuantumFlits
				if r < 1 {
					r = 1
				}
				if err := table.AddFlow(id, r); err != nil {
					return err
				}
			}
			continue
		}
		table := net.nodes[link.From].outTables[link.D]
		if table == nil {
			return fmt.Errorf("loft: pattern uses nonexistent link %s", link)
		}
		for _, id := range flows {
			r := net.pattern.Flow(id).Reservation / net.cfg.QuantumFlits
			if r < 1 {
				r = 1
			}
			if err := table.AddFlow(id, r); err != nil {
				return err
			}
		}
	}
	return nil
}

// Tick advances every node one cycle (sim.Ticker; sequential engine only —
// the parallel engine registers nodes individually and runs commitCycle at
// the barrier instead). Nodes stage their shared-state effects even here,
// so the sequential cycle is the same compute-then-commit sequence the
// parallel engine runs — one code path, one emission order.
//
//loft:hotpath
func (net *Network) Tick(now uint64) {
	for _, n := range net.nodes {
		n.Tick(now)
	}
	net.commitCycle(now)
}

// commitCycle is the serial commit half of a cycle (the parallel engine's
// AddSerial hook, and the tail of the sequential Tick): replay every node's
// staged shared-state effects in node-id order, then run the per-cycle
// observability work.
//
//loft:hotpath
//loft:commitphase
func (net *Network) commitCycle(now uint64) {
	if net.perfT != nil {
		net.perfT.Begin(now)
	}
	for _, n := range net.nodes {
		n.flushStaged()
	}
	if net.probe != nil {
		net.probe.MaybeSample(now)
	}
	if net.audit != nil {
		net.audit.OnCycle(now)
	}
	if net.perfT != nil {
		net.perfT.Lap(perfmon.StageCommit)
	}
	if net.perf != nil {
		net.perf.OnCycle(now)
	}
}

// Probe returns the attached probe (nil when observability is disabled).
func (net *Network) Probe() *probe.Probe { return net.probe }

// Audit returns the attached auditor (nil when auditing is disabled).
func (net *Network) Audit() *audit.Auditor { return net.audit }

// Run advances the simulation n cycles.
func (net *Network) Run(n uint64) {
	net.engine.Run(n)
	net.thr.Close(net.engine.Now())
}

// Now returns the current cycle.
func (net *Network) Now() uint64 { return net.engine.Now() }

// Workers returns the resolved worker count (1 = sequential engine).
func (net *Network) Workers() int { return net.workers }

// observeFlits records throughput at ejection. A quantum ejects as a unit,
// so the whole flit count lands in one ObserveN call.
func (net *Network) observeFlits(q Quantum, now uint64) {
	net.thr.ObserveN(q.ID.Flow, int(q.Src), q.Flits, now)
}

// observePacket records a completed packet's total and network latencies.
func (net *Network) observePacket(q Quantum, injected, done uint64) {
	net.lat.Observe(q.Created, done)
	net.latFlow.Observe(q.ID.Flow, q.Created, done)
	if q.Created >= net.latNet.Warmup() {
		net.latNet.Observe(injected, done)
	}
}

// Latency returns the total packet latency collector (generation to
// delivery, including source queueing).
func (net *Network) Latency() *stats.Latency { return net.lat }

// NetLatency returns the network latency collector (injection to delivery).
func (net *Network) NetLatency() *stats.Latency { return net.latNet }

// FlowLatency returns the per-flow latency collector.
func (net *Network) FlowLatency() *stats.FlowLatency { return net.latFlow }

// Throughput returns the ejection throughput collector.
func (net *Network) Throughput() *stats.Throughput { return net.thr }

// Node returns node i (tests and diagnostics).
func (net *Network) Node(i topo.NodeID) *Node { return net.nodes[i] }

// TotalStats sums the per-node counters.
func (net *Network) TotalStats() NodeStats {
	var total NodeStats
	for _, n := range net.nodes {
		s := n.Stats()
		total.InjectedQuanta += s.InjectedQuanta
		total.EjectedQuanta += s.EjectedQuanta
		total.EjectedFlits += s.EjectedFlits
		total.Drops += s.Drops
		total.LateArrivals += s.LateArrivals
		total.EmergentDenied += s.EmergentDenied
		total.SpecForwards += s.SpecForwards
		total.SchedForwards += s.SchedForwards
		total.FaultsInjected += s.FaultsInjected
		total.FlitsLost += s.FlitsLost
		total.Retries += s.Retries
	}
	return total
}

// Backlog returns the total NI backlog in quanta (diagnostics).
func (net *Network) Backlog() int {
	total := 0
	for _, n := range net.nodes {
		total += n.Backlog()
	}
	return total
}

// ResetCount sums local status resets across all tables (diagnostics).
func (net *Network) ResetCount() uint64 {
	var total uint64
	for _, n := range net.nodes {
		total += n.injTable.Stats().Resets
		for d := topo.North; d < topo.NumDirs; d++ {
			if n.outTables[d] != nil {
				total += n.outTables[d].Stats().Resets
			}
		}
	}
	return total
}

// SchedulerTotals aggregates lsf.Stats over all output tables plus all
// injection tables (diagnostics).
func (net *Network) SchedulerTotals() (out, inj lsf.Stats) {
	add := func(dst *lsf.Stats, s lsf.Stats) {
		dst.Requests += s.Requests
		dst.Scheduled += s.Scheduled
		dst.Throttled += s.Throttled
		dst.FrameSkips += s.FrameSkips
		dst.CondBlocks += s.CondBlocks
		dst.Resets += s.Resets
	}
	for _, n := range net.nodes {
		add(&inj, n.injTable.Stats())
		for d := topo.North; d < topo.NumDirs; d++ {
			if n.outTables[d] != nil {
				add(&out, n.outTables[d].Stats())
			}
		}
	}
	return out, inj
}

// EnableVerify turns on per-slot verification of incremental LSF
// bookkeeping for all networks in this process (debug/test hook).
func EnableVerify() { verifyLSF = true }

// DisableVerify turns per-slot verification back off.
func DisableVerify() { verifyLSF = false }

// LinkUtilization returns, for every live output link (including ejection
// links), the fraction of cycles it carried data over the run so far.
func (net *Network) LinkUtilization() map[topo.Link]float64 {
	cycles := float64(net.engine.Now())
	if cycles == 0 {
		return nil
	}
	q := float64(net.cfg.QuantumFlits)
	out := make(map[topo.Link]float64)
	for _, n := range net.nodes {
		for d := topo.North; d < topo.NumDirs; d++ {
			if n.outTables[d] == nil {
				continue
			}
			out[topo.Link{From: n.id, D: d}] = float64(n.linkBusy[d]) * q / cycles
		}
	}
	return out
}

// Heatmap renders per-node link utilization as an ASCII grid (see
// topo.RenderHeatmap).
func (net *Network) Heatmap() string {
	return topo.RenderHeatmap(net.mesh, net.LinkUtilization())
}
