package loft

import (
	"loft/internal/fault"
	"loft/internal/flit"
	"loft/internal/probe"
	"loft/internal/topo"
	"loft/internal/traffic"
)

// pendQuantum is a quantum waiting at the source NI, either unbooked (its
// look-ahead flit not yet admitted by the injection-link scheduler) or
// booked with a departure slot on the injection link.
type pendQuantum struct {
	q          Quantum
	booked     bool
	departSlot uint64
	// faultDenied marks a quantum whose injection-link forward was denied
	// by an active fault; its eventual crossing counts as a retry.
	faultDenied bool
}

// flowQ is the per-flow source queue. LOFT needs no large source buffers
// (unlike GSF's 2000-flit queues) — quanta wait here only while the flow's
// reservations are exhausted or the packet just arrived.
type flowQ struct {
	id    flit.FlowID
	queue []pendQuantum
	next  uint64 // per-flow quantum sequence
	// failVersion suppresses re-requests until the injection table state
	// changes (see lsf.Table.Version).
	failVersion uint64
}

// netIface is the network interface of one node: packet generation,
// quantum segmentation, injection-link scheduling (the injection link runs
// the same framed output reservation table as any router link) and data
// forwarding into the router's local input port.
type netIface struct {
	n        *Node
	injector *traffic.Injector
	flows    []*flowQ
	byFlow   map[flit.FlowID]*flowQ
	rr       int
}

func (ni *netIface) init(n *Node) {
	ni.n = n
	ni.byFlow = make(map[flit.FlowID]*flowQ)
}

func (ni *netIface) setInjector(in *traffic.Injector) { ni.injector = in }

func (ni *netIface) flowQueue(id flit.FlowID) *flowQ {
	if q, ok := ni.byFlow[id]; ok {
		return q
	}
	return ni.newFlowQueue(id)
}

// newFlowQueue builds a flow's queue on its first packet. A run sees each
// flow once, so this is setup amortized over the whole run; out of line so
// the allocations stay off the Tick closure.
//
//loft:coldpath
//go:noinline
func (ni *netIface) newFlowQueue(id flit.FlowID) *flowQ {
	q := &flowQ{id: id}
	// The NI queue is bounded to NIQueueFlits across all flows (generate
	// drops beyond it), so one flow can hold at most that many quanta;
	// reserving the bound keeps steady-state enqueues allocation-free.
	if limit := ni.n.cfg.NIQueueFlits / ni.n.cfg.QuantumFlits; limit > 0 {
		q.queue = make([]pendQuantum, 0, limit)
	} else {
		q.queue = make([]pendQuantum, 0, 16)
	}
	ni.byFlow[id] = q
	ni.flows = append(ni.flows, q)
	return q
}

func (ni *netIface) backlog() int {
	total := 0
	for _, f := range ni.flows {
		total += len(f.queue)
	}
	return total
}

// generate polls the traffic injector and segments fresh packets into
// quanta. Packets arriving to a full NI queue are dropped: LOFT carries no
// large source buffers (Table 2), so saturation shows up as drops and a
// bounded queueing delay rather than an unbounded backlog.
func (ni *netIface) generate(now uint64) {
	if ni.injector == nil {
		return
	}
	n := ni.n
	q := n.cfg.QuantumFlits
	limit := n.cfg.NIQueueFlits / q
	for _, pkt := range ni.injector.Next(now) {
		if limit > 0 && ni.backlog()+(pkt.Flits+q-1)/q > limit {
			n.stats.Drops++
			continue
		}
		fq := ni.flowQueue(pkt.Flow)
		quanta := (pkt.Flits + q - 1) / q
		remaining := pkt.Flits
		for i := 0; i < quanta; i++ {
			flits := q
			if remaining < q {
				flits = remaining
			}
			remaining -= flits
			fq.queue = append(fq.queue, pendQuantum{q: Quantum{
				ID:        flit.QuantumID{Flow: pkt.Flow, Seq: fq.next},
				Src:       pkt.Src,
				Dst:       pkt.Dst,
				PktSeq:    pkt.Seq,
				PktQuanta: quanta,
				Flits:     flits,
				Created:   pkt.Created,
			}})
			fq.next++
		}
	}
}

// book runs the injection-link scheduler: at most one quantum per cycle
// books its injection slot and launches its look-ahead flit into the
// look-ahead network (a look-ahead flit always precedes its data, §3.2).
// Flows are served round-robin; a throttled flow (reservations exhausted)
// does not block the others.
func (ni *netIface) book(now uint64) {
	n := ni.n
	if len(ni.flows) == 0 || n.la.freeLocal() == 0 {
		return
	}
	slot := n.slotOf(now)
	for i := 0; i < len(ni.flows); i++ {
		fq := ni.flows[(ni.rr+i)%len(ni.flows)]
		// The first unbooked quantum; bookings are in order per flow.
		var pq *pendQuantum
		for j := range fq.queue {
			if !fq.queue[j].booked {
				pq = &fq.queue[j]
				break
			}
		}
		if pq == nil {
			continue
		}
		if fq.failVersion == n.injTable.Version() {
			continue // denied at this table state already
		}
		depart, ok := n.injTable.Request(fq.id, pq.q.ID.Seq, slot+1)
		if !ok {
			fq.failVersion = n.injTable.Version()
			continue // throttled: the flow's reservations are exhausted
		}
		fq.failVersion = 0
		ni.rr = (ni.rr + i + 1) % len(ni.flows)
		pq.booked = true
		pq.departSlot = depart
		n.stats.InjectedQuanta++
		if n.probe != nil {
			n.probe.EmitSeq(now, probe.KindLAIssue, int32(n.id), int32(topo.NumDirs), int32(fq.id), pq.q.ID.Seq, depart*uint64(n.cfg.QuantumFlits))
		}
		if n.audit != nil {
			n.audit.LOFTBook(pq.q.ID, pq.q.PktSeq, int32(n.id), depart, now)
		}
		n.la.accept(flit.Lookahead{
			Dst:        pq.q.Dst,
			Flow:       pq.q.ID.Flow,
			Quantum:    pq.q.ID.Seq,
			DepartPrev: depart,
			Src:        pq.q.Src,
			Flits:      pq.q.Flits,
			Created:    pq.q.Created,
		}, topo.Local, now)
		return
	}
}

// forward moves one booked quantum per slot from the NI into the router's
// local input port, at its booked slot (emergent) or ahead of schedule
// under speculative switching — the injection link follows the same §4.3.1
// rules as any router output.
func (ni *netIface) forward(slot, now uint64) {
	n := ni.n
	var best *pendQuantum
	var bestFlow *flowQ
	for _, fq := range ni.flows {
		if len(fq.queue) == 0 || !fq.queue[0].booked {
			continue
		}
		pq := &fq.queue[0]
		if best == nil || pq.departSlot < best.departSlot {
			best, bestFlow = pq, fq
		}
	}
	if best == nil {
		return
	}
	emergent := best.departSlot <= slot
	if !emergent && !n.cfg.SpeculativeSwitching {
		return
	}
	spec := false
	if !emergent {
		owner, _, ok := n.injTable.FirstScheduled()
		spec = !ok || owner.Flow != best.q.ID.Flow || owner.Quantum != best.q.ID.Seq
	}
	if spec {
		if n.niCredSpec.Available() == 0 {
			return
		}
	} else if n.niCredNonSpec.Available() == 0 {
		if emergent {
			n.stats.EmergentDenied++
		}
		return
	}
	if n.fault != nil && n.fault.DenyForward(fault.DirInject, now) {
		// The injection link eats the transmission before any state
		// changed: the booking stays live, the quantum stays queued, and
		// once its slot passes the emergent path retries it.
		best.faultDenied = true
		n.stats.FaultsInjected++
		n.stats.FlitsLost += uint64(best.q.Flits)
		if n.probe != nil {
			n.probe.EmitSeq(now, probe.KindFaultLoss, int32(n.id), int32(topo.NumDirs), int32(best.q.ID.Flow), best.q.ID.Seq, uint64(best.q.Flits))
		}
		return
	}
	if best.departSlot >= n.injTable.NowSlot() {
		if owner, busy := n.injTable.BusyAt(best.departSlot); busy && owner.Flow == best.q.ID.Flow && owner.Quantum == best.q.ID.Seq {
			n.injTable.ClearBusy(best.departSlot)
		}
	}
	if spec {
		n.niCredSpec.Consume()
	} else {
		n.niCredNonSpec.Consume()
	}
	if best.faultDenied {
		best.faultDenied = false
		n.stats.Retries++
		if n.probe != nil {
			n.probe.EmitSeq(now, probe.KindFaultRetry, int32(n.id), int32(topo.NumDirs), int32(best.q.ID.Flow), best.q.ID.Seq, best.departSlot*uint64(n.cfg.QuantumFlits))
		}
	}
	// Pop by copying down instead of re-slicing off the front: the queue
	// keeps its backing array, so steady-state generate/forward cycles stop
	// reallocating. best aliases queue[0] — copy it out first.
	depart := best.departSlot
	q := best.q
	q.Injected = now
	copy(bestFlow.queue, bestFlow.queue[1:])
	bestFlow.queue = bestFlow.queue[:len(bestFlow.queue)-1]
	if n.probe != nil {
		n.probe.EmitSeq(now, probe.KindDataInject, int32(n.id), int32(topo.NumDirs), int32(q.ID.Flow), q.ID.Seq, depart*uint64(n.cfg.QuantumFlits))
	}
	if n.audit != nil {
		n.audit.LOFTInject(q.ID, q.Flits, int32(n.id), now)
	}
	n.niData.Write(dataMsg{Q: q, Spec: spec, Depart: depart})
}

// sinkState is the destination PE model: it consumes one flit per cycle
// (one quantum per slot, §5.1), reassembles packets for latency accounting
// and returns the ejection link's credits.
type sinkState struct {
	n         *Node
	pending   map[pktKey]pktProgress
	pendVcred []uint64 // ejection-table credit returns awaiting a live tag
}

type pktProgress struct {
	quanta   int
	injected uint64 // earliest quantum injection cycle
}

// applyReturns flushes deferred ejection-table credit returns whose tags
// now fall inside the live slot window. An active eject credit-stall
// window withholds the whole queue; the existing deferral mechanism then
// replays it exactly once the window passes.
func (s *sinkState) applyReturns(now uint64) {
	if f := s.n.fault; f != nil && f.StallCredits(fault.DirEject, now) {
		if len(s.pendVcred) > 0 {
			s.n.stats.FaultsInjected++
		}
		return
	}
	t := s.n.outTables[topo.Local]
	limit := t.NowSlot() + uint64(t.WindowSlots())
	kept := s.pendVcred[:0]
	for _, tag := range s.pendVcred {
		if tag < limit {
			t.ReturnCredit(tag)
		} else {
			kept = append(kept, tag)
		}
	}
	s.pendVcred = kept
}

type pktKey struct {
	flow flit.FlowID
	seq  uint64
}

func (s *sinkState) init(n *Node) {
	s.n = n
	s.pending = make(map[pktKey]pktProgress)
}

// receive accepts a quantum from the ejection link during the given slot.
// departSlot is the quantum's booked ejection slot: the virtual-credit
// return must be tagged relative to the booking (departSlot+1), not the
// possibly-earlier physical delivery, to keep the cumulative ledger within
// capacity.
func (s *sinkState) receive(q Quantum, spec bool, slot, departSlot, now uint64) {
	n := s.n
	n.stats.EjectedQuanta++
	n.stats.EjectedFlits += uint64(q.Flits)
	if n.audit != nil {
		n.audit.LOFTEject(q.ID, q.Flits, int32(n.id), now)
	}
	// The quantum drains at link rate: its buffer slot frees next slot.
	if spec {
		s.n.pendSinkRet.Spec++
	} else {
		s.n.pendSinkRet.NonSpec++
	}
	// Return the ejection table's virtual credit (the sink plays the role
	// of the next router's input scheduler). Every delivered quantum
	// corresponds to exactly one ejection booking. The tag can fall one
	// slot beyond the live window when the booking took the last window
	// slot; the return is then deferred — applying a future-tagged return
	// later is exact because increments address absolute slots.
	s.pendVcred = append(s.pendVcred, departSlot+1)
	s.applyReturns(now)
	if n.net != nil {
		n.observeFlits(q, now)
	}
	key := pktKey{flow: q.ID.Flow, seq: q.PktSeq}
	prog := s.pending[key]
	if prog.quanta == 0 || q.Injected < prog.injected {
		prog.injected = q.Injected
	}
	prog.quanta++
	if prog.quanta < q.PktQuanta {
		s.pending[key] = prog
		return
	}
	delete(s.pending, key)
	if n.net != nil {
		// The packet completes when its last flit crosses the ejection
		// link: the end of this slot.
		done := (slot + 1) * uint64(n.cfg.QuantumFlits)
		n.observePacket(q, prog.injected, done)
		if n.audit != nil {
			n.audit.LOFTPacketDone(q.ID.Flow, q.PktSeq, prog.injected, done)
		}
	}
}
