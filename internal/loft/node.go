package loft

import (
	"fmt"
	"sort"

	"loft/internal/audit"
	"loft/internal/buffers"
	"loft/internal/config"
	"loft/internal/fault"
	"loft/internal/flit"
	"loft/internal/lsf"
	"loft/internal/perfmon"
	"loft/internal/probe"
	"loft/internal/sim"
	"loft/internal/topo"
)

// verifyLSF enables per-slot verification of incremental LSF bookkeeping
// (set by tests and debug runs; expensive).
var verifyLSF = false

// inEntry is one row of an input reservation table (Fig. 5 bottom): the
// quantum identity recorded by its look-ahead flit on arrival, the expected
// data arrival, and — once the look-ahead flit passed the output scheduler —
// the booked departure slot.
type inEntry struct {
	q          Quantum
	outDir     topo.Dir
	arriveSlot uint64
	booked     bool
	departSlot uint64
	arrived    bool
	inSpec     bool // resides in this node's speculative buffer
	// faultDenied marks a quantum whose forward was denied by an active
	// fault; its eventual successful forward counts as a retry.
	faultDenied bool
}

// inputPort is one data-network input port: the input reservation table plus
// occupancy counters for the central (non-speculative) and speculative
// buffers (Fig. 9).
//
// The reservation table is a dense slab keyed by arrival slot: wire
// messages carry the upstream booking slot, so ring[arriveSlot & (len-1)]
// resolves an entry without hashing or map allocation. A bucket normally
// holds zero or one entries; it can hold more, because speculative forwards
// clear their table slot early and let the upstream link re-book the same
// absolute slot while the first quantum's entry is still live (and because
// distant slots are congruent modulo the ring size). Buckets and retired
// entries keep their backing storage, so the steady state allocates
// nothing.
type inputPort struct {
	dir  topo.Dir
	ring [][]*inEntry // buckets indexed by arriveSlot & (len-1)
	free []*inEntry   // retired entries for reuse
	// avail lists entries that are booked AND physically arrived — the
	// switching candidates — so per-slot arbitration does not scan the
	// whole input reservation table.
	avail       []*inEntry
	nonspecUsed int
	specUsed    int
}

// portSlots sizes the input slab. The live-entry count is bounded by buffer
// occupancy plus in-flight look-aheads (both small); spreading them over
// the reservation window's worth of buckets keeps chains at length 0 or 1.
const portSlots = 64

func newInputPort(d topo.Dir) *inputPort {
	// Preallocate bucket capacity, the entry pool and the candidate list so
	// first-time high-water marks (bucket depth 2+, a new live-entry
	// maximum) do not allocate mid-run; alloc() still falls back to the heap
	// if a pathological workload exceeds the pool.
	const bucketCap = 8
	backing := make([]*inEntry, portSlots*bucketCap)
	ring := make([][]*inEntry, portSlots)
	for i := range ring {
		ring[i] = backing[i*bucketCap : i*bucketCap : (i+1)*bucketCap]
	}
	pool := make([]inEntry, 2*portSlots)
	free := make([]*inEntry, len(pool))
	for i := range pool {
		free[i] = &pool[i]
	}
	return &inputPort{dir: d, ring: ring, free: free, avail: make([]*inEntry, 0, portSlots)}
}

// alloc returns a recycled entry or a fresh one.
func (ip *inputPort) alloc() *inEntry {
	if k := len(ip.free); k > 0 {
		e := ip.free[k-1]
		ip.free = ip.free[:k-1]
		return e
	}
	return ip.allocSlow()
}

// allocSlow is the pool-exhausted fallback: it heap-allocates, which only a
// pathological workload reaches, so it is kept out of line (and out of the
// zero-alloc hot-path closure) to stop the allocation from being inlined
// into alloc's steady-state callers.
//
//loft:coldpath
//go:noinline
func (ip *inputPort) allocSlow() *inEntry {
	return new(inEntry)
}

// lookup returns the live entry for quantum qid expecting arrival slot s,
// or nil.
func (ip *inputPort) lookup(s uint64, qid flit.QuantumID) *inEntry {
	for _, e := range ip.ring[s&uint64(len(ip.ring)-1)] {
		if e.arriveSlot == s && e.q.ID == qid {
			return e
		}
	}
	return nil
}

// insert places a fresh entry, panicking on a duplicate quantum identity
// (the check the old map performed on its key).
func (ip *inputPort) insert(e *inEntry, nodeID topo.NodeID) {
	i := e.arriveSlot & uint64(len(ip.ring)-1)
	for _, old := range ip.ring[i] {
		if old.q.ID == e.q.ID {
			panic(fmt.Sprintf("loft: node %d: duplicate look-ahead for %+v", nodeID, e.q.ID))
		}
	}
	ip.ring[i] = append(ip.ring[i], e)
}

// remove retires a live entry into the free pool.
func (ip *inputPort) remove(e *inEntry) {
	i := e.arriveSlot & uint64(len(ip.ring)-1)
	b := ip.ring[i]
	for j, x := range b {
		if x == e {
			b[j] = b[len(b)-1]
			ip.ring[i] = b[:len(b)-1]
			ip.free = append(ip.free, e)
			return
		}
	}
	panic("loft: input reservation entry missing from slab")
}

// NodeStats aggregates per-node protocol events.
type NodeStats struct {
	InjectedQuanta uint64
	EjectedQuanta  uint64
	EjectedFlits   uint64
	// Drops counts packets rejected by a full NI queue (saturation).
	Drops uint64
	// LateArrivals counts slots where a booked departure passed before the
	// quantum physically arrived (a protocol stress indicator; zero in
	// correct steady state).
	LateArrivals uint64
	// EmergentDenied counts emergent quanta denied the link by a full real
	// buffer (§4.3.1 discusses why the speculative buffer makes this rare).
	EmergentDenied uint64
	SpecForwards   uint64 // quanta forwarded ahead of schedule
	SchedForwards  uint64 // quanta forwarded at their booked slot
	// FaultsInjected counts discrete fault applications on this node:
	// forward denials, withheld credit batches and stalled router slots.
	FaultsInjected uint64
	// FlitsLost counts flits in fault-denied forwards. Denied quanta are
	// never silently dropped — they retry — so this measures lost link
	// transmissions, not lost payload.
	FlitsLost uint64
	// Retries counts fault-denied quanta that later crossed their link.
	Retries uint64
}

// Node is one LOFT mesh node: data router, look-ahead router, network
// interface and sink.
type Node struct {
	id   topo.NodeID
	cfg  config.LOFT
	mesh topo.Mesh
	net  *Network

	// outTables are the framed output reservation tables for the four mesh
	// outputs plus the ejection link (index topo.Local).
	outTables [topo.NumDirs]*lsf.Table
	// injTable schedules the NI→router injection link.
	injTable *lsf.Table

	inputs [topo.NumDirs]*inputPort // topo.Local = from the NI

	la   laRouter
	ni   netIface
	sink sinkState

	// Real credits toward each downstream input buffer pair (§4.3.1's
	// actual-credit signals). Index by output dir; Local tracks the sink.
	credNonSpec [topo.NumDirs]*buffers.Credits
	credSpec    [topo.NumDirs]*buffers.Credits
	// NI-side real credits toward the router's local input port.
	niCredNonSpec, niCredSpec *buffers.Credits

	// Link registers. Out registers are owned by this node; in registers
	// alias the neighbor's out registers. Nil at mesh edges.
	dataOut, dataIn     [4]*sim.Reg[dataMsg]
	laOut, laIn         [4]*sim.Reg[flit.Lookahead]
	vcredOut, vcredIn   [4]*sim.Reg[vcredMsg]
	rcredOut, rcredIn   [4]*sim.Reg[rcredMsg]
	laCredOut, laCredIn [4]*sim.Reg[laCredMsg]
	// niData carries quanta from the NI into the router local input port.
	niData *sim.Reg[dataMsg]

	// Per-cycle accumulators flushed into the out registers. pendVcred[d]
	// always aliases vcredBuf[d][vcredSel[d]]: flush sends the filled buffer
	// on the wire and flips to the other one, so neither side copies. The
	// consumer finishes reading one cycle after the send, a full cycle
	// before the same buffer can be reused.
	pendVcred  [4][]uint64
	vcredBuf   [4][2][]uint64
	vcredSel   [4]uint8
	pendRcred  [4]rcredMsg
	pendLaCred [4]int
	// pendSinkRet and pendNIRet return real credits one cycle after a
	// quantum leaves the sink/local input.
	pendSinkRet rcredMsg
	pendNIRet   rcredMsg

	outRR [topo.NumDirs]rrState

	// linkBusy counts quanta forwarded per output (link utilization).
	linkBusy [topo.NumDirs]uint64

	// probe is this node's staging view of net.probe (nil when observability
	// is disabled): compute-phase emissions buffer locally and replay in
	// node-id order at the cycle barrier, under both engines.
	probe *probe.Stage
	// audit is this node's view of net.audit, staging under the parallel
	// engine (nil when -audit is off).
	audit *audit.Hook
	// stagedObs buffers shared-state statistics observations made during the
	// compute phase; commitCycle replays them via flushStaged.
	stagedObs []obsRec

	// perf is this node's stage timer (nil when profiling is off). It is
	// owner-local state, so it stays shard-local under the parallel engine.
	perf *perfmon.Timer

	// fault is this node's compiled fault-injection runtime (nil when no
	// plan is armed or the plan does not target this node). All its state
	// is node-local, so fault decisions are compute-phase pure and
	// worker-count independent.
	fault *fault.Node

	stats NodeStats
}

// obsRec is one deferred statistics observation (see Node.observeFlits and
// Node.observePacket).
type obsRec struct {
	q      Quantum
	a, b   uint64 // flits: a=now; packet: a=injected, b=done
	packet bool
}

// rrState is a rotating priority pointer over input ports. Iterate it as
// dir(i) = (next + i) mod NumDirs rather than materializing an order array:
// the copy showed up as duffcopy in speculative-switching profiles.
type rrState struct{ next int }

// dir returns the i-th input direction in rotating-priority order.
func (r *rrState) dir(i int) topo.Dir { return topo.Dir((r.next + i) % int(topo.NumDirs)) }

func (r *rrState) granted(d topo.Dir) { r.next = (int(d) + 1) % int(topo.NumDirs) }

func newNode(id topo.NodeID, cfg config.LOFT, mesh topo.Mesh, net *Network) *Node {
	// The node (and its tables, which capture n.probe below) always emits
	// into a private staging view replayed at the cycle barrier: staging
	// unconditionally keeps the compute phase free of shared-sink calls under
	// both engines, which is what stagepurity proves. The audit hook still
	// stages only when sharded — its staged ops are closures, so always-on
	// staging would allocate on audited sequential runs for no benefit.
	n := &Node{id: id, cfg: cfg, mesh: mesh, net: net,
		probe: net.probe.NewStage(), audit: audit.NewHook(net.audit, net.workers > 1),
		perf: net.perf.Timer()}
	params := lsf.Params{
		SlotsPerFrame: cfg.SlotsPerFrame(),
		Frames:        cfg.FrameWindow,
		BufferQuanta:  cfg.BufferQuanta(),
		Strict:        true,
		Yield:         cfg.YieldCondition,
	}
	for d := topo.North; d < topo.NumDirs; d++ {
		n.inputs[d] = newInputPort(d)
		if d == topo.Local {
			n.outTables[d] = lsf.NewTable(fmt.Sprintf("n%d.eject", id), params)
		} else if _, ok := mesh.Neighbor(id, d); ok {
			n.outTables[d] = lsf.NewTable(fmt.Sprintf("n%d.%s", id, d), params)
		}
		if n.outTables[d] != nil {
			n.credNonSpec[d] = buffers.NewCredits(fmt.Sprintf("n%d.%s.nonspec", id, d), cfg.BufferQuanta())
			n.credSpec[d] = buffers.NewCredits(fmt.Sprintf("n%d.%s.spec", id, d), cfg.SpecQuanta())
		}
	}
	n.injTable = lsf.NewTable(fmt.Sprintf("n%d.inject", id), params)
	if n.probe != nil {
		for d := topo.North; d < topo.NumDirs; d++ {
			if n.outTables[d] != nil {
				n.outTables[d].SetProbe(n.probe, int32(id), int32(d), cfg.QuantumFlits)
			}
		}
		n.injTable.SetProbe(n.probe, int32(id), int32(topo.NumDirs), cfg.QuantumFlits)
	}
	n.niCredNonSpec = buffers.NewCredits(fmt.Sprintf("n%d.ni.nonspec", id), cfg.BufferQuanta())
	n.niCredSpec = buffers.NewCredits(fmt.Sprintf("n%d.ni.spec", id), cfg.SpecQuanta())
	n.niData = sim.NewReg[dataMsg](fmt.Sprintf("n%d.nidata", id))
	for d := 0; d < 4; d++ {
		// A cycle books at most one quantum per output table, so at most
		// NumDirs virtual credits can accrue for a single input direction
		// before flush drains them; sized up so steady state never grows.
		n.vcredBuf[d][0] = make([]uint64, 0, 2*int(topo.NumDirs))
		n.vcredBuf[d][1] = make([]uint64, 0, 2*int(topo.NumDirs))
		n.pendVcred[d] = n.vcredBuf[d][0]
	}
	n.la.init(n)
	n.ni.init(n)
	n.sink.init(n)
	return n
}

// slotOf returns the quantum slot containing cycle c.
func (n *Node) slotOf(c uint64) uint64 { return c / uint64(n.cfg.QuantumFlits) }

// Tick advances the node by one cycle. See the package comment for phase
// ordering; all cross-node communication flows through registers, so node
// iteration order does not affect results.
//
//loft:hotpath
//loft:computephase
func (n *Node) Tick(now uint64) {
	if n.perf != nil {
		n.perf.Begin(now)
	}
	if n.fault != nil {
		n.faultTick(now)
	}
	n.drain(now)
	if n.perf != nil {
		n.perf.Lap(perfmon.StageDrain)
	}
	if now%uint64(n.cfg.QuantumFlits) == 0 {
		n.frameTick(now)
		if n.perf != nil {
			n.perf.Lap(perfmon.StageFrame)
		}
		slot := n.slotOf(now)
		if n.fault != nil && n.fault.RouterStalled(now) {
			// The switch pass freezes for this slot; bookings and
			// look-ahead routing continue, so frozen quanta go overdue
			// and forward as emergent once the stall lifts.
			n.stats.FaultsInjected++
		} else {
			n.forwardData(slot, now)
			n.ni.forward(slot, now)
		}
		if n.perf != nil {
			n.perf.Lap(perfmon.StageSwitch)
		}
	}
	n.ni.generate(now)
	n.ni.book(now)
	if n.perf != nil {
		n.perf.Lap(perfmon.StageBooking)
	}
	n.la.process(now)
	if n.perf != nil {
		n.perf.Lap(perfmon.StageLookahead)
	}
	n.flush(now)
	if n.perf != nil {
		n.perf.Lap(perfmon.StageFlush)
	}
}

// faultTick replays the armed plan's window boundaries crossing this cycle
// as probe timeline events, so a chaos run's trace shows exactly when each
// fault armed and lifted. The edge cursor must advance every cycle even
// with probing off, hence the single guarded emission inside the loop.
//
//loft:hotpath
func (n *Node) faultTick(now uint64) {
	for _, e := range n.fault.Edges(now) {
		if n.probe == nil {
			continue
		}
		kind := probe.KindFaultDown
		if e.Up {
			kind = probe.KindFaultUp
		}
		dir, flow := int32(-1), int32(-1)
		if e.Ev.Kind != fault.RouterStall && e.Ev.Kind != fault.Adversary {
			dir = int32(e.Ev.Dir)
		}
		if e.Ev.Kind == fault.Adversary {
			flow = int32(e.Ev.Flow)
		}
		n.probe.EmitSeq(now, kind, int32(n.id), dir, flow, uint64(e.Ev.Kind), e.Ev.To)
	}
}

// frameTick is the per-slot reservation-table maintenance that precedes the
// slot's switch pass: table ticks, deferred ejection credit returns, local
// status resets and (in debug runs) ledger verification.
//
//loft:hotpath
func (n *Node) frameTick(now uint64) {
	if now > 0 {
		n.injTable.Tick()
		for d := topo.North; d < topo.NumDirs; d++ {
			if n.outTables[d] != nil {
				n.outTables[d].Tick()
			}
		}
		n.sink.applyReturns(now)
	}
	if n.cfg.LocalStatusReset {
		n.maybeReset()
	}
	if verifyLSF {
		n.injTable.VerifyZero()
		for d := topo.North; d < topo.NumDirs; d++ {
			if n.outTables[d] != nil {
				n.outTables[d].VerifyZero()
			}
		}
	}
}

// drain consumes every incoming register. Look-ahead flits are drained
// before data so a quantum always finds its input reservation entry.
func (n *Node) drain(now uint64) {
	if n.pendSinkRet.NonSpec > 0 || n.pendSinkRet.Spec > 0 {
		for i := 0; i < n.pendSinkRet.NonSpec; i++ {
			n.credNonSpec[topo.Local].Return()
		}
		for i := 0; i < n.pendSinkRet.Spec; i++ {
			n.credSpec[topo.Local].Return()
		}
		n.pendSinkRet = rcredMsg{}
	}
	if n.pendNIRet.NonSpec > 0 || n.pendNIRet.Spec > 0 {
		for i := 0; i < n.pendNIRet.NonSpec; i++ {
			n.niCredNonSpec.Return()
		}
		for i := 0; i < n.pendNIRet.Spec; i++ {
			n.niCredSpec.Return()
		}
		n.pendNIRet = rcredMsg{}
	}
	for d := 0; d < 4; d++ {
		if n.laIn[d] != nil {
			if fl, ok := n.laIn[d].Take(); ok {
				n.la.accept(fl, topo.Dir(d), now)
			}
		}
	}
	if msg, ok := n.niData.Take(); ok {
		n.receiveData(topo.Local, msg, now)
	}
	for d := 0; d < 4; d++ {
		if n.dataIn[d] != nil {
			if msg, ok := n.dataIn[d].Take(); ok {
				n.receiveData(topo.Dir(d), msg, now)
			}
		}
		if n.vcredIn[d] != nil {
			if n.fault != nil {
				// Credits withheld by a passed stall window replay first:
				// they are older than anything arriving this cycle, and a
				// stale tag applies exactly (whole-window increment).
				for _, tag := range n.fault.ReleaseCredits(d, now) {
					n.outTables[d].ReturnCredit(tag)
				}
			}
			if msg, ok := n.vcredIn[d].Take(); ok {
				if n.fault != nil && n.fault.StallCredits(d, now) {
					n.fault.DeferCredits(d, msg.Tags)
					n.stats.FaultsInjected++
				} else {
					for _, tag := range msg.Tags {
						n.outTables[d].ReturnCredit(tag)
					}
				}
			}
		}
		if n.rcredIn[d] != nil {
			if msg, ok := n.rcredIn[d].Take(); ok {
				for i := 0; i < msg.NonSpec; i++ {
					n.credNonSpec[d].Return()
				}
				for i := 0; i < msg.Spec; i++ {
					n.credSpec[d].Return()
				}
			}
		}
		if n.laCredIn[d] != nil {
			if msg, ok := n.laCredIn[d].Take(); ok {
				for i := 0; i < msg.N; i++ {
					n.la.credits[d].Return()
				}
			}
		}
	}
}

// receiveData registers a quantum's physical arrival at input port d. The
// wire message carries the upstream booking slot, so the reservation entry
// (written by the look-ahead flit at arrival slot Depart+1) resolves with
// one slab index.
func (n *Node) receiveData(d topo.Dir, msg dataMsg, now uint64) {
	ip := n.inputs[d]
	e := ip.lookup(msg.Depart+1, msg.Q.ID)
	if e == nil {
		panic(fmt.Sprintf("loft: node %d input %s: quantum %+v arrived without a look-ahead entry", n.id, d, msg.Q.ID))
	}
	if e.arrived {
		panic(fmt.Sprintf("loft: node %d input %s: quantum %+v arrived twice", n.id, d, msg.Q.ID))
	}
	e.arrived = true
	e.inSpec = msg.Spec
	// Adopt the wire quantum: the look-ahead flit carries only the fields
	// of Fig. 3, while the data flits carry the full packet identity.
	e.q = msg.Q
	if e.booked {
		ip.avail = append(ip.avail, e)
		if e.departSlot < n.slotOf(now) {
			n.stats.LateArrivals++
		}
	}
	if msg.Spec {
		ip.specUsed++
		if ip.specUsed > n.cfg.SpecQuanta() {
			panic(fmt.Sprintf("loft: node %d input %s: speculative buffer overflow", n.id, d))
		}
	} else {
		ip.nonspecUsed++
		if ip.nonspecUsed > n.cfg.BufferQuanta() {
			panic(fmt.Sprintf("loft: node %d input %s: central buffer overflow", n.id, d))
		}
	}
}

// maybeReset performs the local status reset of §4.3.2 on every eligible
// output link: scheduler dirty, no booked slot, no virtual credit in flight
// and the downstream non-speculative buffer empty (observed via returned
// real credits).
func (n *Node) maybeReset() {
	for d := topo.North; d < topo.NumDirs; d++ {
		t := n.outTables[d]
		if t == nil {
			continue
		}
		if t.Dirty() && t.AllIdle() && t.Outstanding() == 0 && n.credNonSpec[d].AtCap() {
			t.Reset()
		}
	}
	if t := n.injTable; t.Dirty() && t.AllIdle() && t.Outstanding() == 0 && n.niCredNonSpec.AtCap() {
		t.Reset()
	}
}

// candidate returns input port d's switching candidate: the arrived, booked
// entry with the earliest scheduled departure (the first non-empty entry of
// the input reservation table's buffer-out row, §4.3.1).
func (ip *inputPort) candidate() *inEntry {
	var best *inEntry
	for _, e := range ip.avail {
		if best == nil || e.departSlot < best.departSlot {
			best = e
		}
	}
	return best
}

// dropAvail removes a forwarded entry from the candidate list.
func (ip *inputPort) dropAvail(e *inEntry) {
	for i, x := range ip.avail {
		if x == e {
			ip.avail[i] = ip.avail[len(ip.avail)-1]
			ip.avail = ip.avail[:len(ip.avail)-1]
			return
		}
	}
	panic("loft: forwarded entry missing from candidate list")
}

// forwardData performs one slot's switch arbitration and link traversal for
// the data network (§4.3.1): each input port nominates one candidate; per
// output port an emergent candidate (booked to depart this slot or overdue)
// always wins; otherwise, with speculative switching enabled, a round-robin
// arbiter picks among candidates with downstream buffer space, forwarding
// them ahead of schedule.
func (n *Node) forwardData(slot, now uint64) {
	var cands [topo.NumDirs]*inEntry
	for d := topo.North; d < topo.NumDirs; d++ {
		cands[d] = n.inputs[d].candidate()
	}
	for o := topo.North; o < topo.NumDirs; o++ {
		if n.outTables[o] == nil {
			continue
		}
		// Emergent pass: the earliest overdue-or-due candidate for o.
		var winner *inEntry
		var winnerIn topo.Dir
		for d := topo.North; d < topo.NumDirs; d++ {
			e := cands[d]
			if e == nil || e.outDir != o || e.departSlot > slot {
				continue
			}
			if winner == nil || e.departSlot < winner.departSlot {
				winner, winnerIn = e, d
			}
		}
		emergent := winner != nil
		if !emergent && n.cfg.SpeculativeSwitching {
			// Speculative pass: round-robin among remaining candidates.
			rr := &n.outRR[o]
			for i := 0; i < int(topo.NumDirs); i++ {
				d := rr.dir(i)
				e := cands[d]
				if e == nil || e.outDir != o {
					continue
				}
				if n.probe != nil {
					n.probe.EmitSeq(now, probe.KindSpecAttempt, int32(n.id), int32(o), int32(e.q.ID.Flow), e.q.ID.Seq, e.q.ID.Seq)
				}
				if n.canForward(o, e) {
					winner, winnerIn = e, d
					n.outRR[o].granted(d)
					break
				}
				if n.probe != nil {
					n.probe.EmitSeq(now, probe.KindSpecAbort, int32(n.id), int32(o), int32(e.q.ID.Flow), e.q.ID.Seq, e.q.ID.Seq)
				}
			}
		}
		if winner == nil {
			continue
		}
		if emergent && !n.canForward(o, winner) {
			n.stats.EmergentDenied++
			continue
		}
		if n.fault != nil && n.fault.DenyForward(int(o), now) {
			// The link eats the transmission. Nothing was mutated yet:
			// the entry stays live (booked, arrived, in avail), so once
			// its departure slot passes it is overdue and the emergent
			// pass retries it — the same path a full downstream buffer
			// exercises.
			n.faultDeny(winner, o, now)
			cands[winnerIn] = nil
			continue
		}
		n.forward(o, winnerIn, winner, slot, now)
		cands[winnerIn] = nil // one forward per input per slot
	}
}

// classify reports whether entry e would be forwarded into the downstream
// speculative buffer (out of order) or the central buffer (in order:
// emergent, overdue, or first-scheduled in the output table, §4.3.1).
func (n *Node) classify(o topo.Dir, e *inEntry, slot uint64) (spec bool) {
	if e.departSlot <= slot {
		return false
	}
	owner, _, ok := n.outTables[o].FirstScheduled()
	return !ok || owner.Flow != e.q.ID.Flow || owner.Quantum != e.q.ID.Seq
}

// canForward checks downstream real-buffer space for e through output o.
func (n *Node) canForward(o topo.Dir, e *inEntry) bool {
	if n.classify(o, e, n.outTables[o].NowSlot()) {
		return n.credSpec[o].Available() > 0
	}
	return n.credNonSpec[o].Available() > 0
}

// forward moves the winning quantum across output o: consume the real
// credit, clear the input entry and the output-table slot, return the real
// credit for the buffer it vacated, and either deliver to the sink (Local)
// or put it on the link.
func (n *Node) forward(o, in topo.Dir, e *inEntry, slot, now uint64) {
	if e.faultDenied {
		// A fault denied this quantum earlier; this crossing is its retry.
		e.faultDenied = false
		n.stats.Retries++
		if n.probe != nil {
			n.probe.EmitSeq(now, probe.KindFaultRetry, int32(n.id), int32(o), int32(e.q.ID.Flow), e.q.ID.Seq, e.departSlot*uint64(n.cfg.QuantumFlits))
		}
	}
	spec := n.classify(o, e, slot)
	t := n.outTables[o]
	// Clear the booked slot unless it already expired (overdue case).
	if e.departSlot >= t.NowSlot() {
		if owner, busy := t.BusyAt(e.departSlot); busy && owner.Flow == e.q.ID.Flow && owner.Quantum == e.q.ID.Seq {
			t.ClearBusy(e.departSlot)
		}
	}
	if e.departSlot <= slot {
		n.stats.SchedForwards++
	} else {
		n.stats.SpecForwards++
		if n.probe != nil {
			n.probe.EmitSeq(now, probe.KindSpecHit, int32(n.id), int32(o), int32(e.q.ID.Flow), e.q.ID.Seq, e.departSlot*uint64(n.cfg.QuantumFlits))
		}
	}
	if n.probe != nil {
		n.probe.EmitSeq(now, probe.KindDataForward, int32(n.id), int32(o), int32(e.q.ID.Flow), e.q.ID.Seq, e.departSlot*uint64(n.cfg.QuantumFlits))
	}
	n.linkBusy[o]++
	// Vacate this node's input buffer and return its real credit.
	ip := n.inputs[in]
	ip.dropAvail(e)
	if e.inSpec {
		ip.specUsed--
	} else {
		ip.nonspecUsed--
	}
	if in == topo.Local {
		if e.inSpec {
			n.pendNIRet.Spec++
		} else {
			n.pendNIRet.NonSpec++
		}
	} else {
		if e.inSpec {
			n.pendRcred[in].Spec++
		} else {
			n.pendRcred[in].NonSpec++
		}
	}
	// Occupy the downstream buffer.
	if spec {
		n.credSpec[o].Consume()
	} else {
		n.credNonSpec[o].Consume()
	}
	if n.audit != nil {
		n.audit.LOFTForward(e.q.ID, int32(n.id), int32(o), spec, now)
	}
	// The entry retires here; copy what outlives it before recycling.
	q, departSlot := e.q, e.departSlot
	ip.remove(e)
	if o == topo.Local {
		n.sink.receive(q, spec, slot, departSlot, now)
		return
	}
	n.dataOut[o].Write(dataMsg{Q: q, Spec: spec, Depart: departSlot})
}

// flush writes the per-cycle accumulators to their registers.
func (n *Node) flush(uint64) {
	for d := 0; d < 4; d++ {
		if len(n.pendVcred[d]) > 0 {
			// Send the filled buffer as-is and flip to the other one: the
			// receiver drains it next cycle, one full cycle before this
			// side can touch it again, so no copy is needed.
			sel := n.vcredSel[d]
			n.vcredBuf[d][sel] = n.pendVcred[d]
			n.vcredOut[d].Write(vcredMsg{Tags: n.pendVcred[d]})
			sel ^= 1
			n.vcredSel[d] = sel
			n.pendVcred[d] = n.vcredBuf[d][sel][:0]
		}
		if n.pendRcred[d] != (rcredMsg{}) {
			n.rcredOut[d].Write(n.pendRcred[d])
			n.pendRcred[d] = rcredMsg{}
		}
		if n.pendLaCred[d] > 0 {
			n.laCredOut[d].Write(laCredMsg{N: n.pendLaCred[d]})
			n.pendLaCred[d] = 0
		}
	}
}

// faultDeny records a fault-denied forward through output o: the quantum
// keeps its buffer slot and reservation entry, so the overdue/emergent path
// retries it on a later slot; the lost transmission is accounted.
//
//loft:hotpath
func (n *Node) faultDeny(e *inEntry, o topo.Dir, now uint64) {
	e.faultDenied = true
	n.stats.FaultsInjected++
	n.stats.FlitsLost += uint64(e.q.Flits)
	if n.probe != nil {
		n.probe.EmitSeq(now, probe.KindFaultLoss, int32(n.id), int32(o), int32(e.q.ID.Flow), e.q.ID.Seq, uint64(e.q.Flits))
	}
}

// observeFlits records ejection throughput, deferring to the cycle barrier
// (the stats collectors are shared state the compute phase must not touch).
func (n *Node) observeFlits(q Quantum, now uint64) {
	n.stagedObs = append(n.stagedObs, obsRec{q: q, a: now})
}

// observePacket records a completed packet's latencies, deferring to the
// cycle barrier.
func (n *Node) observePacket(q Quantum, injected, done uint64) {
	n.stagedObs = append(n.stagedObs, obsRec{q: q, a: injected, b: done, packet: true})
}

// flushStaged replays this node's deferred shared-state effects — stats
// observations, probe events, audit operations — at the cycle barrier.
// Replaying nodes in id order reproduces one fixed call sequence regardless
// of worker count, which is what keeps parallel results byte-identical.
//
//loft:hotpath
//loft:commitphase
func (n *Node) flushStaged() {
	for i := range n.stagedObs {
		r := &n.stagedObs[i]
		if r.packet {
			n.net.observePacket(r.q, r.a, r.b)
		} else {
			n.net.observeFlits(r.q, r.a)
		}
	}
	n.stagedObs = n.stagedObs[:0]
	if n.probe != nil {
		n.probe.FlushStage()
	}
	if n.audit != nil {
		n.audit.Flush()
	}
}

// Stats returns the node's counters.
func (n *Node) Stats() NodeStats { return n.stats }

// InjectTableFault corrupts one of the node's reservation tables (test
// hook; see lsf.Fault). d selects a mesh output or the ejection link;
// d == topo.NumDirs targets the injection table. No-op on a missing table
// (mesh edge).
func (n *Node) InjectTableFault(d topo.Dir, f lsf.Fault) {
	if d == topo.NumDirs {
		n.injTable.InjectFault(f)
		return
	}
	if n.outTables[d] != nil {
		n.outTables[d].InjectFault(f)
	}
}

// ID returns the node id.
func (n *Node) ID() topo.NodeID { return n.id }

// Backlog returns the number of quanta waiting in the NI (source backlog).
func (n *Node) Backlog() int { return n.ni.backlog() }

// Debug dumps scheduler state for diagnostics (used by cmd/perfcheck).
func (n *Node) Debug() {
	fmt.Printf("node %d: backlog=%d\n", n.id, n.Backlog())
	for d := topo.North; d < topo.NumDirs; d++ {
		if n.outTables[d] == nil {
			continue
		}
		t := n.outTables[d]
		st := t.Stats()
		fmt.Printf("  out %s: req=%d sched=%d throttle=%d cond=%d skips=%d resets=%d outstanding=%d busy=%v\n",
			d, st.Requests, st.Scheduled, st.Throttled, st.CondBlocks, st.FrameSkips, st.Resets, t.Outstanding(), !t.AllIdle())
	}
	st := n.injTable.Stats()
	fmt.Printf("  inj: req=%d sched=%d throttle=%d outstanding=%d\n", st.Requests, st.Scheduled, st.Throttled, n.injTable.Outstanding())
	for d := topo.North; d < topo.NumDirs; d++ {
		for v, vc := range n.la.vcs[d] {
			if vc.Len() > 0 {
				head, _ := vc.Peek()
				fmt.Printf("  la in=%s vc=%d len=%d headflow=%d headq=%d ready=%d out=%s arrive=%d\n",
					d, v, vc.Len(), head.fl.Flow, head.fl.Quantum, head.readyAt, head.outDir, head.fl.DepartPrev)
			}
		}
	}
	for d := topo.North; d < topo.NumDirs; d++ {
		var live []*inEntry
		for _, bucket := range n.inputs[d].ring {
			live = append(live, bucket...)
		}
		sort.Slice(live, func(i, j int) bool {
			if live[i].q.ID.Flow != live[j].q.ID.Flow {
				return live[i].q.ID.Flow < live[j].q.ID.Flow
			}
			return live[i].q.ID.Seq < live[j].q.ID.Seq
		})
		for _, e := range live {
			fmt.Printf("  entry in=%s flow=%d q=%d arrive=%d booked=%v depart=%d arrived=%v\n",
				d, e.q.ID.Flow, e.q.ID.Seq, e.arriveSlot, e.booked, e.departSlot, e.arrived)
		}
	}
}

// DebugTable prints one output table's scheduler counters (diagnostics).
func (n *Node) DebugTable(d topo.Dir) {
	t := n.outTables[d]
	if t == nil {
		fmt.Printf("node %d %s: no table\n", n.id, d)
		return
	}
	s := t.Stats()
	fmt.Printf("node %2d %s: sched=%6d throttle=%7d cond=%6d skips=%5d resets=%5d outstanding=%3d\n",
		n.id, d, s.Scheduled, s.Throttled, s.CondBlocks, s.FrameSkips, s.Resets, t.Outstanding())
}
