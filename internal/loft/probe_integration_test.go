package loft

import (
	"testing"

	"loft/internal/probe"
	"loft/internal/traffic"
)

// runProbed runs a small uniform-traffic LOFT network with a probe attached
// and returns the probe plus the network for result comparison.
func runProbed(t *testing.T, seed uint64, pr *probe.Probe) (*Network, *probe.Probe) {
	t.Helper()
	cfg := smallCfg(12)
	p := traffic.Uniform(cfg.Mesh(), 0.2, cfg.PacketFlits, cfg.FrameFlits)
	net, err := New(cfg, p, Options{Seed: seed, Warmup: 0, Probe: pr})
	if err != nil {
		t.Fatal(err)
	}
	net.Run(3000)
	return net, pr
}

func TestProbeEventsDeterministic(t *testing.T) {
	mk := func(seed uint64) []probe.Event {
		_, pr := runProbed(t, seed, probe.New(probe.Config{SampleEvery: 64}))
		return pr.Events()
	}
	a, b := mk(5), mk(5)
	if len(a) == 0 {
		t.Fatal("no events emitted")
	}
	if len(a) != len(b) {
		t.Fatalf("event counts differ across same-seed runs: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("event %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
	c := mk(6)
	same := len(a) == len(c)
	if same {
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical event streams (suspicious)")
	}
}

func TestProbeDoesNotPerturbSimulation(t *testing.T) {
	bare, _ := runProbed(t, 9, nil)
	probed, pr := runProbed(t, 9, probe.New(probe.Config{SampleEvery: 32}))
	bs, ps := bare.TotalStats(), probed.TotalStats()
	if bs != ps {
		t.Fatalf("probe changed simulation stats:\nbare   %+v\nprobed %+v", bs, ps)
	}
	if bare.Latency().Count() != probed.Latency().Count() ||
		bare.Latency().Mean() != probed.Latency().Mean() {
		t.Fatalf("probe changed latency: %f/%d vs %f/%d",
			bare.Latency().Mean(), bare.Latency().Count(),
			probed.Latency().Mean(), probed.Latency().Count())
	}
	if pr.Tracer().Total() == 0 {
		t.Fatal("probed run emitted no events")
	}
}

func TestProbeCoversKeyEvents(t *testing.T) {
	_, pr := runProbed(t, 2, probe.New(probe.Config{SampleEvery: 64}))
	for _, k := range []probe.Kind{
		probe.KindReserveGrant,
		probe.KindFrameRecycle,
		probe.KindLAIssue,
		probe.KindVCreditGrant,
		probe.KindSpecAttempt,
	} {
		if pr.Tracer().Count(k) == 0 {
			t.Errorf("no %s events recorded", k)
		}
	}
	if len(pr.Series()) == 0 {
		t.Fatal("no time series sampled")
	}
	found := false
	for _, s := range pr.Series() {
		if len(s.Samples) > 0 {
			found = true
			break
		}
	}
	if !found {
		t.Fatal("all sampled series are empty")
	}
}
