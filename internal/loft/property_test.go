package loft

import (
	"testing"
	"testing/quick"

	"loft/internal/flit"
	"loft/internal/topo"
	"loft/internal/traffic"
)

// TestQuickRandomPatternsConserve runs randomized small workloads through
// the full LOFT network and checks the global protocol invariants:
// everything injected is ejected exactly once after draining, no strict-mode
// panic fires (Theorem I), and per-packet reassembly completes.
func TestQuickRandomPatternsConserve(t *testing.T) {
	if testing.Short() {
		t.Skip("randomized network property test")
	}
	check := func(seed uint64, nFlows uint8, rateSel uint8, spec uint8) bool {
		cfg := smallCfg(int(spec%3) * 4) // 0, 4, 8
		mesh := cfg.Mesh()
		rate := []float64{0.05, 0.15, 0.3}[int(rateSel)%3]

		// Random flow set with equal reservations; cap contention so the
		// admission constraint holds by construction.
		flows := int(nFlows%4) + 1
		p := &traffic.Pattern{
			Name:        "random",
			Mesh:        mesh,
			Gens:        make(map[topo.NodeID][]traffic.Gen),
			PacketFlits: cfg.PacketFlits,
		}
		rng := newDetRng(seed)
		for i := 0; i < flows; i++ {
			src := topo.NodeID(rng.next() % uint64(mesh.N()))
			dst := src
			for dst == src {
				dst = topo.NodeID(rng.next() % uint64(mesh.N()))
			}
			id := flit.FlowID(i)
			p.Flows = append(p.Flows, flit.Flow{ID: id, Src: src, Dst: dst, Reservation: cfg.FrameFlits / 8})
			p.Gens[src] = append(p.Gens[src], traffic.Gen{Flow: id, Rate: rate, Dst: dst})
		}
		if p.Validate(cfg.FrameFlits) != nil {
			return true // oversubscribed random draw: skip
		}
		net, err := New(cfg, p, Options{Seed: seed, Warmup: 0})
		if err != nil {
			t.Logf("build: %v", err)
			return false
		}
		net.Run(3000)
		p.SetRate(0)
		net.Run(4000)
		s := net.TotalStats()
		if s.InjectedQuanta != s.EjectedQuanta {
			t.Logf("seed %d: injected %d != ejected %d", seed, s.InjectedQuanta, s.EjectedQuanta)
			return false
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// detRng is a tiny deterministic generator for test-pattern construction
// (kept separate from sim.RNG so pattern draws don't depend on it).
type detRng struct{ s uint64 }

func newDetRng(seed uint64) *detRng { return &detRng{s: seed*2654435761 + 1} }

func (r *detRng) next() uint64 {
	r.s ^= r.s << 13
	r.s ^= r.s >> 7
	r.s ^= r.s << 17
	return r.s
}
