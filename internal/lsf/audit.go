package lsf

import "loft/internal/flit"

// AuditSink observes scheduler bookkeeping mutations for the runtime
// invariant auditor (internal/audit). Every method is called synchronously
// from the scheduling path immediately after the mutation it describes, so
// implementations can cross-check the table's own state; they must be
// cheap, must not mutate the table, and must not panic. A nil sink keeps
// the hooks disabled (one nil-interface test per site).
type AuditSink interface {
	// AuditGrant: a quantum of flow f was booked at absolute slot time
	// `slot` from injection frame `frame`.
	AuditGrant(f flit.FlowID, quantum, slot uint64, frame int)
	// AuditFrameAdvance: flow f advanced out of injection frame `frame`,
	// abandoning `abandoned` unused reservations into skipped(frame).
	AuditFrameAdvance(f flit.FlowID, frame, abandoned int)
	// AuditRecycle: the head frame advanced and `frame` was recycled (its
	// skipped counter reset).
	AuditRecycle(frame int)
	// AuditReturn: a virtual-credit return tagged with departure slot `tag`
	// was applied.
	AuditReturn(tag uint64)
	// AuditReset: the table performed a local status reset (§4.3.2).
	AuditReset()
}

// SetAudit attaches an audit sink (nil detaches).
func (t *Table) SetAudit(a AuditSink) { t.aud = a }

// BufferCap returns BN, the downstream buffer capacity in quanta.
func (t *Table) BufferCap() int { return t.p.BufferQuanta }

// FrameCount returns WF, the number of frames in the window.
func (t *Table) FrameCount() int { return t.p.Frames }

// EndCredit returns the cumulative virtual credit of the farthest window
// slot. By the appendix eq. 3 semantics this equals BN minus the quanta
// booked but not yet credit-returned, so the invariant
// EndCredit() == BufferCap() - Outstanding() (and ≥ 0) is the constructive
// form of the condition-(1)/Theorem-I admission inequality the auditor
// checks at every grant.
func (t *Table) EndCredit() int { return t.slots[(t.cp-1+t.wt)%t.wt].credit }

// Fault selects a deliberate bookkeeping corruption, used by the runtime
// auditor's tests to prove a broken scheduler is caught. FaultNone (the
// zero value) disarms.
type Fault uint8

const (
	FaultNone Fault = iota
	// FaultDropSkipped omits the skipped(i) accumulation when a flow
	// abandons a frame — the §4.2 accounting the anomaly fix depends on.
	FaultDropSkipped
	// FaultLeakCredit drops the per-slot increments of a virtual-credit
	// return while still counting the return, desynchronizing the
	// cumulative credit sums from the outstanding count.
	FaultLeakCredit
)

// InjectFault arms a deliberate scheduler corruption (test hook; see Fault).
func (t *Table) InjectFault(f Fault) { t.fault = f }
