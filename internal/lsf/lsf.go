// Package lsf implements the paper's primary contribution: the
// locally-synchronized-frame (LSF) output scheduler integrated with
// flit-reservation flow control (§3.1, §4).
//
// Each output link of every router (plus every injection and ejection link)
// owns one Table: a framed output reservation table (Fig. 7). The table is a
// ring of WT = F·WF time slots, each one quantum (Q data flits) wide,
// carrying a busy flag and a virtual-credit count (Fig. 5). Slots are grouped
// into WF frames of F slots. Per contending flow the table keeps the
// injection frame IF_ij, the remaining reservation C_ij and the allocated
// reservation R_ij; scheduling requests follow Algorithm 1 and Algorithm 2
// of the paper, extended with the per-frame skipped(i) counters and
// admission condition (1) that eliminate the output scheduling anomaly
// (§4.2), and with the local status reset of §4.3.2.
//
// Virtual credits use the cumulative semantics of the appendix (eq. 3): the
// credit of a slot counts downstream non-speculative buffer space at that
// future time, assuming scheduled timing. Scheduling a quantum at slot t
// decrements the credit of every slot from t to the window end; a credit
// return tagged with the downstream departure time t increments every slot
// from t onward. When the current-slot pointer advances, the recycled slot
// inherits the credit of the previously farthest slot, continuing the
// cumulative sums across the ring seam.
//
// All quantities in this package are in quantum slots, not flits.
package lsf

import (
	"fmt"

	"loft/internal/flit"
	"loft/internal/probe"
)

// TraceName enables throttle tracing for the named table (debug hook).
var TraceName string

// Params sizes a Table.
type Params struct {
	// SlotsPerFrame is F in quantum slots (frame size in flits / Q).
	SlotsPerFrame int
	// Frames is WF, the frame window size.
	Frames int
	// BufferQuanta is BN: the downstream non-speculative input buffer
	// capacity in quanta. Theorem I requires BufferQuanta >= SlotsPerFrame.
	BufferQuanta int
	// Strict enables invariant panics (Theorem I: credits in [0, BN]).
	// Simulation tests run strict; production callers may prefer counters.
	Strict bool
	// Yield enables the buffer-yield admission policy for frames beyond
	// the head frame (the fairness intent of the paper's condition (1);
	// see conditionOne). Safety never depends on it — the constructive
	// Theorem I check in trySchedule always applies — and it penalizes
	// flows whose quanta arrive with late earliest-departure constraints
	// (long congested paths), so it defaults to off; the ablation
	// benchmarks exercise it.
	Yield bool
}

// Validate reports sizing errors.
func (p Params) Validate() error {
	switch {
	case p.SlotsPerFrame < 1:
		return fmt.Errorf("lsf: frame of %d slots", p.SlotsPerFrame)
	case p.Frames < 2:
		return fmt.Errorf("lsf: frame window %d < 2", p.Frames)
	case p.BufferQuanta < p.SlotsPerFrame:
		return fmt.Errorf("lsf: buffer %d quanta < frame %d slots violates the Theorem I precondition", p.BufferQuanta, p.SlotsPerFrame)
	}
	return nil
}

// Owner identifies the quantum holding a busy slot.
type Owner struct {
	Flow    flit.FlowID
	Quantum uint64
}

type slotState struct {
	busy   bool
	owner  Owner
	credit int
}

type flowState struct {
	r   int // R_ij in quanta per frame
	ifr int // IF_ij, injection frame index
	c   int // C_ij, remaining reservation in the injection frame
	// lastReq is the slot of the flow's most recent scheduling request;
	// the yield condition only protects reservations of recently-active
	// flows (a 1-bit activity flag per flow in hardware).
	lastReq uint64
	active  bool
}

// Stats counts scheduler events for the experiment reports.
type Stats struct {
	Requests     uint64 // scheduling attempts (Algorithm 1 invocations)
	Scheduled    uint64 // successful bookings
	Throttled    uint64 // requests denied with all frames exhausted
	FrameSkips   uint64 // injection-frame advances (line 12-14 of Alg. 1)
	CondBlocks   uint64 // frames rejected by condition (1)
	Resets       uint64 // local status resets (§4.3.2)
	CreditClamps uint64 // credit updates clamped in non-strict mode
}

// Table is one framed output reservation table with its scheduler state.
type Table struct {
	p       Params
	name    string
	wt      int // total slots = SlotsPerFrame * Frames
	slots   []slotState
	cp      int    // ring index of the current slot
	now     uint64 // absolute slot time of the current slot
	skipped []int  // per-frame yielded reservations (quanta)
	// flows is a dense table indexed by flit.FlowID (traffic assigns flow
	// ids contiguously from zero, so the table stays small); nil entries are
	// unregistered flows. The per-request lookup is the hottest read in the
	// simulator, and a slice index beats the previous map access.
	flows       []*flowState
	flowList    []*flowState // registration-ordered view of live flows
	sumR        int          // admission accounting: Σ R_ij over contending flows
	outstanding int          // scheduled quanta minus returned virtual credits
	busyCount   int
	// lastZero is the largest window offset whose slot has zero credit
	// (-1 when none): bookings are only safe strictly above it. Maintained
	// exactly by every credit mutation so firstSafeOffset is O(1).
	lastZero int
	// dirty marks scheduler state diverged from fresh (any Request since
	// the last reset); the reset trigger checks it so idle links reset
	// once instead of every slot.
	dirty bool
	// version increments whenever table state changes in a way that could
	// turn a previously-denied request into a success (tick, credit
	// return, busy clear, reset). Callers use it to suppress busy-wait
	// retries of throttled flows.
	version uint64
	stats   Stats

	// Probe context (nil when observability is disabled). Event timestamps
	// are slot times scaled to cycles by slotCycles so LSF events align
	// with the cycle-granular events of the surrounding network. The table
	// holds a staging view because it ticks inside the compute phase: events
	// buffer locally and the owning node replays them at the cycle barrier.
	probe        *probe.Stage
	pNode, pLink int32
	slotCycles   uint64

	// aud receives bookkeeping mutations for the runtime invariant auditor
	// (nil when auditing is disabled); fault arms a deliberate corruption
	// for the auditor's own tests.
	aud   AuditSink
	fault Fault
}

// NewTable returns an empty table. It panics on invalid params (a
// configuration bug, validated earlier by config).
func NewTable(name string, p Params) *Table {
	if err := p.Validate(); err != nil {
		panic(err)
	}
	wt := p.SlotsPerFrame * p.Frames
	t := &Table{
		p:       p,
		name:    name,
		wt:      wt,
		slots:   make([]slotState, wt),
		skipped: make([]int, p.Frames),
	}
	for i := range t.slots {
		t.slots[i].credit = p.BufferQuanta
	}
	t.lastZero = -1
	return t
}

// Name returns the table's diagnostic name.
func (t *Table) Name() string { return t.name }

// SetProbe attaches an observability staging view. node and link identify
// this table in traces; cyclesPerSlot converts the table's slot times into
// cycles for event timestamps. A nil stage keeps instrumentation disabled.
func (t *Table) SetProbe(p *probe.Stage, node, link int32, cyclesPerSlot int) {
	t.probe = p
	t.pNode = node
	t.pLink = link
	t.slotCycles = uint64(cyclesPerSlot)
}

// emit records one probe event stamped with the current slot time. seq is
// the per-flow quantum sequence for flow-scoped events (0 when the event is
// not about one quantum).
func (t *Table) emit(k probe.Kind, flow int32, seq, arg uint64) {
	if t.probe != nil {
		t.probe.EmitSeq(t.now*t.slotCycles, k, t.pNode, t.pLink, flow, seq, arg)
	}
}

// Stats returns a snapshot of the event counters.
func (t *Table) Stats() Stats { return t.stats }

// flow returns flow id's state, or nil when unregistered.
func (t *Table) flow(id flit.FlowID) *flowState {
	if id < 0 || int(id) >= len(t.flows) {
		return nil
	}
	return t.flows[id]
}

// AddFlow registers a contending flow with reservation r quanta per frame.
// It enforces the LSF admission constraint Σ R_ij ≤ F.
func (t *Table) AddFlow(id flit.FlowID, r int) error {
	if r < 1 {
		return fmt.Errorf("lsf: flow %d reservation %d < 1 quantum on %s", id, r, t.name)
	}
	if id < 0 {
		return fmt.Errorf("lsf: negative flow id %d on %s", id, t.name)
	}
	if t.flow(id) != nil {
		return fmt.Errorf("lsf: flow %d registered twice on %s", id, t.name)
	}
	if t.sumR+r > t.p.SlotsPerFrame {
		return fmt.Errorf("lsf: ΣR %d+%d exceeds frame size %d on %s", t.sumR, r, t.p.SlotsPerFrame, t.name)
	}
	t.sumR += r
	// Initialize: IF ← HF, C ← R (Algorithm 1 lines 1-2).
	st := &flowState{r: r, ifr: t.hf(), c: r}
	for int(id) >= len(t.flows) {
		t.flows = append(t.flows, nil)
	}
	t.flows[id] = st
	t.flowList = append(t.flowList, st)
	return nil
}

// HasFlow reports whether the flow is registered.
func (t *Table) HasFlow(id flit.FlowID) bool { return t.flow(id) != nil }

// Reservation returns R_ij in quanta for a registered flow (0 otherwise).
func (t *Table) Reservation(id flit.FlowID) int {
	if st := t.flow(id); st != nil {
		return st.r
	}
	return 0
}

// NowSlot returns the absolute time of the current slot.
func (t *Table) NowSlot() uint64 { return t.now }

// hf derives the head frame from the current-slot pointer: Algorithm 3
// advances HF every F ticks, which is exactly the frame containing CP.
func (t *Table) hf() int { return t.cp / t.p.SlotsPerFrame }

// HeadFrame returns the head frame index (exported for tests/diagnostics).
func (t *Table) HeadFrame() int { return t.hf() }

// ring returns the ring index of absolute slot time s, which must lie in
// the live window [now, now+WT).
func (t *Table) ring(s uint64) int {
	d := s - t.now
	if d >= uint64(t.wt) {
		panic(fmt.Sprintf("lsf: slot %d outside window [%d,%d) on %s", s, t.now, t.now+uint64(t.wt), t.name))
	}
	return (t.cp + int(d)) % t.wt
}

// timeOf returns the absolute slot time of ring index p.
func (t *Table) timeOf(p int) uint64 {
	return t.now + uint64((p-t.cp+t.wt)%t.wt)
}

// Tick advances the current-slot pointer by one slot (Algorithm 3). The
// expired slot is recycled as the new farthest-future slot, inheriting the
// cumulative credit of the previously farthest slot. When the pointer
// crosses a frame boundary the head frame advances: flows stuck at the old
// head frame move on with replenished reservations and the recycled frame's
// skipped counter resets.
//
// Tick runs inside the parallel compute phase (each table belongs to one
// node's shard), so everything it reaches must stage its shared-state
// effects — the AuditSink taps route through the staged audit.Hook.
//
//loft:hotpath
//loft:computephase
func (t *Table) Tick() {
	t.version++
	old := t.cp
	prevLast := (t.cp - 1 + t.wt) % t.wt
	inherited := t.slots[prevLast].credit
	t.cp = (t.cp + 1) % t.wt
	t.now++
	// Recycle the expired slot into the farthest-future position.
	if t.slots[old].busy {
		t.busyCount--
	}
	t.slots[old].busy = false
	t.slots[old].owner = Owner{}
	t.slots[old].credit = inherited
	// Window offsets shift down by one; the recycled slot becomes the
	// farthest offset.
	if t.lastZero >= 0 {
		t.lastZero--
	}
	if inherited == 0 {
		t.lastZero = t.wt - 1
	}
	if t.cp%t.p.SlotsPerFrame == 0 {
		oldHF := (t.cp/t.p.SlotsPerFrame - 1 + t.p.Frames) % t.p.Frames
		for _, st := range t.flowList {
			if st.ifr == oldHF {
				st.ifr = (oldHF + 1) % t.p.Frames
				st.c = minInt(st.r, st.c+st.r)
			}
		}
		t.skipped[oldHF] = 0
		if t.probe != nil {
			t.emit(probe.KindFrameRecycle, -1, 0, uint64(t.hf()))
		}
		if t.aud != nil {
			t.aud.AuditRecycle(oldHF)
		}
	}
}

// conditionOne gates injection into frames beyond the head frame,
// implementing the stated intent of the paper's condition (1): "let
// aggressive flows voluntarily yield buffer space to moderate flows"
// (§4.2). A flow may book into non-head frame f only if the eventual
// downstream buffer space (the window-end cumulative credit, BN minus
// outstanding quanta) exceeds the unspent reservations of recently-active
// flows still injecting into earlier frames — those moderates get first
// claim on the buffer.
//
// Deviation from the paper's literal formula, documented in DESIGN.md: the
// published inequality F − skipped(IF) ≤ credit(Prior) degenerates with the
// paper's own WF=2 configuration. skipped(f) only accumulates when a flow
// advances OUT of frame f, which for the last window frame is impossible
// (the next frame is the head), and skipped(HF) is reset at the very
// recycle that would make it useful — so the literal condition reduces to
// "zero outstanding credits", which both deadlocks the network (a wedged
// chain of tables each waiting for the next) and contradicts the paper's
// own worked example. Safety (Theorem I) does not depend on this choice:
// trySchedule enforces the non-negative-credit invariant constructively.
// The skipped counters are still maintained for accounting and diagnostics.
func (t *Table) conditionOne(self *flowState, f int) bool {
	if !t.p.Yield || f == t.hf() {
		return true
	}
	rank := (f - t.hf() + t.p.Frames) % t.p.Frames
	headStart := t.now - uint64(t.cp%t.p.SlotsPerFrame)
	ahead := 0
	for _, st := range t.flowList {
		if st == self || !st.active {
			continue
		}
		// Activity expires after one frame without requests.
		if st.lastReq+uint64(t.p.SlotsPerFrame) < headStart {
			continue
		}
		if (st.ifr-t.hf()+t.p.Frames)%t.p.Frames < rank {
			ahead += st.c
		}
	}
	endCredit := t.slots[(t.cp-1+t.wt)%t.wt].credit
	return endCredit > ahead
}

// Request runs the injection procedure of Algorithm 1 for one quantum of
// flow f, identified by its per-flow quantum sequence number. The quantum
// cannot depart before minSlot (data arrival plus router pipeline). On
// success it returns the booked absolute departure slot.
//
// A false result means the flow is throttled: its reservations in every
// frame of the window are exhausted (or unusable), and the caller must
// retry after the head frame advances.
//
// Like Tick, Request runs inside the parallel compute phase, called from
// the owning node's look-ahead router during its shard's tick.
//
//loft:hotpath
//loft:computephase
func (t *Table) Request(f flit.FlowID, quantum uint64, minSlot uint64) (uint64, bool) {
	st := t.flow(f)
	if st == nil {
		panic(fmt.Sprintf("lsf: request from unregistered flow %d on %s", f, t.name))
	}
	t.stats.Requests++
	t.dirty = true
	st.lastReq = t.now
	st.active = true
	if minSlot <= t.now {
		minSlot = t.now + 1
	}
	minValid := t.firstSafeOffset()
	for {
		if st.c > 0 {
			if t.conditionOne(st, st.ifr) {
				if slot, ok := t.trySchedule(f, quantum, st.ifr, minSlot, minValid); ok {
					st.c--
					t.stats.Scheduled++
					if t.probe != nil {
						t.emit(probe.KindReserveGrant, int32(f), quantum, slot*t.slotCycles)
					}
					if t.aud != nil {
						t.aud.AuditGrant(f, quantum, slot, st.ifr)
					}
					return slot, true
				}
			} else {
				t.stats.CondBlocks++
				if t.probe != nil {
					t.emit(probe.KindCondBlock, int32(f), quantum, uint64(st.ifr))
				}
			}
		}
		next := (st.ifr + 1) % t.p.Frames
		if next == t.hf() {
			t.stats.Throttled++
			if t.probe != nil {
				t.emit(probe.KindReserveDeny, int32(f), quantum, quantum)
			}
			if TraceName != "" && t.name == TraceName && t.stats.Throttled%500 == 0 {
				t.traceThrottle(f, quantum, st, minSlot)
			}
			return 0, false
		}
		// Advancing abandons the unused reservation: record it in the
		// skipped counter of the frame being left (§4.2).
		if t.fault != FaultDropSkipped {
			t.skipped[st.ifr] += st.c
		}
		if t.probe != nil {
			t.emit(probe.KindFrameSkip, int32(f), quantum, uint64(st.c))
		}
		if t.aud != nil {
			t.aud.AuditFrameAdvance(f, st.ifr, st.c)
		}
		st.c = minInt(st.r, st.c+st.r)
		st.ifr = next
		t.stats.FrameSkips++
	}
}

// traceThrottle prints one -tracetable line for a throttled request. Kept
// out of Request so the hot path carries only the guarded call: formatting
// here is sampled (every 500th throttle) and explicitly cold.
//
//loft:coldpath
func (t *Table) traceThrottle(f flit.FlowID, quantum uint64, st *flowState, minSlot uint64) {
	fmt.Printf("TRACE %s now=%d cp=%d hf=%d flow=%d q=%d IF=%d C=%d minSlot=%d lastZero=%d endCredit=%d\n",
		t.name, t.now, t.cp, t.hf(), f, quantum, st.ifr, st.c, minSlot, t.lastZero, t.slots[(t.cp-1+t.wt)%t.wt].credit)
}

// trySchedule is Algorithm 2: scan frame f for a valid slot (not busy,
// positive virtual credit, at or after minSlot) and book it.
//
// Validity additionally requires that the booking keeps every later slot's
// credit positive (the booking decrements the whole suffix): this is the
// Theorem I invariant enforced constructively, closing the out-of-order
// overbooking anomaly of §4.2 for head-frame bookings where condition (1)
// does not apply.
func (t *Table) trySchedule(fl flit.FlowID, quantum uint64, f int, minSlot uint64, minValid int) (uint64, bool) {
	start := f * t.p.SlotsPerFrame
	if f == t.hf() {
		start = (t.cp + 1) % t.wt
	}
	end := ((f + 1) % t.p.Frames) * t.p.SlotsPerFrame
	// Jump directly to the first offset satisfying both the safety
	// threshold and the arrival constraint; scanning below it is futile.
	startOff := (start - t.cp + t.wt) % t.wt
	endOff := (end - 1 - t.cp + t.wt) % t.wt // frame's last slot offset
	minOff := startOff
	if minValid > minOff {
		minOff = minValid
	}
	if minSlot > t.now {
		if d := int(minSlot - t.now); d > minOff {
			minOff = d
		}
	}
	if minOff > endOff {
		return 0, false
	}
	start = (t.cp + minOff) % t.wt
	for p := start; p != end; p = (p + 1) % t.wt {
		s := &t.slots[p]
		if s.busy || s.credit <= 0 {
			continue
		}
		tm := t.timeOf(p)
		s.busy = true
		s.owner = Owner{Flow: fl, Quantum: quantum}
		t.busyCount++
		t.consumeCredits(p)
		t.outstanding++
		return tm, true
	}
	return 0, false
}

// firstSafeOffset returns the smallest window offset at which a booking
// keeps every later slot's credit positive: one past the last zero-credit
// slot (credits are non-negative by the Theorem I invariant).
func (t *Table) firstSafeOffset() int { return t.lastZero + 1 }

// consumeCredits decrements the virtual credit of every slot from ring
// index p to the window end (cumulative occupancy of the downstream buffer
// from the departure slot onward). The ring suffix is walked as two linear
// array segments with the loop bodies written out directly: this and
// ReturnCredit are the two hottest loops in the whole simulator, and the
// previous closure-based iterator (an indirect call per slot) dominated
// CPU profiles.
func (t *Table) consumeCredits(p int) {
	from := (p - t.cp + t.wt) % t.wt
	slots := t.slots
	lastZero := t.lastZero
	start := t.cp + from
	off := from
	if start < t.wt {
		for idx := start; idx < t.wt; idx++ {
			slots[idx].credit--
			if c := slots[idx].credit; c <= 0 {
				if c < 0 {
					t.creditUnderflow(&slots[idx])
				}
				if off > lastZero {
					lastZero = off
				}
			}
			off++
		}
		start, off = 0, t.wt-t.cp
	} else {
		start -= t.wt
	}
	for idx := start; idx < t.cp; idx++ {
		slots[idx].credit--
		if c := slots[idx].credit; c <= 0 {
			if c < 0 {
				t.creditUnderflow(&slots[idx])
			}
			if off > lastZero {
				lastZero = off
			}
		}
		off++
	}
	t.lastZero = lastZero
}

// creditUnderflow is the cold path of consumeSlot: a booking drove a credit
// negative, which strict mode treats as a Theorem I violation.
func (t *Table) creditUnderflow(s *slotState) {
	if t.p.Strict {
		panic(fmt.Sprintf("lsf: negative virtual credit on %s (Theorem I violation)", t.name))
	}
	s.credit = 0
	t.stats.CreditClamps++
}

// ReturnCredit applies a virtual credit return tagged with the downstream
// departure slot: every live slot at or after the tag gains one credit.
// Tags at or before the current slot increment the whole window.
//
//loft:hotpath
func (t *Table) ReturnCredit(tag uint64) {
	from := 0
	if tag > t.now {
		if tag >= t.now+uint64(t.wt) {
			panic(fmt.Sprintf("lsf: credit return tag %d beyond window on %s", tag, t.name))
		}
		from = int(tag - t.now)
	}
	if t.fault == FaultLeakCredit {
		// Deliberate corruption (see Fault): count the return without
		// crediting any slot.
		t.finishReturn(from, tag)
		return
	}
	start := t.cp + from
	if start < t.wt {
		for idx := start; idx < t.wt; idx++ {
			t.returnSlot(idx)
		}
		start = 0
	} else {
		start -= t.wt
	}
	for idx := start; idx < t.cp; idx++ {
		t.returnSlot(idx)
	}
	t.finishReturn(from, tag)
}

// returnSlot increments one slot's credit during a credit return. Kept
// small enough to inline into ReturnCredit's loops.
func (t *Table) returnSlot(idx int) {
	s := &t.slots[idx]
	s.credit++
	if s.credit > t.p.BufferQuanta {
		t.creditOverflow(s)
	}
}

// creditOverflow is the cold path of returnSlot: a return drove a credit
// above the downstream buffer capacity.
func (t *Table) creditOverflow(s *slotState) {
	if t.p.Strict {
		panic(fmt.Sprintf("lsf: virtual credit above capacity on %s", t.name))
	}
	s.credit = t.p.BufferQuanta
	t.stats.CreditClamps++
}

// finishReturn completes ReturnCredit's bookkeeping after the suffix walk.
func (t *Table) finishReturn(from int, tag uint64) {
	// Every slot from the tag onward is now positive: if the last zero was
	// in that range, rescan below the tag for the new last zero.
	if t.lastZero >= from {
		t.lastZero = -1
		for i := from - 1; i >= 0; i-- {
			if t.slots[(t.cp+i)%t.wt].credit == 0 {
				t.lastZero = i
				break
			}
		}
	}
	t.outstanding--
	if t.outstanding < 0 {
		panic(fmt.Sprintf("lsf: more credit returns than bookings on %s", t.name))
	}
	t.version++
	if t.probe != nil {
		t.emit(probe.KindVCreditGrant, -1, 0, tag*t.slotCycles)
	}
	if t.aud != nil {
		t.aud.AuditReturn(tag)
	}
}

// ClearBusy releases the booked slot at absolute time s after its quantum
// was forwarded (possibly early, by speculative switching). Virtual credits
// are not restored: the quantum still occupies the downstream buffer.
//
//loft:hotpath
func (t *Table) ClearBusy(s uint64) {
	p := t.ring(s)
	if !t.slots[p].busy {
		panic(fmt.Sprintf("lsf: clearing idle slot %d on %s", s, t.name))
	}
	t.slots[p].busy = false
	t.slots[p].owner = Owner{}
	t.busyCount--
	t.version++
}

// BusyAt reports the owner of the slot at absolute time s.
//
//loft:hotpath
func (t *Table) BusyAt(s uint64) (Owner, bool) {
	p := t.ring(s)
	return t.slots[p].owner, t.slots[p].busy
}

// CreditAt returns the virtual credit of the slot at absolute time s
// (diagnostics and tests).
func (t *Table) CreditAt(s uint64) int { return t.slots[t.ring(s)].credit }

// FirstScheduled returns the earliest booked slot in the window, if any.
// The LOFT data router uses it to classify a forwarded quantum as in-order
// (→ non-speculative buffer) or out-of-order (→ speculative buffer).
//
//loft:hotpath
func (t *Table) FirstScheduled() (Owner, uint64, bool) {
	if t.busyCount == 0 {
		return Owner{}, 0, false
	}
	for idx := t.cp; idx < t.wt; idx++ {
		if t.slots[idx].busy {
			return t.slots[idx].owner, t.now + uint64(idx-t.cp), true
		}
	}
	for idx := 0; idx < t.cp; idx++ {
		if t.slots[idx].busy {
			return t.slots[idx].owner, t.now + uint64(idx+t.wt-t.cp), true
		}
	}
	return Owner{}, 0, false
}

// AllIdle reports whether no slot is booked (§4.3.2 reset precondition).
func (t *Table) AllIdle() bool { return t.busyCount == 0 }

// Dirty reports whether any scheduling request touched the table since the
// last reset; pristine tables need no reset.
func (t *Table) Dirty() bool { return t.dirty }

// Version returns the state-change counter. A Request denied at version v
// cannot succeed until Version() != v; schedulers use this to avoid
// busy-wait retries.
func (t *Table) Version() uint64 { return t.version }

// Outstanding returns booked-minus-returned virtual credits. A local status
// reset is only safe at zero (no returns in flight).
func (t *Table) Outstanding() int { return t.outstanding }

// Reset performs the local status reset of §4.3.2: CP, HF ← 0; for every
// flow IF ← HF and C ← R; every slot's virtual credit ← BN. The caller must
// have verified the trigger conditions (AllIdle, downstream buffer empty,
// Outstanding() == 0).
func (t *Table) Reset() {
	t.cp = 0
	for i := range t.slots {
		t.slots[i] = slotState{credit: t.p.BufferQuanta}
	}
	for i := range t.skipped {
		t.skipped[i] = 0
	}
	for _, st := range t.flowList {
		st.ifr = 0
		st.c = st.r
	}
	t.outstanding = 0
	t.busyCount = 0
	t.lastZero = -1
	t.dirty = false
	t.version++
	t.stats.Resets++
	if t.probe != nil {
		t.emit(probe.KindLocalReset, -1, 0, 0)
	}
	if t.aud != nil {
		t.aud.AuditReset()
	}
}

// FlowState reports a flow's (IF, C, R) for tests and diagnostics.
func (t *Table) FlowState(id flit.FlowID) (ifr, c, r int, ok bool) {
	st := t.flow(id)
	if st == nil {
		return 0, 0, 0, false
	}
	return st.ifr, st.c, st.r, true
}

// Skipped returns skipped(f) for tests and diagnostics.
func (t *Table) Skipped(f int) int { return t.skipped[f] }

// WindowSlots returns WT.
func (t *Table) WindowSlots() int { return t.wt }

// BookedSlots returns the number of busy slots in the window (reservation
// table fill; exported for the probe layer's gauges).
func (t *Table) BookedSlots() int { return t.busyCount }

// Occupancy returns the booked fraction of the live reservation window in
// [0,1] — the table-fill figure the probe gauges and the perfmon
// queue-occupancy gauges both report.
func (t *Table) Occupancy() float64 { return float64(t.busyCount) / float64(t.wt) }

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// VerifyZero recomputes the last zero-credit offset by scan and panics on
// divergence from the incremental lastZero (test/debug hook).
func (t *Table) VerifyZero() {
	want := -1
	for i := t.wt - 1; i >= 0; i-- {
		if t.slots[(t.cp+i)%t.wt].credit <= 0 {
			want = i
			break
		}
	}
	if want != t.lastZero {
		panic(fmt.Sprintf("lsf: lastZero=%d, scan says %d on %s (outstanding=%d)", t.lastZero, want, t.name, t.outstanding))
	}
}
