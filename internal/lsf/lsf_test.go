package lsf

import (
	"testing"
	"testing/quick"

	"loft/internal/flit"
)

func newTestTable(t *testing.T, f, wf, bn int) *Table {
	t.Helper()
	return NewTable("test", Params{SlotsPerFrame: f, Frames: wf, BufferQuanta: bn, Strict: true})
}

func newYieldTable(t *testing.T, f, wf, bn int) *Table {
	t.Helper()
	return NewTable("yield", Params{SlotsPerFrame: f, Frames: wf, BufferQuanta: bn, Strict: true, Yield: true})
}

func TestParamsValidate(t *testing.T) {
	cases := []struct {
		name string
		p    Params
		ok   bool
	}{
		{"paper", Params{SlotsPerFrame: 128, Frames: 2, BufferQuanta: 128}, true},
		{"zero frame", Params{SlotsPerFrame: 0, Frames: 2, BufferQuanta: 4}, false},
		{"window 1", Params{SlotsPerFrame: 4, Frames: 1, BufferQuanta: 4}, false},
		{"small buffer", Params{SlotsPerFrame: 8, Frames: 2, BufferQuanta: 7}, false},
		{"buffer equals frame", Params{SlotsPerFrame: 8, Frames: 2, BufferQuanta: 8}, true},
	}
	for _, c := range cases {
		if err := c.p.Validate(); (err == nil) != c.ok {
			t.Errorf("%s: Validate() = %v, want ok=%v", c.name, err, c.ok)
		}
	}
}

func TestNewTableInitialState(t *testing.T) {
	tb := newTestTable(t, 4, 4, 4)
	if tb.WindowSlots() != 16 {
		t.Fatalf("WT = %d, want 16", tb.WindowSlots())
	}
	if tb.HeadFrame() != 0 {
		t.Fatalf("head frame = %d, want 0", tb.HeadFrame())
	}
	for s := uint64(0); s < 16; s++ {
		if got := tb.CreditAt(s); got != 4 {
			t.Fatalf("initial credit at %d = %d, want 4", s, got)
		}
		if _, busy := tb.BusyAt(s); busy {
			t.Fatalf("slot %d busy at init", s)
		}
	}
}

func TestAddFlowAdmission(t *testing.T) {
	tb := newTestTable(t, 8, 2, 8)
	if err := tb.AddFlow(1, 5); err != nil {
		t.Fatalf("AddFlow(1,5): %v", err)
	}
	if err := tb.AddFlow(1, 1); err == nil {
		t.Fatal("duplicate AddFlow accepted")
	}
	if err := tb.AddFlow(2, 4); err == nil {
		t.Fatal("ΣR > F accepted")
	}
	if err := tb.AddFlow(2, 3); err != nil {
		t.Fatalf("AddFlow(2,3): %v", err)
	}
	if err := tb.AddFlow(3, 0); err == nil {
		t.Fatal("zero reservation accepted")
	}
	if tb.Reservation(1) != 5 || tb.Reservation(2) != 3 || tb.Reservation(99) != 0 {
		t.Fatal("Reservation() mismatch")
	}
}

func TestRequestBooksEarliestValidSlot(t *testing.T) {
	tb := newTestTable(t, 8, 2, 8)
	if err := tb.AddFlow(7, 4); err != nil {
		t.Fatal(err)
	}
	slot, ok := tb.Request(7, 0, 0)
	if !ok || slot != 1 {
		t.Fatalf("first booking = (%d,%v), want slot 1 (head-frame scan starts at CP+1)", slot, ok)
	}
	if owner, busy := tb.BusyAt(1); !busy || owner != (Owner{Flow: 7, Quantum: 0}) {
		t.Fatalf("slot 1 owner = %+v busy=%v", owner, busy)
	}
	// Cumulative credit semantics: every slot from the booking onward lost
	// one credit; slot 0 (current) is untouched.
	if tb.CreditAt(0) != 8 {
		t.Fatalf("credit at 0 = %d, want 8", tb.CreditAt(0))
	}
	for s := uint64(1); s < 16; s++ {
		if tb.CreditAt(s) != 7 {
			t.Fatalf("credit at %d = %d, want 7", s, tb.CreditAt(s))
		}
	}
	slot2, ok := tb.Request(7, 1, 0)
	if !ok || slot2 != 2 {
		t.Fatalf("second booking = (%d,%v), want slot 2", slot2, ok)
	}
}

func TestRequestHonorsMinSlot(t *testing.T) {
	tb := newTestTable(t, 8, 2, 8)
	if err := tb.AddFlow(1, 8); err != nil {
		t.Fatal(err)
	}
	slot, ok := tb.Request(1, 0, 5)
	if !ok || slot != 5 {
		t.Fatalf("booking with minSlot=5 = (%d,%v), want slot 5", slot, ok)
	}
}

func TestRequestSkipsBusySlots(t *testing.T) {
	tb := newTestTable(t, 8, 2, 8)
	if err := tb.AddFlow(1, 4); err != nil {
		t.Fatal(err)
	}
	if err := tb.AddFlow(2, 4); err != nil {
		t.Fatal(err)
	}
	s1, _ := tb.Request(1, 0, 0)
	s2, _ := tb.Request(2, 0, 0)
	if s1 == s2 {
		t.Fatalf("two flows booked the same slot %d", s1)
	}
	if s1 != 1 || s2 != 2 {
		t.Fatalf("bookings = %d,%d, want 1,2", s1, s2)
	}
}

func TestReservationExhaustionAdvancesFrames(t *testing.T) {
	tb := newTestTable(t, 4, 4, 4)
	if err := tb.AddFlow(1, 2); err != nil {
		t.Fatal(err)
	}
	// Two bookings use up the head-frame reservation.
	for q := uint64(0); q < 2; q++ {
		if _, ok := tb.Request(1, q, 0); !ok {
			t.Fatalf("booking %d failed", q)
		}
	}
	ifr, c, _, _ := tb.FlowState(1)
	if ifr != 0 || c != 0 {
		t.Fatalf("state after head-frame exhaustion: IF=%d C=%d, want 0,0", ifr, c)
	}
	// With no other active flow to yield to, the third quantum advances
	// into frame 1 and books there.
	slot, ok := tb.Request(1, 2, 0)
	if !ok {
		t.Fatal("third booking throttled unexpectedly")
	}
	if slot < 4 {
		t.Fatalf("third booking at slot %d, want a later frame (>=4)", slot)
	}
	if gotIF, _, _, _ := tb.FlowState(1); gotIF != 1 {
		t.Fatalf("IF = %d after frame advance, want 1", gotIF)
	}
}

func TestThrottleWhenWindowExhausted(t *testing.T) {
	tb := newTestTable(t, 4, 2, 4)
	if err := tb.AddFlow(1, 2); err != nil {
		t.Fatal(err)
	}
	booked := 0
	for q := uint64(0); q < 10; q++ {
		slot, ok := tb.Request(1, q, 0)
		if !ok {
			break
		}
		booked++
		// Prompt downstream: forward and return the credit immediately so
		// condition (1) never interferes with the reservation accounting.
		tb.ClearBusy(slot)
		tb.ReturnCredit(slot + 1)
	}
	// WF=2 frames × R=2 quanta = at most 4 bookings before throttling.
	if booked != 4 {
		t.Fatalf("booked %d quanta before throttle, want 4", booked)
	}
	if _, ok := tb.Request(1, 99, 0); ok {
		t.Fatal("request succeeded while window exhausted")
	}
	if tb.Stats().Throttled == 0 {
		t.Fatal("throttle not counted")
	}
}

func TestTickAdvancesHeadFrameAndReplenishes(t *testing.T) {
	tb := newTestTable(t, 4, 2, 4)
	if err := tb.AddFlow(1, 2); err != nil {
		t.Fatal(err)
	}
	for q := uint64(0); q < 4; q++ {
		slot, ok := tb.Request(1, q, 0)
		if !ok {
			t.Fatalf("booking %d failed", q)
		}
		tb.ClearBusy(slot)
		tb.ReturnCredit(slot + 1)
	}
	if _, ok := tb.Request(1, 4, 0); ok {
		t.Fatal("expected throttle before frame advance")
	}
	// Tick across the head-frame boundary: 4 ticks.
	for i := 0; i < 4; i++ {
		tb.Tick()
	}
	if tb.HeadFrame() != 1 {
		t.Fatalf("head frame = %d after F ticks, want 1", tb.HeadFrame())
	}
	// The recycled frame 0 is a fresh future frame again: the next request
	// advances into it with a replenished reservation and succeeds.
	if _, ok := tb.Request(1, 4, 0); !ok {
		t.Fatal("request still throttled after frame recycle")
	}
	if ifr, c, r, _ := tb.FlowState(1); ifr != 0 || c != r-1 {
		t.Fatalf("flow state after recycle booking: IF=%d C=%d R=%d, want IF=0 C=R-1", ifr, c, r)
	}
}

func TestTickRecyclesSlotState(t *testing.T) {
	tb := newTestTable(t, 4, 2, 4)
	if err := tb.AddFlow(1, 4); err != nil {
		t.Fatal(err)
	}
	slot, ok := tb.Request(1, 0, 0)
	if !ok || slot != 1 {
		t.Fatalf("booking = (%d,%v)", slot, ok)
	}
	tb.Tick() // now=1, booked slot is current
	tb.Tick() // now=2, booked slot expired without being cleared
	if tb.NowSlot() != 2 {
		t.Fatalf("NowSlot = %d, want 2", tb.NowSlot())
	}
	// The expired slot reappears at the window end: time 1 + WT(8) = 9.
	if _, busy := tb.BusyAt(9); busy {
		t.Fatal("recycled slot still busy")
	}
	// Its credit inherits the cumulative window-end value (3: one quantum
	// outstanding against a 4-quantum buffer).
	if got := tb.CreditAt(9); got != 3 {
		t.Fatalf("recycled slot credit = %d, want 3", got)
	}
}

func TestReturnCreditRestoresFromTag(t *testing.T) {
	tb := newTestTable(t, 8, 2, 8)
	if err := tb.AddFlow(1, 8); err != nil {
		t.Fatal(err)
	}
	slot, _ := tb.Request(1, 0, 3) // books slot 3
	if slot != 3 {
		t.Fatalf("booked %d, want 3", slot)
	}
	tb.ReturnCredit(6) // downstream departure booked at slot 6
	for s := uint64(1); s < 6; s++ {
		want := 7
		if s < 3 {
			want = 8
		}
		if tb.CreditAt(s) != want {
			t.Fatalf("credit at %d = %d, want %d", s, tb.CreditAt(s), want)
		}
	}
	for s := uint64(6); s < 16; s++ {
		if tb.CreditAt(s) != 8 {
			t.Fatalf("credit at %d = %d, want 8", s, tb.CreditAt(s))
		}
	}
	if tb.Outstanding() != 0 {
		t.Fatalf("outstanding = %d, want 0", tb.Outstanding())
	}
}

func TestReturnCreditPastTagRestoresWholeWindow(t *testing.T) {
	tb := newTestTable(t, 8, 2, 8)
	if err := tb.AddFlow(1, 8); err != nil {
		t.Fatal(err)
	}
	tb.Request(1, 0, 0)
	for i := 0; i < 4; i++ {
		tb.Tick()
	}
	tb.ReturnCredit(2) // tag now in the past
	for s := tb.NowSlot(); s < tb.NowSlot()+16; s++ {
		if tb.CreditAt(s) != 8 {
			t.Fatalf("credit at %d = %d, want 8", s, tb.CreditAt(s))
		}
	}
}

func TestOverReturnPanics(t *testing.T) {
	tb := newTestTable(t, 8, 2, 8)
	if err := tb.AddFlow(1, 8); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on credit over-return")
		}
	}()
	tb.ReturnCredit(1)
}

// TestOutputSchedulingAnomalyFixed replays the §4.2 example: F=4, WF=4,
// 4-flit input buffer, two flows with R=2. An aggressive flow exhausts its
// head-frame share while a moderate flow is active; when the aggressor
// tries to book into future frames, the yield condition blocks it (the
// eventual buffer space must cover the moderate's unspent reservation), the
// yielded reservation is recorded in skipped, and the moderate's later
// head-frame booking proceeds without the "silently overbooked buffer" of
// the anomaly — the table is strict, so a negative credit would panic.
func TestOutputSchedulingAnomalyFixed(t *testing.T) {
	tb := newYieldTable(t, 4, 4, 4)
	if err := tb.AddFlow(1, 2); err != nil { // flow_ij, aggressive
		t.Fatal(err)
	}
	if err := tb.AddFlow(2, 2); err != nil { // flow_mn, moderate
		t.Fatal(err)
	}
	// The moderate flow books one quantum (becoming active, C=1 left).
	if _, ok := tb.Request(2, 0, 0); !ok {
		t.Fatal("moderate booking failed")
	}
	// flow_ij books its full head-frame share.
	for q := uint64(0); q < 2; q++ {
		if _, ok := tb.Request(1, q, 0); !ok {
			t.Fatalf("aggressor booking %d failed", q)
		}
	}
	// A third aggressive quantum must not claim the buffer space the
	// moderate flow's remaining head-frame reservation needs: eventual
	// credit is 4-3=1, not more than the moderate's C=1, so frame 1 is
	// blocked and the aggressor yields (recorded in skipped).
	if _, ok := tb.Request(1, 2, 0); ok {
		t.Fatal("aggressor booked into frame 1 over the moderate's claim")
	}
	if tb.Skipped(1) != 2 {
		t.Fatalf("skipped(1) = %d, want 2 (yielded reservation)", tb.Skipped(1))
	}
	if tb.Stats().CondBlocks == 0 {
		t.Fatal("yield condition never blocked")
	}
	// The moderate flow books its remaining head-frame quantum safely.
	if _, ok := tb.Request(2, 1, 0); !ok {
		t.Fatal("moderate flow blocked from head frame")
	}
	for s := tb.NowSlot(); s < tb.NowSlot()+16; s++ {
		if tb.CreditAt(s) < 0 {
			t.Fatalf("negative credit at %d", s)
		}
	}
}

// TestSafetyCheckDeniesOverbooking drives bookings until the downstream
// buffer is fully committed and verifies further bookings are denied rather
// than driving any slot's credit negative (the constructive Theorem I
// enforcement).
func TestSafetyCheckDeniesOverbooking(t *testing.T) {
	tb := newTestTable(t, 4, 2, 4)
	if err := tb.AddFlow(1, 4); err != nil {
		t.Fatal(err)
	}
	booked := 0
	for q := uint64(0); q < 12; q++ {
		if _, ok := tb.Request(1, q, 0); ok {
			booked++
		}
	}
	if booked != 4 {
		t.Fatalf("booked %d quanta against a 4-quantum buffer, want 4", booked)
	}
	for s := tb.NowSlot(); s < tb.NowSlot()+8; s++ {
		if tb.CreditAt(s) < 0 {
			t.Fatalf("negative credit at %d", s)
		}
	}
}

func TestClearBusy(t *testing.T) {
	tb := newTestTable(t, 8, 2, 8)
	if err := tb.AddFlow(1, 4); err != nil {
		t.Fatal(err)
	}
	slot, _ := tb.Request(1, 0, 0)
	tb.ClearBusy(slot)
	if _, busy := tb.BusyAt(slot); busy {
		t.Fatal("slot still busy after ClearBusy")
	}
	// Credits must NOT be restored by ClearBusy.
	if tb.CreditAt(slot) != 7 {
		t.Fatalf("credit at cleared slot = %d, want 7", tb.CreditAt(slot))
	}
	defer func() {
		if recover() == nil {
			t.Fatal("double ClearBusy must panic")
		}
	}()
	tb.ClearBusy(slot)
}

func TestFirstScheduled(t *testing.T) {
	tb := newTestTable(t, 8, 2, 8)
	if err := tb.AddFlow(1, 8); err != nil {
		t.Fatal(err)
	}
	if _, _, ok := tb.FirstScheduled(); ok {
		t.Fatal("FirstScheduled on empty table")
	}
	s1, _ := tb.Request(1, 0, 4)
	s2, _ := tb.Request(1, 1, 2)
	if s2 >= s1 {
		t.Fatalf("expected second booking earlier: %d vs %d", s2, s1)
	}
	owner, at, ok := tb.FirstScheduled()
	if !ok || at != s2 || owner.Quantum != 1 {
		t.Fatalf("FirstScheduled = %+v @%d %v, want quantum 1 @%d", owner, at, ok, s2)
	}
}

func TestLocalStatusReset(t *testing.T) {
	tb := newTestTable(t, 4, 2, 4)
	if err := tb.AddFlow(1, 2); err != nil {
		t.Fatal(err)
	}
	for q := uint64(0); q < 4; q++ {
		if slot, ok := tb.Request(1, q, 0); ok {
			tb.ClearBusy(slot)
			tb.ReturnCredit(slot + 1)
		}
	}
	for i := 0; i < 3; i++ {
		tb.Tick()
	}
	if !tb.AllIdle() || tb.Outstanding() != 0 {
		t.Fatalf("precondition: idle=%v outstanding=%d", tb.AllIdle(), tb.Outstanding())
	}
	tb.Reset()
	if tb.HeadFrame() != 0 {
		t.Fatalf("head frame after reset = %d", tb.HeadFrame())
	}
	ifr, c, r, _ := tb.FlowState(1)
	if ifr != 0 || c != r {
		t.Fatalf("flow state after reset: IF=%d C=%d R=%d", ifr, c, r)
	}
	for s := tb.NowSlot(); s < tb.NowSlot()+8; s++ {
		if tb.CreditAt(s) != 4 {
			t.Fatalf("credit %d after reset, want 4", tb.CreditAt(s))
		}
	}
	// A full fresh window is bookable again.
	booked := 0
	for q := uint64(10); q < 20; q++ {
		slot, ok := tb.Request(1, q, 0)
		if !ok {
			continue
		}
		booked++
		tb.ClearBusy(slot)
		tb.ReturnCredit(slot + 1)
	}
	if booked != 4 {
		t.Fatalf("booked %d after reset, want 4", booked)
	}
	if tb.Stats().Resets != 1 {
		t.Fatalf("reset count = %d", tb.Stats().Resets)
	}
}

func TestPerFlowPerFrameBookingNeverExceedsR(t *testing.T) {
	tb := newTestTable(t, 8, 3, 8)
	if err := tb.AddFlow(1, 3); err != nil {
		t.Fatal(err)
	}
	if err := tb.AddFlow(2, 5); err != nil {
		t.Fatal(err)
	}
	count := map[flit.FlowID]map[int]int{1: {}, 2: {}}
	q := uint64(0)
	for i := 0; i < 40; i++ {
		for _, f := range []flit.FlowID{1, 2} {
			if slot, ok := tb.Request(f, q, 0); ok {
				frame := int(slot%uint64(tb.WindowSlots())) / 8
				count[f][frame]++
				q++
			}
		}
	}
	for f, frames := range count {
		r := tb.Reservation(f)
		for frame, n := range frames {
			if n > r {
				t.Fatalf("flow %d booked %d quanta in frame %d, R=%d", f, n, frame, r)
			}
		}
	}
}

// quickOp drives the property-based harness below.
type quickOp struct {
	Kind  uint8
	Flow  uint8
	Delta uint8
}

// TestQuickTheoremI runs random request/tick sequences against a simulated
// downstream that books onward departures a bounded delay after each
// booking, returning virtual credits with correct tags. The table runs in
// strict mode: any Theorem I violation (negative credit or credit above
// capacity) panics and fails the test. We additionally check busy-slot
// conservation against outstanding bookings.
func TestQuickTheoremI(t *testing.T) {
	check := func(ops []quickOp) (ok bool) {
		defer func() {
			if r := recover(); r != nil {
				t.Logf("invariant panic: %v", r)
				ok = false
			}
		}()
		const F, WF, BN = 8, 3, 8
		tb := NewTable("quick", Params{SlotsPerFrame: F, Frames: WF, BufferQuanta: BN, Strict: true})
		flows := []flit.FlowID{1, 2, 3}
		if err := tb.AddFlow(1, 3); err != nil {
			return false
		}
		if err := tb.AddFlow(2, 3); err != nil {
			return false
		}
		if err := tb.AddFlow(3, 2); err != nil {
			return false
		}
		type pending struct{ slot uint64 }
		var inflight []pending
		q := uint64(0)
		for _, op := range ops {
			switch op.Kind % 3 {
			case 0: // request
				f := flows[int(op.Flow)%len(flows)]
				if slot, ok := tb.Request(f, q, tb.NowSlot()+uint64(op.Delta%4)); ok {
					q++
					inflight = append(inflight, pending{slot: slot})
				}
			case 1: // downstream books onward: return credit
				if len(inflight) > 0 {
					p := inflight[0]
					inflight = inflight[1:]
					tag := p.slot + 1 + uint64(op.Delta%4)
					// Keep the tag within the live window.
					if tag >= tb.NowSlot()+uint64(tb.WindowSlots()) {
						tag = tb.NowSlot() + uint64(tb.WindowSlots()) - 1
					}
					tb.ReturnCredit(tag)
				}
			case 2: // time passes
				for i := 0; i <= int(op.Delta%3); i++ {
					tb.Tick()
				}
			}
			// Invariants beyond the strict-mode panics. (Busy slots are NOT
			// bounded by Outstanding: a virtual credit legitimately returns
			// as soon as the downstream books the onward departure, which
			// can precede the local departure slot.)
			for s := tb.NowSlot(); s < tb.NowSlot()+uint64(tb.WindowSlots()); s++ {
				c := tb.CreditAt(s)
				if c < 0 || c > BN {
					t.Logf("credit %d out of range at slot %d", c, s)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickFrameShareIsolation checks, under random interleavings, that a
// flow can always book at least one quantum into a fresh window after the
// competitors stopped and all credits returned — i.e. aggressors cannot
// permanently exhaust a moderate flow's reservation.
func TestQuickFrameShareIsolation(t *testing.T) {
	check := func(aggrBursts uint8) bool {
		const F, WF, BN = 8, 2, 8
		tb := NewTable("iso", Params{SlotsPerFrame: F, Frames: WF, BufferQuanta: BN, Strict: true})
		if err := tb.AddFlow(1, 4); err != nil {
			return false
		}
		if err := tb.AddFlow(2, 4); err != nil {
			return false
		}
		q := uint64(0)
		var booked []uint64
		for i := 0; i < int(aggrBursts%32)+1; i++ {
			if slot, ok := tb.Request(1, q, 0); ok {
				booked = append(booked, slot)
				q++
			}
		}
		// Drain: downstream forwards everything promptly.
		for _, s := range booked {
			tb.ClearBusy(s)
			tb.ReturnCredit(s + 1)
		}
		// Advance one full frame so the head recycles.
		for i := 0; i < F; i++ {
			tb.Tick()
		}
		_, ok := tb.Request(2, 1000, 0)
		return ok
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickReferenceCredits replays random operation sequences against a
// naive reference implementation of the cumulative credit ledger (recompute
// from the full event history each step) and requires the table's live
// window to agree exactly.
func TestQuickReferenceCredits(t *testing.T) {
	type op struct {
		Kind  uint8
		Delta uint8
	}
	check := func(ops []op) bool {
		const F, WF, BN = 6, 2, 8
		tb := NewTable("ref", Params{SlotsPerFrame: F, Frames: WF, BufferQuanta: BN, Strict: true})
		if err := tb.AddFlow(1, 4); err != nil {
			return false
		}
		// Reference event history in absolute slot time.
		var bookings []uint64 // booked departure slots
		var returns []uint64  // return tags
		var booked []uint64   // outstanding (for generating valid returns)
		q := uint64(0)
		for _, o := range ops {
			switch o.Kind % 3 {
			case 0:
				if slot, ok := tb.Request(1, q, tb.NowSlot()+uint64(o.Delta%3)); ok {
					bookings = append(bookings, slot)
					booked = append(booked, slot)
					q++
				}
			case 1:
				if len(booked) > 0 {
					s := booked[0]
					booked = booked[1:]
					tag := s + 1 + uint64(o.Delta%3)
					if tag >= tb.NowSlot()+uint64(tb.WindowSlots()) {
						tag = tb.NowSlot() + uint64(tb.WindowSlots()) - 1
					}
					tb.ReturnCredit(tag)
					returns = append(returns, tag)
				}
			case 2:
				tb.Tick()
			}
			// Reference: credit(s) = BN − #bookings ≤ s + #returns ≤ s.
			for s := tb.NowSlot(); s < tb.NowSlot()+uint64(tb.WindowSlots()); s++ {
				want := BN
				for _, b := range bookings {
					if b <= s {
						want--
					}
				}
				for _, r := range returns {
					if r <= s {
						want++
					}
				}
				if got := tb.CreditAt(s); got != want {
					t.Logf("slot %d: table %d, reference %d", s, got, want)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickDenseFlowTableEquivalence guards the dense-slice flow table
// refactor: it drives random Request/Tick/credit-return traces over a sparse
// flow-id universe (exercising slice growth and holes) against a map-backed
// shadow of the pre-refactor representation plus a cumulative credit ledger,
// and requires every observable — membership, reservations, admission
// decisions, outstanding count, the live credit window — to agree exactly.
func TestQuickDenseFlowTableEquivalence(t *testing.T) {
	type op struct {
		Kind  uint8
		Flow  uint8
		Delta uint8
	}
	check := func(ops []op) bool {
		const F, WF, BN = 8, 2, 8
		tb := NewTable("dense", Params{SlotsPerFrame: F, Frames: WF, BufferQuanta: BN, Strict: true})
		// Shadow of the old representation: flows keyed by map.
		shadow := map[flit.FlowID]int{} // id -> reservation
		sumR := 0
		// Cumulative credit ledger in absolute slot time.
		var bookings, returns []uint64
		var booked []uint64
		outstanding := 0
		q := uint64(0)
		// Sparse ids force the dense table to grow past holes.
		ids := []flit.FlowID{0, 3, 7, 12, 31}
		for _, o := range ops {
			id := ids[int(o.Flow)%len(ids)]
			switch o.Kind % 4 {
			case 0: // register
				r := int(o.Delta%3) + 1
				err := tb.AddFlow(id, r)
				_, dup := shadow[id]
				if wantErr := dup || sumR+r > F; wantErr != (err != nil) {
					t.Logf("AddFlow(%d,%d): table err=%v, shadow wantErr=%v", id, r, err, wantErr)
					return false
				}
				if err == nil {
					shadow[id] = r
					sumR += r
				}
			case 1: // request (only registered flows may request)
				if _, ok := shadow[id]; !ok {
					continue
				}
				if slot, ok := tb.Request(id, q, tb.NowSlot()+uint64(o.Delta%3)); ok {
					bookings = append(bookings, slot)
					booked = append(booked, slot)
					outstanding++
					q++
				}
			case 2: // downstream books onward: credit returns
				if len(booked) > 0 {
					s := booked[0]
					booked = booked[1:]
					tag := s + 1 + uint64(o.Delta%3)
					if tag >= tb.NowSlot()+uint64(tb.WindowSlots()) {
						tag = tb.NowSlot() + uint64(tb.WindowSlots()) - 1
					}
					tb.ReturnCredit(tag)
					returns = append(returns, tag)
					outstanding--
				}
			case 3: // time passes
				tb.Tick()
			}
			// Flow-table observables across the whole id universe, plus ids
			// outside it (never registered, beyond the slice, negative).
			for _, pid := range append([]flit.FlowID{-1, 1, 1 << 20}, ids...) {
				r, registered := shadow[pid]
				if tb.HasFlow(pid) != registered {
					t.Logf("HasFlow(%d) = %v, shadow %v", pid, !registered, registered)
					return false
				}
				if got := tb.Reservation(pid); got != r {
					t.Logf("Reservation(%d) = %d, shadow %d", pid, got, r)
					return false
				}
				_, _, fr, ok := tb.FlowState(pid)
				if ok != registered || fr != r {
					t.Logf("FlowState(%d) = (r=%d, ok=%v), shadow (r=%d, ok=%v)", pid, fr, ok, r, registered)
					return false
				}
			}
			if tb.Outstanding() != outstanding {
				t.Logf("Outstanding() = %d, ledger %d", tb.Outstanding(), outstanding)
				return false
			}
			// Credit window vs the cumulative ledger (exercises the inlined
			// suffix walks in consumeCredits/ReturnCredit).
			for s := tb.NowSlot(); s < tb.NowSlot()+uint64(tb.WindowSlots()); s++ {
				want := BN
				for _, b := range bookings {
					if b <= s {
						want--
					}
				}
				for _, r := range returns {
					if r <= s {
						want++
					}
				}
				if got := tb.CreditAt(s); got != want {
					t.Logf("slot %d: credit %d, ledger %d", s, got, want)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
