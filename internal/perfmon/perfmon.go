// Package perfmon is the simulator's self-profiler: stage-level wall-time
// attribution for the router pipeline and phase-level telemetry for the
// parallel cycle engine.
//
// The design mirrors the probe/audit observability layers: components hold a
// possibly-nil handle (*Timer per node, *EngineTimer on the ParallelKernel,
// *Monitor on the network) and every call into it is dominated by a nil
// check, which the hookguard analyzer enforces. A nil handle therefore costs
// one predictable branch per call site — the simulator is provably unchanged
// when profiling is off.
//
// When profiling is on, cost is bounded by sampling: timers read the
// monotonic clock only on cycles where now % SampleEvery == 0, and
// accumulate into fixed-size per-owner arrays (no locks, no allocations —
// the steady state stays zero-alloc with a monitor attached). Each Timer is
// owned by exactly one node, so under the parallel engine the accumulators
// are shard-local; the coordinator aggregates them only at snapshot time,
// after a barrier, which keeps the whole layer race-free without atomics.
//
// perfmon is deliberately absent from the determinism analyzer's package
// lists (like internal/runenv): it is the one layer below the CLIs that
// reads wall time. Nothing it measures feeds back into simulation state, so
// profiled runs stay byte-identical to bare runs.
package perfmon

import (
	"runtime"
	"time"
)

// Stage identifies one timed segment of a router pipeline cycle. The wire
// names are stable: they key perf.json stage entries, folded flamegraph
// frames and manifest metric names across runs.
type Stage uint8

const (
	// StageDrain is link/credit register draining at cycle start.
	StageDrain Stage = iota
	// StageFrame is per-slot reservation-table maintenance: LSF table
	// ticks, deferred credit returns, local status resets, verification.
	StageFrame
	// StageSwitch is switch arbitration and link traversal (forwardData
	// plus the NI's injection-link forward).
	StageSwitch
	// StageBooking is packet generation plus injection-link booking (the
	// LSF Request path on the injection table).
	StageBooking
	// StageLookahead is the look-ahead router: VC arbitration and output
	// reservation-table booking for in-flight look-ahead flits.
	StageLookahead
	// StageFlush writes per-cycle accumulators to the output registers.
	StageFlush
	// StageVCAlloc is GSF virtual-channel allocation.
	StageVCAlloc
	// StageGSFFrame is the GSF global frame census and barrier countdown.
	StageGSFFrame
	// StageCommit is the serial cycle-commit work: staged-observation
	// replay, probe sampling and audit sweeps.
	StageCommit

	numStages
)

var stageNames = [numStages]string{
	"drain", "frame", "switch", "booking", "lookahead", "flush",
	"vcalloc", "gsf-frame", "commit",
}

// Name returns the stage's stable wire name.
func (s Stage) Name() string {
	if s < numStages {
		return stageNames[s]
	}
	return "unknown"
}

// Phase identifies one phase of a ParallelKernel cycle.
type Phase uint8

const (
	PhaseTick Phase = iota
	PhaseSerial
	PhaseUpdate

	numPhases
)

var phaseNames = [numPhases]string{"tick", "serial", "update"}

// DefaultSampleEvery is the default sampling period in cycles. At the
// simulator's typical ~100µs/cycle it keeps the enabled-mode clock-read
// overhead well under 1% while still collecting hundreds of sampled cycles
// from a short run.
const DefaultSampleEvery = 64

// Config parameterizes a Monitor.
type Config struct {
	// SampleEvery is the sampling period in cycles: timers read the clock
	// only when now % SampleEvery == 0. 0 means DefaultSampleEvery.
	SampleEvery uint64
	// Workers records the effective node-worker count (-jnode) for the
	// snapshot's host context. 0 means sequential.
	Workers int
}

// gauge is one registered occupancy/utilization gauge with its running
// sample statistics (sum/max over sampled cycles).
type gauge struct {
	name string
	fn   func() float64
	sum  float64
	max  float64
	n    uint64
}

// Monitor owns a run's profiling state: the monotonic time base, the
// sampling schedule, every per-owner Timer, the engine telemetry and the
// registered gauges. Construction and registration happen at network build
// time; during the run the monitor itself is touched only by the
// coordinator (OnCycle, once per cycle).
type Monitor struct {
	base    time.Time
	every   uint64
	workers int

	cycles  uint64
	sampled uint64
	started bool
	first   int64 // nanos of the first observed cycle
	last    int64 // nanos of the most recent observed cycle

	timers []*Timer
	engine *EngineTimer
	gauges []gauge
}

// New returns an enabled Monitor. A nil *Monitor is the disabled state:
// networks propagate nil handles and every instrumentation site reduces to
// one branch.
func New(cfg Config) *Monitor {
	every := cfg.SampleEvery
	if every == 0 {
		every = DefaultSampleEvery
	}
	return &Monitor{base: time.Now(), every: every, workers: cfg.Workers}
}

// SampleEvery returns the sampling period in cycles.
func (m *Monitor) SampleEvery() uint64 { return m.every }

// SetWorkers records the effective node-worker count for the snapshot's
// host context (networks call it when they select an engine).
func (m *Monitor) SetWorkers(w int) {
	if m == nil {
		return
	}
	if w > m.workers {
		m.workers = w
	}
}

// Timer allocates a stage timer owned by one component (one node, or the
// network's serial-commit path). Build-time only.
func (m *Monitor) Timer() *Timer {
	if m == nil {
		return nil
	}
	t := &Timer{base: m.base, every: m.every}
	m.timers = append(m.timers, t)
	return t
}

// Engine returns the monitor's engine timer sized for at least `workers`
// worker slots, creating or growing it as needed. Build-time only.
func (m *Monitor) Engine(workers int) *EngineTimer {
	if m == nil {
		return nil
	}
	if workers < 1 {
		workers = 1
	}
	if m.engine == nil {
		m.engine = &EngineTimer{base: m.base, every: m.every}
	}
	for len(m.engine.workers) < workers {
		m.engine.workers = append(m.engine.workers, workerSlot{})
	}
	return m.engine
}

// Gauge registers a named occupancy/utilization gauge polled on sampled
// cycles. fn runs on the coordinator (serial hook or sequential tick), so it
// may read shared network state; it must not allocate. Build-time only.
func (m *Monitor) Gauge(name string, fn func() float64) {
	if m == nil {
		return
	}
	m.gauges = append(m.gauges, gauge{name: name, fn: fn})
}

// OnCycle advances the monitor by one simulated cycle: it maintains the
// observed wall-time window and, on sampled cycles, polls the gauges. Call
// it exactly once per cycle from the coordinator (the serial commit hook
// under the parallel engine, the network tick otherwise). Call sites must
// nil-guard the monitor (hookguard-enforced sink).
func (m *Monitor) OnCycle(now uint64) {
	m.cycles++
	t := int64(time.Since(m.base))
	if !m.started {
		m.started = true
		m.first = t
	}
	m.last = t
	if now%m.every != 0 {
		return
	}
	m.sampled++
	for i := range m.gauges {
		g := &m.gauges[i]
		v := g.fn()
		g.sum += v
		if g.n == 0 || v > g.max {
			g.max = v
		}
		g.n++
	}
}

// Timer accumulates per-stage wall time for one owner. It is a split
// stopwatch: Begin arms it on sampled cycles, and each Lap attributes the
// time since the previous mark to one stage. All state is owner-local —
// under the parallel engine a node's timer lives and dies on that node's
// shard — so there is no synchronization and no allocation.
type Timer struct {
	base   time.Time
	every  uint64
	active bool
	mark   int64
	nanos  [numStages]uint64
	count  [numStages]uint64
}

// Begin arms the timer for this cycle when the cycle is sampled. Call sites
// must nil-guard the timer (hookguard-enforced sink).
func (t *Timer) Begin(now uint64) {
	if now%t.every != 0 {
		t.active = false
		return
	}
	t.active = true
	t.mark = int64(time.Since(t.base))
}

// Lap attributes the wall time since the previous mark to stage s and
// re-marks. A no-op when the cycle is not sampled. Call sites must
// nil-guard the timer (hookguard-enforced sink).
func (t *Timer) Lap(s Stage) {
	if !t.active {
		return
	}
	now := int64(time.Since(t.base))
	t.nanos[s] += uint64(now - t.mark)
	t.count[s]++
	t.mark = now
}

// workerSlot is one worker's busy-time accumulators, padded so adjacent
// workers never share a cache line.
type workerSlot struct {
	busy [numPhases]uint64
	n    [numPhases]uint64
	_    [128 - (numPhases*16)%128]byte
}

// EngineTimer is the ParallelKernel's telemetry: coordinator-side wall time
// per phase (tick dispatch, serial hooks, update dispatch) and per-worker
// busy time inside each dispatched phase. The coordinator writes `active`
// and `mark` strictly between barriers and workers read `active` only after
// the dispatch channel send, so the whole structure is race-free without
// atomics; per-worker slots are written only by their owning worker and
// read by the coordinator only after wg.Wait.
type EngineTimer struct {
	base    time.Time
	every   uint64
	active  bool
	mark    int64
	cycles  uint64 // sampled cycles
	wall    [numPhases]uint64
	workers []workerSlot
}

// CycleStart arms the engine timer when cycle `now` is sampled. The
// coordinator calls it before the first dispatch of the cycle. Call sites
// must nil-guard the timer (hookguard-enforced sink).
func (e *EngineTimer) CycleStart(now uint64) {
	if now%e.every != 0 {
		e.active = false
		return
	}
	e.active = true
	e.mark = int64(time.Since(e.base))
}

// PhaseDone attributes the coordinator wall time since the previous mark to
// phase p. The update phase closes the sampled cycle. Call sites must
// nil-guard the timer (hookguard-enforced sink).
func (e *EngineTimer) PhaseDone(p Phase) {
	if !e.active {
		return
	}
	now := int64(time.Since(e.base))
	e.wall[p] += uint64(now - e.mark)
	e.mark = now
	if p == PhaseUpdate {
		e.cycles++
	}
}

// WorkerStart returns a start mark for the calling worker's current phase,
// or -1 when the cycle is not sampled. Call sites must nil-guard the timer
// (hookguard-enforced sink).
func (e *EngineTimer) WorkerStart() int64 {
	if !e.active {
		return -1
	}
	return int64(time.Since(e.base))
}

// WorkerDone accumulates the calling worker's busy time for phase p since
// `start` (from WorkerStart; a no-op when start < 0). Call sites must
// nil-guard the timer (hookguard-enforced sink).
func (e *EngineTimer) WorkerDone(i int, p Phase, start int64) {
	if start < 0 || i >= len(e.workers) {
		return
	}
	w := &e.workers[i]
	w.busy[p] += uint64(int64(time.Since(e.base)) - start)
	w.n[p]++
}

// hostInfo captures the host-parallelism context at snapshot time.
func hostInfo(workers int) Host {
	return Host{
		NumCPU:     runtime.NumCPU(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Workers:    workers,
	}
}
