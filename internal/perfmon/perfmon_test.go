package perfmon

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestTimerAttributesSampledCyclesOnly(t *testing.T) {
	m := New(Config{SampleEvery: 4})
	tm := m.Timer()
	for now := uint64(0); now < 16; now++ {
		tm.Begin(now)
		tm.Lap(StageDrain)
		tm.Lap(StageBooking)
		m.OnCycle(now)
	}
	s := m.Snapshot()
	if s.Cycles != 16 || s.SampledCycles != 4 {
		t.Fatalf("cycles=%d sampled=%d, want 16,4", s.Cycles, s.SampledCycles)
	}
	byName := map[string]StageStat{}
	for _, st := range s.Stages {
		byName[st.Name] = st
	}
	for _, name := range []string{"drain", "booking"} {
		st, ok := byName[name]
		if !ok || st.Count != 4 {
			t.Fatalf("stage %s: %+v, want 4 laps (sampled cycles only)", name, st)
		}
	}
	if _, ok := byName["flush"]; ok {
		t.Fatal("untouched stage must not appear in the snapshot")
	}
}

func TestMonitorZeroAllocSteadyState(t *testing.T) {
	m := New(Config{SampleEvery: 2})
	backlog := 7
	m.Gauge("test.backlog", func() float64 { return float64(backlog) })
	tm := m.Timer()
	e := m.Engine(2)
	now := uint64(0)
	step := func() {
		e.CycleStart(now)
		start := e.WorkerStart()
		tm.Begin(now)
		tm.Lap(StageDrain)
		tm.Lap(StageSwitch)
		e.WorkerDone(0, PhaseTick, start)
		e.PhaseDone(PhaseTick)
		e.PhaseDone(PhaseSerial)
		e.PhaseDone(PhaseUpdate)
		m.OnCycle(now)
		now++
	}
	step() // warm gauge bookkeeping
	if avg := testing.AllocsPerRun(100, step); avg != 0 {
		t.Fatalf("steady-state step allocates %v times, want 0", avg)
	}
}

func TestEngineTelemetryAndMetrics(t *testing.T) {
	m := New(Config{SampleEvery: 1, Workers: 2})
	e := m.Engine(2)
	for now := uint64(0); now < 8; now++ {
		e.CycleStart(now)
		for w := 0; w < 2; w++ {
			start := e.WorkerStart()
			e.WorkerDone(w, PhaseTick, start)
		}
		e.PhaseDone(PhaseTick)
		e.PhaseDone(PhaseSerial)
		for w := 0; w < 2; w++ {
			start := e.WorkerStart()
			e.WorkerDone(w, PhaseUpdate, start)
		}
		e.PhaseDone(PhaseUpdate)
		m.OnCycle(now)
	}
	s := m.Snapshot()
	if s.Engine == nil || s.Engine.Workers != 2 || s.Engine.SampledCycles != 8 {
		t.Fatalf("engine stat: %+v", s.Engine)
	}
	if len(s.Engine.PerWorker) != 2 {
		t.Fatalf("per-worker stats: %+v", s.Engine.PerWorker)
	}
	if s.Host.Workers != 2 || s.Host.NumCPU < 1 || s.Host.GoMaxProcs < 1 {
		t.Fatalf("host context: %+v", s.Host)
	}
	mm := s.Metrics()
	if mm["perf sampled cycles"] != 8 {
		t.Fatalf("metrics: %v", mm)
	}
	if _, ok := mm["perf worker imbalance"]; !ok {
		t.Fatalf("metrics missing imbalance: %v", mm)
	}
}

func TestSnapshotRoundTripAndRender(t *testing.T) {
	m := New(Config{SampleEvery: 1, Workers: 2})
	tm := m.Timer()
	e := m.Engine(2)
	for now := uint64(0); now < 4; now++ {
		e.CycleStart(now)
		start := e.WorkerStart()
		tm.Begin(now)
		tm.Lap(StageBooking)
		tm.Lap(StageLookahead)
		e.WorkerDone(0, PhaseTick, start)
		e.PhaseDone(PhaseTick)
		e.PhaseDone(PhaseSerial)
		e.PhaseDone(PhaseUpdate)
		m.OnCycle(now)
	}
	s := m.Snapshot()

	dir := t.TempDir()
	data, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, SnapshotFile), data, 0o644); err != nil {
		t.Fatal(err)
	}
	// Dir-aware load.
	got, err := ReadSnapshot(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got.SampledCycles != s.SampledCycles || len(got.Stages) != len(s.Stages) {
		t.Fatalf("round trip mismatch: %+v vs %+v", got, s)
	}

	var txt bytes.Buffer
	got.WriteText(&txt)
	for _, want := range []string{"stage attribution", "booking", "WORKER", "shard imbalance"} {
		if !strings.Contains(txt.String(), want) {
			t.Fatalf("text report missing %q:\n%s", want, txt.String())
		}
	}

	var folded bytes.Buffer
	if err := got.WriteFolded(&folded); err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Split(strings.TrimSpace(folded.String()), "\n") {
		parts := strings.Split(line, " ")
		if len(parts) != 2 || !strings.Contains(parts[0], ";") {
			t.Fatalf("folded line %q is not `frames weight`", line)
		}
	}
	if !strings.Contains(folded.String(), "sim;node;booking ") {
		t.Fatalf("folded output missing booking frame:\n%s", folded.String())
	}
}

func TestDisabledMonitorIsInert(t *testing.T) {
	var m *Monitor
	if m.Snapshot() != nil || m.Timer() != nil || m.Engine(4) != nil {
		t.Fatal("nil monitor must propagate nil handles")
	}
	m.SetWorkers(4)
	m.Gauge("x", func() float64 { return 0 })
	var s *Snapshot
	if s.Metrics() != nil {
		t.Fatal("nil snapshot must yield nil metrics")
	}
}

func TestReadSnapshotRejectsWrongSchema(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, SnapshotFile)
	if err := os.WriteFile(path, []byte(`{"schema": 99}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadSnapshot(path); err == nil || !strings.Contains(err.Error(), "schema") {
		t.Fatalf("want schema error, got %v", err)
	}
}
