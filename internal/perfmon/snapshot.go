package perfmon

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
)

// SnapshotSchema versions perf.json. Bump on breaking changes to Snapshot.
const SnapshotSchema = 1

// SnapshotFile is the canonical perf.json basename inside run directories.
const SnapshotFile = "perf.json"

// Host is the host-parallelism context a profile was collected under —
// without it a shard-utilization report from a 1-CPU container reads like a
// scheduling bug instead of a hardware limit.
type Host struct {
	NumCPU     int `json:"num_cpu"`
	GoMaxProcs int `json:"gomaxprocs"`
	// Workers is the effective node-worker count (-jnode); 0 = sequential.
	Workers int `json:"workers,omitempty"`
}

// StageStat is one pipeline stage's aggregated attribution across all
// owners (all nodes plus the serial-commit timer).
type StageStat struct {
	Name  string `json:"name"`
	Nanos uint64 `json:"nanos"`
	Count uint64 `json:"count"`
}

// WorkerStat is one parallel-engine worker's busy time per phase.
type WorkerStat struct {
	Worker      int    `json:"worker"`
	TickNanos   uint64 `json:"tick_nanos"`
	UpdateNanos uint64 `json:"update_nanos"`
	Phases      uint64 `json:"phases"`
}

// EngineStat is the ParallelKernel telemetry: coordinator wall time per
// phase and per-worker busy time. Barrier wait for worker w is
// (TickWallNanos - w.TickNanos) + (UpdateWallNanos - w.UpdateNanos).
type EngineStat struct {
	Workers         int          `json:"workers"`
	SampledCycles   uint64       `json:"sampled_cycles"`
	TickWallNanos   uint64       `json:"tick_wall_nanos"`
	SerialWallNanos uint64       `json:"serial_wall_nanos"`
	UpdateWallNanos uint64       `json:"update_wall_nanos"`
	PerWorker       []WorkerStat `json:"per_worker"`
}

// GaugeStat is one gauge's statistics over the sampled cycles.
type GaugeStat struct {
	Name    string  `json:"name"`
	Avg     float64 `json:"avg"`
	Max     float64 `json:"max"`
	Samples uint64  `json:"samples"`
}

// Snapshot is the exportable profile: what perf.json holds, what the audit
// server serves on /perf, and what `lofttrace perf` renders. Field order is
// fixed and maps are avoided so the JSON encoding is deterministic given
// the same measurements.
type Snapshot struct {
	Schema        int         `json:"schema"`
	SampleEvery   uint64      `json:"sample_every"`
	Cycles        uint64      `json:"cycles"`
	SampledCycles uint64      `json:"sampled_cycles"`
	WallNanos     int64       `json:"wall_nanos"`
	Host          Host        `json:"host"`
	Stages        []StageStat `json:"stages"`
	Engine        *EngineStat `json:"engine,omitempty"`
	Gauges        []GaugeStat `json:"gauges,omitempty"`
}

// Snapshot aggregates every timer into an exportable profile. Safe to call
// mid-run only from the coordinator (serial hook or between Run calls):
// worker-slot reads are ordered by the kernel's wg.Wait barrier.
func (m *Monitor) Snapshot() *Snapshot {
	if m == nil {
		return nil
	}
	s := &Snapshot{
		Schema:        SnapshotSchema,
		SampleEvery:   m.every,
		Cycles:        m.cycles,
		SampledCycles: m.sampled,
		Host:          hostInfo(m.workers),
	}
	if m.started {
		s.WallNanos = m.last - m.first
	}
	var nanos, count [numStages]uint64
	for _, t := range m.timers {
		for i := Stage(0); i < numStages; i++ {
			nanos[i] += t.nanos[i]
			count[i] += t.count[i]
		}
	}
	for i := Stage(0); i < numStages; i++ {
		if count[i] == 0 {
			continue
		}
		s.Stages = append(s.Stages, StageStat{Name: i.Name(), Nanos: nanos[i], Count: count[i]})
	}
	if e := m.engine; e != nil && e.cycles > 0 {
		es := &EngineStat{
			Workers:         len(e.workers),
			SampledCycles:   e.cycles,
			TickWallNanos:   e.wall[PhaseTick],
			SerialWallNanos: e.wall[PhaseSerial],
			UpdateWallNanos: e.wall[PhaseUpdate],
		}
		for i := range e.workers {
			w := &e.workers[i]
			es.PerWorker = append(es.PerWorker, WorkerStat{
				Worker:      i,
				TickNanos:   w.busy[PhaseTick],
				UpdateNanos: w.busy[PhaseUpdate],
				Phases:      w.n[PhaseTick] + w.n[PhaseUpdate],
			})
		}
		s.Engine = es
	}
	for i := range m.gauges {
		g := &m.gauges[i]
		if g.n == 0 {
			continue
		}
		s.Gauges = append(s.Gauges, GaugeStat{Name: g.name, Avg: g.sum / float64(g.n), Max: g.max, Samples: g.n})
	}
	return s
}

// StageTotalNanos returns the summed attribution across all stages.
func (s *Snapshot) StageTotalNanos() uint64 {
	var total uint64
	for _, st := range s.Stages {
		total += st.Nanos
	}
	return total
}

// Metrics flattens the snapshot into the manifest metric map, so perf
// profiles ride the existing direction-aware differ. Share metrics are
// percentages of the sampled stage total; "wait", "imbalance" and "util"
// in the names pick up the differ's directions.
func (s *Snapshot) Metrics() map[string]float64 {
	if s == nil {
		return nil
	}
	mm := map[string]float64{
		"perf sampled cycles": float64(s.SampledCycles),
	}
	total := s.StageTotalNanos()
	if s.SampledCycles > 0 {
		mm["perf stage ns/cycle"] = float64(total) / float64(s.SampledCycles)
	}
	for _, st := range s.Stages {
		if total > 0 {
			mm["perf stage share % "+st.Name] = 100 * float64(st.Nanos) / float64(total)
		}
	}
	if e := s.Engine; e != nil && e.SampledCycles > 0 {
		wall := e.TickWallNanos + e.UpdateWallNanos
		var maxBusy, sumBusy uint64
		for _, w := range e.PerWorker {
			busy := w.TickNanos + w.UpdateNanos
			sumBusy += busy
			if busy > maxBusy {
				maxBusy = busy
			}
		}
		if len(e.PerWorker) > 0 && sumBusy > 0 {
			mean := float64(sumBusy) / float64(len(e.PerWorker))
			mm["perf worker imbalance"] = float64(maxBusy) / mean
		}
		if wall > 0 {
			util := 100 * float64(sumBusy) / (float64(wall) * float64(len(e.PerWorker)))
			mm["perf worker util %"] = util
			mm["perf barrier wait %"] = 100 - util
		}
		mm["perf serial ns/cycle"] = float64(e.SerialWallNanos) / float64(e.SampledCycles)
	}
	return mm
}

// WriteFolded emits the profile as folded stacks — `frame;frame weight`
// lines, the format flamegraph.pl, speedscope and inferno all consume.
// Weights are nanoseconds over the sampled cycles.
func (s *Snapshot) WriteFolded(w io.Writer) error {
	for _, st := range s.Stages {
		if st.Nanos == 0 {
			continue
		}
		if _, err := fmt.Fprintf(w, "sim;node;%s %d\n", st.Name, st.Nanos); err != nil {
			return err
		}
	}
	e := s.Engine
	if e == nil {
		return nil
	}
	for _, ws := range e.PerWorker {
		if err := foldWorker(w, "tick", ws.Worker, ws.TickNanos, e.TickWallNanos); err != nil {
			return err
		}
		if err := foldWorker(w, "update", ws.Worker, ws.UpdateNanos, e.UpdateWallNanos); err != nil {
			return err
		}
	}
	if e.SerialWallNanos > 0 {
		if _, err := fmt.Fprintf(w, "sim;engine;serial %d\n", e.SerialWallNanos); err != nil {
			return err
		}
	}
	return nil
}

func foldWorker(w io.Writer, phase string, worker int, busy, wall uint64) error {
	if busy > 0 {
		if _, err := fmt.Fprintf(w, "sim;engine;%s;w%d;busy %d\n", phase, worker, busy); err != nil {
			return err
		}
	}
	if wall > busy {
		if _, err := fmt.Fprintf(w, "sim;engine;%s;w%d;barrier-wait %d\n", phase, worker, wall-busy); err != nil {
			return err
		}
	}
	return nil
}

// WriteText renders the human-readable attribution report: the per-stage
// wall-time table, the per-worker shard-utilization report and the gauge
// summary. Both `loftsim -perf` (no run directory) and `lofttrace perf`
// print through this, so the two surfaces cannot drift.
func (s *Snapshot) WriteText(w io.Writer) {
	fmt.Fprintf(w, "perfmon: %d cycles, %d sampled (every %d), observed wall %s\n",
		s.Cycles, s.SampledCycles, s.SampleEvery, fmtNanos(uint64(s.WallNanos)))
	fmt.Fprintf(w, "host: %d cpu, GOMAXPROCS %d, node workers %d\n",
		s.Host.NumCPU, s.Host.GoMaxProcs, s.Host.Workers)
	if len(s.Stages) > 0 {
		total := s.StageTotalNanos()
		fmt.Fprintf(w, "\nstage attribution (sampled cycles only):\n")
		fmt.Fprintf(w, "  %-11s %12s %7s %10s %10s\n", "STAGE", "TOTAL", "SHARE", "CALLS", "NS/CALL")
		stages := append([]StageStat(nil), s.Stages...)
		sort.SliceStable(stages, func(i, j int) bool { return stages[i].Nanos > stages[j].Nanos })
		for _, st := range stages {
			share := 0.0
			if total > 0 {
				share = 100 * float64(st.Nanos) / float64(total)
			}
			fmt.Fprintf(w, "  %-11s %12s %6.1f%% %10d %10.0f\n",
				st.Name, fmtNanos(st.Nanos), share, st.Count, float64(st.Nanos)/float64(st.Count))
		}
		fmt.Fprintf(w, "  %-11s %12s\n", "total", fmtNanos(total))
	}
	if e := s.Engine; e != nil {
		fmt.Fprintf(w, "\nengine: %d workers over %d sampled cycles\n", e.Workers, e.SampledCycles)
		fmt.Fprintf(w, "  phase wall: tick %s, serial %s, update %s\n",
			fmtNanos(e.TickWallNanos), fmtNanos(e.SerialWallNanos), fmtNanos(e.UpdateWallNanos))
		wall := e.TickWallNanos + e.UpdateWallNanos
		fmt.Fprintf(w, "  %-7s %12s %7s %14s\n", "WORKER", "BUSY", "UTIL", "BARRIER-WAIT")
		var maxBusy, sumBusy uint64
		for _, ws := range e.PerWorker {
			busy := ws.TickNanos + ws.UpdateNanos
			sumBusy += busy
			if busy > maxBusy {
				maxBusy = busy
			}
			util, wait := 0.0, uint64(0)
			if wall > 0 {
				util = 100 * float64(busy) / float64(wall)
			}
			if wall > busy {
				wait = wall - busy
			}
			fmt.Fprintf(w, "  w%-6d %12s %6.1f%% %14s\n", ws.Worker, fmtNanos(busy), util, fmtNanos(wait))
		}
		if len(e.PerWorker) > 0 && sumBusy > 0 {
			mean := float64(sumBusy) / float64(len(e.PerWorker))
			fmt.Fprintf(w, "  shard imbalance (max/mean busy): %.2f\n", float64(maxBusy)/mean)
		}
	}
	if len(s.Gauges) > 0 {
		fmt.Fprintf(w, "\ngauges (avg/max over %d samples):\n", s.SampledCycles)
		for _, g := range s.Gauges {
			fmt.Fprintf(w, "  %-24s avg %10.2f  max %10.2f\n", g.Name, g.Avg, g.Max)
		}
	}
}

// fmtNanos renders a nanosecond quantity with an adaptive unit.
func fmtNanos(n uint64) string {
	switch {
	case n >= 1e9:
		return fmt.Sprintf("%.2fs", float64(n)/1e9)
	case n >= 1e6:
		return fmt.Sprintf("%.2fms", float64(n)/1e6)
	case n >= 1e3:
		return fmt.Sprintf("%.1fµs", float64(n)/1e3)
	default:
		return fmt.Sprintf("%dns", n)
	}
}

// ReadSnapshot loads a perf.json — from the file itself or from a run
// directory containing one.
func ReadSnapshot(path string) (*Snapshot, error) {
	if fi, err := os.Stat(path); err == nil && fi.IsDir() {
		path = filepath.Join(path, SnapshotFile)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var s Snapshot
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if s.Schema != SnapshotSchema {
		return nil, fmt.Errorf("%s: unsupported perf snapshot schema %d (want %d)", path, s.Schema, SnapshotSchema)
	}
	return &s, nil
}
