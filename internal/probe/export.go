package probe

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// jsonlEvent is the JSONL wire form of an Event. internal/trace decodes it
// back; keep both sides in sync (TestEventsJSONLRoundTrip pins the
// symmetry).
type jsonlEvent struct {
	Cycle uint64 `json:"cycle"`
	Kind  string `json:"kind"`
	Node  int32  `json:"node"`
	Loc   int32  `json:"loc"`
	Flow  int32  `json:"flow"`
	Seq   uint64 `json:"seq,omitempty"`
	Arg   uint64 `json:"arg"`
}

// jsonlMeta is the header line of a truncated JSONL dump. It has no "kind"
// key, so line-oriented consumers filtering on "kind" skip it naturally.
type jsonlMeta struct {
	Meta    string `json:"meta"`
	Dropped uint64 `json:"dropped"`
	Note    string `json:"note"`
}

// WriteEventsJSONL writes one JSON object per line per event, in emission
// order. dropped is the tracer's overwritten-event count; when non-zero a
// meta header line records that the dump is the retained tail, not the full
// stream.
func WriteEventsJSONL(w io.Writer, events []Event, dropped uint64) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	if dropped > 0 {
		if err := enc.Encode(jsonlMeta{Meta: "probe", Dropped: dropped,
			Note: "ring overwrote the oldest events; this dump is the retained tail"}); err != nil {
			return err
		}
	}
	for _, e := range events {
		if err := enc.Encode(jsonlEvent{
			Cycle: e.Cycle, Kind: e.Kind.String(),
			Node: e.Node, Loc: e.Loc, Flow: e.Flow, Seq: e.Seq, Arg: e.Arg,
		}); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// WriteSeriesCSV writes every time series in long form: series,cycle,value.
func WriteSeriesCSV(w io.Writer, series []Series) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintln(bw, "series,cycle,value"); err != nil {
		return err
	}
	for _, s := range series {
		for _, pt := range s.Samples {
			if _, err := fmt.Fprintf(bw, "%s,%d,%g\n", s.Name, pt.Cycle, pt.Value); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// traceEvent is one entry of the Chrome trace_event format ("JSON Array
// Format" wrapped in an object), which Perfetto and chrome://tracing load
// directly. Simulation cycles map to microseconds one-to-one.
type traceEvent struct {
	Name  string         `json:"name"`
	Phase string         `json:"ph"`
	TS    float64        `json:"ts"`
	PID   int32          `json:"pid"`
	TID   int32          `json:"tid,omitempty"`
	Scope string         `json:"s,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

type traceFile struct {
	TraceEvents     []traceEvent   `json:"traceEvents"`
	DisplayTimeUnit string         `json:"displayTimeUnit"`
	OtherData       map[string]any `json:"otherData,omitempty"`
}

// WriteChromeTrace writes events as thread-scoped instant events (pid =
// node, tid = location) and series as counter tracks, producing a file
// loadable in Perfetto (https://ui.perfetto.dev) or chrome://tracing.
// dropped (the tracer's overwritten-event count) is recorded in otherData
// so a truncated trace is distinguishable from a complete one.
func WriteChromeTrace(w io.Writer, events []Event, series []Series, dropped uint64) error {
	tf := traceFile{
		TraceEvents:     make([]traceEvent, 0, len(events)+16),
		DisplayTimeUnit: "ms",
		OtherData: map[string]any{
			"source":         "loft probe layer",
			"time_unit":      "1 ts = 1 cycle",
			"dropped_events": dropped,
		},
	}
	for _, e := range events {
		pid := e.Node
		if pid < 0 {
			pid = 0
		}
		te := traceEvent{
			Name:  e.Kind.String(),
			Phase: "i",
			TS:    float64(e.Cycle),
			PID:   pid,
			TID:   e.Loc + 1, // tid 0 is reserved; loc -1 maps to 0-offset 0
			Scope: "t",
			Args:  map[string]any{"arg": e.Arg},
		}
		if e.Flow >= 0 {
			te.Args["flow"] = e.Flow
		}
		if e.Seq != 0 {
			te.Args["seq"] = e.Seq
		}
		tf.TraceEvents = append(tf.TraceEvents, te)
	}
	for _, s := range series {
		for _, pt := range s.Samples {
			tf.TraceEvents = append(tf.TraceEvents, traceEvent{
				Name:  s.Name,
				Phase: "C",
				TS:    float64(pt.Cycle),
				PID:   0,
				Args:  map[string]any{"value": pt.Value},
			})
		}
	}
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	if err := enc.Encode(tf); err != nil {
		return err
	}
	return bw.Flush()
}

// Format selects a probe exporter.
type Format int

const (
	// FormatChromeTrace is Chrome trace_event JSON (Perfetto).
	FormatChromeTrace Format = iota
	// FormatJSONL is one JSON event per line.
	FormatJSONL
	// FormatCSV is the sampled time series in long form.
	FormatCSV
	// FormatPrometheus is the Prometheus text exposition format.
	FormatPrometheus
)

// FormatForPath picks the exporter from a file extension: .jsonl → events,
// .csv → time series, .prom → Prometheus text, anything else → Chrome
// trace. Both CLIs dispatch -probe-out through this.
func FormatForPath(path string) Format {
	switch {
	case strings.HasSuffix(path, ".jsonl"):
		return FormatJSONL
	case strings.HasSuffix(path, ".csv"):
		return FormatCSV
	case strings.HasSuffix(path, ".prom"):
		return FormatPrometheus
	default:
		return FormatChromeTrace
	}
}

// Export writes the probe's data in the given format, propagating the
// tracer's drop count to the exporters that record it.
func Export(w io.Writer, p *Probe, f Format) error {
	switch f {
	case FormatJSONL:
		return WriteEventsJSONL(w, p.Events(), p.Tracer().Dropped())
	case FormatCSV:
		return WriteSeriesCSV(w, p.Series())
	case FormatPrometheus:
		return WritePrometheus(w, p)
	default:
		return WriteChromeTrace(w, p.Events(), p.Series(), p.Tracer().Dropped())
	}
}
