package probe

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// jsonlEvent is the JSONL wire form of an Event.
type jsonlEvent struct {
	Cycle uint64 `json:"cycle"`
	Kind  string `json:"kind"`
	Node  int32  `json:"node"`
	Loc   int32  `json:"loc"`
	Flow  int32  `json:"flow"`
	Arg   uint64 `json:"arg"`
}

// WriteEventsJSONL writes one JSON object per line per event, in emission
// order.
func WriteEventsJSONL(w io.Writer, events []Event) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, e := range events {
		if err := enc.Encode(jsonlEvent{
			Cycle: e.Cycle, Kind: e.Kind.String(),
			Node: e.Node, Loc: e.Loc, Flow: e.Flow, Arg: e.Arg,
		}); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// WriteSeriesCSV writes every time series in long form: series,cycle,value.
func WriteSeriesCSV(w io.Writer, series []Series) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintln(bw, "series,cycle,value"); err != nil {
		return err
	}
	for _, s := range series {
		for _, pt := range s.Samples {
			if _, err := fmt.Fprintf(bw, "%s,%d,%g\n", s.Name, pt.Cycle, pt.Value); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// traceEvent is one entry of the Chrome trace_event format ("JSON Array
// Format" wrapped in an object), which Perfetto and chrome://tracing load
// directly. Simulation cycles map to microseconds one-to-one.
type traceEvent struct {
	Name  string         `json:"name"`
	Phase string         `json:"ph"`
	TS    float64        `json:"ts"`
	PID   int32          `json:"pid"`
	TID   int32          `json:"tid,omitempty"`
	Scope string         `json:"s,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

type traceFile struct {
	TraceEvents     []traceEvent   `json:"traceEvents"`
	DisplayTimeUnit string         `json:"displayTimeUnit"`
	OtherData       map[string]any `json:"otherData,omitempty"`
}

// WriteChromeTrace writes events as thread-scoped instant events (pid =
// node, tid = location) and series as counter tracks, producing a file
// loadable in Perfetto (https://ui.perfetto.dev) or chrome://tracing.
func WriteChromeTrace(w io.Writer, events []Event, series []Series) error {
	tf := traceFile{
		TraceEvents:     make([]traceEvent, 0, len(events)+16),
		DisplayTimeUnit: "ms",
		OtherData:       map[string]any{"source": "loft probe layer", "time_unit": "1 ts = 1 cycle"},
	}
	for _, e := range events {
		pid := e.Node
		if pid < 0 {
			pid = 0
		}
		te := traceEvent{
			Name:  e.Kind.String(),
			Phase: "i",
			TS:    float64(e.Cycle),
			PID:   pid,
			TID:   e.Loc + 1, // tid 0 is reserved; loc -1 maps to 0-offset 0
			Scope: "t",
			Args:  map[string]any{"arg": e.Arg},
		}
		if e.Flow >= 0 {
			te.Args["flow"] = e.Flow
		}
		tf.TraceEvents = append(tf.TraceEvents, te)
	}
	for _, s := range series {
		for _, pt := range s.Samples {
			tf.TraceEvents = append(tf.TraceEvents, traceEvent{
				Name:  s.Name,
				Phase: "C",
				TS:    float64(pt.Cycle),
				PID:   0,
				Args:  map[string]any{"value": pt.Value},
			})
		}
	}
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	if err := enc.Encode(tf); err != nil {
		return err
	}
	return bw.Flush()
}
