package probe

import "sort"

// Counter is a monotonically increasing metric. Counters are sampled into
// time series alongside gauges, so their cumulative curves (e.g. skipped
// slots over time) are exportable without per-increment events.
type Counter struct{ v uint64 }

// Inc adds one.
func (c *Counter) Inc() {
	if c == nil {
		return
	}
	c.v++
}

// Add adds d.
func (c *Counter) Add(d uint64) {
	if c == nil {
		return
	}
	c.v += d
}

// Value returns the current count.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v
}

// Sample is one point of a time series.
type Sample struct {
	Cycle uint64
	Value float64
}

// Series is one named time series keyed by cycle.
type Series struct {
	Name    string
	Samples []Sample
}

type gaugeEntry struct {
	name string
	fn   func() float64
	// rate converts a cumulative reading into a per-cycle rate over the
	// sampling interval (used for link utilization).
	rate      bool
	prev      float64
	prevCycle uint64
	started   bool
	samples   []Sample
}

type counterEntry struct {
	name    string
	c       *Counter
	samples []Sample
}

// Registry holds named counters and gauges. It is not safe for concurrent
// use; each simulation owns its probe and the kernels are single-threaded.
type Registry struct {
	counters     []*counterEntry
	counterIndex map[string]*counterEntry
	gauges       []*gaugeEntry
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{counterIndex: make(map[string]*counterEntry)}
}

// Counter returns the named counter, creating it on first use. A nil
// registry returns a nil counter whose methods are no-ops, so callers keep
// the handle unconditionally.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	if e, ok := r.counterIndex[name]; ok {
		return e.c
	}
	e := &counterEntry{name: name, c: &Counter{}}
	r.counterIndex[name] = e
	r.counters = append(r.counters, e)
	return e.c
}

// Gauge registers an instantaneous gauge polled at every sample point. A nil
// registry ignores the registration.
func (r *Registry) Gauge(name string, fn func() float64) {
	if r == nil {
		return
	}
	r.gauges = append(r.gauges, &gaugeEntry{name: name, fn: fn})
}

// Rate registers a gauge over a cumulative reading: each sample records the
// per-cycle increase since the previous sample (the first sample is dropped,
// establishing the baseline). Link utilization uses this over the forwarded
// flit counters.
func (r *Registry) Rate(name string, fn func() float64) {
	if r == nil {
		return
	}
	r.gauges = append(r.gauges, &gaugeEntry{name: name, fn: fn, rate: true})
}

// Sample polls every gauge and snapshots every counter at the given cycle.
func (r *Registry) Sample(cycle uint64) {
	if r == nil {
		return
	}
	for _, g := range r.gauges {
		v := g.fn()
		if g.rate {
			prev, prevCycle, started := g.prev, g.prevCycle, g.started
			g.prev, g.prevCycle, g.started = v, cycle, true
			if !started || cycle <= prevCycle {
				continue
			}
			v = (v - prev) / float64(cycle-prevCycle)
		}
		g.samples = append(g.samples, Sample{Cycle: cycle, Value: v})
	}
	for _, c := range r.counters {
		c.samples = append(c.samples, Sample{Cycle: cycle, Value: float64(c.c.v)})
	}
}

// GaugeValue returns the most recent sampled value of the named gauge.
func (r *Registry) GaugeValue(name string) (float64, bool) {
	if r == nil {
		return 0, false
	}
	for _, g := range r.gauges {
		if g.name == name && len(g.samples) > 0 {
			return g.samples[len(g.samples)-1].Value, true
		}
	}
	return 0, false
}

// Series returns every counter and gauge time series, sorted by name for
// deterministic export.
func (r *Registry) Series() []Series {
	if r == nil {
		return nil
	}
	out := make([]Series, 0, len(r.gauges)+len(r.counters))
	for _, g := range r.gauges {
		out = append(out, Series{Name: g.name, Samples: g.samples})
	}
	for _, c := range r.counters {
		out = append(out, Series{Name: c.name, Samples: c.samples})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
