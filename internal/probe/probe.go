// Package probe is the simulators' observability layer: a typed event
// tracer, a registry of counters and sampled gauges, and exporters for the
// captured data (JSONL event dumps, CSV time series and Chrome trace_event
// JSON loadable in Perfetto).
//
// The layer is zero-overhead when disabled: every component holds a *Probe
// that may be nil, and every method on *Probe is nil-receiver safe, so
// instrumentation points are unconditional calls whose fast path is a single
// pointer test. Simulation results are never affected by probing — probes
// only read state the components already maintain.
package probe

import "fmt"

// Kind is the type tag of a traced event. The set covers the mechanisms the
// paper's evaluation turns on (§4): LSF scheduling outcomes, the skipped-slot
// accounting and condition-(1) admissions behind the output scheduling
// anomaly fix, local frame recycling, the look-ahead/virtual-credit protocol,
// speculative switching, and the GSF baseline's global frame machinery.
type Kind uint8

// Event kinds. Loc and Arg are kind-specific; see the comments.
const (
	// KindReserveGrant: an LSF table booked a quantum. Loc = link, Arg =
	// booked departure slot (absolute, in cycles).
	KindReserveGrant Kind = iota
	// KindReserveDeny: an LSF request was throttled with every frame of
	// the window exhausted. Loc = link, Arg = quantum sequence.
	KindReserveDeny
	// KindFrameSkip: a flow advanced its injection frame, abandoning C
	// unused reservations into skipped(IF). Loc = link, Arg = quanta
	// abandoned.
	KindFrameSkip
	// KindCondBlock: a frame was rejected by the condition-(1) admission
	// check. Loc = link, Arg = frame index.
	KindCondBlock
	// KindFrameRecycle: the head frame advanced and the expired frame was
	// recycled (local frame recycling, Algorithm 3). Loc = link, Arg = new
	// head frame index.
	KindFrameRecycle
	// KindLocalReset: a table performed the §4.3.2 local status reset.
	// Loc = link.
	KindLocalReset
	// KindLAIssue: a look-ahead flit was issued onto a look-ahead link (or
	// launched by the NI). Loc = output direction, Arg = booked departure
	// slot on the previous link.
	KindLAIssue
	// KindVCreditGrant: a virtual credit returned to an upstream table was
	// granted (applied to its slot ledger). Loc = upstream direction, Arg =
	// departure-slot tag.
	KindVCreditGrant
	// KindSpecAttempt: the speculative pass of switch arbitration
	// considered a candidate for an output. Loc = output direction.
	KindSpecAttempt
	// KindSpecHit: a quantum was forwarded ahead of its booked slot.
	// Loc = output direction, Arg = booked departure slot.
	KindSpecHit
	// KindSpecAbort: a speculative candidate was denied by a full
	// downstream buffer. Loc = output direction.
	KindSpecAbort
	// KindGSFFrameRoll: the GSF barrier recycled the head frame. Arg = new
	// head frame (absolute).
	KindGSFFrameRoll
	// KindGSFThrottle: a GSF source exhausted its injection window and
	// stalled (emitted on the idle→throttled edge, not every cycle).
	// Arg = head frame at the stall.
	KindGSFThrottle
	// KindDataInject: a data quantum physically left its NI into the
	// router's local input port. Loc = injection link, Seq = quantum
	// sequence, Arg = booked injection cycle. Together with
	// KindDataForward this makes per-quantum latency decomposition
	// possible offline (internal/trace).
	KindDataInject
	// KindDataForward: a data quantum crossed a switch output (Loc =
	// output direction; topo.Local = ejection into the sink). Seq =
	// quantum sequence, Arg = booked departure cycle on that link — a
	// forward with Cycle < Arg was speculative (ahead of schedule).
	KindDataForward
	// KindFaultDown: a fault.Plan window armed on this node. Loc = target
	// direction (-1 for router stalls and adversary flows), Flow = target
	// flow (-1 unless adversary), Seq = fault.Kind, Arg = the cycle the
	// window lifts (0 = open-ended).
	KindFaultDown
	// KindFaultUp: a fault window lifted. Encoded like KindFaultDown.
	KindFaultUp
	// KindFaultLoss: a forward was denied by an active fault (link-down or
	// flit-loss). Loc = output direction (topo.NumDirs = injection link),
	// Arg = flits in the denied quantum. The quantum retries via the
	// overdue/emergent path.
	KindFaultLoss
	// KindFaultRetry: a previously fault-denied quantum finally crossed
	// its link. Loc = output direction, Arg = booked departure cycle.
	KindFaultRetry

	numKinds
)

var kindNames = [numKinds]string{
	KindReserveGrant: "reserve-grant",
	KindReserveDeny:  "reserve-deny",
	KindFrameSkip:    "frame-skip",
	KindCondBlock:    "cond1-block",
	KindFrameRecycle: "frame-recycle",
	KindLocalReset:   "local-reset",
	KindLAIssue:      "la-issue",
	KindVCreditGrant: "vcredit-grant",
	KindSpecAttempt:  "spec-attempt",
	KindSpecHit:      "spec-hit",
	KindSpecAbort:    "spec-abort",
	KindGSFFrameRoll: "gsf-frame-roll",
	KindGSFThrottle:  "gsf-throttle",
	KindDataInject:   "data-inject",
	KindDataForward:  "data-forward",
	KindFaultDown:    "fault-down",
	KindFaultUp:      "fault-up",
	KindFaultLoss:    "fault-loss",
	KindFaultRetry:   "fault-retry",
}

// kindByName inverts kindNames for the decoders (internal/trace): the wire
// names are the stable contract, the numeric values are not.
var kindByName = func() map[string]Kind {
	m := make(map[string]Kind, numKinds)
	for k := Kind(0); k < numKinds; k++ {
		m[kindNames[k]] = k
	}
	return m
}()

// KindFromString returns the kind with the given wire name (the inverse of
// Kind.String), and whether the name is known.
func KindFromString(name string) (Kind, bool) {
	k, ok := kindByName[name]
	return k, ok
}

// String returns the kind's stable wire name (used by every exporter).
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind-%d", int(k))
}

// NumKinds returns the number of defined event kinds.
func NumKinds() int { return int(numKinds) }

// Event is one traced occurrence. The struct is fixed-size and pointer-free
// so the ring buffer is a flat allocation the garbage collector never scans.
type Event struct {
	Cycle uint64
	Kind  Kind
	Node  int32  // node id; -1 when not applicable
	Loc   int32  // kind-specific location (link/direction/frame); -1 n/a
	Flow  int32  // flow id; -1 when not applicable
	Seq   uint64 // per-flow quantum sequence; 0 when not applicable
	Arg   uint64
}

// Tracer is a fixed-capacity event ring buffer. When full, the oldest events
// are overwritten: the tail of a run is usually the interesting part, and a
// bounded buffer keeps tracing safe to leave enabled on long runs.
type Tracer struct {
	buf    []Event
	next   int
	total  uint64
	counts [numKinds]uint64
}

// NewTracer returns a tracer holding up to capacity events.
func NewTracer(capacity int) *Tracer {
	if capacity < 1 {
		capacity = 1
	}
	return &Tracer{buf: make([]Event, 0, capacity)}
}

// Emit records one event. Nil tracers discard silently.
func (t *Tracer) Emit(e Event) {
	if t == nil {
		return
	}
	t.total++
	t.counts[e.Kind]++
	if len(t.buf) < cap(t.buf) {
		t.buf = append(t.buf, e)
		return
	}
	t.buf[t.next] = e
	t.next = (t.next + 1) % len(t.buf)
}

// Len returns the number of retained events.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	return len(t.buf)
}

// Total returns the number of events ever emitted (including overwritten).
func (t *Tracer) Total() uint64 {
	if t == nil {
		return 0
	}
	return t.total
}

// Dropped returns how many events were overwritten by ring wrap.
func (t *Tracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	return t.total - uint64(len(t.buf))
}

// Count returns the number of events of kind k ever emitted (ring wrap does
// not affect counts).
func (t *Tracer) Count(k Kind) uint64 {
	if t == nil {
		return 0
	}
	return t.counts[k]
}

// Events returns the retained events in emission order.
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	out := make([]Event, 0, len(t.buf))
	out = append(out, t.buf[t.next:]...)
	out = append(out, t.buf[:t.next]...)
	return out
}

// Config sizes a Probe.
type Config struct {
	// EventCap bounds the event ring buffer (default 1<<20 events).
	EventCap int
	// SampleEvery is the gauge sampling period in cycles; 0 disables the
	// time-series sampler.
	SampleEvery uint64
}

// Probe bundles a tracer and a metrics registry. A nil *Probe is the
// disabled state: every method is nil-receiver safe and components keep
// their *Probe unconditionally, so instrumentation points need no flags.
//
// A Probe is a serial-only sink: Emit, EmitSeq and MaybeSample mutate the
// shared tracer and registry, so they may only run on the coordinator
// (commit-phase) side of a cycle. Compute-phase code emits through a Stage
// instead — the distinction is a separate type precisely so the stagepurity
// analyzer can tell the two apart statically.
type Probe struct {
	tracer      *Tracer
	reg         *Registry
	sampleEvery uint64
}

// Stage is a per-node staging buffer over a parent probe. Events emitted
// through the stage are buffered locally (no shared state is touched during
// the compute phase) until FlushStage replays them into the parent tracer
// at the cycle barrier, preserving emission order. A nil *Stage is the
// disabled state, mirroring the nil-*Probe convention.
type Stage struct {
	parent *Probe
	staged []Event
}

// NewStage returns a staging view of the probe for one node. A nil probe
// returns a nil stage.
func (p *Probe) NewStage() *Stage {
	if p == nil {
		return nil
	}
	return &Stage{parent: p}
}

// Emit buffers one event in the stage (no-op when disabled).
func (s *Stage) Emit(cycle uint64, k Kind, node, loc, flow int32, arg uint64) {
	if s == nil {
		return
	}
	s.staged = append(s.staged, Event{Cycle: cycle, Kind: k, Node: node, Loc: loc, Flow: flow, Arg: arg})
}

// EmitSeq buffers one event carrying a per-flow quantum sequence (no-op when
// disabled).
func (s *Stage) EmitSeq(cycle uint64, k Kind, node, loc, flow int32, seq, arg uint64) {
	if s == nil {
		return
	}
	s.staged = append(s.staged, Event{Cycle: cycle, Kind: k, Node: node, Loc: loc, Flow: flow, Seq: seq, Arg: arg})
}

// FlushStage replays the buffered events into the parent tracer, in emission
// order, and empties the stage (the backing array is kept, so steady-state
// cycles stop reallocating). Serial-only: networks call it from the commit
// phase in node-id order. No-op on a nil stage.
func (s *Stage) FlushStage() {
	if s == nil {
		return
	}
	for _, e := range s.staged {
		s.parent.tracer.Emit(e)
	}
	s.staged = s.staged[:0]
}

// New returns an enabled probe.
func New(cfg Config) *Probe {
	if cfg.EventCap <= 0 {
		cfg.EventCap = 1 << 20
	}
	return &Probe{
		tracer:      NewTracer(cfg.EventCap),
		reg:         NewRegistry(),
		sampleEvery: cfg.SampleEvery,
	}
}

// Enabled reports whether the probe is collecting.
func (p *Probe) Enabled() bool { return p != nil }

// Emit records one event (no-op when disabled). Serial-only: compute-phase
// code goes through a Stage instead.
func (p *Probe) Emit(cycle uint64, k Kind, node, loc, flow int32, arg uint64) {
	if p == nil {
		return
	}
	p.tracer.Emit(Event{Cycle: cycle, Kind: k, Node: node, Loc: loc, Flow: flow, Arg: arg})
}

// EmitSeq records one event carrying a per-flow quantum sequence (no-op when
// disabled). The data-path kinds use it so offline analysis can reassemble
// exact per-quantum timelines. Serial-only, like Emit.
func (p *Probe) EmitSeq(cycle uint64, k Kind, node, loc, flow int32, seq, arg uint64) {
	if p == nil {
		return
	}
	p.tracer.Emit(Event{Cycle: cycle, Kind: k, Node: node, Loc: loc, Flow: flow, Seq: seq, Arg: arg})
}

// Tracer returns the underlying tracer (nil when disabled).
func (p *Probe) Tracer() *Tracer {
	if p == nil {
		return nil
	}
	return p.tracer
}

// Registry returns the metrics registry (nil when disabled). Components
// register gauges at construction; a nil registry ignores registrations.
func (p *Probe) Registry() *Registry {
	if p == nil {
		return nil
	}
	return p.reg
}

// MaybeSample records one gauge/counter sample when now falls on the
// sampling period. Networks call it once per cycle.
func (p *Probe) MaybeSample(now uint64) {
	if p == nil || p.sampleEvery == 0 || now%p.sampleEvery != 0 {
		return
	}
	p.reg.Sample(now)
}

// Events returns the retained events in emission order.
func (p *Probe) Events() []Event { return p.Tracer().Events() }

// Series returns every recorded time series.
func (p *Probe) Series() []Series {
	if p == nil {
		return nil
	}
	return p.reg.Series()
}

// Summary returns per-kind event totals as "name: count" lines, skipping
// kinds that never fired.
func (p *Probe) Summary() []string {
	if p == nil {
		return nil
	}
	var out []string
	for k := Kind(0); k < numKinds; k++ {
		if c := p.tracer.Count(k); c > 0 {
			out = append(out, fmt.Sprintf("%s: %d", k, c))
		}
	}
	if d := p.tracer.Dropped(); d > 0 {
		out = append(out, fmt.Sprintf("(ring dropped %d oldest events)", d))
	}
	return out
}
