package probe

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestTracerRingWrap(t *testing.T) {
	tr := NewTracer(4)
	for i := uint64(0); i < 6; i++ {
		tr.Emit(Event{Cycle: i, Kind: KindSpecHit})
	}
	if tr.Len() != 4 {
		t.Fatalf("len = %d, want 4", tr.Len())
	}
	if tr.Total() != 6 || tr.Dropped() != 2 {
		t.Fatalf("total=%d dropped=%d, want 6/2", tr.Total(), tr.Dropped())
	}
	ev := tr.Events()
	for i, e := range ev {
		if want := uint64(i + 2); e.Cycle != want {
			t.Fatalf("event %d cycle = %d, want %d (oldest overwritten, order kept)", i, e.Cycle, want)
		}
	}
	if tr.Count(KindSpecHit) != 6 {
		t.Fatalf("count survives wrap: got %d", tr.Count(KindSpecHit))
	}
}

func TestNilProbeIsInert(t *testing.T) {
	var p *Probe
	if p.Enabled() {
		t.Fatal("nil probe reports enabled")
	}
	// Every call on the nil probe must be a safe no-op.
	p.Emit(1, KindReserveGrant, 0, 0, 0, 0)
	p.MaybeSample(0)
	if p.Events() != nil || p.Series() != nil || p.Summary() != nil {
		t.Fatal("nil probe emitted data")
	}
	var r *Registry
	r.Counter("x").Inc()
	r.Gauge("g", func() float64 { return 1 })
	r.Rate("r", func() float64 { return 1 })
	r.Sample(0)
	if r.Series() != nil {
		t.Fatal("nil registry recorded series")
	}
	var tr *Tracer
	tr.Emit(Event{})
	if tr.Len() != 0 || tr.Events() != nil {
		t.Fatal("nil tracer recorded events")
	}
}

func TestRegistrySampling(t *testing.T) {
	p := New(Config{EventCap: 16, SampleEvery: 10})
	var cum float64
	p.Registry().Gauge("occ", func() float64 { return 3 })
	p.Registry().Rate("util", func() float64 { return cum })
	c := p.Registry().Counter("skips")
	for now := uint64(0); now < 30; now++ {
		cum += 0.5 // half a flit per cycle
		if now == 15 {
			c.Add(7)
		}
		p.MaybeSample(now)
	}
	series := p.Series()
	byName := map[string]Series{}
	for _, s := range series {
		byName[s.Name] = s
	}
	occ := byName["occ"]
	if len(occ.Samples) != 3 || occ.Samples[1].Cycle != 10 || occ.Samples[2].Value != 3 {
		t.Fatalf("occ samples = %+v", occ.Samples)
	}
	util := byName["util"]
	// The first reading only establishes the baseline; later points are the
	// per-cycle rate over each interval.
	if len(util.Samples) != 2 {
		t.Fatalf("util samples = %+v", util.Samples)
	}
	for _, s := range util.Samples {
		if s.Value != 0.5 {
			t.Fatalf("util rate = %g, want 0.5", s.Value)
		}
	}
	sk := byName["skips"]
	if len(sk.Samples) != 3 || sk.Samples[1].Value != 0 || sk.Samples[2].Value != 7 {
		t.Fatalf("counter samples = %+v", sk.Samples)
	}
	if v, ok := p.Registry().GaugeValue("util"); !ok || v != 0.5 {
		t.Fatalf("GaugeValue(util) = %g,%v", v, ok)
	}
}

func TestWriteEventsJSONL(t *testing.T) {
	events := []Event{
		{Cycle: 5, Kind: KindReserveGrant, Node: 3, Loc: 1, Flow: 7, Arg: 42},
		{Cycle: 6, Kind: KindLocalReset, Node: 2, Loc: -1, Flow: -1},
	}
	var buf bytes.Buffer
	if err := WriteEventsJSONL(&buf, events, 0); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines", len(lines))
	}
	var first map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &first); err != nil {
		t.Fatalf("line 0 not valid JSON: %v", err)
	}
	if first["kind"] != "reserve-grant" || first["cycle"] != float64(5) {
		t.Fatalf("line 0 = %v", first)
	}
}

func TestWriteEventsJSONLDroppedHeader(t *testing.T) {
	events := []Event{{Cycle: 9, Kind: KindSpecHit}}
	var buf bytes.Buffer
	if err := WriteEventsJSONL(&buf, events, 3); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want meta header + 1 event", len(lines))
	}
	var meta map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &meta); err != nil {
		t.Fatalf("meta header not valid JSON: %v", err)
	}
	if meta["meta"] != "probe" || meta["dropped"] != float64(3) {
		t.Fatalf("meta header = %v", meta)
	}
	if _, hasKind := meta["kind"]; hasKind {
		t.Fatal("meta header must not carry a kind key (consumers filter on it)")
	}
}

func TestWriteSeriesCSV(t *testing.T) {
	series := []Series{{Name: "u", Samples: []Sample{{Cycle: 10, Value: 0.25}}}}
	var buf bytes.Buffer
	if err := WriteSeriesCSV(&buf, series); err != nil {
		t.Fatal(err)
	}
	want := "series,cycle,value\nu,10,0.25\n"
	if buf.String() != want {
		t.Fatalf("csv = %q, want %q", buf.String(), want)
	}
}

func TestWriteChromeTraceValidJSON(t *testing.T) {
	events := []Event{
		{Cycle: 1, Kind: KindSpecHit, Node: 4, Loc: 2, Flow: 9, Arg: 11},
		{Cycle: 2, Kind: KindFrameRecycle, Node: 4, Loc: 0, Flow: -1, Arg: 1},
	}
	series := []Series{{Name: "link.u", Samples: []Sample{{Cycle: 2, Value: 0.75}}}}
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, events, series, 0); err != nil {
		t.Fatal(err)
	}
	var parsed struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &parsed); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if len(parsed.TraceEvents) != 3 {
		t.Fatalf("got %d trace events, want 3", len(parsed.TraceEvents))
	}
	kinds := map[string]bool{}
	for _, te := range parsed.TraceEvents {
		kinds[te["name"].(string)] = true
		if _, ok := te["ph"].(string); !ok {
			t.Fatalf("trace event missing phase: %v", te)
		}
	}
	if !kinds["spec-hit"] || !kinds["frame-recycle"] || !kinds["link.u"] {
		t.Fatalf("missing expected tracks: %v", kinds)
	}
}

// TestWriteChromeTraceCounterSeries pins the counter-track encoding: each
// series sample must become a ph="C" event on pid 0 carrying args.value at
// ts = cycle, and the drop count must land in otherData.
func TestWriteChromeTraceCounterSeries(t *testing.T) {
	series := []Series{
		{Name: "buf.n0", Samples: []Sample{{Cycle: 10, Value: 2}, {Cycle: 20, Value: 5}}},
		{Name: "link.u", Samples: []Sample{{Cycle: 10, Value: 0.5}}},
	}
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, nil, series, 7); err != nil {
		t.Fatal(err)
	}
	var parsed struct {
		TraceEvents []struct {
			Name  string         `json:"name"`
			Phase string         `json:"ph"`
			TS    float64        `json:"ts"`
			PID   int32          `json:"pid"`
			Args  map[string]any `json:"args"`
		} `json:"traceEvents"`
		OtherData map[string]any `json:"otherData"`
	}
	if err := json.Unmarshal(buf.Bytes(), &parsed); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if len(parsed.TraceEvents) != 3 {
		t.Fatalf("got %d counter events, want 3", len(parsed.TraceEvents))
	}
	want := map[string][]Sample{"buf.n0": series[0].Samples, "link.u": series[1].Samples}
	seen := map[string]int{}
	for _, te := range parsed.TraceEvents {
		if te.Phase != "C" {
			t.Fatalf("series event phase = %q, want C", te.Phase)
		}
		if te.PID != 0 {
			t.Fatalf("counter track pid = %d, want 0", te.PID)
		}
		samples, ok := want[te.Name]
		if !ok {
			t.Fatalf("unexpected track %q", te.Name)
		}
		s := samples[seen[te.Name]]
		seen[te.Name]++
		if te.TS != float64(s.Cycle) || te.Args["value"] != s.Value {
			t.Fatalf("track %q point = ts %g value %v, want ts %d value %g",
				te.Name, te.TS, te.Args["value"], s.Cycle, s.Value)
		}
	}
	if parsed.OtherData["dropped_events"] != float64(7) {
		t.Fatalf("otherData dropped_events = %v, want 7", parsed.OtherData["dropped_events"])
	}
}

func TestKindNamesComplete(t *testing.T) {
	for k := Kind(0); int(k) < NumKinds(); k++ {
		if strings.HasPrefix(k.String(), "kind-") || k.String() == "" {
			t.Fatalf("kind %d has no name", int(k))
		}
	}
}
