package probe

import (
	"bufio"
	"fmt"
	"io"
)

// SanitizeMetricName maps an internal metric name (dotted, e.g.
// "loft.link.n3.East") onto the Prometheus metric-name charset
// [a-zA-Z_:][a-zA-Z0-9_:]*, replacing every invalid rune with '_'.
func SanitizeMetricName(s string) string {
	if s == "" {
		return "_"
	}
	b := []byte(s)
	for i, c := range b {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			if i == 0 {
				b[i] = '_'
			}
		default:
			b[i] = '_'
		}
	}
	return string(b)
}

// WritePrometheus renders the probe's state in the Prometheus text
// exposition format (0.0.4): the event tracer's per-kind counts and drop
// count, the registry's counters (as "<name>_total" counters), and the
// registry's gauges — rate-registered gauges read cumulative totals, so
// they export as counters; plain gauges export as gauges, sampled live.
//
// Registry gauge functions read live simulator state: call this from the
// simulation thread only (the introspection server publishes rendered
// bytes rather than rendering in HTTP handlers). A nil probe writes a
// single comment line.
func WritePrometheus(w io.Writer, p *Probe) error {
	bw := bufio.NewWriter(w)
	if p == nil {
		fmt.Fprintln(bw, "# probe disabled (run with -probe)")
		return bw.Flush()
	}
	fmt.Fprintln(bw, "# HELP probe_events_total Traced scheduler/switch/frame events by kind (counts are exact even after ring wrap).")
	fmt.Fprintln(bw, "# TYPE probe_events_total counter")
	for k := Kind(0); k < numKinds; k++ {
		fmt.Fprintf(bw, "probe_events_total{kind=%q} %d\n", k.String(), p.tracer.Count(k))
	}
	fmt.Fprintln(bw, "# HELP probe_events_dropped_total Oldest events overwritten by the fixed-size trace ring.")
	fmt.Fprintln(bw, "# TYPE probe_events_dropped_total counter")
	fmt.Fprintf(bw, "probe_events_dropped_total %d\n", p.tracer.Dropped())
	if p.reg != nil {
		for _, c := range p.reg.counters {
			name := SanitizeMetricName(c.name) + "_total"
			fmt.Fprintf(bw, "# HELP %s Probe registry counter %q.\n# TYPE %s counter\n%s %d\n",
				name, c.name, name, name, c.c.Value())
		}
		for _, g := range p.reg.gauges {
			name := SanitizeMetricName(g.name)
			if g.rate {
				// Rate gauges sample a cumulative quantity and report the
				// per-cycle delta; the raw reading is the counter.
				name += "_total"
				fmt.Fprintf(bw, "# HELP %s Probe registry rate source %q (cumulative).\n# TYPE %s counter\n%s %g\n",
					name, g.name, name, name, g.fn())
			} else {
				fmt.Fprintf(bw, "# HELP %s Probe registry gauge %q.\n# TYPE %s gauge\n%s %g\n",
					name, g.name, name, name, g.fn())
			}
		}
	}
	return bw.Flush()
}
