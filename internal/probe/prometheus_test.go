package probe

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
)

func TestSanitizeMetricName(t *testing.T) {
	cases := map[string]string{
		"loft.link.n3.East":  "loft_link_n3_East",
		"already_fine:sub":   "already_fine:sub",
		"9starts.with.digit": "_starts_with_digit",
		"":                   "_",
		"a-b c%d":            "a_b_c_d",
	}
	for in, want := range cases {
		if got := SanitizeMetricName(in); got != want {
			t.Errorf("SanitizeMetricName(%q) = %q, want %q", in, got, want)
		}
	}
}

// validatePrometheus is a minimal exposition-format (0.0.4) checker: every
// non-comment line is `name[{labels}] value`, every sample is preceded by
// HELP and TYPE lines for its metric, and no metric name repeats a
// HELP/TYPE block.
func validatePrometheus(t *testing.T, text string) map[string]string {
	t.Helper()
	types := map[string]string{} // metric -> counter|gauge
	helped := map[string]bool{}
	for _, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		if line == "" {
			t.Fatalf("blank line in exposition output")
		}
		if strings.HasPrefix(line, "# HELP ") {
			f := strings.SplitN(line[len("# HELP "):], " ", 2)
			if len(f) != 2 || f[1] == "" {
				t.Fatalf("malformed HELP line %q", line)
			}
			if helped[f[0]] {
				t.Fatalf("duplicate HELP for %q", f[0])
			}
			helped[f[0]] = true
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			f := strings.Fields(line[len("# TYPE "):])
			if len(f) != 2 || (f[1] != "counter" && f[1] != "gauge") {
				t.Fatalf("malformed TYPE line %q", line)
			}
			if _, dup := types[f[0]]; dup {
				t.Fatalf("duplicate TYPE for %q", f[0])
			}
			types[f[0]] = f[1]
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue // plain comment
		}
		// Sample line: name or name{labels}, then a value.
		name := line
		if i := strings.IndexByte(line, '{'); i >= 0 {
			name = line[:i]
			if !strings.Contains(line, "} ") {
				t.Fatalf("malformed labeled sample %q", line)
			}
		} else if i := strings.IndexByte(line, ' '); i >= 0 {
			name = line[:i]
		} else {
			t.Fatalf("sample line %q has no value", line)
		}
		if types[name] == "" {
			t.Fatalf("sample %q has no preceding TYPE", name)
		}
		if !helped[name] {
			t.Fatalf("sample %q has no preceding HELP", name)
		}
		for i, c := range []byte(name) {
			valid := c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_' || c == ':' ||
				(i > 0 && c >= '0' && c <= '9')
			if !valid {
				t.Fatalf("invalid metric name %q", name)
			}
		}
	}
	return types
}

func TestWritePrometheus(t *testing.T) {
	p := New(Config{EventCap: 4, SampleEvery: 1})
	p.Registry().Counter("loft.table.n0.skips").Add(3)
	p.Registry().Gauge("loft.buf.n1.occ", func() float64 { return 2.5 })
	p.Registry().Rate("loft.link.n0.East", func() float64 { return 640 })
	for i := 0; i < 6; i++ { // 4-cap ring: 2 drops
		p.Emit(uint64(i), KindReserveGrant, 0, 0, 1, 0)
	}
	var buf bytes.Buffer
	if err := WritePrometheus(&buf, p); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	types := validatePrometheus(t, out)

	wantTypes := map[string]string{
		"probe_events_total":         "counter",
		"probe_events_dropped_total": "counter",
		"loft_table_n0_skips_total":  "counter",
		"loft_buf_n1_occ":            "gauge",
		"loft_link_n0_East_total":    "counter", // rate source exports cumulative
	}
	for name, typ := range wantTypes {
		if types[name] != typ {
			t.Errorf("metric %s: type %q, want %q", name, types[name], typ)
		}
	}
	wantLines := []string{
		`probe_events_total{kind="reserve-grant"} 6`,
		"probe_events_dropped_total 2",
		"loft_table_n0_skips_total 3",
		"loft_buf_n1_occ 2.5",
		"loft_link_n0_East_total 640",
	}
	for _, l := range wantLines {
		if !strings.Contains(out, l+"\n") {
			t.Errorf("output missing line %q", l)
		}
	}
	// Every kind must be present as a labeled sample, fired or not.
	for k := Kind(0); int(k) < NumKinds(); k++ {
		if !strings.Contains(out, fmt.Sprintf("probe_events_total{kind=%q}", k.String())) {
			t.Errorf("missing per-kind sample for %s", k)
		}
	}
}

func TestWritePrometheusNilProbe(t *testing.T) {
	var buf bytes.Buffer
	if err := WritePrometheus(&buf, nil); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "#") {
		t.Fatalf("nil probe output %q is not a comment", buf.String())
	}
}

func TestFormatForPath(t *testing.T) {
	cases := map[string]Format{
		"x.jsonl":    FormatJSONL,
		"x.csv":      FormatCSV,
		"x.prom":     FormatPrometheus,
		"x.json":     FormatChromeTrace,
		"trace":      FormatChromeTrace,
		"a.b/c.prom": FormatPrometheus,
	}
	for path, want := range cases {
		if got := FormatForPath(path); got != want {
			t.Errorf("FormatForPath(%q) = %v, want %v", path, got, want)
		}
	}
}

func TestExportDispatch(t *testing.T) {
	p := New(Config{EventCap: 8, SampleEvery: 1})
	p.Emit(1, KindSpecHit, 0, 0, 0, 0)
	p.MaybeSample(1)
	for f, sniff := range map[Format]string{
		FormatJSONL:       `"kind":"spec-hit"`,
		FormatCSV:         "series,cycle,value",
		FormatPrometheus:  "# TYPE probe_events_total counter",
		FormatChromeTrace: `"traceEvents"`,
	} {
		var buf bytes.Buffer
		if err := Export(&buf, p, f); err != nil {
			t.Fatalf("Export(%v): %v", f, err)
		}
		if !strings.Contains(buf.String(), sniff) {
			t.Errorf("Export(%v) output missing %q", f, sniff)
		}
	}
}
