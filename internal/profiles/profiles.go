// Package profiles backs the -cpuprofile/-memprofile CLI flags. Inspect the
// output with `go tool pprof -top <binary> <file>` (see DESIGN.md
// § Performance engineering for a walkthrough).
package profiles

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins CPU profiling into cpuPath (when non-empty) and returns a
// stop function that ends the CPU profile and writes a heap profile to
// memPath (when non-empty). The stop function must run at process exit;
// empty paths make Start and stop no-ops.
func Start(cpuPath, memPath string) (stop func(), err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("cpuprofile: %w", err)
		}
	}
	return func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			cpuFile.Close()
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				return
			}
			runtime.GC() // up-to-date allocation stats
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, err)
			}
			f.Close()
		}
	}, nil
}
