// Package route implements dimension-order (XY) routing on the 2D mesh and
// path enumeration used to install per-link flow reservations.
package route

import (
	"fmt"

	"loft/internal/topo"
)

// XY returns the output direction a flit at cur takes toward dst under
// dimension-order routing: first correct X, then Y; Local when arrived.
func XY(m topo.Mesh, cur, dst topo.NodeID) topo.Dir {
	cc, cd := m.Coord(cur), m.Coord(dst)
	switch {
	case cd.X > cc.X:
		return topo.East
	case cd.X < cc.X:
		return topo.West
	case cd.Y > cc.Y:
		return topo.South
	case cd.Y < cc.Y:
		return topo.North
	default:
		return topo.Local
	}
}

// Path returns the ordered sequence of directed links a src→dst flow
// traverses under XY routing, including the final ejection link
// (dst, Local). The injection link is not included; callers that schedule
// injection model it separately.
func Path(m topo.Mesh, src, dst topo.NodeID) []topo.Link {
	if src == dst {
		return []topo.Link{{From: dst, D: topo.Local}}
	}
	var links []topo.Link
	cur := src
	for cur != dst {
		d := XY(m, cur, dst)
		links = append(links, topo.Link{From: cur, D: d})
		next, ok := m.Neighbor(cur, d)
		if !ok {
			panic(fmt.Sprintf("route: XY stepped off mesh from %d toward %d", cur, dst))
		}
		cur = next
	}
	links = append(links, topo.Link{From: dst, D: topo.Local})
	return links
}

// Hops returns the number of router-to-router hops on the XY path (the
// ejection link is not counted as a hop).
func Hops(m topo.Mesh, src, dst topo.NodeID) int { return m.Hops(src, dst) }
