package route

import (
	"testing"
	"testing/quick"

	"loft/internal/topo"
)

func TestXYDirections(t *testing.T) {
	m := topo.NewMesh(8)
	cases := []struct {
		cur, dst topo.NodeID
		want     topo.Dir
	}{
		{0, 1, topo.East},
		{1, 0, topo.West},
		{0, 8, topo.South},
		{8, 0, topo.North},
		{0, 0, topo.Local},
		// X corrected before Y.
		{0, 9, topo.East},
		{9, 0, topo.West},
		// X aligned: go vertical.
		{1, 9, topo.South},
	}
	for _, c := range cases {
		if got := XY(m, c.cur, c.dst); got != c.want {
			t.Errorf("XY(%d,%d) = %s, want %s", c.cur, c.dst, got, c.want)
		}
	}
}

func TestPathReachesDestination(t *testing.T) {
	m := topo.NewMesh(8)
	if err := quick.Check(func(a, b uint8) bool {
		src := topo.NodeID(int(a) % m.N())
		dst := topo.NodeID(int(b) % m.N())
		path := Path(m, src, dst)
		// Last link must be the destination's ejection.
		last := path[len(path)-1]
		if last.From != dst || last.D != topo.Local {
			return false
		}
		// Link count = hops + 1 (ejection).
		if len(path) != m.Hops(src, dst)+1 {
			return false
		}
		// Walk the path and verify continuity.
		cur := src
		for _, l := range path[:len(path)-1] {
			if l.From != cur {
				return false
			}
			next, ok := m.Neighbor(cur, l.D)
			if !ok {
				return false
			}
			cur = next
		}
		return cur == dst
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPathXYOrder(t *testing.T) {
	m := topo.NewMesh(8)
	// X-dimension links must all precede Y-dimension links.
	path := Path(m, 0, 63)
	seenY := false
	for _, l := range path[:len(path)-1] {
		vertical := l.D == topo.North || l.D == topo.South
		if vertical {
			seenY = true
		} else if seenY {
			t.Fatalf("X link after Y link in %v", path)
		}
	}
}

func TestPathSelfIsEjectionOnly(t *testing.T) {
	m := topo.NewMesh(4)
	p := Path(m, 5, 5)
	if len(p) != 1 || p[0].D != topo.Local || p[0].From != 5 {
		t.Fatalf("self path = %v", p)
	}
}
