// Package runenv captures the nondeterministic facts of the execution
// environment — wall-clock time, git revision and host parallelism — that
// run manifests record for provenance. It is deliberately the only package below the CLIs
// allowed to read a wall clock: the simulation, observability and trace
// packages are determinism-checked (internal/lint) and must stay functions
// of (config, seed), while a manifest's whole point is to say when and from
// which tree a run happened.
package runenv

import (
	"os/exec"
	"runtime"
	"strings"
	"time"
)

// Info is the captured environment provenance.
type Info struct {
	// CreatedUTC is the capture time in RFC 3339 UTC.
	CreatedUTC string
	// GitRevision is the working tree's HEAD commit, best effort: empty
	// when the binary runs outside a git checkout or git is unavailable.
	GitRevision string
	// NumCPU is the host's logical CPU count. Parallel-engine results
	// (BenchmarkParallelSpeed, shard-utilization reports) are meaningless
	// without it: a 1-CPU container shows no speedup however many node
	// workers are configured.
	NumCPU int
	// GoMaxProcs is the effective GOMAXPROCS at capture time.
	GoMaxProcs int
}

// Capture reads the environment now.
func Capture() Info {
	return Info{
		CreatedUTC:  time.Now().UTC().Format(time.RFC3339),
		GitRevision: gitRevision(),
		NumCPU:      runtime.NumCPU(),
		GoMaxProcs:  runtime.GOMAXPROCS(0),
	}
}

func gitRevision() string {
	out, err := exec.Command("git", "rev-parse", "HEAD").Output()
	if err != nil {
		return ""
	}
	return strings.TrimSpace(string(out))
}
