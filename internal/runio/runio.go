// Package runio writes per-run artifact sets for the simulator CLIs: the
// probe exporters' three file formats, the audit conformance snapshot, and
// the run manifest with checksummed artifacts. Both loftsim and loftexp
// dispatch -probe-out through it, keeping the legacy single-file extension
// dispatch (probe.FormatForPath) and adding the directory form that
// lofttrace consumes whole.
package runio

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"loft/internal/audit"
	"loft/internal/core"
	"loft/internal/perfmon"
	"loft/internal/probe"
	"loft/internal/profiles"
	"loft/internal/trace"
)

// File names inside a run directory.
const (
	EventsFile = "events.jsonl"
	SeriesFile = "series.csv"
	ChromeFile = "trace.json"
	AuditFile  = "audit.json"
	// PerfFile is the perfmon snapshot (stage attribution, engine telemetry,
	// gauges); FoldedFile is the same data as folded stacks for flamegraph
	// viewers; CPUProfileFile is an optional pprof CPU profile. Perf files
	// carry wall-time values, so they are nondeterministic by design and
	// excluded from byte-identity comparisons (manifest checksums still pin
	// them).
	PerfFile       = perfmon.SnapshotFile
	FoldedFile     = "perf.folded"
	CPUProfileFile = "cpu.pprof"
)

// IsDirTarget reports whether path names a run directory rather than a
// single artifact file: an existing directory, or a path spelled with a
// trailing separator. Extension dispatch keeps working for every other
// path, so `-probe-out trace.jsonl` and `-probe-out runs/a/` coexist.
func IsDirTarget(path string) bool {
	if strings.HasSuffix(path, "/") || strings.HasSuffix(path, string(os.PathSeparator)) {
		return true
	}
	st, err := os.Stat(path)
	return err == nil && st.IsDir()
}

// WriteRunDir writes a full run directory: events.jsonl, series.csv and
// trace.json from the probe (when attached), audit.json from the auditor
// (when attached), perf.json and perf.folded from the perfmon monitor (when
// attached), and manifest.json with every artifact checksummed. A cpu.pprof
// left in the directory by StartCPUProfile is checksummed too. The
// manifest's Artifacts field is filled here; everything else comes from the
// caller.
func WriteRunDir(dir string, pr *probe.Probe, aud *audit.Auditor, mon *perfmon.Monitor, m trace.Manifest) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	var names []string
	if pr != nil {
		exports := []struct {
			name   string
			format probe.Format
		}{
			{EventsFile, probe.FormatJSONL},
			{SeriesFile, probe.FormatCSV},
			{ChromeFile, probe.FormatChromeTrace},
		}
		for _, e := range exports {
			if err := writeExport(filepath.Join(dir, e.name), pr, e.format); err != nil {
				return err
			}
			names = append(names, e.name)
		}
	}
	if aud != nil {
		if err := WriteAuditSnapshot(filepath.Join(dir, AuditFile), aud); err != nil {
			return err
		}
		names = append(names, AuditFile)
	}
	if mon != nil {
		if err := WritePerfSnapshot(dir, mon); err != nil {
			return err
		}
		names = append(names, PerfFile, FoldedFile)
	}
	if _, err := os.Stat(filepath.Join(dir, CPUProfileFile)); err == nil {
		names = append(names, CPUProfileFile)
	}
	m.Artifacts = m.Artifacts[:0]
	for _, name := range names {
		a, err := trace.FileArtifact(filepath.Join(dir, name))
		if err != nil {
			return err
		}
		m.Artifacts = append(m.Artifacts, a)
	}
	return m.Write(filepath.Join(dir, trace.ManifestName))
}

// WriteFileWithManifest writes one artifact through the extension-dispatch
// path and a sibling <path>.manifest.json checksumming it.
func WriteFileWithManifest(path string, pr *probe.Probe, m trace.Manifest) error {
	if err := writeExport(path, pr, probe.FormatForPath(path)); err != nil {
		return err
	}
	a, err := trace.FileArtifact(path)
	if err != nil {
		return err
	}
	m.Artifacts = []trace.Artifact{a}
	return m.Write(path + ".manifest.json")
}

// WriteAuditSnapshot writes the auditor's conformance snapshot as indented
// JSON (the same document the introspection server serves at /audit).
func WriteAuditSnapshot(path string, aud *audit.Auditor) error {
	blob, err := json.MarshalIndent(aud.Snapshot(), "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(blob, '\n'), 0o644)
}

// WritePerfSnapshot writes the monitor's snapshot into dir twice: PerfFile
// as indented JSON (the same document the introspection server serves at
// /perf, and what `lofttrace perf` reads back) and FoldedFile as folded
// stacks for flamegraph viewers.
func WritePerfSnapshot(dir string, mon *perfmon.Monitor) error {
	snap := mon.Snapshot()
	blob, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(filepath.Join(dir, PerfFile), append(blob, '\n'), 0o644); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(dir, FoldedFile))
	if err != nil {
		return err
	}
	if err := snap.WriteFolded(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// StartCPUProfile begins a pprof CPU profile into dir/CPUProfileFile,
// creating dir if needed. The returned stop function must run before
// WriteRunDir so the profile's final bytes are what the manifest checksums.
func StartCPUProfile(dir string) (stop func(), err error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	return profiles.Start(filepath.Join(dir, CPUProfileFile), "")
}

func writeExport(path string, pr *probe.Probe, f probe.Format) error {
	file, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := probe.Export(file, pr, f); err != nil {
		file.Close()
		return err
	}
	return file.Close()
}

// Metrics assembles the manifest metric map from a run summary and the
// attached layers: headline result metrics, scheduler outcome rates from
// the probe's kind counters, the offline latency decomposition, the
// auditor's delay-bound margin, and the perfmon monitor's stage/engine
// summary metrics. Any of the four sources may be nil.
func Metrics(res *core.Result, pr *probe.Probe, aud *audit.Auditor, mon *perfmon.Monitor, slotCycles uint64) map[string]float64 {
	m := make(map[string]float64)
	if res != nil {
		m["throughput_flits_per_cycle"] = res.TotalRate
		m["packets"] = float64(res.Packets)
		m["avg_latency_cycles"] = res.AvgLatency
		m["p50_latency_cycles"] = res.P50Latency
		m["p99_latency_cycles"] = res.P99Latency
		m["max_latency_cycles"] = float64(res.MaxLatency)
		m["avg_net_latency_cycles"] = res.AvgNetLatency
		m["spec_forwards"] = float64(res.SpecForward)
		m["drops"] = float64(res.Drops)
		m["resets"] = float64(res.Resets)
		if res.FaultsInjected > 0 || res.FlitsLost > 0 || res.Retries > 0 {
			m["faults_injected"] = float64(res.FaultsInjected)
			m["flits_lost"] = float64(res.FlitsLost)
			m["fault_retries"] = float64(res.Retries)
		}
	}
	if pr != nil {
		tr := pr.Tracer()
		grants := float64(tr.Count(probe.KindReserveGrant))
		denies := float64(tr.Count(probe.KindReserveDeny))
		if grants+denies > 0 {
			m["reserve_deny_rate"] = denies / (grants + denies)
		}
		if grants > 0 {
			m["frame_skip_rate"] = float64(tr.Count(probe.KindFrameSkip)) / grants
		}
		if attempts := float64(tr.Count(probe.KindSpecAttempt)); attempts > 0 {
			m["spec_abort_rate"] = float64(tr.Count(probe.KindSpecAbort)) / attempts
		}
		if slotCycles > 0 {
			if d, err := trace.Decompose(pr.Events(), slotCycles, tr.Dropped()); err == nil {
				for k, v := range d.Metrics() {
					m[k] = v
				}
			}
		}
	}
	if aud != nil {
		s := aud.Snapshot()
		m["delay_bound_margin_pct"] = s.WorstMarginPct
		m["audit_violations"] = float64(s.Violations)
	}
	if mon != nil {
		for k, v := range mon.Snapshot().Metrics() {
			m[k] = v
		}
	}
	return m
}

// Describe summarizes what a run directory write produced, for CLI output.
func Describe(dir string, pr *probe.Probe, aud *audit.Auditor, mon *perfmon.Monitor) string {
	parts := []string{}
	if pr != nil {
		parts = append(parts, fmt.Sprintf("%s/%s/%s (%d events retained, %d dropped)",
			EventsFile, SeriesFile, ChromeFile, pr.Tracer().Len(), pr.Tracer().Dropped()))
	}
	if aud != nil {
		parts = append(parts, AuditFile)
	}
	if mon != nil {
		parts = append(parts, fmt.Sprintf("%s/%s", PerfFile, FoldedFile))
	}
	parts = append(parts, trace.ManifestName)
	return fmt.Sprintf("wrote run directory %s: %s", dir, strings.Join(parts, ", "))
}
