package runio

import (
	"os"
	"path/filepath"
	"testing"

	"loft/internal/audit"
	"loft/internal/config"
	"loft/internal/core"
	"loft/internal/perfmon"
	"loft/internal/probe"
	"loft/internal/trace"
	"loft/internal/traffic"
)

func TestIsDirTarget(t *testing.T) {
	dir := t.TempDir()
	plain := filepath.Join(dir, "plain")
	if err := os.WriteFile(plain, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		path string
		want bool
	}{
		{dir, true},                              // existing directory
		{dir + string(os.PathSeparator), true},   // trailing separator
		{filepath.Join(dir, "new") + "/", true},  // nonexistent, spelled as a dir
		{filepath.Join(dir, "out.jsonl"), false}, // nonexistent file path
		{plain, false},                           // existing regular file
	}
	for _, c := range cases {
		if got := IsDirTarget(c.path); got != c.want {
			t.Errorf("IsDirTarget(%q) = %v, want %v", c.path, got, c.want)
		}
	}
}

func testPattern(cfg config.LOFT) *traffic.Pattern {
	return traffic.Uniform(cfg.Mesh(), 0.2, cfg.PacketFlits, cfg.FrameFlits)
}

// TestMetricsFromLiveRun pins the metric names the manifests record — the
// differ's direction table (trace.MetricDirection) keys off these names.
func TestMetricsFromLiveRun(t *testing.T) {
	cfg := config.PaperLOFT()
	p := testPattern(cfg)
	pr := probe.New(probe.Config{EventCap: 1 << 20})
	res, _, err := core.RunLOFT(cfg, p, core.RunSpec{Seed: 7, Warmup: 100, Measure: 1500, Probe: pr})
	if err != nil {
		t.Fatal(err)
	}
	m := Metrics(&res, pr, nil, nil, uint64(cfg.QuantumFlits))
	for _, name := range []string{
		"throughput_flits_per_cycle", "packets",
		"avg_latency_cycles", "p50_latency_cycles", "p99_latency_cycles",
		"decomp_quanta", "decomp_mean_total_cycles",
	} {
		if _, ok := m[name]; !ok {
			t.Errorf("metric %q missing from %v", name, m)
		}
	}
	if m["packets"] <= 0 || m["decomp_quanta"] <= 0 {
		t.Errorf("degenerate run: %v", m)
	}
	// Headline metrics must have a quality direction, or the differ would
	// never flag their regressions.
	for _, name := range []string{"throughput_flits_per_cycle", "avg_latency_cycles", "p99_latency_cycles"} {
		if trace.MetricDirection(name) == trace.Neutral {
			t.Errorf("headline metric %q has no quality direction", name)
		}
	}
	// All four sources nil: empty but non-nil map, no panic.
	if got := Metrics(nil, nil, nil, nil, 0); len(got) != 0 {
		t.Errorf("nil sources produced metrics: %v", got)
	}
}

// TestWriteRunDirWithPerf pins the perf artifact path: a profiled run's
// directory gains perf.json (readable back through perfmon.ReadSnapshot)
// and perf.folded, both checksummed into the manifest, and the manifest
// metrics carry the perf summary values.
func TestWriteRunDirWithPerf(t *testing.T) {
	cfg := config.PaperLOFT()
	p := testPattern(cfg)
	mon := perfmon.New(perfmon.Config{SampleEvery: 8})
	res, _, err := core.RunLOFT(cfg, p, core.RunSpec{Seed: 7, Warmup: 100, Measure: 1000, Perf: mon})
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(t.TempDir(), "run")
	m := trace.Manifest{ManifestVersion: trace.ManifestVersion, Tool: "test",
		Metrics: Metrics(&res, nil, nil, mon, uint64(cfg.QuantumFlits))}
	if err := WriteRunDir(dir, nil, nil, mon, m); err != nil {
		t.Fatal(err)
	}
	snap, err := perfmon.ReadSnapshot(dir)
	if err != nil {
		t.Fatal(err)
	}
	if snap.SampledCycles == 0 || len(snap.Stages) == 0 {
		t.Fatalf("round-tripped snapshot is empty: %+v", snap)
	}
	got, err := trace.ReadManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	names := map[string]bool{}
	for _, a := range got.Artifacts {
		if a.SHA256 == "" || a.Bytes == 0 {
			t.Errorf("artifact %s not checksummed: %+v", a.Name, a)
		}
		names[a.Name] = true
	}
	if !names[PerfFile] || !names[FoldedFile] {
		t.Fatalf("artifacts = %+v, want %s and %s", got.Artifacts, PerfFile, FoldedFile)
	}
	if got.Metrics["perf sampled cycles"] == 0 {
		t.Errorf("manifest metrics missing perf summary: %v", got.Metrics)
	}
	folded, err := os.ReadFile(filepath.Join(dir, FoldedFile))
	if err != nil {
		t.Fatal(err)
	}
	if len(folded) == 0 {
		t.Error("perf.folded is empty")
	}
}

func TestWriteRunDirAuditOnly(t *testing.T) {
	cfg := config.PaperLOFT()
	p := testPattern(cfg)
	aud := audit.New(audit.Config{})
	if _, _, err := core.RunLOFT(cfg, p, core.RunSpec{Seed: 7, Warmup: 100, Measure: 1000, Audit: aud}); err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(t.TempDir(), "run")
	if err := WriteRunDir(dir, nil, aud, nil, trace.Manifest{ManifestVersion: trace.ManifestVersion, Tool: "test"}); err != nil {
		t.Fatal(err)
	}
	m, err := trace.ReadManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Artifacts) != 1 || m.Artifacts[0].Name != AuditFile {
		t.Fatalf("artifacts = %+v, want just %s", m.Artifacts, AuditFile)
	}
	s, err := trace.ReadAuditFile(filepath.Join(dir, AuditFile))
	if err != nil {
		t.Fatal(err)
	}
	if s.Arch == "" || s.PacketsChecked == 0 {
		t.Errorf("snapshot = %+v", s)
	}
}
