package sim

import (
	"fmt"
	"sync"

	"loft/internal/perfmon"
)

// Engine is a simulation clock driver: the sequential Kernel and the
// sharded ParallelKernel both implement it, so networks can be built
// against either without caring which one steps them.
type Engine interface {
	// Now reports the current cycle (the next cycle Step will execute).
	Now() uint64
	// Step executes exactly one cycle.
	Step()
	// Run executes n cycles.
	Run(n uint64)
	// RunUntil steps until pred returns true or limit cycles elapsed,
	// reporting whether pred became true.
	RunUntil(pred func() bool, limit uint64) bool
	// Close releases any resources held by the engine (worker goroutines).
	// A closed engine may be stepped again; it restarts transparently.
	Close()
}

var (
	_ Engine = (*Kernel)(nil)
	_ Engine = (*ParallelKernel)(nil)
)

// shard is one worker's partition of the component lists.
type shard struct {
	tickers  []Ticker
	updaters []Updater
}

// Worker phases. The coordinator writes phase between barriers; workers
// read it after the dispatch channel send, which establishes the required
// happens-before edge.
const (
	phaseTick = iota
	phaseUpdate
)

// workerPanic is one captured worker panic, re-raised by the coordinator.
type workerPanic struct {
	shard int
	value any
}

// ParallelKernel advances the same two-phase cycle as Kernel but shards the
// tickers and updaters across a bounded pool of persistent workers. Each
// cycle runs as
//
//	tick phase (parallel)  — every shard ticks its components for cycle t
//	barrier                — all shards done
//	serial hooks           — deterministic merge/commit work (staged probe
//	                         events, audit ops, stats observations, global
//	                         controllers), in registration order
//	update phase (parallel) — every shard commits its registers
//	barrier                — all shards done; t becomes t+1
//
// The contract that makes this sound is the one Kernel already documents:
// a Tick may only read register state committed in earlier cycles and only
// write the "next" side of registers it owns, so tickers in different
// shards never touch the same memory during a phase. Anything that must
// observe cross-shard state (shared statistics, global frame barriers,
// probe/audit sinks) runs in the serial hooks between the phases, where the
// per-shard staging buffers are replayed in a fixed order — which is how
// results stay byte-identical to the sequential kernel for any worker
// count.
type ParallelKernel struct {
	now    uint64
	shards []shard
	serial []func(now uint64)

	running bool
	phase   int
	cycle   uint64
	work    []chan struct{}
	wg      sync.WaitGroup
	exited  sync.WaitGroup

	// perf is the kernel's telemetry hook (nil = off). The coordinator
	// arms it between barriers and workers read it only inside a dispatched
	// phase, so it needs no synchronization beyond the existing barriers.
	perf *perfmon.EngineTimer

	mu sync.Mutex
	// panics collects panics raised inside worker shards; the coordinator
	// re-raises the first one after the barrier so a scheduler fault aborts
	// the run exactly as it does sequentially.
	//
	//loft:guardedby mu
	panics []workerPanic
}

// NewParallelKernel returns a kernel sharding work across the given number
// of workers (at least 1). Workers start lazily on the first Step.
func NewParallelKernel(workers int) *ParallelKernel {
	if workers < 1 {
		workers = 1
	}
	return &ParallelKernel{shards: make([]shard, workers)}
}

// Workers returns the worker count.
func (k *ParallelKernel) Workers() int { return len(k.shards) }

// Now reports the current cycle (the next cycle to be executed by Step).
func (k *ParallelKernel) Now() uint64 { return k.now }

// AddTicker registers a compute-phase component on the given shard.
func (k *ParallelKernel) AddTicker(sh int, t Ticker) {
	s := &k.shards[sh%len(k.shards)]
	s.tickers = append(s.tickers, t)
	if u, ok := t.(Updater); ok {
		s.updaters = append(s.updaters, u)
	}
}

// AddUpdater registers an update-phase-only component (e.g. a wire
// register) on the given shard. The shard only balances load: barriers
// separate the phases, so any partition of the updaters is correct.
func (k *ParallelKernel) AddUpdater(sh int, u Updater) {
	s := &k.shards[sh%len(k.shards)]
	s.updaters = append(s.updaters, u)
}

// SetPerf attaches an engine telemetry timer (nil detaches). Must be called
// before the first Step, alongside component registration.
func (k *ParallelKernel) SetPerf(t *perfmon.EngineTimer) { k.perf = t }

// AddSerial registers a hook run between the tick barrier and the update
// phase, on the coordinator goroutine, in registration order. Networks use
// it to replay per-shard staging buffers deterministically and to run
// global per-cycle controllers.
func (k *ParallelKernel) AddSerial(f func(now uint64)) {
	k.serial = append(k.serial, f)
}

// start launches the worker pool.
//
//loft:coldpath
func (k *ParallelKernel) start() {
	k.work = make([]chan struct{}, len(k.shards))
	for i := range k.shards {
		ch := make(chan struct{}, 1)
		k.work[i] = ch
		k.exited.Add(1)
		go k.worker(i, ch)
	}
	k.running = true
}

// Close stops the worker pool and waits for it to exit. Safe to call
// multiple times; a later Step restarts the pool.
func (k *ParallelKernel) Close() {
	if !k.running {
		return
	}
	for _, ch := range k.work {
		close(ch)
	}
	k.exited.Wait()
	k.work = nil
	k.running = false
}

func (k *ParallelKernel) worker(i int, ch <-chan struct{}) {
	defer k.exited.Done()
	for range ch {
		k.runShard(i)
	}
}

// runShard executes one phase of one shard. It is the per-cycle worker-side
// hot path: the whole compute phase of every node in the shard runs under
// this frame.
//
//loft:hotpath
func (k *ParallelKernel) runShard(i int) {
	defer k.wg.Done()
	defer func() {
		if r := recover(); r != nil {
			k.mu.Lock()
			k.panics = append(k.panics, workerPanic{shard: i, value: r})
			k.mu.Unlock()
		}
	}()
	var start int64
	if k.perf != nil {
		start = k.perf.WorkerStart()
	}
	sh := &k.shards[i]
	now := k.cycle
	if k.phase == phaseTick {
		for _, t := range sh.tickers {
			t.Tick(now)
		}
		if k.perf != nil {
			k.perf.WorkerDone(i, perfmon.PhaseTick, start)
		}
		return
	}
	for _, u := range sh.updaters {
		u.Update(now)
	}
	if k.perf != nil {
		k.perf.WorkerDone(i, perfmon.PhaseUpdate, start)
	}
}

// dispatch releases every worker for the current phase and waits for the
// barrier.
//
//loft:hotpath
func (k *ParallelKernel) dispatch() {
	k.wg.Add(len(k.work))
	for _, ch := range k.work {
		ch <- struct{}{}
	}
	k.wg.Wait()
	k.checkPanics()
}

// checkPanics re-raises the first captured worker panic on the coordinator.
func (k *ParallelKernel) checkPanics() {
	k.mu.Lock()
	n := len(k.panics)
	var first workerPanic
	if n > 0 {
		first = k.panics[0]
		k.panics = k.panics[:0]
	}
	k.mu.Unlock()
	if n > 0 {
		k.Close()
		panic(fmt.Sprintf("sim: shard %d panicked during cycle %d: %v", first.shard, k.cycle, first.value))
	}
}

// Step executes exactly one cycle: parallel tick, barrier, serial hooks,
// parallel update, barrier.
//
//loft:hotpath
func (k *ParallelKernel) Step() {
	if !k.running {
		k.start()
	}
	k.cycle = k.now
	if k.perf != nil {
		k.perf.CycleStart(k.now)
	}
	k.phase = phaseTick
	k.dispatch()
	if k.perf != nil {
		k.perf.PhaseDone(perfmon.PhaseTick)
	}
	for _, f := range k.serial {
		f(k.cycle)
	}
	if k.perf != nil {
		k.perf.PhaseDone(perfmon.PhaseSerial)
	}
	k.phase = phaseUpdate
	k.dispatch()
	if k.perf != nil {
		k.perf.PhaseDone(perfmon.PhaseUpdate)
	}
	k.now++
}

// Run executes n cycles.
func (k *ParallelKernel) Run(n uint64) {
	for i := uint64(0); i < n; i++ {
		k.Step()
	}
}

// RunUntil steps the kernel until pred returns true or limit cycles
// elapsed. It reports whether pred became true.
func (k *ParallelKernel) RunUntil(pred func() bool, limit uint64) bool {
	for i := uint64(0); i < limit; i++ {
		if pred() {
			return true
		}
		k.Step()
	}
	return pred()
}
