package sim

import (
	"strings"
	"sync/atomic"
	"testing"

	"loft/internal/perfmon"
)

func TestParallelKernelStepsComponents(t *testing.T) {
	k := NewParallelKernel(4)
	defer k.Close()
	cs := make([]*counter, 8)
	for i := range cs {
		cs[i] = &counter{}
		k.AddTicker(i, cs[i])
	}
	k.Run(10)
	for i, c := range cs {
		if c.ticks != 10 || c.updates != 10 {
			t.Fatalf("shard %d: ticks=%d updates=%d, want 10,10", i, c.ticks, c.updates)
		}
		if c.lastNow != 9 {
			t.Fatalf("shard %d: lastNow=%d, want 9", i, c.lastNow)
		}
	}
	if k.Now() != 10 {
		t.Fatalf("Now=%d, want 10", k.Now())
	}
}

func TestParallelKernelClampsWorkers(t *testing.T) {
	k := NewParallelKernel(0)
	defer k.Close()
	if k.Workers() != 1 {
		t.Fatalf("Workers=%d, want 1", k.Workers())
	}
	k.AddTicker(5, &counter{}) // out-of-range shard wraps, must not panic
	k.Run(1)
}

// phaseProbe records the global order of tick, serial, and update callbacks
// so the two barriers can be asserted.
type phaseProbe struct {
	seq *[]string // written only under the kernel's phase structure
	mu  chan struct{}
	tag string
}

func (p *phaseProbe) record(s string) {
	p.mu <- struct{}{}
	*p.seq = append(*p.seq, s)
	<-p.mu
}

func (p *phaseProbe) Tick(now uint64)   { p.record("tick:" + p.tag) }
func (p *phaseProbe) Update(now uint64) { p.record("update:" + p.tag) }

func TestParallelKernelPhaseOrdering(t *testing.T) {
	k := NewParallelKernel(3)
	defer k.Close()
	var seq []string
	mu := make(chan struct{}, 1)
	for i := 0; i < 3; i++ {
		k.AddTicker(i, &phaseProbe{seq: &seq, mu: mu, tag: "x"})
	}
	k.AddSerial(func(now uint64) { seq = append(seq, "serial-a") })
	k.AddSerial(func(now uint64) { seq = append(seq, "serial-b") })
	k.Step()
	if len(seq) != 8 {
		t.Fatalf("got %d events, want 8: %v", len(seq), seq)
	}
	for i, want := range []string{"tick", "tick", "tick", "serial-a", "serial-b", "update", "update", "update"} {
		if !strings.HasPrefix(seq[i], want) {
			t.Fatalf("event %d = %q, want prefix %q (full: %v)", i, seq[i], want, seq)
		}
	}
}

func TestParallelKernelRunUntil(t *testing.T) {
	k := NewParallelKernel(2)
	defer k.Close()
	var ticks atomic.Int64
	k.AddSerial(func(now uint64) { ticks.Add(1) })
	ok := k.RunUntil(func() bool { return ticks.Load() >= 5 }, 100)
	if !ok || ticks.Load() != 5 {
		t.Fatalf("RunUntil: ok=%v ticks=%d", ok, ticks.Load())
	}
	if k.RunUntil(func() bool { return false }, 3) {
		t.Fatal("RunUntil reported success for impossible predicate")
	}
}

func TestParallelKernelCloseRestarts(t *testing.T) {
	k := NewParallelKernel(2)
	c := &counter{}
	k.AddTicker(0, c)
	k.Run(3)
	k.Close()
	k.Close() // idempotent
	k.Run(2)  // restarts the pool transparently
	defer k.Close()
	if c.ticks != 5 || k.Now() != 5 {
		t.Fatalf("ticks=%d Now=%d after restart, want 5,5", c.ticks, k.Now())
	}
}

// TestParallelKernelMoreWorkersThanComponents covers degenerate sharding:
// a pool wider than the component population leaves some shards permanently
// empty, and those workers must still rendezvous at both barriers every
// cycle without stalling or double-stepping the populated shards.
func TestParallelKernelMoreWorkersThanComponents(t *testing.T) {
	k := NewParallelKernel(8)
	defer k.Close()
	cs := make([]*counter, 3)
	for i := range cs {
		cs[i] = &counter{}
		k.AddTicker(i, cs[i])
	}
	var serial uint64
	k.AddSerial(func(now uint64) { serial++ })
	k.Run(25)
	for i, c := range cs {
		if c.ticks != 25 || c.updates != 25 {
			t.Fatalf("shard %d: ticks=%d updates=%d, want 25,25", i, c.ticks, c.updates)
		}
	}
	if serial != 25 || k.Now() != 25 {
		t.Fatalf("serial=%d Now=%d, want 25,25", serial, k.Now())
	}
	// Close-then-restart must also hold with idle shards in the pool.
	k.Close()
	k.Run(5)
	if cs[0].ticks != 30 {
		t.Fatalf("ticks=%d after restart, want 30", cs[0].ticks)
	}
}

func TestParallelKernelPerfTelemetry(t *testing.T) {
	m := perfmon.New(perfmon.Config{SampleEvery: 1, Workers: 2})
	k := NewParallelKernel(2)
	defer k.Close()
	k.SetPerf(m.Engine(k.Workers()))
	for i := 0; i < 4; i++ {
		k.AddTicker(i, &counter{})
	}
	k.AddSerial(func(now uint64) { m.OnCycle(now) })
	k.Run(10)
	s := m.Snapshot()
	if s.Engine == nil {
		t.Fatal("no engine telemetry collected")
	}
	if s.Engine.SampledCycles != 10 || s.Engine.Workers != 2 {
		t.Fatalf("engine stat: %+v", s.Engine)
	}
	for _, w := range s.Engine.PerWorker {
		if w.Phases != 20 { // 10 tick + 10 update phases each
			t.Fatalf("worker %d saw %d phases, want 20", w.Worker, w.Phases)
		}
	}
}

type panicker struct{ at uint64 }

func (p *panicker) Tick(now uint64) {
	if now == p.at {
		panic("boom")
	}
}

func TestParallelKernelPropagatesWorkerPanic(t *testing.T) {
	k := NewParallelKernel(2)
	k.AddTicker(0, &panicker{at: 2})
	k.AddTicker(1, &counter{})
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("worker panic not propagated")
		}
		if s, ok := r.(string); !ok || !strings.Contains(s, "boom") {
			t.Fatalf("panic value %v does not mention cause", r)
		}
	}()
	k.Run(10)
}

// TestParallelMatchesSequential drives the same component graph through both
// kernels: a chain of registers where each stage consumes its predecessor's
// previous-cycle output, the pattern every network in this repo is built on.
func TestParallelMatchesSequential(t *testing.T) {
	build := func(add func(Ticker), addU func(Updater)) (regs []*Reg[int], sums []*int) {
		const stages = 6
		for i := 0; i < stages; i++ {
			regs = append(regs, NewReg[int]("r"))
		}
		for i := 0; i < stages; i++ {
			in := regs[(i+stages-1)%stages]
			out := regs[i]
			sum := new(int)
			sums = append(sums, sum)
			stage := i
			add(tickFunc(func(now uint64) {
				if v, ok := in.Take(); ok {
					*sum += v
					out.Write(v + stage)
				} else if now == 0 && stage == 0 {
					out.Write(1)
				}
			}))
			addU(out)
		}
		return regs, sums
	}

	seqK := NewKernel()
	_, seqSums := build(seqK.Add, seqK.AddUpdater)
	seqK.Run(200)

	parK := NewParallelKernel(4)
	defer parK.Close()
	i := 0
	_, parSums := build(
		func(tk Ticker) { parK.AddTicker(i, tk); i++ },
		func(u Updater) { parK.AddUpdater(i, u) },
	)
	parK.Run(200)

	for j := range seqSums {
		if *seqSums[j] != *parSums[j] {
			t.Fatalf("stage %d diverged: sequential=%d parallel=%d", j, *seqSums[j], *parSums[j])
		}
	}
}

type tickFunc func(now uint64)

func (f tickFunc) Tick(now uint64) { f(now) }
