package sim

// Reg is a one-entry pipeline register carrying values of type T across a
// cycle boundary. A value written during Tick of cycle n becomes readable
// during Tick of cycle n+1. Reg models a wire/latch with one cycle of
// latency; links between routers are built from them.
//
// A Reg holds at most one value per cycle. Writing twice in the same cycle
// panics: it indicates a structural hazard in the model (two drivers on one
// wire), which must be resolved by arbitration in the writer.
type Reg[T any] struct {
	cur, next  T
	curOK      bool
	nextOK     bool
	name       string
	unconsumed bool // cur was not Taken before the next Update
}

// NewReg returns an empty register. The name is used in hazard panics.
func NewReg[T any](name string) *Reg[T] { return &Reg[T]{name: name} }

// Name returns the register's diagnostic name.
func (r *Reg[T]) Name() string { return r.name }

// Peek returns the committed value, if any, without consuming it.
func (r *Reg[T]) Peek() (T, bool) { return r.cur, r.curOK }

// Full reports whether a committed value is present.
func (r *Reg[T]) Full() bool { return r.curOK }

// Take consumes and returns the committed value. The second result is false
// when the register is empty.
func (r *Reg[T]) Take() (T, bool) {
	v, ok := r.cur, r.curOK
	if ok {
		var zero T
		r.cur, r.curOK = zero, false
	}
	return v, ok
}

// Write stores v on the next side of the register. It panics when the next
// side is already occupied, signalling two drivers in the same cycle.
func (r *Reg[T]) Write(v T) {
	if r.nextOK {
		panic("sim: double write to register " + r.name)
	}
	r.next, r.nextOK = v, true
}

// CanWrite reports whether the next side is free this cycle.
func (r *Reg[T]) CanWrite() bool { return !r.nextOK }

// Update commits the next value. An unconsumed committed value is dropped;
// receivers that need back-pressure must model it with credits, exactly as
// the hardware does.
func (r *Reg[T]) Update(uint64) {
	r.unconsumed = r.curOK
	r.cur, r.curOK = r.next, r.nextOK
	var zero T
	r.next, r.nextOK = zero, false
}

// DroppedLast reports whether the previous Update discarded an unconsumed
// value. Integration tests use it as an assertion hook: in a correctly
// credited design no value is ever dropped.
func (r *Reg[T]) DroppedLast() bool { return r.unconsumed }
