package sim

// RNG is a small deterministic xorshift64* pseudo-random generator.
// Every traffic source owns one, seeded from (experiment seed, node id), so
// simulations are reproducible bit-for-bit regardless of scheduling.
type RNG struct{ state uint64 }

// NewRNG returns a generator seeded with s. A zero seed is remapped to a
// fixed non-zero constant because xorshift has a zero fixed point.
func NewRNG(s uint64) *RNG {
	if s == 0 {
		s = 0x9e3779b97f4a7c15
	}
	return &RNG{state: s}
}

// Uint64 returns the next 64 pseudo-random bits.
func (r *RNG) Uint64() uint64 {
	x := r.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.state = x
	return x * 0x2545f4914f6cdd1d
}

// Float64 returns a uniform value in [0,1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0,n). It panics when n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Bernoulli reports true with probability p.
func (r *RNG) Bernoulli(p float64) bool { return r.Float64() < p }

// SeedFor derives a stream seed from an experiment seed and a component id
// using a SplitMix64 step, so per-node streams are decorrelated.
func SeedFor(seed uint64, id int) uint64 {
	z := seed + uint64(id+1)*0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
