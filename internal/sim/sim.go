// Package sim provides the cycle-accurate simulation kernel used by every
// network model in this repository.
//
// The kernel advances a single global clock. Components implement Ticker and
// are stepped in two phases each cycle:
//
//  1. Tick(now): a component reads the *current* outputs of pipeline
//     registers (written in earlier cycles) and writes its own outputs to the
//     *next* side of registers.
//  2. Update(now): every registered register and component commits its next
//     state, making it visible for the following cycle.
//
// Because no component observes a value written during the same Tick phase,
// the simulation result is independent of component iteration order, which
// makes runs deterministic and models a synchronous hardware design with
// one-cycle link and wire latencies.
package sim

// Ticker is a hardware block stepped once per cycle.
type Ticker interface {
	// Tick performs the compute phase for the given cycle. Implementations
	// must only read committed register state and write to the "next" side
	// of registers.
	Tick(now uint64)
}

// Updater is implemented by components that hold internal pipeline state
// which must be committed at the end of each cycle.
type Updater interface {
	Update(now uint64)
}

// Kernel owns the clock and the component list.
type Kernel struct {
	now      uint64
	tickers  []Ticker
	updaters []Updater
}

// NewKernel returns an empty kernel at cycle 0.
func NewKernel() *Kernel { return &Kernel{} }

// Now reports the current cycle (the next cycle to be executed by Step).
func (k *Kernel) Now() uint64 { return k.now }

// Add registers a component. If it also implements Updater the update phase
// is wired automatically.
func (k *Kernel) Add(t Ticker) {
	k.tickers = append(k.tickers, t)
	if u, ok := t.(Updater); ok {
		k.updaters = append(k.updaters, u)
	}
}

// AddUpdater registers an update-phase-only component (e.g. a wire register).
func (k *Kernel) AddUpdater(u Updater) { k.updaters = append(k.updaters, u) }

// Step executes exactly one cycle.
//
//loft:hotpath
func (k *Kernel) Step() {
	now := k.now
	for _, t := range k.tickers {
		t.Tick(now)
	}
	for _, u := range k.updaters {
		u.Update(now)
	}
	k.now++
}

// Run executes n cycles.
func (k *Kernel) Run(n uint64) {
	for i := uint64(0); i < n; i++ {
		k.Step()
	}
}

// RunUntil steps the kernel until pred returns true or limit cycles elapsed.
// It reports whether pred became true.
func (k *Kernel) RunUntil(pred func() bool, limit uint64) bool {
	for i := uint64(0); i < limit; i++ {
		if pred() {
			return true
		}
		k.Step()
	}
	return pred()
}

// Close implements Engine; the sequential kernel holds no resources.
func (k *Kernel) Close() {}
