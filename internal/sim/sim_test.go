package sim

import (
	"testing"
	"testing/quick"
)

type counter struct {
	ticks   int
	updates int
	lastNow uint64
}

func (c *counter) Tick(now uint64)   { c.ticks++; c.lastNow = now }
func (c *counter) Update(now uint64) { c.updates++ }

func TestKernelStepsComponents(t *testing.T) {
	k := NewKernel()
	c := &counter{}
	k.Add(c)
	k.Run(10)
	if c.ticks != 10 || c.updates != 10 {
		t.Fatalf("ticks=%d updates=%d, want 10,10", c.ticks, c.updates)
	}
	if k.Now() != 10 || c.lastNow != 9 {
		t.Fatalf("Now=%d lastNow=%d", k.Now(), c.lastNow)
	}
}

func TestKernelRunUntil(t *testing.T) {
	k := NewKernel()
	c := &counter{}
	k.Add(c)
	ok := k.RunUntil(func() bool { return c.ticks >= 5 }, 100)
	if !ok || c.ticks != 5 {
		t.Fatalf("RunUntil: ok=%v ticks=%d", ok, c.ticks)
	}
	if k.RunUntil(func() bool { return false }, 3) {
		t.Fatal("RunUntil reported success for impossible predicate")
	}
}

func TestRegOneCycleLatency(t *testing.T) {
	r := NewReg[int]("t")
	if _, ok := r.Peek(); ok {
		t.Fatal("fresh register not empty")
	}
	r.Write(42)
	if _, ok := r.Peek(); ok {
		t.Fatal("write visible before update")
	}
	r.Update(0)
	v, ok := r.Take()
	if !ok || v != 42 {
		t.Fatalf("Take = (%d,%v), want (42,true)", v, ok)
	}
	if _, ok := r.Take(); ok {
		t.Fatal("double take")
	}
}

func TestRegDoubleWritePanics(t *testing.T) {
	r := NewReg[int]("t")
	r.Write(1)
	defer func() {
		if recover() == nil {
			t.Fatal("double write did not panic")
		}
	}()
	r.Write(2)
}

func TestRegDropDetection(t *testing.T) {
	r := NewReg[int]("t")
	r.Write(1)
	r.Update(0)
	// Value not taken before next update: dropped.
	r.Write(2)
	r.Update(1)
	if !r.DroppedLast() {
		t.Fatal("drop not detected")
	}
	if v, _ := r.Take(); v != 2 {
		t.Fatalf("got %d, want 2", v)
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(7), NewRNG(7)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same-seed streams diverged")
		}
	}
	c := NewRNG(8)
	same := 0
	a = NewRNG(7)
	for i := 0; i < 100; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds collide %d/100 times", same)
	}
}

func TestRNGZeroSeed(t *testing.T) {
	r := NewRNG(0)
	if r.Uint64() == 0 && r.Uint64() == 0 {
		t.Fatal("zero seed stuck at zero")
	}
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(3)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 = %f out of [0,1)", f)
		}
	}
}

func TestRNGIntnRange(t *testing.T) {
	if err := quick.Check(func(seed uint64, n uint8) bool {
		r := NewRNG(seed)
		m := int(n%100) + 1
		for i := 0; i < 50; i++ {
			v := r.Intn(m)
			if v < 0 || v >= m {
				return false
			}
		}
		return true
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRNGBernoulliRate(t *testing.T) {
	r := NewRNG(11)
	hits := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if r.Bernoulli(0.3) {
			hits++
		}
	}
	rate := float64(hits) / n
	if rate < 0.28 || rate > 0.32 {
		t.Fatalf("Bernoulli(0.3) rate = %f", rate)
	}
}

func TestSeedForDecorrelates(t *testing.T) {
	seen := map[uint64]bool{}
	for i := 0; i < 1000; i++ {
		s := SeedFor(42, i)
		if seen[s] {
			t.Fatalf("seed collision at id %d", i)
		}
		seen[s] = true
	}
}
