package stats

import (
	"fmt"
	"math/bits"
)

// Histogram is a fixed-size power-of-two-bucketed histogram of uint64
// samples (cycle latencies). Bucket i holds the values whose bit length is
// i, i.e. [2^(i-1), 2^i - 1] for i ≥ 1 and the single value 0 for i = 0, so
// observation is O(1), allocation-free, and the full dynamic range of a
// latency is covered with 65 counters. The zero value is ready to use.
type Histogram struct {
	buckets [65]uint64
	count   uint64
	sum     uint64
	max     uint64
}

// Observe records one sample.
func (h *Histogram) Observe(v uint64) {
	h.buckets[bits.Len64(v)]++
	h.count++
	h.sum += v
	if v > h.max {
		h.max = v
	}
}

// Count returns the number of samples observed.
func (h *Histogram) Count() uint64 { return h.count }

// Max returns the largest sample observed (0 when empty).
func (h *Histogram) Max() uint64 { return h.max }

// Mean returns the arithmetic mean of the samples (0 when empty).
func (h *Histogram) Mean() float64 {
	if h.count == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.count)
}

// HistBucket is one non-empty histogram bucket covering [Lo, Hi].
type HistBucket struct {
	Lo, Hi uint64
	Count  uint64
}

// Buckets returns the non-empty buckets in increasing order.
func (h *Histogram) Buckets() []HistBucket {
	var out []HistBucket
	for i, c := range h.buckets {
		if c == 0 {
			continue
		}
		b := HistBucket{Count: c}
		if i > 0 {
			b.Lo = uint64(1) << (i - 1)
			b.Hi = b.Lo<<1 - 1
		}
		out = append(out, b)
	}
	return out
}

// String renders the non-empty buckets as a compact one-line summary.
func (h *Histogram) String() string {
	s := ""
	for _, b := range h.Buckets() {
		if s != "" {
			s += " "
		}
		s += fmt.Sprintf("[%d,%d]:%d", b.Lo, b.Hi, b.Count)
	}
	if s == "" {
		return "(empty)"
	}
	return s
}
