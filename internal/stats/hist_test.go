package stats

import "testing"

func TestHistogramBuckets(t *testing.T) {
	var h Histogram
	for _, v := range []uint64{0, 1, 2, 3, 4, 100, 100, 1 << 40} {
		h.Observe(v)
	}
	if h.Count() != 8 {
		t.Fatalf("count = %d, want 8", h.Count())
	}
	if h.Max() != 1<<40 {
		t.Fatalf("max = %d, want %d", h.Max(), uint64(1)<<40)
	}
	want := []HistBucket{
		{0, 0, 1},    // 0
		{1, 1, 1},    // 1
		{2, 3, 2},    // 2, 3
		{4, 7, 1},    // 4
		{64, 127, 2}, // 100 ×2
		{1 << 40, 1<<41 - 1, 1},
	}
	got := h.Buckets()
	if len(got) != len(want) {
		t.Fatalf("buckets = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("bucket %d = %v, want %v", i, got[i], want[i])
		}
	}
	wantMean := float64(0+1+2+3+4+100+100+(1<<40)) / 8
	if h.Mean() != wantMean {
		t.Errorf("mean = %g, want %g", h.Mean(), wantMean)
	}
}

func TestHistogramEmpty(t *testing.T) {
	var h Histogram
	if h.Count() != 0 || h.Max() != 0 || h.Mean() != 0 {
		t.Fatal("empty histogram not zero-valued")
	}
	if got := h.Buckets(); got != nil {
		t.Fatalf("empty buckets = %v", got)
	}
	if h.String() != "(empty)" {
		t.Fatalf("empty string = %q", h.String())
	}
}
