// Package stats collects the metrics the paper reports: per-flow and
// aggregate accepted throughput (flits/cycle/node), packet latency
// (average/max/percentiles), and fairness summaries (MAX/MIN/AVG/STDEV of
// per-flow throughput, Fig. 10).
package stats

import (
	"math"
	"sort"

	"loft/internal/flit"
	"loft/internal/sim"
)

// Latency accumulates packet latencies observed after a warmup boundary.
// Percentiles are computed over a uniform reservoir of bounded size: when
// more than capHint packets arrive, each later packet replaces a random
// retained sample with probability capHint/count (Vitter's algorithm R), so
// every packet of the run is equally likely to be retained. The reservoir
// RNG is deterministic (seeded from the run seed via sim.SeedFor), keeping
// results bit-for-bit reproducible.
type Latency struct {
	warmup  uint64
	sum     float64
	count   uint64
	max     uint64
	samples []float64 // uniform reservoir for percentiles
	capHint int
	rng     *sim.RNG
}

// latencyStream decorrelates the reservoir RNG from the traffic streams
// that share the same experiment seed.
const latencyStream = 0x10a7e9c1

// NewLatency returns a collector that ignores packets created before warmup,
// with a fixed reservoir seed. Prefer NewLatencySeeded inside simulations so
// the reservoir follows the run seed.
func NewLatency(warmup uint64) *Latency { return NewLatencySeeded(warmup, 0) }

// NewLatencySeeded returns a collector whose percentile reservoir is driven
// by the given run seed.
func NewLatencySeeded(warmup, seed uint64) *Latency {
	return &Latency{
		warmup:  warmup,
		capHint: 1 << 16,
		rng:     sim.NewRNG(sim.SeedFor(seed, latencyStream)),
	}
}

// Observe records one packet latency for a packet created at created and
// fully ejected at done.
func (l *Latency) Observe(created, done uint64) {
	if created < l.warmup {
		return
	}
	lat := done - created
	l.sum += float64(lat)
	l.count++
	if lat > l.max {
		l.max = lat
	}
	if len(l.samples) < l.capHint {
		l.samples = append(l.samples, float64(lat))
		return
	}
	// Reservoir step: keep each of the count packets with equal probability.
	if j := l.rng.Intn(int(l.count)); j < l.capHint {
		l.samples[j] = float64(lat)
	}
}

// Count returns the number of recorded packets.
func (l *Latency) Count() uint64 { return l.count }

// Warmup returns the collector's warmup boundary.
func (l *Latency) Warmup() uint64 { return l.warmup }

// Mean returns the average latency in cycles (0 when empty).
func (l *Latency) Mean() float64 {
	if l.count == 0 {
		return 0
	}
	return l.sum / float64(l.count)
}

// Max returns the maximum observed latency.
func (l *Latency) Max() uint64 { return l.max }

// Percentile returns the p-th percentile (0..100) over retained samples.
func (l *Latency) Percentile(p float64) float64 {
	if len(l.samples) == 0 {
		return 0
	}
	s := append([]float64(nil), l.samples...)
	sort.Float64s(s)
	idx := int(math.Ceil(p/100*float64(len(s)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(s) {
		idx = len(s) - 1
	}
	return s[idx]
}

// FlowLatency tracks per-flow packet latency summaries (Fig. 12 reports
// per-flow curves).
type FlowLatency struct {
	warmup uint64
	sum    map[flit.FlowID]float64
	count  map[flit.FlowID]uint64
	max    map[flit.FlowID]uint64
}

// NewFlowLatency returns a per-flow collector with the given warmup.
func NewFlowLatency(warmup uint64) *FlowLatency {
	return &FlowLatency{
		warmup: warmup,
		sum:    make(map[flit.FlowID]float64),
		count:  make(map[flit.FlowID]uint64),
		max:    make(map[flit.FlowID]uint64),
	}
}

// Observe records one packet of flow f created at created, delivered at
// done.
func (l *FlowLatency) Observe(f flit.FlowID, created, done uint64) {
	if created < l.warmup {
		return
	}
	lat := done - created
	l.sum[f] += float64(lat)
	l.count[f]++
	if lat > l.max[f] {
		l.max[f] = lat
	}
}

// Mean returns flow f's average latency (0 when no packets).
func (l *FlowLatency) Mean(f flit.FlowID) float64 {
	if l.count[f] == 0 {
		return 0
	}
	return l.sum[f] / float64(l.count[f])
}

// Max returns flow f's maximum latency.
func (l *FlowLatency) Max(f flit.FlowID) uint64 { return l.max[f] }

// Count returns flow f's packet count.
func (l *FlowLatency) Count(f flit.FlowID) uint64 { return l.count[f] }

// Throughput counts ejected flits per flow over a measurement window.
//
// Window rules: the window starts at warmup and ends at the Close cycle, or
// — when Close is never called — one past the last *measured* (post-warmup)
// ejection. Pre-warmup ejections never move the window: a run that ends
// during warmup has an empty window, and flits ignored by the warmup cut
// cannot inflate the denominator of every rate.
type Throughput struct {
	warmup uint64
	start  uint64 // first counted cycle (= warmup)
	end    uint64 // one past the last measured ejection, or the Close cycle
	byFlow map[flit.FlowID]uint64
	byNode map[int]uint64
	total  uint64
}

// NewThroughput returns a collector ignoring flits ejected before warmup.
func NewThroughput(warmup uint64) *Throughput {
	return &Throughput{
		warmup: warmup,
		start:  warmup,
		byFlow: make(map[flit.FlowID]uint64),
		byNode: make(map[int]uint64),
	}
}

// Observe records ejection of one flit of flow f, sourced at node src, at
// cycle now.
func (t *Throughput) Observe(f flit.FlowID, src int, now uint64) {
	t.ObserveN(f, src, 1, now)
}

// ObserveN records ejection of n flits of flow f, sourced at node src, all
// at cycle now. Quantum ejections land whole quanta per cycle, so batching
// the count into one call replaces n map updates with one on the hot path.
func (t *Throughput) ObserveN(f flit.FlowID, src, n int, now uint64) {
	if n <= 0 || now < t.warmup {
		return
	}
	if now+1 > t.end {
		t.end = now + 1
	}
	t.byFlow[f] += uint64(n)
	t.byNode[src] += uint64(n)
	t.total += uint64(n)
}

// Close fixes the measurement window end at the given cycle (call after the
// run). It never shrinks a window already extended by later observations.
func (t *Throughput) Close(now uint64) {
	if now > t.end {
		t.end = now
	}
}

func (t *Throughput) window() float64 {
	if t.end <= t.start {
		return 1
	}
	return float64(t.end - t.start)
}

// Flow returns flow f's accepted rate in flits/cycle.
func (t *Throughput) Flow(f flit.FlowID) float64 {
	return float64(t.byFlow[f]) / t.window()
}

// Node returns the accepted rate of traffic sourced at node in flits/cycle.
func (t *Throughput) Node(node int) float64 {
	return float64(t.byNode[node]) / t.window()
}

// Total returns the aggregate accepted rate in flits/cycle (all nodes).
func (t *Throughput) Total() float64 { return float64(t.total) / t.window() }

// TotalFlits returns the raw counted flits.
func (t *Throughput) TotalFlits() uint64 { return t.total }

// Summary is the MAX/MIN/AVG/STDEV row format of Fig. 10.
type Summary struct {
	Max, Min, Avg float64
	// Stdev is the relative standard deviation (stdev/avg), matching the
	// percentage column of Fig. 10.
	Stdev float64
	N     int
}

// Summarize computes a fairness summary over per-flow rates.
func Summarize(rates []float64) Summary {
	if len(rates) == 0 {
		return Summary{}
	}
	s := Summary{Min: math.Inf(1), Max: math.Inf(-1), N: len(rates)}
	var sum float64
	for _, r := range rates {
		sum += r
		if r > s.Max {
			s.Max = r
		}
		if r < s.Min {
			s.Min = r
		}
	}
	s.Avg = sum / float64(len(rates))
	var ss float64
	for _, r := range rates {
		d := r - s.Avg
		ss += d * d
	}
	sd := math.Sqrt(ss / float64(len(rates)))
	if s.Avg != 0 {
		s.Stdev = sd / s.Avg
	}
	return s
}
