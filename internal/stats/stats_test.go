package stats

import (
	"math"
	"testing"

	"loft/internal/flit"
)

func TestLatencyBasics(t *testing.T) {
	l := NewLatency(100)
	l.Observe(50, 90) // before warmup: ignored
	l.Observe(100, 110)
	l.Observe(200, 240)
	if l.Count() != 2 {
		t.Fatalf("count = %d", l.Count())
	}
	if l.Mean() != 25 {
		t.Fatalf("mean = %f", l.Mean())
	}
	if l.Max() != 40 {
		t.Fatalf("max = %d", l.Max())
	}
}

func TestLatencyPercentile(t *testing.T) {
	l := NewLatency(0)
	for i := uint64(1); i <= 100; i++ {
		l.Observe(0, i)
	}
	if p := l.Percentile(50); p != 50 {
		t.Fatalf("p50 = %f", p)
	}
	if p := l.Percentile(99); p != 99 {
		t.Fatalf("p99 = %f", p)
	}
	empty := NewLatency(0)
	if empty.Percentile(99) != 0 {
		t.Fatal("empty percentile should be 0")
	}
}

func TestFlowLatency(t *testing.T) {
	l := NewFlowLatency(10)
	l.Observe(1, 5, 10) // pre-warmup
	l.Observe(1, 10, 30)
	l.Observe(1, 20, 60)
	l.Observe(2, 10, 15)
	if l.Count(1) != 2 || l.Mean(1) != 30 || l.Max(1) != 40 {
		t.Fatalf("flow 1: count=%d mean=%f max=%d", l.Count(1), l.Mean(1), l.Max(1))
	}
	if l.Mean(2) != 5 {
		t.Fatalf("flow 2 mean = %f", l.Mean(2))
	}
	if l.Mean(3) != 0 {
		t.Fatal("unknown flow should be 0")
	}
}

func TestThroughputWindows(t *testing.T) {
	th := NewThroughput(100)
	for now := uint64(0); now < 300; now++ {
		th.Observe(1, 3, now) // 1 flit/cycle
	}
	th.Close(300)
	if r := th.Flow(1); math.Abs(r-1.0) > 0.01 {
		t.Fatalf("flow rate = %f, want ~1 (warmup excluded)", r)
	}
	if r := th.Node(3); math.Abs(r-1.0) > 0.01 {
		t.Fatalf("node rate = %f", r)
	}
	if th.Total() != th.Flow(1) {
		t.Fatal("total != single flow rate")
	}
}

func TestLatencyReservoirDeterministic(t *testing.T) {
	mk := func(seed uint64) *Latency {
		l := NewLatencySeeded(0, seed)
		l.capHint = 64
		for i := uint64(0); i < 5000; i++ {
			l.Observe(0, 1+i%977)
		}
		return l
	}
	a, b := mk(7), mk(7)
	for _, p := range []float64{10, 50, 90, 99} {
		if a.Percentile(p) != b.Percentile(p) {
			t.Fatalf("p%.0f differs across same-seed runs: %f vs %f", p, a.Percentile(p), b.Percentile(p))
		}
	}
	c := mk(8)
	diff := false
	for _, p := range []float64{10, 50, 90, 99} {
		if a.Percentile(p) != c.Percentile(p) {
			diff = true
		}
	}
	if !diff {
		t.Fatal("different seeds produced identical reservoirs (suspicious)")
	}
}

func TestLatencyReservoirUniform(t *testing.T) {
	// Feed an increasing ramp far larger than the reservoir. A uniform
	// reservoir keeps late samples as readily as early ones, so the median
	// of the retained set tracks the true median; the old first-capHint
	// policy would have frozen the reservoir on the lowest values.
	l := NewLatencySeeded(0, 3)
	l.capHint = 200
	const n = 20000
	for i := uint64(1); i <= n; i++ {
		l.Observe(0, i)
	}
	if len(l.samples) != l.capHint {
		t.Fatalf("reservoir size = %d, want %d", len(l.samples), l.capHint)
	}
	med := l.Percentile(50)
	if med < 0.35*n || med > 0.65*n {
		t.Fatalf("median of retained samples = %f, want near %d", med, n/2)
	}
	if p99 := l.Percentile(99); p99 < 0.85*n {
		t.Fatalf("p99 = %f, tail not represented", p99)
	}
}

func TestThroughputPreWarmupWindow(t *testing.T) {
	// Pre-warmup ejections must not open or extend the measurement window.
	th := NewThroughput(100)
	th.Observe(1, 0, 50)
	th.Observe(1, 0, 99)
	if th.TotalFlits() != 0 {
		t.Fatalf("pre-warmup flits counted: %d", th.TotalFlits())
	}
	if th.end != 0 {
		t.Fatalf("pre-warmup observation advanced end to %d", th.end)
	}
	if th.Total() != 0 {
		t.Fatalf("rate with empty window = %f, want 0", th.Total())
	}
	// First measured ejection opens the window at warmup.
	th.Observe(1, 0, 150)
	if th.end != 151 {
		t.Fatalf("end = %d, want 151", th.end)
	}
	if r := th.Flow(1); math.Abs(r-1.0/51) > 1e-12 {
		t.Fatalf("flow rate = %f, want %f", r, 1.0/51)
	}
	// Close extends but never shrinks the window.
	th.Close(120)
	if th.end != 151 {
		t.Fatalf("Close shrank end to %d", th.end)
	}
	th.Close(200)
	if th.end != 200 {
		t.Fatalf("Close did not extend end: %d", th.end)
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4})
	if s.Min != 1 || s.Max != 4 || s.Avg != 2.5 || s.N != 4 {
		t.Fatalf("summary = %+v", s)
	}
	wantSD := math.Sqrt(1.25) / 2.5
	if math.Abs(s.Stdev-wantSD) > 1e-9 {
		t.Fatalf("stdev = %f, want %f", s.Stdev, wantSD)
	}
	if z := Summarize(nil); z.N != 0 || z.Avg != 0 {
		t.Fatalf("empty summary = %+v", z)
	}
}

// TestThroughputObserveNEquivalence checks that one ObserveN(n) call is
// indistinguishable from n Observe calls at the same cycle — the contract
// the LOFT network's batched quantum ejection accounting relies on — and
// that non-positive counts and pre-warmup batches are ignored.
func TestThroughputObserveNEquivalence(t *testing.T) {
	one := NewThroughput(10)
	batch := NewThroughput(10)
	obs := []struct {
		flow flit.FlowID
		src  int
		n    int
		now  uint64
	}{
		{1, 0, 4, 5},  // pre-warmup: both must drop it
		{1, 0, 4, 12}, // measured
		{2, 3, 1, 12},
		{1, 0, 7, 20},
		{2, 3, 0, 25},  // n=0: no-op, must not extend the window
		{2, 3, -2, 25}, // negative: no-op
	}
	for _, o := range obs {
		for i := 0; i < o.n; i++ {
			one.Observe(o.flow, o.src, o.now)
		}
		batch.ObserveN(o.flow, o.src, o.n, o.now)
	}
	if a, b := one.TotalFlits(), batch.TotalFlits(); a != b {
		t.Fatalf("TotalFlits: per-flit %d, batched %d", a, b)
	}
	for _, f := range []flit.FlowID{1, 2, 3} {
		if a, b := one.Flow(f), batch.Flow(f); a != b {
			t.Fatalf("Flow(%d): per-flit %v, batched %v", f, a, b)
		}
	}
	for _, n := range []int{0, 3, 5} {
		if a, b := one.Node(n), batch.Node(n); a != b {
			t.Fatalf("Node(%d): per-flit %v, batched %v", n, a, b)
		}
	}
	if a, b := one.Total(), batch.Total(); a != b {
		t.Fatalf("Total: per-flit %v, batched %v", a, b)
	}
	if got, want := batch.Total(), 12.0/11.0; got != want {
		t.Fatalf("Total = %v, want %v (12 flits over window [10,21))", got, want)
	}
}
