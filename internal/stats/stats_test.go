package stats

import (
	"math"
	"testing"
)

func TestLatencyBasics(t *testing.T) {
	l := NewLatency(100)
	l.Observe(50, 90) // before warmup: ignored
	l.Observe(100, 110)
	l.Observe(200, 240)
	if l.Count() != 2 {
		t.Fatalf("count = %d", l.Count())
	}
	if l.Mean() != 25 {
		t.Fatalf("mean = %f", l.Mean())
	}
	if l.Max() != 40 {
		t.Fatalf("max = %d", l.Max())
	}
}

func TestLatencyPercentile(t *testing.T) {
	l := NewLatency(0)
	for i := uint64(1); i <= 100; i++ {
		l.Observe(0, i)
	}
	if p := l.Percentile(50); p != 50 {
		t.Fatalf("p50 = %f", p)
	}
	if p := l.Percentile(99); p != 99 {
		t.Fatalf("p99 = %f", p)
	}
	empty := NewLatency(0)
	if empty.Percentile(99) != 0 {
		t.Fatal("empty percentile should be 0")
	}
}

func TestFlowLatency(t *testing.T) {
	l := NewFlowLatency(10)
	l.Observe(1, 5, 10) // pre-warmup
	l.Observe(1, 10, 30)
	l.Observe(1, 20, 60)
	l.Observe(2, 10, 15)
	if l.Count(1) != 2 || l.Mean(1) != 30 || l.Max(1) != 40 {
		t.Fatalf("flow 1: count=%d mean=%f max=%d", l.Count(1), l.Mean(1), l.Max(1))
	}
	if l.Mean(2) != 5 {
		t.Fatalf("flow 2 mean = %f", l.Mean(2))
	}
	if l.Mean(3) != 0 {
		t.Fatal("unknown flow should be 0")
	}
}

func TestThroughputWindows(t *testing.T) {
	th := NewThroughput(100)
	for now := uint64(0); now < 300; now++ {
		th.Observe(1, 3, now) // 1 flit/cycle
	}
	th.Close(300)
	if r := th.Flow(1); math.Abs(r-1.0) > 0.01 {
		t.Fatalf("flow rate = %f, want ~1 (warmup excluded)", r)
	}
	if r := th.Node(3); math.Abs(r-1.0) > 0.01 {
		t.Fatalf("node rate = %f", r)
	}
	if th.Total() != th.Flow(1) {
		t.Fatal("total != single flow rate")
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4})
	if s.Min != 1 || s.Max != 4 || s.Avg != 2.5 || s.N != 4 {
		t.Fatalf("summary = %+v", s)
	}
	wantSD := math.Sqrt(1.25) / 2.5
	if math.Abs(s.Stdev-wantSD) > 1e-9 {
		t.Fatalf("stdev = %f, want %f", s.Stdev, wantSD)
	}
	if z := Summarize(nil); z.N != 0 || z.Avg != 0 {
		t.Fatalf("empty summary = %+v", z)
	}
}
