// Package sweep is the parallel experiment engine: it fans independent,
// deterministically-seeded simulation runs out across a bounded worker pool
// and collects their results in submission order.
//
// Determinism contract: every job owns its entire mutable state — its
// network, its RNGs (seeded from the job's own seed), its stats collectors.
// Jobs communicate only through their return values, which the runner
// stores at the job's index. Under that contract the assembled result slice
// is byte-identical whatever the worker count, so parallel sweeps reproduce
// the sequential runner exactly; internal/exp's determinism tests and the
// -race run of this package enforce it.
//
// The pool is bounded: at most Workers(j) jobs run concurrently, excess
// jobs queue. Workers(0) resolves to GOMAXPROCS, which is what the CLIs'
// -j 0 default maps to.
package sweep

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// progress tracks finished-job counts for WithProgress callbacks. Workers
// finish jobs concurrently, so the count lives behind a mutex; the callback
// runs under the same mutex, which serializes invocations and makes the
// observed done sequence monotonic (an atomic counter would allow a later
// count to be delivered before an earlier one).
type progress struct {
	mu   sync.Mutex
	done int //loft:guardedby mu

	total int
	fn    func(done, total int)
}

// finish records one finished job and reports it to the callback, if any.
func (p *progress) finish() {
	if p.fn == nil {
		return
	}
	p.mu.Lock()
	p.done++
	p.fn(p.done, p.total)
	p.mu.Unlock()
}

// Workers resolves a -j style worker-count flag: values <= 0 select
// GOMAXPROCS (one worker per schedulable CPU).
func Workers(j int) int {
	if j <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return j
}

// Option configures a Run call.
type Option func(*options)

type options struct {
	progress func(done, total int)
}

// WithProgress registers fn to be invoked after every job finishes (whether
// it succeeded or failed) with the count of finished jobs so far and the
// total. On parallel runs fn is called from worker goroutines, possibly
// concurrently, so it must be safe for concurrent use.
func WithProgress(fn func(done, total int)) Option {
	return func(o *options) { o.progress = fn }
}

// Run executes n independent jobs on a pool of Workers(workers) goroutines
// and returns their results in index order. fn must be safe for concurrent
// invocation with distinct indices and must not share mutable state between
// indices. If any job fails, Run returns the error of the lowest-indexed
// failing job (matching what a sequential loop would have surfaced first)
// after all started jobs finish; results are discarded on error.
//
// A panicking job is converted into an error (a panic inside a worker
// goroutine would otherwise kill the process with no context about which
// job died); the same conversion applies on the sequential path so both
// behave identically.
//
// With one worker — or one job — Run degenerates to a plain sequential
// loop on the calling goroutine, preserving exact call order.
func Run[T any](workers, n int, fn func(i int) (T, error), opts ...Option) ([]T, error) {
	if n <= 0 {
		return nil, nil
	}
	var o options
	for _, opt := range opts {
		opt(&o)
	}
	prog := &progress{total: n, fn: o.progress}
	w := Workers(workers)
	if w > n {
		w = n
	}
	results := make([]T, n)
	if w == 1 {
		for i := 0; i < n; i++ {
			r, err := call(i, fn)
			prog.finish()
			if err != nil {
				return nil, err
			}
			results[i] = r
		}
		return results, nil
	}
	errs := make([]error, n)
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(w)
	for g := 0; g < w; g++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				r, err := call(i, fn)
				prog.finish()
				if err != nil {
					errs[i] = err
					continue
				}
				results[i] = r
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return results, nil
}

// call invokes fn(i), converting a panic into an error.
func call[T any](i int, fn func(i int) (T, error)) (r T, err error) {
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("sweep: job %d panicked: %v", i, p)
		}
	}()
	return fn(i)
}
