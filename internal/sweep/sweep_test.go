package sweep

import (
	"errors"
	"fmt"
	"reflect"
	"runtime"
	"sync/atomic"
	"testing"

	"loft/internal/sim"
)

func TestWorkersResolution(t *testing.T) {
	if got := Workers(0); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(0) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Workers(-3); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(-3) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Workers(5); got != 5 {
		t.Fatalf("Workers(5) = %d", got)
	}
}

func TestRunEmpty(t *testing.T) {
	out, err := Run(4, 0, func(i int) (int, error) { return i, nil })
	if err != nil || out != nil {
		t.Fatalf("Run(n=0) = %v, %v", out, err)
	}
}

func TestRunOrderedResults(t *testing.T) {
	for _, workers := range []int{1, 2, 8, 64} {
		out, err := Run(workers, 100, func(i int) (int, error) { return i * i, nil })
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, v := range out {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

// TestRunDeterministic asserts the core determinism contract: jobs that own
// their RNGs produce identical results whatever the worker count.
func TestRunDeterministic(t *testing.T) {
	job := func(i int) ([]uint64, error) {
		rng := sim.NewRNG(sim.SeedFor(uint64(i), 42))
		out := make([]uint64, 32)
		for j := range out {
			out[j] = uint64(rng.Intn(1 << 30))
		}
		return out, nil
	}
	seq, err := Run(1, 16, job)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 8} {
		par, err := Run(workers, 16, job)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(seq, par) {
			t.Fatalf("workers=%d diverged from sequential", workers)
		}
	}
}

func TestRunFirstErrorWins(t *testing.T) {
	for _, workers := range []int{1, 4} {
		out, err := Run(workers, 10, func(i int) (int, error) {
			if i == 7 || i == 3 {
				return 0, fmt.Errorf("job %d failed", i)
			}
			return i, nil
		})
		if out != nil {
			t.Fatalf("workers=%d: results returned despite error", workers)
		}
		if err == nil {
			t.Fatalf("workers=%d: error swallowed", workers)
		}
		// The parallel pool must surface the lowest-indexed failure, exactly
		// as a sequential loop would (modulo the sequential loop stopping
		// early — index 3 fails before 7 either way).
		if workers > 1 && err.Error() != "job 3 failed" {
			t.Fatalf("workers=%d: err = %q, want job 3's", workers, err)
		}
	}
}

func TestRunConvertsPanics(t *testing.T) {
	for _, workers := range []int{1, 4} {
		_, err := Run(workers, 4, func(i int) (int, error) {
			if i == 2 {
				panic("boom")
			}
			return i, nil
		})
		if err == nil {
			t.Fatalf("workers=%d: panic not converted to error", workers)
		}
	}
}

// TestRunBoundedConcurrency verifies the pool never runs more than the
// requested number of jobs at once.
func TestRunBoundedConcurrency(t *testing.T) {
	const workers = 3
	var live, peak atomic.Int64
	_, err := Run(workers, 64, func(i int) (int, error) {
		n := live.Add(1)
		for {
			p := peak.Load()
			if n <= p || peak.CompareAndSwap(p, n) {
				break
			}
		}
		for j := 0; j < 1000; j++ {
			_ = j * j // busy moment so jobs overlap
		}
		live.Add(-1)
		return i, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > workers {
		t.Fatalf("observed %d concurrent jobs, pool bound is %d", p, workers)
	}
}

func TestRunErrorIsTheJobsError(t *testing.T) {
	sentinel := errors.New("sentinel")
	_, err := Run(4, 8, func(i int) (int, error) {
		if i == 0 {
			return 0, sentinel
		}
		return i, nil
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want sentinel", err)
	}
}

func TestRunWithProgress(t *testing.T) {
	for _, workers := range []int{1, 4} {
		var calls atomic.Int64
		var maxDone atomic.Int64
		_, err := Run(workers, 9, func(i int) (int, error) {
			return i, nil
		}, WithProgress(func(done, total int) {
			calls.Add(1)
			if total != 9 {
				t.Errorf("total = %d, want 9", total)
			}
			if d := int64(done); d > maxDone.Load() {
				maxDone.Store(d)
			}
		}))
		if err != nil {
			t.Fatal(err)
		}
		if calls.Load() != 9 || maxDone.Load() != 9 {
			t.Fatalf("workers=%d: %d progress calls, max done %d, want 9/9",
				workers, calls.Load(), maxDone.Load())
		}
	}
}

func TestRunProgressCountsFailedJobs(t *testing.T) {
	var calls atomic.Int64
	_, err := Run(1, 3, func(i int) (int, error) {
		if i == 1 {
			return 0, errors.New("boom")
		}
		return i, nil
	}, WithProgress(func(done, total int) { calls.Add(1) }))
	if err == nil {
		t.Fatal("error swallowed")
	}
	// Sequential path stops at the failure, but the failing job itself
	// must still have been counted.
	if calls.Load() != 2 {
		t.Fatalf("%d progress calls, want 2 (job 0 + failing job 1)", calls.Load())
	}
}
