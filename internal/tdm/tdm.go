// Package tdm implements an Æthereal-style time-division-multiplexed
// circuit-switched NoC (paper §2.2, [14]): every flow is mapped to a
// virtual circuit by reserving time slots on each link of its path at
// compile time, pipelined hop by hop. The network then needs no arbitration
// or buffering — flits ride their slots deterministically.
//
// TDM gives hard bandwidth and latency guarantees but, as the paper points
// out, "does not allow guaranteed flows to use excess bandwidth when the
// network is under-utilized": a flow is pinned to its reserved slots no
// matter how idle the network is. The cost-of-rigidity benchmark contrasts
// this with LOFT's local status resets on the Case Study II pattern.
package tdm

import (
	"fmt"

	"loft/internal/det"
	"loft/internal/flit"
	"loft/internal/route"
	"loft/internal/stats"
	"loft/internal/topo"
	"loft/internal/traffic"
)

// Config sizes the TDM network.
type Config struct {
	MeshK       int
	PacketFlits int
	// Period is the schedule length in slots; one slot carries one flit
	// per link. A flow with reservation R flits (per Period) gets R slot
	// positions.
	Period int
}

// Paper returns a TDM configuration matched to the LOFT Table 1 scale
// (period = LOFT frame size, so reservations translate one-to-one).
func Paper() Config { return Config{MeshK: 8, PacketFlits: 4, Period: 256} }

// Mesh returns the topology.
func (c Config) Mesh() topo.Mesh { return topo.NewMesh(c.MeshK) }

// circuit is one flow's compiled schedule.
type circuit struct {
	flow flit.FlowID
	src  topo.NodeID
	dst  topo.NodeID
	hops int
	// starts are the injection slots (mod Period); the flit injected at
	// start s crosses link i of the path at slot s+i.
	starts []int
}

// Network is a compiled TDM NoC replaying a traffic pattern.
type Network struct {
	cfg      Config
	mesh     topo.Mesh
	pattern  *traffic.Pattern
	circuits map[flit.FlowID]*circuit

	injectors []*traffic.Injector
	queues    map[flit.FlowID][]flit.Flit // per-flow source queues
	inflight  []arrival
	now       uint64

	lat     *stats.Latency
	latFlow *stats.FlowLatency
	thr     *stats.Throughput

	pktFlits map[pktKey]int
}

type pktKey struct {
	flow flit.FlowID
	seq  uint64
}

type arrival struct {
	f    flit.Flit
	when uint64
}

// Options mirror the other networks' options.
type Options struct {
	Seed   uint64
	Warmup uint64
}

// New compiles circuits for every flow of the pattern and returns the
// network. Compilation fails when the flows' slot demands cannot be packed
// into the period — TDM's admission control.
func New(cfg Config, pattern *traffic.Pattern, opts Options) (*Network, error) {
	mesh := cfg.Mesh()
	if pattern.Mesh.K != mesh.K {
		return nil, fmt.Errorf("tdm: pattern mesh %d does not match config mesh %d", pattern.Mesh.K, mesh.K)
	}
	if pattern.AllLinks {
		return nil, fmt.Errorf("tdm: circuit switching needs fixed destinations (pattern %q has random ones)", pattern.Name)
	}
	net := &Network{
		cfg:      cfg,
		mesh:     mesh,
		pattern:  pattern,
		circuits: make(map[flit.FlowID]*circuit),
		queues:   make(map[flit.FlowID][]flit.Flit),
		lat:      stats.NewLatencySeeded(opts.Warmup, opts.Seed),
		latFlow:  stats.NewFlowLatency(opts.Warmup),
		thr:      stats.NewThroughput(opts.Warmup),
		pktFlits: make(map[pktKey]int),
	}
	// busy[link][slot] marks reserved slots.
	busy := make(map[topo.Link][]bool)
	slotFree := func(l topo.Link, s int) bool {
		b, ok := busy[l]
		if !ok {
			b = make([]bool, cfg.Period)
			busy[l] = b
		}
		return !b[s%cfg.Period]
	}
	reserve := func(l topo.Link, s int) { busy[l][s%cfg.Period] = true }

	for _, f := range pattern.Flows {
		path := route.Path(mesh, f.Src, f.Dst)
		c := &circuit{flow: f.ID, src: f.Src, dst: f.Dst, hops: len(path)}
		// One slot train per reserved flit: injection at slot s uses link i
		// at slot s+i (pipelined circuit).
		for rep := 0; rep < f.Reservation; rep++ {
			found := -1
			for s := 0; s < cfg.Period && found < 0; s++ {
				ok := true
				for i, l := range path {
					if !slotFree(l, s+i) {
						ok = false
						break
					}
				}
				if ok {
					found = s
				}
			}
			if found < 0 {
				return nil, fmt.Errorf("tdm: cannot pack flow %d (reservation %d) into period %d", f.ID, f.Reservation, cfg.Period)
			}
			for i, l := range path {
				reserve(l, found+i)
			}
			c.starts = append(c.starts, found)
		}
		net.circuits[f.ID] = c
	}
	for i := 0; i < mesh.N(); i++ {
		net.injectors = append(net.injectors, traffic.NewInjector(pattern, topo.NodeID(i), opts.Seed))
	}
	return net, nil
}

// Run advances the network n cycles (one slot per cycle).
func (net *Network) Run(n uint64) {
	for i := uint64(0); i < n; i++ {
		net.step()
	}
	net.thr.Close(net.now)
}

func (net *Network) step() {
	now := net.now
	// Generate traffic into the per-flow source queues.
	for i, in := range net.injectors {
		_ = i
		for _, pkt := range in.Next(now) {
			for idx := 0; idx < pkt.Flits; idx++ {
				net.queues[pkt.Flow] = append(net.queues[pkt.Flow], flit.Flit{
					Flow: pkt.Flow, Src: pkt.Src, Dst: pkt.Dst,
					PktSeq: pkt.Seq, Index: idx,
					Head: idx == 0, Tail: idx == pkt.Flits-1,
					Created: pkt.Created,
				})
			}
		}
	}
	// Inject on owned slots; the flit arrives deterministically hops slots
	// later (contention-free by construction).
	slot := int(now % uint64(net.cfg.Period))
	for _, id := range det.Keys(net.circuits) {
		c := net.circuits[id]
		q := net.queues[id]
		if len(q) == 0 {
			continue
		}
		for _, s := range c.starts {
			if s != slot {
				continue
			}
			f := q[0]
			q = q[1:]
			net.inflight = append(net.inflight, arrival{f: f, when: now + uint64(c.hops)})
			if len(q) == 0 {
				break
			}
		}
		net.queues[id] = q
	}
	// Deliver arrivals.
	kept := net.inflight[:0]
	for _, a := range net.inflight {
		if a.when > now {
			kept = append(kept, a)
			continue
		}
		net.eject(a.f, now)
	}
	net.inflight = kept
	net.now++
}

func (net *Network) eject(f flit.Flit, now uint64) {
	net.thr.Observe(f.Flow, int(f.Src), now)
	key := pktKey{flow: f.Flow, seq: f.PktSeq}
	net.pktFlits[key]++
	if net.pktFlits[key] == net.pattern.PacketFlits {
		delete(net.pktFlits, key)
		net.lat.Observe(f.Created, now+1)
		net.latFlow.Observe(f.Flow, f.Created, now+1)
	}
}

// Latency returns the packet latency collector.
func (net *Network) Latency() *stats.Latency { return net.lat }

// FlowLatency returns the per-flow latency collector.
func (net *Network) FlowLatency() *stats.FlowLatency { return net.latFlow }

// Throughput returns the ejection throughput collector.
func (net *Network) Throughput() *stats.Throughput { return net.thr }

// Backlog returns queued flits across all sources.
func (net *Network) Backlog() int {
	total := 0
	for _, q := range net.queues {
		total += len(q)
	}
	return total
}

// Circuit returns flow id's compiled slot train (tests/diagnostics).
func (net *Network) Circuit(id flit.FlowID) (starts []int, hops int, ok bool) {
	c, found := net.circuits[id]
	if !found {
		return nil, 0, false
	}
	return append([]int(nil), c.starts...), c.hops, true
}

// WorstCaseLatency returns TDM's analytical packet latency bound for flow
// id: a flit waits at most one period for its slot, then rides hops slots;
// a packet needs ceil(PacketFlits/R) slot trains.
func (net *Network) WorstCaseLatency(id flit.FlowID) uint64 {
	c, ok := net.circuits[id]
	if !ok {
		return 0
	}
	trains := (net.pattern.PacketFlits + len(c.starts) - 1) / len(c.starts)
	return uint64(trains*net.cfg.Period + c.hops)
}
