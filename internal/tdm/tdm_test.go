package tdm

import (
	"testing"

	"loft/internal/topo"
	"loft/internal/traffic"
)

func smallCfg() Config { return Config{MeshK: 4, PacketFlits: 4, Period: 32} }

func TestCompileRejectsOverbooked(t *testing.T) {
	cfg := smallCfg()
	m := cfg.Mesh()
	// 15 hotspot flows × reservation 4 = 60 > 32 slots on the ejection link.
	p := traffic.Hotspot(m, 15, 0.5, cfg.PacketFlits, 240, 2, nil)
	for i := range p.Flows {
		p.Flows[i].Reservation = 4
	}
	if _, err := New(cfg, p, Options{}); err == nil {
		t.Fatal("overbooked schedule compiled")
	}
}

func TestCompileSlotTrainsAreConflictFree(t *testing.T) {
	cfg := smallCfg()
	m := cfg.Mesh()
	p := traffic.Hotspot(m, 15, 0.5, cfg.PacketFlits, 32, 2, nil)
	net, err := New(cfg, p, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Rebuild the link/slot occupancy from the compiled circuits and check
	// for double bookings.
	type key struct {
		link topo.Link
		slot int
	}
	seen := map[key]bool{}
	for _, f := range p.Flows {
		starts, hops, ok := net.Circuit(f.ID)
		if !ok || len(starts) == 0 {
			t.Fatalf("flow %d has no circuit", f.ID)
		}
		path := pathOf(m, f.Src, f.Dst)
		if len(path) != hops {
			t.Fatalf("hops mismatch for flow %d", f.ID)
		}
		for _, s := range starts {
			for i, l := range path {
				k := key{l, (s + i) % cfg.Period}
				if seen[k] {
					t.Fatalf("slot conflict on %v", k)
				}
				seen[k] = true
			}
		}
	}
}

func pathOf(m topo.Mesh, src, dst topo.NodeID) []topo.Link {
	// Mirror of route.Path to keep the test independent of the scheduler's
	// own path helper.
	var links []topo.Link
	cur := src
	for cur != dst {
		var d topo.Dir
		cc, cd := m.Coord(cur), m.Coord(dst)
		switch {
		case cd.X > cc.X:
			d = topo.East
		case cd.X < cc.X:
			d = topo.West
		case cd.Y > cc.Y:
			d = topo.South
		default:
			d = topo.North
		}
		links = append(links, topo.Link{From: cur, D: d})
		cur, _ = m.Neighbor(cur, d)
	}
	return append(links, topo.Link{From: dst, D: topo.Local})
}

func TestDeliveryAndGuarantee(t *testing.T) {
	cfg := smallCfg()
	m := cfg.Mesh()
	p := traffic.SingleFlow(m, 0, 15, 0.4, cfg.PacketFlits, 32)
	// Reservation 16 flits per 32-slot period = 0.5 flits/cycle capacity.
	net, err := New(cfg, p, Options{Seed: 1, Warmup: 1000})
	if err != nil {
		t.Fatal(err)
	}
	net.Run(20000)
	if rate := net.Throughput().Flow(0); rate < 0.35 {
		t.Fatalf("accepted %.3f of 0.4 offered under a 0.5 reservation", rate)
	}
	if net.Latency().Count() == 0 {
		t.Fatal("no packets delivered")
	}
}

// TestWorstCaseLatencyBound checks the analytical bound for isolated
// packets (the paper-style design-time bound assumes rate-compliant flows,
// i.e. no source backlog): packets spaced far beyond the service time must
// all complete within one slot-wait plus the pipeline.
func TestWorstCaseLatencyBound(t *testing.T) {
	cfg := smallCfg()
	m := cfg.Mesh()
	var events []traffic.TraceEvent
	for i := 0; i < 30; i++ {
		events = append(events, traffic.TraceEvent{
			Cycle: uint64(i) * 500, Src: 0, Dst: 15, Flits: cfg.PacketFlits,
		})
	}
	p, err := traffic.FromTrace(m, events, cfg.PacketFlits, 32, 2)
	if err != nil {
		t.Fatal(err)
	}
	net, err := New(cfg, p, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	net.Run(16000)
	if got := net.Latency().Count(); got != uint64(len(events)) {
		t.Fatalf("delivered %d of %d packets", got, len(events))
	}
	if max, bound := net.Latency().Max(), net.WorstCaseLatency(p.Flows[0].ID); max > bound {
		t.Fatalf("observed max %d exceeds TDM bound %d", max, bound)
	}
}

// TestNoExcessBandwidth demonstrates the paper's §2.2 criticism: a TDM flow
// cannot exceed its reservation no matter how idle the network is.
func TestNoExcessBandwidth(t *testing.T) {
	cfg := smallCfg()
	m := cfg.Mesh()
	p := traffic.SingleFlow(m, 0, 3, 0.9, cfg.PacketFlits, 32)
	p.Flows[0].Reservation = 8 // 8/32 = 0.25 flits/cycle hard cap
	net, err := New(cfg, p, Options{Seed: 1, Warmup: 1000})
	if err != nil {
		t.Fatal(err)
	}
	net.Run(20000)
	rate := net.Throughput().Flow(0)
	if rate > 0.26 {
		t.Fatalf("TDM flow exceeded its reservation: %.3f > 0.25", rate)
	}
	if rate < 0.24 {
		t.Fatalf("TDM flow below its guarantee: %.3f < 0.25", rate)
	}
}

func TestRejectsRandomDestinations(t *testing.T) {
	cfg := smallCfg()
	p := traffic.Uniform(cfg.Mesh(), 0.1, cfg.PacketFlits, 32)
	if _, err := New(cfg, p, Options{}); err == nil {
		t.Fatal("circuit switching accepted random destinations")
	}
}
