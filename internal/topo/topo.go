// Package topo models the 2D mesh topology used by every network in this
// repository: k×k nodes, bidirectional links between neighbors, five router
// ports (North, East, South, West, Local).
package topo

import "fmt"

// Dir identifies one of the five router ports.
type Dir int

// Router port directions. Local is the injection/ejection port.
const (
	North Dir = iota
	East
	South
	West
	Local
	NumDirs
)

// String returns the conventional one-letter name of the direction.
func (d Dir) String() string {
	switch d {
	case North:
		return "N"
	case East:
		return "E"
	case South:
		return "S"
	case West:
		return "W"
	case Local:
		return "L"
	}
	return fmt.Sprintf("Dir(%d)", int(d))
}

// Opposite returns the port a flit leaving through d enters on the neighbor.
func (d Dir) Opposite() Dir {
	switch d {
	case North:
		return South
	case South:
		return North
	case East:
		return West
	case West:
		return East
	}
	return Local
}

// NodeID numbers mesh nodes as x + y*K, matching the paper (§5.1).
type NodeID int

// Coord is a mesh coordinate.
type Coord struct{ X, Y int }

// Mesh is a k×k 2D mesh.
type Mesh struct {
	K int // nodes per dimension
}

// NewMesh returns a k×k mesh. It panics for k < 1.
func NewMesh(k int) Mesh {
	if k < 1 {
		panic("topo: mesh dimension must be >= 1")
	}
	return Mesh{K: k}
}

// N returns the total node count.
func (m Mesh) N() int { return m.K * m.K }

// Coord returns the coordinate of node id.
func (m Mesh) Coord(id NodeID) Coord {
	return Coord{X: int(id) % m.K, Y: int(id) / m.K}
}

// ID returns the node id at coordinate c.
func (m Mesh) ID(c Coord) NodeID { return NodeID(c.X + c.Y*m.K) }

// Valid reports whether c lies inside the mesh.
func (m Mesh) Valid(c Coord) bool {
	return c.X >= 0 && c.X < m.K && c.Y >= 0 && c.Y < m.K
}

// Neighbor returns the node adjacent to id in direction d and whether such a
// neighbor exists (mesh edges have no wraparound).
func (m Mesh) Neighbor(id NodeID, d Dir) (NodeID, bool) {
	c := m.Coord(id)
	switch d {
	case North:
		c.Y--
	case South:
		c.Y++
	case East:
		c.X++
	case West:
		c.X--
	default:
		return id, false
	}
	if !m.Valid(c) {
		return id, false
	}
	return m.ID(c), true
}

// Hops returns the minimal hop distance between two nodes.
func (m Mesh) Hops(a, b NodeID) int {
	ca, cb := m.Coord(a), m.Coord(b)
	return abs(ca.X-cb.X) + abs(ca.Y-cb.Y)
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

// Link identifies a directed physical link: the output port d of router From.
// The Local direction denotes the ejection link of From.
type Link struct {
	From NodeID
	D    Dir
}

// String formats the link for diagnostics.
func (l Link) String() string { return fmt.Sprintf("%d.%s", int(l.From), l.D) }

// Less orders links by (From, D), the iteration order for deterministic
// walks over link-keyed maps (det.KeysFunc).
func (l Link) Less(m Link) bool {
	if l.From != m.From {
		return l.From < m.From
	}
	return l.D < m.D
}

// InjectionLink returns the link from node n's network interface into its
// router (modeled as a link so it can carry an output scheduler like any
// other). It is distinguished from ejection by direction Local on the NI
// side; callers use the helper constructors below to avoid ambiguity.
func InjectionLink(n NodeID) Link { return Link{From: n, D: NumDirs} }

// EjectionLink returns node n's router-to-sink link.
func EjectionLink(n NodeID) Link { return Link{From: n, D: Local} }

// RenderHeatmap renders per-link utilization over the mesh as an ASCII
// grid: each node shows its East (right) and South (below) link loads as
// digits 0–9 (tenths of full utilization), a quick visual for locating hot
// regions. Both the LOFT and GSF networks feed it from their link gauges.
func RenderHeatmap(m Mesh, util map[Link]float64) string {
	digit := func(l Link) byte {
		u, ok := util[l]
		if !ok {
			return ' '
		}
		d := int(u * 10)
		if d > 9 {
			d = 9
		}
		return byte('0' + d)
	}
	var b []byte
	for y := 0; y < m.K; y++ {
		for x := 0; x < m.K; x++ {
			id := m.ID(Coord{X: x, Y: y})
			b = append(b, fmt.Sprintf("%3d", id)...)
			if x+1 < m.K {
				b = append(b, ' ', digit(Link{From: id, D: East}), ' ')
			}
		}
		b = append(b, '\n')
		if y+1 < m.K {
			for x := 0; x < m.K; x++ {
				id := m.ID(Coord{X: x, Y: y})
				b = append(b, ' ', ' ', digit(Link{From: id, D: South}))
				if x+1 < m.K {
					b = append(b, ' ', ' ', ' ')
				}
			}
			b = append(b, '\n')
		}
	}
	return string(b)
}
