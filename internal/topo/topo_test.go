package topo

import (
	"testing"
	"testing/quick"
)

func TestDirOpposite(t *testing.T) {
	pairs := map[Dir]Dir{North: South, South: North, East: West, West: East}
	for d, o := range pairs {
		if d.Opposite() != o {
			t.Errorf("%s.Opposite() = %s, want %s", d, d.Opposite(), o)
		}
	}
	if Local.Opposite() != Local {
		t.Error("Local.Opposite() != Local")
	}
}

func TestDirString(t *testing.T) {
	want := map[Dir]string{North: "N", East: "E", South: "S", West: "W", Local: "L"}
	for d, s := range want {
		if d.String() != s {
			t.Errorf("%v.String() = %q, want %q", int(d), d.String(), s)
		}
	}
}

func TestMeshCoordRoundTrip(t *testing.T) {
	m := NewMesh(8)
	for id := 0; id < m.N(); id++ {
		c := m.Coord(NodeID(id))
		if m.ID(c) != NodeID(id) {
			t.Fatalf("round trip failed for %d", id)
		}
		if !m.Valid(c) {
			t.Fatalf("coord %v invalid", c)
		}
	}
	// Paper numbering: node = x + y*8.
	if m.Coord(63) != (Coord{X: 7, Y: 7}) {
		t.Fatalf("node 63 = %v, want (7,7)", m.Coord(63))
	}
	if m.ID(Coord{X: 3, Y: 2}) != 19 {
		t.Fatalf("(3,2) = %d, want 19", m.ID(Coord{X: 3, Y: 2}))
	}
}

func TestMeshNeighbors(t *testing.T) {
	m := NewMesh(4)
	// Interior node: all four neighbors.
	for _, d := range []Dir{North, East, South, West} {
		if _, ok := m.Neighbor(5, d); !ok {
			t.Fatalf("interior node missing %s neighbor", d)
		}
	}
	// Corners.
	if _, ok := m.Neighbor(0, North); ok {
		t.Fatal("node 0 has a north neighbor")
	}
	if _, ok := m.Neighbor(0, West); ok {
		t.Fatal("node 0 has a west neighbor")
	}
	if nb, ok := m.Neighbor(0, East); !ok || nb != 1 {
		t.Fatalf("node 0 east = %d,%v", nb, ok)
	}
	if nb, ok := m.Neighbor(0, South); !ok || nb != 4 {
		t.Fatalf("node 0 south = %d,%v", nb, ok)
	}
}

func TestNeighborSymmetry(t *testing.T) {
	m := NewMesh(5)
	if err := quick.Check(func(id uint8, dd uint8) bool {
		n := NodeID(int(id) % m.N())
		d := Dir(dd % 4)
		nb, ok := m.Neighbor(n, d)
		if !ok {
			return true
		}
		back, ok2 := m.Neighbor(nb, d.Opposite())
		return ok2 && back == n
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHops(t *testing.T) {
	m := NewMesh(8)
	cases := []struct {
		a, b NodeID
		want int
	}{
		{0, 0, 0}, {0, 7, 7}, {0, 63, 14}, {9, 18, 2}, {56, 7, 14},
	}
	for _, c := range cases {
		if got := m.Hops(c.a, c.b); got != c.want {
			t.Errorf("Hops(%d,%d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestNewMeshPanicsOnInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewMesh(0) did not panic")
		}
	}()
	NewMesh(0)
}
