// Package trace is the offline half of the observability layer: decoders
// for the artifacts the probe and audit layers export (JSONL event dumps,
// CSV time series, audit conformance snapshots), a per-quantum latency
// decomposition engine that replays the event stream, run manifests tying a
// run's artifacts to its full configuration, and cross-run regression
// diffing. Command lofttrace is the CLI over this package.
//
// The package never touches a live simulator: every analysis consumes only
// exported files, so results are reproducible from the artifacts alone and
// the package stays inside the determinism-checked set (internal/lint).
package trace

import (
	"bufio"
	"bytes"
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strconv"

	"loft/internal/audit"
	"loft/internal/probe"
)

// jsonlLine is the union of the two line shapes probe.WriteEventsJSONL
// emits: the optional first-line meta header (no "kind" key) and one event
// per line after it. Pointer fields distinguish absent keys from zero
// values.
type jsonlLine struct {
	Meta    *string `json:"meta"`
	Dropped uint64  `json:"dropped"`
	Cycle   uint64  `json:"cycle"`
	Kind    *string `json:"kind"`
	Node    int32   `json:"node"`
	Loc     int32   `json:"loc"`
	Flow    int32   `json:"flow"`
	Seq     uint64  `json:"seq"`
	Arg     uint64  `json:"arg"`
}

// ReadEventsJSONL decodes a probe JSONL event dump back into the exact
// event slice probe.WriteEventsJSONL serialized, plus the ring's drop count
// from the meta header (0 when the dump is complete). Blank lines are
// skipped; a malformed line, an unknown event kind, or a meta header
// anywhere but line 1 is an error naming the offending line.
func ReadEventsJSONL(r io.Reader) ([]probe.Event, uint64, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<22)
	var events []probe.Event
	var dropped uint64
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var l jsonlLine
		if err := json.Unmarshal(line, &l); err != nil {
			return nil, 0, fmt.Errorf("events line %d: %v", lineNo, err)
		}
		if l.Meta != nil {
			if *l.Meta != "probe" {
				return nil, 0, fmt.Errorf("events line %d: unknown meta header %q", lineNo, *l.Meta)
			}
			if lineNo != 1 {
				return nil, 0, fmt.Errorf("events line %d: meta header is only valid as the first line", lineNo)
			}
			dropped = l.Dropped
			continue
		}
		if l.Kind == nil {
			return nil, 0, fmt.Errorf("events line %d: missing \"kind\"", lineNo)
		}
		k, ok := probe.KindFromString(*l.Kind)
		if !ok {
			return nil, 0, fmt.Errorf("events line %d: unknown event kind %q", lineNo, *l.Kind)
		}
		events = append(events, probe.Event{
			Cycle: l.Cycle, Kind: k, Node: l.Node, Loc: l.Loc,
			Flow: l.Flow, Seq: l.Seq, Arg: l.Arg,
		})
	}
	if err := sc.Err(); err != nil {
		return nil, 0, fmt.Errorf("events line %d: %v", lineNo+1, err)
	}
	return events, dropped, nil
}

// ReadSeriesCSV decodes the long-form CSV that probe.WriteSeriesCSV emits
// (header "series,cycle,value") back into per-series sample slices, in
// first-appearance order.
func ReadSeriesCSV(r io.Reader) ([]probe.Series, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = 3
	header, err := cr.Read()
	if err == io.EOF {
		return nil, fmt.Errorf("series: empty input (missing header)")
	}
	if err != nil {
		return nil, fmt.Errorf("series: %v", err)
	}
	if header[0] != "series" || header[1] != "cycle" || header[2] != "value" {
		return nil, fmt.Errorf("series: unexpected header %v (want series,cycle,value)", header)
	}
	idx := make(map[string]int)
	var out []probe.Series
	lineNo := 1
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("series: %v", err)
		}
		lineNo++
		cycle, err := strconv.ParseUint(rec[1], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("series line %d: bad cycle %q", lineNo, rec[1])
		}
		val, err := strconv.ParseFloat(rec[2], 64)
		if err != nil {
			return nil, fmt.Errorf("series line %d: bad value %q", lineNo, rec[2])
		}
		i, ok := idx[rec[0]]
		if !ok {
			i = len(out)
			idx[rec[0]] = i
			out = append(out, probe.Series{Name: rec[0]})
		}
		out[i].Samples = append(out[i].Samples, probe.Sample{Cycle: cycle, Value: val})
	}
	return out, nil
}

// ReadAuditSnapshot decodes an audit conformance snapshot (the JSON served
// at /audit and written by -audit-out / run directories).
func ReadAuditSnapshot(r io.Reader) (*audit.Snapshot, error) {
	var s audit.Snapshot
	if err := json.NewDecoder(r).Decode(&s); err != nil {
		return nil, fmt.Errorf("audit snapshot: %v", err)
	}
	return &s, nil
}

// ReadEventsFile is ReadEventsJSONL over a file path.
func ReadEventsFile(path string) ([]probe.Event, uint64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, 0, err
	}
	defer f.Close()
	ev, dropped, err := ReadEventsJSONL(f)
	if err != nil {
		return nil, 0, fmt.Errorf("%s: %v", path, err)
	}
	return ev, dropped, nil
}

// ReadSeriesFile is ReadSeriesCSV over a file path.
func ReadSeriesFile(path string) ([]probe.Series, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	s, err := ReadSeriesCSV(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	return s, nil
}

// ReadAuditFile is ReadAuditSnapshot over a file path.
func ReadAuditFile(path string) (*audit.Snapshot, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	s, err := ReadAuditSnapshot(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	return s, nil
}
