package trace

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"loft/internal/audit"
	"loft/internal/probe"
)

// TestEventsJSONLRoundTrip pins the exporter↔decoder symmetry: the decoder
// must reproduce the exact event slice probe.WriteEventsJSONL serialized,
// including the dropped-tail meta header.
func TestEventsJSONLRoundTrip(t *testing.T) {
	events := []probe.Event{
		{Cycle: 0, Kind: probe.KindReserveGrant, Node: 3, Loc: 1, Flow: 7, Arg: 42},
		{Cycle: 5, Kind: probe.KindLAIssue, Node: 3, Loc: 5, Flow: 7, Seq: 9, Arg: 12},
		{Cycle: 6, Kind: probe.KindDataInject, Node: 3, Loc: 5, Flow: 7, Seq: 9, Arg: 12},
		{Cycle: 8, Kind: probe.KindDataForward, Node: 3, Loc: 4, Flow: 7, Seq: 9, Arg: 12},
		{Cycle: 9, Kind: probe.KindFrameRecycle, Node: -1, Loc: 2, Flow: -1, Arg: 3},
	}
	for _, dropped := range []uint64{0, 17} {
		var buf bytes.Buffer
		if err := probe.WriteEventsJSONL(&buf, events, dropped); err != nil {
			t.Fatal(err)
		}
		got, gotDropped, err := ReadEventsJSONL(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("dropped=%d: %v", dropped, err)
		}
		if gotDropped != dropped {
			t.Errorf("dropped = %d, want %d", gotDropped, dropped)
		}
		if !reflect.DeepEqual(got, events) {
			t.Errorf("round trip diverged:\n got %+v\nwant %+v", got, events)
		}
	}
}

// TestEventsJSONLRoundTripAllKinds walks every defined kind through the
// wire format, so adding a kind without a name (or with a colliding name)
// fails here rather than in a consumer.
func TestEventsJSONLRoundTripAllKinds(t *testing.T) {
	var events []probe.Event
	for k := 0; k < probe.NumKinds(); k++ {
		events = append(events, probe.Event{Cycle: uint64(k), Kind: probe.Kind(k), Node: 1, Loc: 2, Flow: 3, Seq: uint64(k), Arg: 4})
	}
	var buf bytes.Buffer
	if err := probe.WriteEventsJSONL(&buf, events, 0); err != nil {
		t.Fatal(err)
	}
	got, _, err := ReadEventsJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, events) {
		t.Errorf("round trip diverged:\n got %+v\nwant %+v", got, events)
	}
}

func TestEventsJSONLErrors(t *testing.T) {
	cases := []struct {
		name, input, wantErr string
	}{
		{"malformed", `{"cycle":1,"kind":"spec-hit"` + "\n", "line 1"},
		{"unknown kind", `{"cycle":1,"kind":"warp-drive"}` + "\n", `unknown event kind "warp-drive"`},
		{"missing kind", `{"cycle":1,"node":2}` + "\n", `missing "kind"`},
		{"late meta", `{"cycle":1,"kind":"spec-hit"}` + "\n" + `{"meta":"probe","dropped":3}` + "\n", "only valid as the first line"},
		{"alien meta", `{"meta":"quux"}` + "\n", `unknown meta header "quux"`},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, _, err := ReadEventsJSONL(strings.NewReader(c.input))
			if err == nil || !strings.Contains(err.Error(), c.wantErr) {
				t.Errorf("err = %v, want substring %q", err, c.wantErr)
			}
		})
	}
}

func TestSeriesCSVRoundTrip(t *testing.T) {
	series := []probe.Series{
		{Name: "link_util", Samples: []probe.Sample{{Cycle: 0, Value: 0.5}, {Cycle: 256, Value: 0.75}}},
		{Name: "buf_occ", Samples: []probe.Sample{{Cycle: 0, Value: 12}}},
	}
	var buf bytes.Buffer
	if err := probe.WriteSeriesCSV(&buf, series); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSeriesCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, series) {
		t.Errorf("round trip diverged:\n got %+v\nwant %+v", got, series)
	}
}

func TestSeriesCSVErrors(t *testing.T) {
	for _, c := range []struct{ name, input, wantErr string }{
		{"empty", "", "missing header"},
		{"bad header", "a,b,c\n", "unexpected header"},
		{"bad cycle", "series,cycle,value\ns,xyz,1\n", "bad cycle"},
		{"bad value", "series,cycle,value\ns,1,zap\n", "bad value"},
	} {
		t.Run(c.name, func(t *testing.T) {
			_, err := ReadSeriesCSV(strings.NewReader(c.input))
			if err == nil || !strings.Contains(err.Error(), c.wantErr) {
				t.Errorf("err = %v, want substring %q", err, c.wantErr)
			}
		})
	}
}

func TestReadAuditSnapshot(t *testing.T) {
	in := `{"arch":"loft","cycle":2500,"clean":true,"flows":[{"flow":3,"hops":2,"bound_cycles":500,"worst_observed_cycles":120}]}`
	s, err := ReadAuditSnapshot(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if s.Arch != "loft" || s.Cycle != 2500 || !s.Clean {
		t.Errorf("snapshot = %+v", s)
	}
	if len(s.Flows) != 1 || s.Flows[0].Bound != 500 {
		t.Errorf("flows = %+v", s.Flows)
	}
	if _, err := ReadAuditSnapshot(strings.NewReader("not json")); err == nil {
		t.Error("malformed snapshot: want error")
	}
	var zero audit.Snapshot
	_ = zero // the decode target is the real audit type, not a local mirror
}
