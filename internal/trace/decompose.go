package trace

import (
	"fmt"

	"loft/internal/det"
	"loft/internal/probe"
	"loft/internal/stats"
	"loft/internal/topo"
)

// Forward is one observed data crossing of a switch output.
type Forward struct {
	Node   int32  // router that forwarded the quantum
	Dir    int32  // output direction; topo.Local is the ejection into the sink
	Cycle  uint64 // crossing cycle
	Booked uint64 // booked departure cycle on that link
}

// Spec reports whether the crossing ran ahead of its booking — a §4.3.1
// speculative forward.
func (f Forward) Spec() bool { return f.Cycle < f.Booked }

// QuantumTrace is the reassembled end-to-end timeline of one quantum,
// anchored on the injection-link booking (la-issue at the NI), the physical
// injection (data-inject) and every switch crossing (data-forward). The last
// forward, with Dir == topo.Local, is the ejection.
type QuantumTrace struct {
	Flow     int32
	Seq      uint64
	Src      int32 // injecting node
	Dst      int32 // ejecting node
	Book     uint64
	Inject   uint64
	Forwards []Forward
}

// Components is the exact latency decomposition of one quantum. The four
// summed components partition the end-to-end latency:
//
//	Total = Eject − Book = BookingWait + Serialization + LookaheadWait + SpecWait
//
// BookingWait is the time from the injection-link booking until the data
// physically left the NI. Serialization is the unavoidable minimum dwell —
// one slot (QuantumFlits cycles) per crossed link, the quantum draining at
// link rate. The per-hop residual above that minimum is LookaheadWait on
// hops that departed at (or after) their booked cycle — waiting for the
// look-ahead-advanced reservation to come due — and SpecWait on hops that
// departed early under speculative switching. SpecSaved is informational,
// not part of the sum: the cycles speculation ran ahead of the bookings.
type Components struct {
	Total         uint64
	BookingWait   uint64
	Serialization uint64
	LookaheadWait uint64
	SpecWait      uint64
	SpecSaved     uint64
	Hops          int // crossed links, ejection included
	SpecHops      int
}

// Components decomposes the quantum's latency. slotCycles is the cycles per
// quantum slot (config QuantumFlits). It returns an error when the timeline
// violates the simulator's timing invariants (incomplete, out of order, or
// a dwell shorter than one slot) — a correct stream never does.
func (q *QuantumTrace) Components(slotCycles uint64) (Components, error) {
	if slotCycles == 0 {
		return Components{}, fmt.Errorf("flow %d seq %d: slotCycles must be positive", q.Flow, q.Seq)
	}
	n := len(q.Forwards)
	if n == 0 || q.Forwards[n-1].Dir != int32(topo.Local) {
		return Components{}, fmt.Errorf("flow %d seq %d: no ejection forward recorded", q.Flow, q.Seq)
	}
	if q.Inject < q.Book {
		return Components{}, fmt.Errorf("flow %d seq %d: injected at %d before booking at %d", q.Flow, q.Seq, q.Inject, q.Book)
	}
	c := Components{
		Total:         q.Forwards[n-1].Cycle - q.Book,
		BookingWait:   q.Inject - q.Book,
		Serialization: uint64(n) * slotCycles,
		Hops:          n,
	}
	prev := q.Inject
	for i, f := range q.Forwards {
		if f.Cycle < prev+slotCycles {
			return Components{}, fmt.Errorf("flow %d seq %d hop %d: dwell %d shorter than one slot (%d cycles)",
				q.Flow, q.Seq, i, f.Cycle-prev, slotCycles)
		}
		wait := f.Cycle - prev - slotCycles
		if f.Spec() {
			c.SpecHops++
			c.SpecWait += wait
			c.SpecSaved += f.Booked - f.Cycle
		} else {
			c.LookaheadWait += wait
		}
		prev = f.Cycle
	}
	return c, nil
}

// Agg aggregates component distributions over many quanta.
type Agg struct {
	Count         uint64
	HopCount      uint64 // total crossed links
	SpecHops      uint64
	Total         stats.Histogram
	BookingWait   stats.Histogram
	Serialization stats.Histogram
	LookaheadWait stats.Histogram
	SpecWait      stats.Histogram
	SpecSaved     stats.Histogram
}

func (a *Agg) observe(c Components) {
	a.Count++
	a.HopCount += uint64(c.Hops)
	a.SpecHops += uint64(c.SpecHops)
	a.Total.Observe(c.Total)
	a.BookingWait.Observe(c.BookingWait)
	a.Serialization.Observe(c.Serialization)
	a.LookaheadWait.Observe(c.LookaheadWait)
	a.SpecWait.Observe(c.SpecWait)
	a.SpecSaved.Observe(c.SpecSaved)
}

// ComponentStats is the JSON-friendly rendering of one component's
// distribution.
type ComponentStats struct {
	Mean float64 `json:"mean_cycles"`
	Max  uint64  `json:"max_cycles"`
	Hist string  `json:"histogram,omitempty"`
}

func componentStats(h *stats.Histogram) ComponentStats {
	return ComponentStats{Mean: h.Mean(), Max: h.Max(), Hist: h.String()}
}

// AggSummary is the JSON-friendly rendering of an Agg.
type AggSummary struct {
	Quanta        uint64         `json:"quanta"`
	MeanHops      float64        `json:"mean_hops"`
	SpecHopPct    float64        `json:"spec_hop_pct"`
	Total         ComponentStats `json:"total"`
	BookingWait   ComponentStats `json:"booking_wait"`
	Serialization ComponentStats `json:"serialization"`
	LookaheadWait ComponentStats `json:"lookahead_wait"`
	SpecWait      ComponentStats `json:"spec_wait"`
	SpecSaved     ComponentStats `json:"spec_saved"`
}

// Summary renders the aggregate.
func (a *Agg) Summary() AggSummary {
	s := AggSummary{
		Quanta:        a.Count,
		Total:         componentStats(&a.Total),
		BookingWait:   componentStats(&a.BookingWait),
		Serialization: componentStats(&a.Serialization),
		LookaheadWait: componentStats(&a.LookaheadWait),
		SpecWait:      componentStats(&a.SpecWait),
		SpecSaved:     componentStats(&a.SpecSaved),
	}
	if a.Count > 0 {
		s.MeanHops = float64(a.HopCount) / float64(a.Count)
	}
	if a.HopCount > 0 {
		s.SpecHopPct = 100 * float64(a.SpecHops) / float64(a.HopCount)
	}
	return s
}

// FlowAgg is one flow's aggregate.
type FlowAgg struct {
	Flow int32
	Agg  Agg
}

// HopAgg is the residual-wait distribution at one hop position along the
// path (hop 0 is the first router crossing after injection).
type HopAgg struct {
	Hop   int
	Count uint64
	Spec  uint64 // speculative crossings at this position
	Wait  stats.Histogram
}

// QuantumResult pairs one quantum's timeline with its decomposition.
type QuantumResult struct {
	QuantumTrace
	Components Components
}

// Decomposition is the result of replaying an event stream.
type Decomposition struct {
	SlotCycles uint64
	Complete   int // quanta fully decomposed
	Incomplete int // quanta missing booking, injection or ejection (in flight at the end of the run, or lost to ring drop)
	Dropped    uint64
	All        Agg
	PerFlow    []FlowAgg
	PerHop     []HopAgg
	Quanta     []QuantumResult // complete quanta in (flow, seq) order
	Errors     []string        // timing-invariant violations; empty on a well-formed stream
}

type quantumKey struct {
	flow int32
	seq  uint64
}

type quantumBuild struct {
	qt         QuantumTrace
	haveBook   bool
	haveInject bool
	done       bool
}

// Decompose replays a probe event stream into per-quantum latency
// decompositions. slotCycles is the configuration's QuantumFlits (cycles
// per slot); dropped is the ring-drop count reported by the dump header —
// a truncated stream decomposes fine, the clipped quanta just count as
// incomplete. GSF streams carry no data-path events and yield zero quanta.
func Decompose(events []probe.Event, slotCycles, dropped uint64) (*Decomposition, error) {
	if slotCycles == 0 {
		return nil, fmt.Errorf("decompose: slotCycles must be positive")
	}
	builds := make(map[quantumKey]*quantumBuild)
	get := func(e probe.Event) *quantumBuild {
		k := quantumKey{flow: e.Flow, seq: e.Seq}
		b, ok := builds[k]
		if !ok {
			b = &quantumBuild{qt: QuantumTrace{Flow: e.Flow, Seq: e.Seq}}
			builds[k] = b
		}
		return b
	}
	for _, e := range events {
		switch e.Kind {
		case probe.KindLAIssue:
			// Only the NI's launch (Loc = injection link) is the booking
			// anchor; per-hop look-ahead issues carry slot-quantized state.
			if e.Loc != int32(topo.NumDirs) {
				continue
			}
			b := get(e)
			if !b.haveBook {
				b.qt.Book = e.Cycle
				b.haveBook = true
			}
		case probe.KindDataInject:
			b := get(e)
			b.qt.Inject = e.Cycle
			b.qt.Src = e.Node
			b.haveInject = true
		case probe.KindDataForward:
			b := get(e)
			b.qt.Forwards = append(b.qt.Forwards, Forward{
				Node: e.Node, Dir: e.Loc, Cycle: e.Cycle, Booked: e.Arg,
			})
			if e.Loc == int32(topo.Local) {
				b.done = true
				b.qt.Dst = e.Node
			}
		}
	}
	d := &Decomposition{SlotCycles: slotCycles, Dropped: dropped}
	perFlow := make(map[int32]*Agg)
	keys := det.KeysFunc(builds, func(a, b quantumKey) bool {
		if a.flow != b.flow {
			return a.flow < b.flow
		}
		return a.seq < b.seq
	})
	for _, k := range keys {
		b := builds[k]
		if !b.done || !b.haveBook || !b.haveInject {
			d.Incomplete++
			continue
		}
		c, err := b.qt.Components(slotCycles)
		if err != nil {
			d.Errors = append(d.Errors, err.Error())
			continue
		}
		d.Complete++
		d.All.observe(c)
		fa, ok := perFlow[b.qt.Flow]
		if !ok {
			fa = &Agg{}
			perFlow[b.qt.Flow] = fa
		}
		fa.observe(c)
		for i, f := range b.qt.Forwards {
			for len(d.PerHop) <= i {
				d.PerHop = append(d.PerHop, HopAgg{Hop: len(d.PerHop)})
			}
			h := &d.PerHop[i]
			h.Count++
			var prev uint64
			if i == 0 {
				prev = b.qt.Inject
			} else {
				prev = b.qt.Forwards[i-1].Cycle
			}
			h.Wait.Observe(f.Cycle - prev - slotCycles)
			if f.Spec() {
				h.Spec++
			}
		}
		d.Quanta = append(d.Quanta, QuantumResult{QuantumTrace: b.qt, Components: c})
	}
	for _, fl := range det.Keys(perFlow) {
		d.PerFlow = append(d.PerFlow, FlowAgg{Flow: fl, Agg: *perFlow[fl]})
	}
	return d, nil
}

// Metrics flattens the decomposition's aggregate into the flat metric map
// manifests record and the differ compares. Empty when no quantum
// decomposed (e.g. a GSF stream).
func (d *Decomposition) Metrics() map[string]float64 {
	if d.Complete == 0 {
		return nil
	}
	s := d.All.Summary()
	return map[string]float64{
		"decomp_quanta":                     float64(s.Quanta),
		"decomp_incomplete":                 float64(d.Incomplete),
		"decomp_mean_hops":                  s.MeanHops,
		"decomp_spec_hop_pct":               s.SpecHopPct,
		"decomp_mean_total_cycles":          s.Total.Mean,
		"decomp_max_total_cycles":           float64(s.Total.Max),
		"decomp_mean_booking_wait_cycles":   s.BookingWait.Mean,
		"decomp_mean_serialization_cycles":  s.Serialization.Mean,
		"decomp_mean_lookahead_wait_cycles": s.LookaheadWait.Mean,
		"decomp_mean_spec_wait_cycles":      s.SpecWait.Mean,
		"decomp_mean_spec_saved_cycles":     s.SpecSaved.Mean,
	}
}
