package trace

import (
	"strings"
	"testing"

	"loft/internal/config"
	"loft/internal/core"
	"loft/internal/probe"
	"loft/internal/topo"
	"loft/internal/traffic"
)

func TestComponentsExact(t *testing.T) {
	q := QuantumTrace{
		Flow: 1, Seq: 3, Src: 0, Dst: 2,
		Book:   10,
		Inject: 14, // 4 cycles of booking wait
		Forwards: []Forward{
			{Node: 0, Dir: int32(topo.East), Cycle: 16, Booked: 16},  // on schedule, zero residual
			{Node: 1, Dir: int32(topo.East), Cycle: 20, Booked: 18},  // 2 cycles look-ahead wait
			{Node: 2, Dir: int32(topo.Local), Cycle: 22, Booked: 24}, // speculative, 2 cycles saved
		},
	}
	c, err := q.Components(2)
	if err != nil {
		t.Fatal(err)
	}
	want := Components{
		Total:         12,
		BookingWait:   4,
		Serialization: 6,
		LookaheadWait: 2,
		SpecWait:      0,
		SpecSaved:     2,
		Hops:          3,
		SpecHops:      1,
	}
	if c != want {
		t.Errorf("components = %+v, want %+v", c, want)
	}
	if c.BookingWait+c.Serialization+c.LookaheadWait+c.SpecWait != c.Total {
		t.Error("components do not sum to total")
	}
}

func TestComponentsErrors(t *testing.T) {
	eject := Forward{Dir: int32(topo.Local), Cycle: 20, Booked: 20}
	cases := []struct {
		name    string
		q       QuantumTrace
		slot    uint64
		wantErr string
	}{
		{"zero slot", QuantumTrace{Forwards: []Forward{eject}}, 0, "slotCycles must be positive"},
		{"no forwards", QuantumTrace{Book: 1, Inject: 2}, 2, "no ejection forward"},
		{"no ejection", QuantumTrace{Book: 1, Inject: 2,
			Forwards: []Forward{{Dir: int32(topo.East), Cycle: 20}}}, 2, "no ejection forward"},
		{"inject before book", QuantumTrace{Book: 9, Inject: 4,
			Forwards: []Forward{eject}}, 2, "before booking"},
		{"short dwell", QuantumTrace{Book: 1, Inject: 19,
			Forwards: []Forward{eject}}, 2, "dwell"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := c.q.Components(c.slot)
			if err == nil || !strings.Contains(err.Error(), c.wantErr) {
				t.Errorf("err = %v, want substring %q", err, c.wantErr)
			}
		})
	}
}

func TestDecomposeHandBuiltStream(t *testing.T) {
	slot := uint64(2)
	ni := int32(topo.NumDirs)
	events := []probe.Event{
		// Per-hop la-issue at a router location must NOT anchor the booking.
		{Cycle: 8, Kind: probe.KindLAIssue, Node: 1, Loc: int32(topo.East), Flow: 5, Seq: 0, Arg: 99},
		{Cycle: 10, Kind: probe.KindLAIssue, Node: 0, Loc: ni, Flow: 5, Seq: 0, Arg: 12},
		{Cycle: 12, Kind: probe.KindDataInject, Node: 0, Loc: ni, Flow: 5, Seq: 0, Arg: 12},
		{Cycle: 14, Kind: probe.KindDataForward, Node: 0, Loc: int32(topo.East), Flow: 5, Seq: 0, Arg: 14},
		{Cycle: 16, Kind: probe.KindDataForward, Node: 1, Loc: int32(topo.Local), Flow: 5, Seq: 0, Arg: 18},
		// Second quantum never ejects: counts as incomplete, not an error.
		{Cycle: 20, Kind: probe.KindLAIssue, Node: 0, Loc: ni, Flow: 5, Seq: 1, Arg: 22},
		{Cycle: 22, Kind: probe.KindDataInject, Node: 0, Loc: ni, Flow: 5, Seq: 1, Arg: 22},
	}
	d, err := Decompose(events, slot, 7)
	if err != nil {
		t.Fatal(err)
	}
	if d.Complete != 1 || d.Incomplete != 1 || d.Dropped != 7 {
		t.Fatalf("complete=%d incomplete=%d dropped=%d, want 1/1/7", d.Complete, d.Incomplete, d.Dropped)
	}
	if len(d.Errors) != 0 {
		t.Fatalf("errors = %v", d.Errors)
	}
	q := d.Quanta[0]
	if q.Flow != 5 || q.Seq != 0 || q.Src != 0 || q.Dst != 1 || q.Book != 10 {
		t.Errorf("quantum = %+v", q.QuantumTrace)
	}
	want := Components{Total: 6, BookingWait: 2, Serialization: 4, SpecWait: 0, SpecSaved: 2, Hops: 2, SpecHops: 1}
	if q.Components != want {
		t.Errorf("components = %+v, want %+v", q.Components, want)
	}
	if len(d.PerHop) != 2 || d.PerHop[1].Spec != 1 {
		t.Errorf("perHop = %+v", d.PerHop)
	}
	if len(d.PerFlow) != 1 || d.PerFlow[0].Flow != 5 || d.PerFlow[0].Agg.Count != 1 {
		t.Errorf("perFlow = %+v", d.PerFlow)
	}
	m := d.Metrics()
	if m["decomp_quanta"] != 1 || m["decomp_mean_total_cycles"] != 6 || m["decomp_spec_hop_pct"] != 50 {
		t.Errorf("metrics = %v", m)
	}
}

func TestDecomposeRejectsZeroSlot(t *testing.T) {
	if _, err := Decompose(nil, 0, 0); err == nil {
		t.Fatal("want error for slotCycles=0")
	}
}

// runDecomposed drives a real LOFT simulation with the probe attached and
// replays the event stream — the end-to-end path lofttrace decompose uses.
func runDecomposed(t *testing.T, spec int) *Decomposition {
	t.Helper()
	cfg := config.PaperLOFTSpec(spec)
	p := traffic.Uniform(cfg.Mesh(), 0.3, cfg.PacketFlits, cfg.FrameFlits)
	pr := probe.New(probe.Config{EventCap: 1 << 20})
	if _, _, err := core.RunLOFT(cfg, p, core.RunSpec{Seed: 42, Warmup: 0, Measure: 2000, Probe: pr}); err != nil {
		t.Fatal(err)
	}
	d, err := Decompose(pr.Events(), uint64(cfg.QuantumFlits), 0)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// TestDecomposeSimulationSumIdentity is the acceptance check for the
// decomposition: on a real simulated stream every complete quantum's four
// components sum exactly to its end-to-end latency, and the stream violates
// no timing invariant.
func TestDecomposeSimulationSumIdentity(t *testing.T) {
	d := runDecomposed(t, 12)
	if len(d.Errors) != 0 {
		t.Fatalf("timing-invariant violations: %v", d.Errors)
	}
	if d.Complete == 0 {
		t.Fatal("no quantum decomposed; probe stream is missing data-path events")
	}
	for _, q := range d.Quanta {
		c := q.Components
		if c.BookingWait+c.Serialization+c.LookaheadWait+c.SpecWait != c.Total {
			t.Fatalf("flow %d seq %d: %d+%d+%d+%d != total %d",
				q.Flow, q.Seq, c.BookingWait, c.Serialization, c.LookaheadWait, c.SpecWait, c.Total)
		}
		if c.Total != q.Forwards[len(q.Forwards)-1].Cycle-q.Book {
			t.Fatalf("flow %d seq %d: total %d is not eject-book", q.Flow, q.Seq, c.Total)
		}
	}
}

// TestDecomposeSpeculationVisibility pins that the decomposition separates
// the §4.3.1 configurations: with speculative switching disabled no hop may
// classify as speculative, and the spec-wait/spec-saved components are zero.
func TestDecomposeSpeculationVisibility(t *testing.T) {
	off := runDecomposed(t, 0)
	if len(off.Errors) != 0 {
		t.Fatalf("spec=0 violations: %v", off.Errors)
	}
	if off.All.SpecHops != 0 {
		t.Errorf("spec=0 run classified %d speculative hops", off.All.SpecHops)
	}
	if m := off.Metrics(); m["decomp_mean_spec_wait_cycles"] != 0 || m["decomp_mean_spec_saved_cycles"] != 0 {
		t.Errorf("spec=0 metrics report speculative cycles: %v", m)
	}
}
