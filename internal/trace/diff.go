package trace

import (
	"encoding/json"
	"fmt"
	"strings"

	"loft/internal/det"
)

// Direction classifies how a metric's value maps to quality, so the differ
// only calls a change a regression when it moved the wrong way.
type Direction int

// Metric quality directions.
const (
	Neutral Direction = iota
	HigherIsBetter
	LowerIsBetter
)

// String returns the direction's wire name.
func (d Direction) String() string {
	switch d {
	case HigherIsBetter:
		return "higher-is-better"
	case LowerIsBetter:
		return "lower-is-better"
	}
	return "neutral"
}

// lowerBetter/higherBetter classify metric names by substring; the first
// matching list wins, so "deny" beats the "rate" in "reserve_deny_rate".
var lowerBetter = []string{
	"latency", "wait", "deny", "skip", "abort", "drop", "margin",
	"reset", "violation", "incomplete", "ns/op", "ns/cycle", "imbalance",
}

var higherBetter = []string{
	"throughput", "packets", "saved", "cycles/sec", "flits", "benchmark",
	"util",
}

// MetricDirection classifies a metric name. Latencies, waits, deny/skip/
// abort/drop counts, delay-bound margins and violations regress upward;
// throughput, packet counts and speculation savings regress downward.
// BENCH_*.json entries (Benchmark* names) record rate-style headline
// metrics (e.g. sim-cycles/sec), so they default to higher-is-better.
func MetricDirection(name string) Direction {
	n := strings.ToLower(name)
	for _, s := range lowerBetter {
		if strings.Contains(n, s) {
			return LowerIsBetter
		}
	}
	for _, s := range higherBetter {
		if strings.Contains(n, s) {
			return HigherIsBetter
		}
	}
	return Neutral
}

// Delta is one metric's comparison between a base and a new run.
type Delta struct {
	Name      string  `json:"name"`
	Base      float64 `json:"base"`
	New       float64 `json:"new"`
	Delta     float64 `json:"delta"`
	RelPct    float64 `json:"rel_pct"` // signed; a change from exactly 0 counts as 100%
	Direction string  `json:"direction"`
	Breach    bool    `json:"breach"`
	OnlyIn    string  `json:"only_in,omitempty"` // "base" or "new" when the metric exists on one side
}

// Changed reports whether the metric moved at all (or exists on one side
// only). A run diffed against itself has no changed deltas.
func (d Delta) Changed() bool { return d.Delta != 0 || d.OnlyIn != "" }

// DiffReport is the full comparison of two metric sets.
type DiffReport struct {
	Base         string  `json:"base"`
	New          string  `json:"new"`
	ThresholdPct float64 `json:"threshold_pct"`
	Deltas       []Delta `json:"deltas"`
	Changed      int     `json:"changed"`
	Breaches     int     `json:"breaches"`
	// ConfigChanges lists configuration fields that differ between two
	// manifests ("SpecBufFlits: 12 -> 0"); informational, never a breach.
	ConfigChanges []string `json:"config_changes,omitempty"`
}

// DiffMetrics compares two flat metric maps. A delta breaches when the
// metric has a quality direction, moved the bad way, and the relative
// change exceeds thresholdPct. Metrics present on one side only are
// reported but never breach (new instrumentation must not fail old runs).
func DiffMetrics(base, cur map[string]float64, thresholdPct float64) []Delta {
	union := make(map[string]bool, len(base)+len(cur))
	for k := range base {
		union[k] = true
	}
	for k := range cur {
		union[k] = true
	}
	var out []Delta
	for _, name := range det.Keys(union) {
		bv, inBase := base[name]
		nv, inNew := cur[name]
		d := Delta{Name: name, Base: bv, New: nv, Direction: MetricDirection(name).String()}
		switch {
		case !inBase:
			d.OnlyIn = "new"
		case !inNew:
			d.OnlyIn = "base"
		default:
			d.Delta = nv - bv
			switch {
			case bv != 0:
				d.RelPct = 100 * d.Delta / bv
			case nv != 0:
				d.RelPct = 100
			}
			dir := MetricDirection(name)
			bad := (dir == HigherIsBetter && d.Delta < 0) || (dir == LowerIsBetter && d.Delta > 0)
			if bad && abs(d.RelPct) > thresholdPct {
				d.Breach = true
			}
		}
		out = append(out, d)
	}
	return out
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

// DiffManifests compares two run manifests: metric deltas plus an
// informational list of configuration differences.
func DiffManifests(base, cur *Manifest, baseLabel, newLabel string, thresholdPct float64) (*DiffReport, error) {
	r := &DiffReport{
		Base:         baseLabel,
		New:          newLabel,
		ThresholdPct: thresholdPct,
		Deltas:       DiffMetrics(base.Metrics, cur.Metrics, thresholdPct),
	}
	for _, d := range r.Deltas {
		if d.Changed() {
			r.Changed++
		}
		if d.Breach {
			r.Breaches++
		}
	}
	var err error
	if r.ConfigChanges, err = configChanges(base, cur); err != nil {
		return nil, err
	}
	return r, nil
}

// configChanges renders the setup fields that differ between two manifests.
func configChanges(a, b *Manifest) ([]string, error) {
	var out []string
	add := func(name string, av, bv any) {
		if fmt.Sprint(av) != fmt.Sprint(bv) {
			out = append(out, fmt.Sprintf("%s: %v -> %v", name, av, bv))
		}
	}
	add("Tool", a.Tool, b.Tool)
	add("Arch", a.Arch, b.Arch)
	add("Pattern", a.Pattern, b.Pattern)
	add("Seeds", a.Seeds, b.Seeds)
	add("WarmupCycles", a.WarmupCycles, b.WarmupCycles)
	add("MeasureCycles", a.MeasureCycles, b.MeasureCycles)
	add("HostCPUs", a.HostCPUs, b.HostCPUs)
	add("HostGoMaxProcs", a.HostGoMaxProcs, b.HostGoMaxProcs)
	add("NodeWorkers", a.NodeWorkers, b.NodeWorkers)
	add("FaultPlan", a.FaultPlan, b.FaultPlan)
	am, err := configMap(a)
	if err != nil {
		return nil, err
	}
	bm, err := configMap(b)
	if err != nil {
		return nil, err
	}
	union := make(map[string]bool, len(am)+len(bm))
	for k := range am {
		union[k] = true
	}
	for k := range bm {
		union[k] = true
	}
	for _, k := range det.Keys(union) {
		av, inA := am[k]
		bv, inB := bm[k]
		switch {
		case !inA:
			out = append(out, fmt.Sprintf("%s: (unset) -> %v", k, bv))
		case !inB:
			out = append(out, fmt.Sprintf("%s: %v -> (unset)", k, av))
		default:
			add(k, av, bv)
		}
	}
	return out, nil
}

func configMap(m *Manifest) (map[string]any, error) {
	if m.Config == nil {
		return nil, nil
	}
	blob, err := json.Marshal(m.Config)
	if err != nil {
		return nil, err
	}
	var out map[string]any
	if err := json.Unmarshal(blob, &out); err != nil {
		return nil, err
	}
	return out, nil
}
