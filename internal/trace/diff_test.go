package trace

import (
	"strings"
	"testing"

	"loft/internal/config"
)

func TestMetricDirection(t *testing.T) {
	cases := map[string]Direction{
		"avg_latency_cycles":            LowerIsBetter,
		"decomp_mean_spec_wait_cycles":  LowerIsBetter,
		"reserve_deny_rate":             LowerIsBetter,
		"delay_bound_margin_pct":        LowerIsBetter,
		"decomp_incomplete":             LowerIsBetter,
		"throughput_flits_per_cycle":    HigherIsBetter,
		"packets":                       HigherIsBetter,
		"decomp_mean_spec_saved_cycles": HigherIsBetter,
		"BenchmarkSimulatorSpeed":       HigherIsBetter,
		"decomp_mean_hops":              Neutral,
	}
	for name, want := range cases {
		if got := MetricDirection(name); got != want {
			t.Errorf("MetricDirection(%q) = %v, want %v", name, got, want)
		}
	}
}

// TestDiffMetricsSelf pins the zero-delta acceptance criterion: a metric set
// diffed against itself changes nothing and breaches nothing.
func TestDiffMetricsSelf(t *testing.T) {
	m := map[string]float64{"avg_latency_cycles": 42.5, "throughput_flits_per_cycle": 3.1, "packets": 900}
	for _, d := range DiffMetrics(m, m, 2) {
		if d.Changed() || d.Breach {
			t.Errorf("self-diff delta %+v changed or breached", d)
		}
	}
}

func TestDiffMetricsDirectionAwareBreach(t *testing.T) {
	base := map[string]float64{
		"avg_latency_cycles":         100,
		"throughput_flits_per_cycle": 4.0,
		"decomp_mean_hops":           5.0,
	}
	cur := map[string]float64{
		"avg_latency_cycles":         110, // +10% latency: breach
		"throughput_flits_per_cycle": 4.1, // throughput up: improvement, never a breach
		"decomp_mean_hops":           9.0, // neutral metric: reported, never a breach
		"new_metric":                 1.0, // one-sided: reported, never a breach
	}
	byName := make(map[string]Delta)
	for _, d := range DiffMetrics(base, cur, 2) {
		byName[d.Name] = d
	}
	if d := byName["avg_latency_cycles"]; !d.Breach || d.RelPct != 10 {
		t.Errorf("latency delta = %+v, want 10%% breach", d)
	}
	if d := byName["throughput_flits_per_cycle"]; d.Breach {
		t.Errorf("throughput improvement flagged as breach: %+v", d)
	}
	if d := byName["decomp_mean_hops"]; d.Breach || !d.Changed() {
		t.Errorf("neutral metric: %+v, want changed but no breach", d)
	}
	if d := byName["new_metric"]; d.OnlyIn != "new" || d.Breach {
		t.Errorf("one-sided metric: %+v, want only_in=new without breach", d)
	}
	// Same movement inside the threshold must not breach.
	if d := DiffMetrics(map[string]float64{"avg_latency_cycles": 100},
		map[string]float64{"avg_latency_cycles": 101}, 2); d[0].Breach {
		t.Errorf("1%% latency rise breached a 2%% threshold: %+v", d[0])
	}
	// Bad direction for higher-is-better: throughput drop breaches.
	if d := DiffMetrics(map[string]float64{"throughput_flits_per_cycle": 4},
		map[string]float64{"throughput_flits_per_cycle": 3}, 2); !d[0].Breach {
		t.Errorf("25%% throughput drop did not breach: %+v", d[0])
	}
}

func TestDiffManifestsConfigChanges(t *testing.T) {
	on := config.PaperLOFTSpec(12)
	off := config.PaperLOFTSpec(0)
	a := &Manifest{ManifestVersion: ManifestVersion, Tool: "loftsim", Arch: "loft",
		Pattern: "case1", Seeds: []uint64{1}, Config: &on,
		Metrics: map[string]float64{"packets": 100}}
	b := &Manifest{ManifestVersion: ManifestVersion, Tool: "loftsim", Arch: "loft",
		Pattern: "case1", Seeds: []uint64{1}, Config: &off,
		Metrics: map[string]float64{"packets": 100}}
	r, err := DiffManifests(a, b, "on", "off", 2)
	if err != nil {
		t.Fatal(err)
	}
	if r.Breaches != 0 || r.Changed != 0 {
		t.Errorf("identical metrics: changed=%d breaches=%d", r.Changed, r.Breaches)
	}
	joined := strings.Join(r.ConfigChanges, "\n")
	for _, want := range []string{"SpeculativeSwitching", "LocalStatusReset", "SpecBufFlits"} {
		if !strings.Contains(joined, want) {
			t.Errorf("config changes missing %s:\n%s", want, joined)
		}
	}
	// Self-diff of a manifest reports no config changes at all.
	r2, err := DiffManifests(a, a, "on", "on", 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(r2.ConfigChanges) != 0 {
		t.Errorf("self-diff config changes = %v", r2.ConfigChanges)
	}
}
