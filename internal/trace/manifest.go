package trace

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"loft/internal/config"
)

// ManifestVersion is the current manifest schema version.
const ManifestVersion = 1

// ManifestName is the manifest's file name inside a run directory.
const ManifestName = "manifest.json"

// Artifact is one exported file of a run, pinned by checksum so a manifest
// certifies exactly which bytes the analyses below it consumed.
type Artifact struct {
	Name   string `json:"name"`
	Bytes  int64  `json:"bytes"`
	SHA256 string `json:"sha256"`
}

// Manifest records everything needed to reproduce and compare a run: the
// full configuration, seeds, topology, environment provenance (wall time
// and git revision — captured by internal/runenv, outside the
// determinism-checked packages), headline metrics, and the checksummed
// artifact list. Metrics is a flat name → value map so the differ and the
// BENCH_*.json trend reader share one comparison path; encoding/json
// serializes map keys sorted, keeping manifests byte-stable.
type Manifest struct {
	ManifestVersion int      `json:"manifest_version"`
	Tool            string   `json:"tool"`
	Command         []string `json:"command,omitempty"`
	CreatedUTC      string   `json:"created_utc,omitempty"`
	GitRevision     string   `json:"git_revision,omitempty"`

	// Host parallelism context: without it, parallel-engine numbers from
	// different machines (say, a 1-CPU CI container vs a 16-core desktop)
	// are indistinguishable in cross-run diffs.
	HostCPUs       int `json:"host_cpus,omitempty"`
	HostGoMaxProcs int `json:"host_gomaxprocs,omitempty"`
	// NodeWorkers is the effective intra-run worker count (-jnode); 0 or
	// absent means the sequential engine.
	NodeWorkers int `json:"node_workers,omitempty"`

	Arch          string   `json:"arch,omitempty"`
	Pattern       string   `json:"pattern,omitempty"`
	Seeds         []uint64 `json:"seeds,omitempty"`
	WarmupCycles  uint64   `json:"warmup_cycles,omitempty"`
	MeasureCycles uint64   `json:"measure_cycles,omitempty"`
	MeshK         int      `json:"mesh_k,omitempty"`
	Nodes         int      `json:"nodes,omitempty"`
	// FaultPlan is the canonical rendering of the armed fault-injection
	// plan (fault.Plan.String), empty for clean runs. Together with Seeds
	// it pins a chaos run: the same plan + seed reproduces the run
	// byte-for-byte.
	FaultPlan string `json:"fault_plan,omitempty"`

	Config *config.LOFT `json:"config,omitempty"`

	Metrics   map[string]float64 `json:"metrics,omitempty"`
	Artifacts []Artifact         `json:"artifacts,omitempty"`
}

// ReadManifest loads a manifest from path; a directory path reads the
// ManifestName inside it.
func ReadManifest(path string) (*Manifest, error) {
	if st, err := os.Stat(path); err == nil && st.IsDir() {
		path = filepath.Join(path, ManifestName)
	}
	blob, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var m Manifest
	if err := json.Unmarshal(blob, &m); err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	if m.ManifestVersion == 0 {
		return nil, fmt.Errorf("%s: not a run manifest (missing manifest_version)", path)
	}
	if m.ManifestVersion > ManifestVersion {
		return nil, fmt.Errorf("%s: manifest version %d is newer than this tool understands (%d)",
			path, m.ManifestVersion, ManifestVersion)
	}
	return &m, nil
}

// Write serializes the manifest to path as indented JSON.
func (m *Manifest) Write(path string) error {
	blob, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(blob, '\n'), 0o644)
}

// FileArtifact checksums one exported file.
func FileArtifact(path string) (Artifact, error) {
	f, err := os.Open(path)
	if err != nil {
		return Artifact{}, err
	}
	defer f.Close()
	h := sha256.New()
	n, err := io.Copy(h, f)
	if err != nil {
		return Artifact{}, fmt.Errorf("%s: %v", path, err)
	}
	return Artifact{
		Name:   filepath.Base(path),
		Bytes:  n,
		SHA256: fmt.Sprintf("%x", h.Sum(nil)),
	}, nil
}
