package trace

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"loft/internal/config"
)

func TestManifestRoundTrip(t *testing.T) {
	cfg := config.PaperLOFT()
	m := Manifest{
		ManifestVersion: ManifestVersion,
		Tool:            "loftsim",
		Command:         []string{"loftsim", "-arch", "loft"},
		CreatedUTC:      "2026-08-08T00:00:00Z",
		GitRevision:     "deadbeef",
		Arch:            "loft",
		Pattern:         "case1",
		Seeds:           []uint64{1, 2},
		WarmupCycles:    200,
		MeasureCycles:   1500,
		MeshK:           8,
		Nodes:           64,
		Config:          &cfg,
		Metrics:         map[string]float64{"packets": 1234, "avg_latency_cycles": 56.7},
		Artifacts:       []Artifact{{Name: "events.jsonl", Bytes: 10, SHA256: "ab"}},
	}
	dir := t.TempDir()
	path := filepath.Join(dir, ManifestName)
	if err := m.Write(path); err != nil {
		t.Fatal(err)
	}
	// Reading the directory resolves to its manifest.json.
	for _, target := range []string{path, dir} {
		got, err := ReadManifest(target)
		if err != nil {
			t.Fatalf("ReadManifest(%s): %v", target, err)
		}
		if !reflect.DeepEqual(*got, m) {
			t.Errorf("round trip via %s diverged:\n got %+v\nwant %+v", target, *got, m)
		}
	}
	// Byte-stable: writing the same manifest twice yields identical bytes.
	first, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Write(path); err != nil {
		t.Fatal(err)
	}
	second, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(first) != string(second) {
		t.Error("manifest serialization is not byte-stable")
	}
}

func TestReadManifestRejectsNewerVersion(t *testing.T) {
	path := filepath.Join(t.TempDir(), ManifestName)
	if err := os.WriteFile(path, []byte(`{"manifest_version": 9999}`), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := ReadManifest(path)
	if err == nil || !strings.Contains(err.Error(), "version") {
		t.Errorf("err = %v, want unsupported-version error", err)
	}
}

func TestFileArtifact(t *testing.T) {
	path := filepath.Join(t.TempDir(), "events.jsonl")
	if err := os.WriteFile(path, []byte("hello\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	a, err := FileArtifact(path)
	if err != nil {
		t.Fatal(err)
	}
	if a.Name != "events.jsonl" || a.Bytes != 6 {
		t.Errorf("artifact = %+v", a)
	}
	// sha256("hello\n")
	if a.SHA256 != "5891b5b522d5df086d0ff0b110fbd9d21bb4fc7163af34d08286a2e846f6be03" {
		t.Errorf("sha256 = %s", a.SHA256)
	}
}

func TestLoadMetricsFormats(t *testing.T) {
	dir := t.TempDir()
	// Flat BENCH-style file.
	flat := filepath.Join(dir, "BENCH_test.json")
	if err := os.WriteFile(flat, []byte(`{"BenchmarkSimulatorSpeed": 6431}`), 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := LoadMetrics(flat)
	if err != nil {
		t.Fatal(err)
	}
	if s.Manifest != nil || s.Metrics["BenchmarkSimulatorSpeed"] != 6431 {
		t.Errorf("flat source = %+v", s)
	}
	// Run directory with a manifest.
	run := filepath.Join(dir, "run")
	if err := os.MkdirAll(run, 0o755); err != nil {
		t.Fatal(err)
	}
	m := Manifest{ManifestVersion: ManifestVersion, Tool: "loftsim",
		Metrics: map[string]float64{"packets": 7}}
	if err := m.Write(filepath.Join(run, ManifestName)); err != nil {
		t.Fatal(err)
	}
	s, err = LoadMetrics(run)
	if err != nil {
		t.Fatal(err)
	}
	if s.Manifest == nil || s.Metrics["packets"] != 7 {
		t.Errorf("manifest source = %+v", s)
	}
	// Garbage is neither.
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte(`[1,2,3]`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadMetrics(bad); err == nil {
		t.Error("want error for non-metric JSON")
	}
}

func TestTrendFromFiles(t *testing.T) {
	dir := t.TempDir()
	write := func(name, body string) string {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	a := write("BENCH_a.json", `{"BenchmarkSimulatorSpeed": 6000, "only_a": 1}`)
	b := write("BENCH_b.json", `{"BenchmarkSimulatorSpeed": 6200}`)
	c := write("BENCH_c.json", `{"BenchmarkSimulatorSpeed": 5000, "only_c": 2}`)
	tr, err := TrendFromFiles([]string{a, b, c}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Labels) != 3 || tr.Labels[0] != "BENCH_a.json" {
		t.Errorf("labels = %v", tr.Labels)
	}
	var speed *TrendRow
	for i := range tr.Rows {
		if tr.Rows[i].Name == "BenchmarkSimulatorSpeed" {
			speed = &tr.Rows[i]
		}
	}
	if speed == nil {
		t.Fatal("no BenchmarkSimulatorSpeed row")
	}
	// 6000 -> 5000 on a higher-is-better benchmark metric: regression.
	if !speed.Regressed || speed.First != 6000 || speed.Last != 5000 {
		t.Errorf("speed row = %+v", speed)
	}
	if tr.Regressions != 1 {
		t.Errorf("regressions = %d, want 1", tr.Regressions)
	}
	// Metrics absent from some files align as nulls, no spurious regression.
	for _, r := range tr.Rows {
		if r.Name == "only_a" && (len(r.Values) != 3 || r.Values[1] != nil || r.Regressed) {
			t.Errorf("only_a row = %+v", r)
		}
	}
	if _, err := TrendFromFiles([]string{a}, 5); err == nil {
		t.Error("want error for a single file")
	}
}
