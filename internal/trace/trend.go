package trace

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"loft/internal/det"
)

// MetricSource is one loaded metric set: a run manifest, a BENCH_*.json
// flat baseline, or a loftexp JSON report is reduced to the same flat map
// so diffing and trending share one comparison path.
type MetricSource struct {
	Label    string
	Metrics  map[string]float64
	Manifest *Manifest // nil for flat files
}

// LoadMetrics loads a metric source from path: a run directory (its
// manifest), a manifest file, or a flat name → value JSON file (the
// BENCH_*.json format).
func LoadMetrics(path string) (*MetricSource, error) {
	resolved := path
	if st, err := os.Stat(path); err == nil && st.IsDir() {
		resolved = filepath.Join(path, ManifestName)
	}
	blob, err := os.ReadFile(resolved)
	if err != nil {
		return nil, err
	}
	// A manifest announces itself with manifest_version; anything else must
	// be the flat baseline format.
	var probe struct {
		ManifestVersion int `json:"manifest_version"`
	}
	if err := json.Unmarshal(blob, &probe); err == nil && probe.ManifestVersion > 0 {
		m, err := ReadManifest(resolved)
		if err != nil {
			return nil, err
		}
		return &MetricSource{Label: path, Metrics: m.Metrics, Manifest: m}, nil
	}
	var flat map[string]float64
	if err := json.Unmarshal(blob, &flat); err != nil {
		return nil, fmt.Errorf("%s: neither a run manifest nor a flat metric map: %v", resolved, err)
	}
	return &MetricSource{Label: path, Metrics: flat}, nil
}

// TrendRow is one metric's trajectory across an ordered sequence of
// baselines.
type TrendRow struct {
	Name      string     `json:"name"`
	Values    []*float64 `json:"values"` // aligned with Trend.Labels; null where absent
	First     float64    `json:"first"`
	Last      float64    `json:"last"`
	ChangePct float64    `json:"change_pct"` // last vs first
	Direction string     `json:"direction"`
	Regressed bool       `json:"regressed"` // change beyond threshold in the bad direction
}

// Trend is the cross-baseline trajectory report (`lofttrace trend
// BENCH_*.json` or a series of run manifests).
type Trend struct {
	Labels       []string   `json:"labels"`
	ThresholdPct float64    `json:"threshold_pct"`
	Rows         []TrendRow `json:"rows"`
	Regressions  int        `json:"regressions"`
}

// TrendFromFiles builds the trajectory across the given files in argument
// order (pass BENCH_*.json sorted by name for the chronological record).
func TrendFromFiles(paths []string, thresholdPct float64) (*Trend, error) {
	if len(paths) < 2 {
		return nil, fmt.Errorf("trend needs at least two metric files, got %d", len(paths))
	}
	srcs := make([]*MetricSource, 0, len(paths))
	names := make(map[string]bool)
	t := &Trend{ThresholdPct: thresholdPct}
	for _, p := range paths {
		s, err := LoadMetrics(p)
		if err != nil {
			return nil, err
		}
		srcs = append(srcs, s)
		t.Labels = append(t.Labels, filepath.Base(s.Label))
		for k := range s.Metrics {
			names[k] = true
		}
	}
	for _, name := range det.Keys(names) {
		row := TrendRow{Name: name, Direction: MetricDirection(name).String()}
		var first, last *float64
		for _, s := range srcs {
			if v, ok := s.Metrics[name]; ok {
				v := v
				row.Values = append(row.Values, &v)
				if first == nil {
					first = &v
				}
				last = &v
			} else {
				row.Values = append(row.Values, nil)
			}
		}
		if first != nil {
			row.First, row.Last = *first, *last
			switch {
			case row.First != 0:
				row.ChangePct = 100 * (row.Last - row.First) / row.First
			case row.Last != 0:
				row.ChangePct = 100
			}
			dir := MetricDirection(name)
			bad := (dir == HigherIsBetter && row.ChangePct < 0) || (dir == LowerIsBetter && row.ChangePct > 0)
			if bad && abs(row.ChangePct) > thresholdPct {
				row.Regressed = true
				t.Regressions++
			}
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}
