package traffic

import (
	"fmt"

	"loft/internal/flit"
	"loft/internal/topo"
)

// Uniform returns the uniform-random pattern: each source is one flow (§6)
// with a fresh random destination per packet. Reservations are equal,
// F/maxFlows flits per frame, installed on every link (Table 1 assumes up to
// 64 flows contend per link).
func Uniform(m topo.Mesh, rate float64, pktFlits, frameFlits int) *Pattern {
	p := &Pattern{
		Name:        "uniform",
		Mesh:        m,
		Gens:        make(map[topo.NodeID][]Gen),
		AllLinks:    true,
		PacketFlits: pktFlits,
	}
	r := frameFlits / m.N()
	for n := 0; n < m.N(); n++ {
		id := flit.FlowID(n)
		p.Flows = append(p.Flows, flit.Flow{ID: id, Src: topo.NodeID(n), Dst: -1, Reservation: r})
		p.Gens[topo.NodeID(n)] = []Gen{{Flow: id, Rate: rate, RandomDst: true}}
	}
	return p
}

// Hotspot returns the hotspot pattern: every node except the hotspot sends
// to it; each source-destination pair is a distinct flow. weight returns the
// relative reservation weight for a source node (Fig. 10's partitions);
// reservations are computed in quantum units (quantumFlits data flits each)
// and scaled so that ΣR ≤ F holds on the hotspot's ejection link, the most
// contended link in the pattern.
func Hotspot(m topo.Mesh, hotspot topo.NodeID, rate float64, pktFlits, frameFlits, quantumFlits int, weight func(src topo.NodeID) int) *Pattern {
	if weight == nil {
		weight = func(topo.NodeID) int { return 1 }
	}
	p := &Pattern{
		Name:        "hotspot",
		Mesh:        m,
		Gens:        make(map[topo.NodeID][]Gen),
		PacketFlits: pktFlits,
	}
	totalW := 0
	for n := 0; n < m.N(); n++ {
		if topo.NodeID(n) != hotspot {
			totalW += weight(topo.NodeID(n))
		}
	}
	slots := frameFlits / quantumFlits
	unitQ := slots / totalW
	if unitQ < 1 {
		unitQ = 1
	}
	id := flit.FlowID(0)
	for n := 0; n < m.N(); n++ {
		src := topo.NodeID(n)
		if src == hotspot {
			continue
		}
		r := unitQ * weight(src) * quantumFlits
		p.Flows = append(p.Flows, flit.Flow{ID: id, Src: src, Dst: hotspot, Reservation: r})
		p.Gens[src] = []Gen{{Flow: id, Rate: rate, Dst: hotspot}}
		id++
	}
	if err := p.Validate(frameFlits); err != nil {
		panic(fmt.Sprintf("traffic: hotspot weights overflow frame: %v", err))
	}
	return p
}

// QuadrantWeight partitions the mesh into four quadrants with the given
// weights (Fig. 10b uses four partitions with differentiated service).
func QuadrantWeight(m topo.Mesh, w [4]int) func(topo.NodeID) int {
	half := m.K / 2
	return func(n topo.NodeID) int {
		c := m.Coord(n)
		q := 0
		if c.X >= half {
			q++
		}
		if c.Y >= half {
			q += 2
		}
		return w[q]
	}
}

// HalfWeight partitions the mesh into left/right halves (Fig. 10c).
func HalfWeight(m topo.Mesh, left, right int) func(topo.NodeID) int {
	half := m.K / 2
	return func(n topo.NodeID) int {
		if m.Coord(n).X < half {
			return left
		}
		return right
	}
}

// CaseStudyI returns the §6.3 denial-of-service scenario: nodes 0, 48 and 56
// send to hotspot node 63; each flow is allocated 1/4 of the link bandwidth
// (R = F/4); flow 0→63 is the regulated victim at victimRate; flows 48→63
// and 56→63 are aggressors at aggressorRate.
func CaseStudyI(m topo.Mesh, victimRate, aggressorRate float64, pktFlits, frameFlits int) *Pattern {
	p := &Pattern{
		Name:        "case-study-1",
		Mesh:        m,
		Gens:        make(map[topo.NodeID][]Gen),
		PacketFlits: pktFlits,
	}
	hot := topo.NodeID(m.N() - 1)
	srcs := []topo.NodeID{0, topo.NodeID(6 * m.K), topo.NodeID(7 * m.K)}
	rates := []float64{victimRate, aggressorRate, aggressorRate}
	for i, src := range srcs {
		id := flit.FlowID(i)
		p.Flows = append(p.Flows, flit.Flow{ID: id, Src: src, Dst: hot, Reservation: frameFlits / 4})
		p.Gens[src] = []Gen{{Flow: id, Rate: rates[i], Dst: hot}}
	}
	return p
}

// CaseStudyIVictim, CaseStudyIAggressor1 and CaseStudyIAggressor2 name the
// flow ids of the Case Study I pattern.
const (
	CaseStudyIVictim     = flit.FlowID(0)
	CaseStudyIAggressor1 = flit.FlowID(1)
	CaseStudyIAggressor2 = flit.FlowID(2)
)

// CaseStudyII returns the Fig. 1 pathological pattern: the grey nodes of
// column 0 all send to a central hotspot while the stripped node sends to
// its nearest neighbor over an uncontended link. Equal reservations are
// allocated to all flows (no prior knowledge of the traffic pattern).
//
// Grey flows: (0,y) → center for every row y. Stripped flow:
// (K-2, 0) → (K-1, 0), whose single east link is used by no grey flow under
// XY routing (grey row-0 traffic only uses x ≤ center on row 0).
func CaseStudyII(m topo.Mesh, rate float64, pktFlits, frameFlits int) *Pattern {
	p := &Pattern{
		Name:        "case-study-2",
		Mesh:        m,
		Gens:        make(map[topo.NodeID][]Gen),
		PacketFlits: pktFlits,
	}
	center := m.ID(topo.Coord{X: m.K / 2, Y: m.K / 2})
	nFlows := m.K + 1
	r := frameFlits / nFlows
	r -= r % 2
	if r < 2 {
		r = 2
	}
	id := flit.FlowID(0)
	for y := 0; y < m.K; y++ {
		src := m.ID(topo.Coord{X: 0, Y: y})
		p.Flows = append(p.Flows, flit.Flow{ID: id, Src: src, Dst: center, Reservation: r})
		p.Gens[src] = []Gen{{Flow: id, Rate: rate, Dst: center}}
		id++
	}
	stripped := m.ID(topo.Coord{X: m.K - 2, Y: 0})
	neighbor := m.ID(topo.Coord{X: m.K - 1, Y: 0})
	p.Flows = append(p.Flows, flit.Flow{ID: id, Src: stripped, Dst: neighbor, Reservation: r})
	p.Gens[stripped] = []Gen{{Flow: id, Rate: rate, Dst: neighbor}}
	return p
}

// CaseStudyIIStripped returns the stripped flow's id within a CaseStudyII
// pattern (the last flow).
func CaseStudyIIStripped(p *Pattern) flit.FlowID {
	return p.Flows[len(p.Flows)-1].ID
}

// CaseStudyIIGrey returns the grey flow ids within a CaseStudyII pattern.
func CaseStudyIIGrey(p *Pattern) []flit.FlowID {
	ids := make([]flit.FlowID, 0, len(p.Flows)-1)
	for _, f := range p.Flows[:len(p.Flows)-1] {
		ids = append(ids, f.ID)
	}
	return ids
}

// NearestNeighbor returns a contention-free pattern where node (x,y) sends
// to (x+1,y) (last column sends west instead). Used by tests and the
// quickstart example.
func NearestNeighbor(m topo.Mesh, rate float64, pktFlits, frameFlits int) *Pattern {
	p := &Pattern{
		Name:        "nearest-neighbor",
		Mesh:        m,
		Gens:        make(map[topo.NodeID][]Gen),
		PacketFlits: pktFlits,
	}
	r := frameFlits / 4
	for n := 0; n < m.N(); n++ {
		src := topo.NodeID(n)
		c := m.Coord(src)
		var dst topo.NodeID
		if c.X+1 < m.K {
			dst = m.ID(topo.Coord{X: c.X + 1, Y: c.Y})
		} else {
			dst = m.ID(topo.Coord{X: c.X - 1, Y: c.Y})
		}
		id := flit.FlowID(n)
		p.Flows = append(p.Flows, flit.Flow{ID: id, Src: src, Dst: dst, Reservation: r})
		p.Gens[src] = []Gen{{Flow: id, Rate: rate, Dst: dst}}
	}
	return p
}

// Transpose returns the transpose permutation pattern ((x,y) → (y,x)),
// a classic adversarial pattern for XY routing used by extension benches.
func Transpose(m topo.Mesh, rate float64, pktFlits, frameFlits int) *Pattern {
	p := &Pattern{
		Name:        "transpose",
		Mesh:        m,
		Gens:        make(map[topo.NodeID][]Gen),
		PacketFlits: pktFlits,
	}
	r := frameFlits / m.K / 2
	r -= r % 2
	if r < 2 {
		r = 2
	}
	id := flit.FlowID(0)
	for n := 0; n < m.N(); n++ {
		src := topo.NodeID(n)
		c := m.Coord(src)
		dst := m.ID(topo.Coord{X: c.Y, Y: c.X})
		if dst == src {
			continue
		}
		p.Flows = append(p.Flows, flit.Flow{ID: id, Src: src, Dst: dst, Reservation: r})
		p.Gens[src] = []Gen{{Flow: id, Rate: rate, Dst: dst}}
		id++
	}
	return p
}

// SingleFlow returns a pattern with one flow src→dst, used by unit and
// integration tests.
func SingleFlow(m topo.Mesh, src, dst topo.NodeID, rate float64, pktFlits, frameFlits int) *Pattern {
	p := &Pattern{
		Name:        "single-flow",
		Mesh:        m,
		Gens:        make(map[topo.NodeID][]Gen),
		PacketFlits: pktFlits,
	}
	p.Flows = []flit.Flow{{ID: 0, Src: src, Dst: dst, Reservation: frameFlits / 2}}
	p.Gens[src] = []Gen{{Flow: 0, Rate: rate, Dst: dst}}
	return p
}

// Bursty returns a single-flow on/off pattern: the source alternates
// between bursts at full packet rate and idle gaps, with the given mean
// burst and gap lengths (cycles). The frame window's purpose (§3.1: "allows
// bursty flows to utilize excess bandwidth by providing multiple on-the-fly
// frames") is exercised by this pattern; used by extension tests and
// benches.
func Bursty(m topo.Mesh, src, dst topo.NodeID, burst, gap int, pktFlits, frameFlits int) *Pattern {
	p := SingleFlow(m, src, dst, 0, pktFlits, frameFlits)
	p.Name = "bursty"
	p.Gens[src] = []Gen{{Flow: 0, Rate: 0, Dst: dst, Burst: burst, Gap: gap}}
	return p
}
