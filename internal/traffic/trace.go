package traffic

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"loft/internal/flit"
	"loft/internal/route"
	"loft/internal/sim"
	"loft/internal/topo"
)

// TraceEvent is one packet injection in a trace-driven workload.
type TraceEvent struct {
	Cycle uint64
	Src   topo.NodeID
	Dst   topo.NodeID
	Flits int
}

// ParseTrace reads a workload trace: one event per line,
// "cycle src dst flits", '#' comments and blank lines ignored. Events need
// not be sorted. The paper's evaluation uses synthetic traffic only (it has
// no access to production traces, and neither do we — DESIGN.md §5); the
// trace path lets downstream users replay their own captured workloads
// through either network.
func ParseTrace(r io.Reader) ([]TraceEvent, error) {
	var events []TraceEvent
	sc := bufio.NewScanner(r)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) != 4 {
			return nil, fmt.Errorf("traffic: trace line %d: want 4 fields, got %d", line, len(fields))
		}
		var ev TraceEvent
		var err error
		if ev.Cycle, err = strconv.ParseUint(fields[0], 10, 64); err != nil {
			return nil, fmt.Errorf("traffic: trace line %d: bad cycle: %v", line, err)
		}
		src, err := strconv.Atoi(fields[1])
		if err != nil {
			return nil, fmt.Errorf("traffic: trace line %d: bad src: %v", line, err)
		}
		dst, err := strconv.Atoi(fields[2])
		if err != nil {
			return nil, fmt.Errorf("traffic: trace line %d: bad dst: %v", line, err)
		}
		ev.Src, ev.Dst = topo.NodeID(src), topo.NodeID(dst)
		if ev.Flits, err = strconv.Atoi(fields[3]); err != nil {
			return nil, fmt.Errorf("traffic: trace line %d: bad flits: %v", line, err)
		}
		events = append(events, ev)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	sort.Slice(events, func(i, j int) bool { return events[i].Cycle < events[j].Cycle })
	return events, nil
}

// WriteTrace writes events in the ParseTrace format.
func WriteTrace(w io.Writer, events []TraceEvent) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintln(bw, "# cycle src dst flits"); err != nil {
		return err
	}
	for _, ev := range events {
		if _, err := fmt.Fprintf(bw, "%d %d %d %d\n", ev.Cycle, ev.Src, ev.Dst, ev.Flits); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// FromTrace builds a pattern replaying the given events on mesh m. Each
// distinct (src, dst) pair becomes a flow; every flow receives an equal
// reservation scaled so ΣR ≤ F holds on the busiest link of the flow set.
// Events whose endpoints fall outside the mesh or whose size is not a
// positive quantum multiple are rejected.
func FromTrace(m topo.Mesh, events []TraceEvent, pktFlits, frameFlits, quantumFlits int) (*Pattern, error) {
	p := &Pattern{
		Name:        "trace",
		Mesh:        m,
		Gens:        make(map[topo.NodeID][]Gen),
		PacketFlits: pktFlits,
		Trace:       make(map[topo.NodeID][]TraceEvent),
	}
	type pair struct{ src, dst topo.NodeID }
	ids := make(map[pair]flit.FlowID)
	for _, ev := range events {
		if !m.Valid(m.Coord(ev.Src)) || !m.Valid(m.Coord(ev.Dst)) ||
			int(ev.Src) >= m.N() || int(ev.Dst) >= m.N() || ev.Src < 0 || ev.Dst < 0 {
			return nil, fmt.Errorf("traffic: trace event %v outside %dx%d mesh", ev, m.K, m.K)
		}
		if ev.Src == ev.Dst {
			return nil, fmt.Errorf("traffic: trace event %v is a self-send", ev)
		}
		if ev.Flits <= 0 || ev.Flits%quantumFlits != 0 {
			return nil, fmt.Errorf("traffic: trace event %v size not a positive quantum multiple", ev)
		}
		key := pair{ev.Src, ev.Dst}
		if _, seen := ids[key]; !seen {
			id := flit.FlowID(len(p.Flows))
			ids[key] = id
			p.Flows = append(p.Flows, flit.Flow{ID: id, Src: ev.Src, Dst: ev.Dst})
		}
		p.Trace[ev.Src] = append(p.Trace[ev.Src], ev)
	}
	if len(p.Flows) == 0 {
		return nil, fmt.Errorf("traffic: empty trace")
	}
	// Equal reservations: find the most-contended link and split F.
	counts := make(map[topo.Link]int)
	worst := 1
	for _, f := range p.Flows {
		for _, l := range linkSet(m, f) {
			counts[l]++
			if counts[l] > worst {
				worst = counts[l]
			}
		}
	}
	r := (frameFlits / worst / quantumFlits) * quantumFlits
	if r < quantumFlits {
		return nil, fmt.Errorf("traffic: %d flows contend for one link; frame %d too small", worst, frameFlits)
	}
	for i := range p.Flows {
		p.Flows[i].Reservation = r
	}
	// Record flow ids for replay.
	p.traceFlow = func(src, dst topo.NodeID) flit.FlowID { return ids[pair{src, dst}] }
	if err := p.Validate(frameFlits); err != nil {
		return nil, err
	}
	return p, nil
}

func linkSet(m topo.Mesh, f flit.Flow) []topo.Link {
	links := []topo.Link{topo.InjectionLink(f.Src)}
	return append(links, route.Path(m, f.Src, f.Dst)...)
}

// SyntheticTrace generates a reproducible random trace (used by tests,
// examples and benches as a stand-in for captured workloads): n packets
// over the given cycle horizon with uniform random endpoints.
func SyntheticTrace(m topo.Mesh, n int, horizon uint64, pktFlits int, seed uint64) []TraceEvent {
	rng := sim.NewRNG(sim.SeedFor(seed, 0))
	events := make([]TraceEvent, 0, n)
	for i := 0; i < n; i++ {
		src := topo.NodeID(rng.Intn(m.N()))
		dst := src
		for dst == src {
			dst = topo.NodeID(rng.Intn(m.N()))
		}
		events = append(events, TraceEvent{
			Cycle: rng.Uint64() % horizon,
			Src:   src,
			Dst:   dst,
			Flits: pktFlits,
		})
	}
	sort.Slice(events, func(i, j int) bool { return events[i].Cycle < events[j].Cycle })
	return events
}
