package traffic

import (
	"bytes"
	"strings"
	"testing"

	"loft/internal/topo"
)

func TestParseTraceRoundTrip(t *testing.T) {
	events := []TraceEvent{
		{Cycle: 5, Src: 0, Dst: 3, Flits: 4},
		{Cycle: 9, Src: 1, Dst: 2, Flits: 4},
		{Cycle: 9, Src: 3, Dst: 0, Flits: 8},
	}
	var buf bytes.Buffer
	if err := WriteTrace(&buf, events); err != nil {
		t.Fatal(err)
	}
	got, err := ParseTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(events) {
		t.Fatalf("round trip: %d events, want %d", len(got), len(events))
	}
	for i := range events {
		if got[i] != events[i] {
			t.Fatalf("event %d: %v != %v", i, got[i], events[i])
		}
	}
}

func TestParseTraceSortsAndSkipsComments(t *testing.T) {
	in := strings.NewReader("# comment\n\n20 1 2 4\n10 0 3 4\n")
	events, err := ParseTrace(in)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 2 || events[0].Cycle != 10 || events[1].Cycle != 20 {
		t.Fatalf("events = %v", events)
	}
}

func TestParseTraceRejectsGarbage(t *testing.T) {
	for _, bad := range []string{
		"1 2 3",        // missing field
		"x 0 1 4",      // bad cycle
		"1 a 1 4",      // bad src
		"1 0 b 4",      // bad dst
		"1 0 1 banana", // bad flits
	} {
		if _, err := ParseTrace(strings.NewReader(bad)); err == nil {
			t.Errorf("accepted %q", bad)
		}
	}
}

func TestFromTraceValidation(t *testing.T) {
	m := topo.NewMesh(4)
	cases := []struct {
		name   string
		events []TraceEvent
	}{
		{"empty", nil},
		{"off-mesh", []TraceEvent{{Cycle: 1, Src: 0, Dst: 99, Flits: 4}}},
		{"self-send", []TraceEvent{{Cycle: 1, Src: 3, Dst: 3, Flits: 4}}},
		{"odd flits", []TraceEvent{{Cycle: 1, Src: 0, Dst: 1, Flits: 3}}},
		{"zero flits", []TraceEvent{{Cycle: 1, Src: 0, Dst: 1, Flits: 0}}},
	}
	for _, c := range cases {
		if _, err := FromTrace(m, c.events, 4, 32, 2); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}

func TestFromTraceBuildsFlowsAndReservations(t *testing.T) {
	m := topo.NewMesh(4)
	events := []TraceEvent{
		{Cycle: 1, Src: 0, Dst: 3, Flits: 4},
		{Cycle: 5, Src: 0, Dst: 3, Flits: 4}, // same pair: same flow
		{Cycle: 7, Src: 1, Dst: 3, Flits: 4},
	}
	p, err := FromTrace(m, events, 4, 32, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Flows) != 2 {
		t.Fatalf("flows = %d, want 2", len(p.Flows))
	}
	if err := p.Validate(32); err != nil {
		t.Fatal(err)
	}
	for _, f := range p.Flows {
		if f.Reservation < 2 {
			t.Fatalf("flow %d reservation %d", f.ID, f.Reservation)
		}
	}
}

func TestTraceInjectorReplaysExactly(t *testing.T) {
	m := topo.NewMesh(4)
	events := SyntheticTrace(m, 50, 2000, 4, 7)
	p, err := FromTrace(m, events, 4, 64, 2)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for n := 0; n < m.N(); n++ {
		in := NewInjector(p, topo.NodeID(n), 1)
		for now := uint64(0); now < 3000; now++ {
			for _, pkt := range in.Next(now) {
				if pkt.Created != now {
					t.Fatalf("created %d at cycle %d", pkt.Created, now)
				}
				total++
			}
		}
	}
	if total != len(events) {
		t.Fatalf("replayed %d packets, want %d", total, len(events))
	}
}

func TestSyntheticTraceDeterministic(t *testing.T) {
	m := topo.NewMesh(8)
	a := SyntheticTrace(m, 100, 5000, 4, 3)
	b := SyntheticTrace(m, 100, 5000, 4, 3)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same-seed traces differ")
		}
	}
}
