// Package traffic defines the synthetic workloads of the paper's evaluation
// (§6): uniform, hotspot (equal and differentiated allocation), Case Study I
// (denial-of-service aggressors against a regulated victim) and Case Study II
// (the Fig. 1 pathological pattern), plus auxiliary patterns used by tests.
//
// A Pattern bundles the flow set (with per-frame reservations R_ij), the
// per-node packet generators, and how reservations map onto links.
package traffic

import (
	"fmt"

	"loft/internal/det"
	"loft/internal/flit"
	"loft/internal/route"
	"loft/internal/sim"
	"loft/internal/topo"
)

// Gen describes one packet generator at a source node.
type Gen struct {
	Flow flit.FlowID
	// Rate is the offered load in flits/cycle for this generator.
	Rate float64
	// Dst is the fixed destination; ignored when RandomDst is set.
	Dst topo.NodeID
	// RandomDst picks a fresh uniform destination (≠ src) per packet.
	RandomDst bool
	// Burst/Gap, when positive, switch the generator to an on/off process:
	// geometrically-distributed bursts of back-to-back packets (mean Burst
	// cycles) separated by idle gaps (mean Gap cycles). Rate is ignored.
	Burst, Gap int
}

// Pattern is a complete workload description.
type Pattern struct {
	Name  string
	Mesh  topo.Mesh
	Flows []flit.Flow
	// Gens maps each source node to its generators.
	Gens map[topo.NodeID][]Gen
	// AllLinks installs every flow's reservation on every link (used for
	// uniform traffic, where destinations are random and any flow may use
	// any link; Table 1 sizes for 64 contending flows per link).
	AllLinks bool
	// PacketFlits is the packet size in data flits (Table 1: 4).
	PacketFlits int
	// Trace, when non-nil, replays recorded events instead of running the
	// stochastic generators (see FromTrace).
	Trace     map[topo.NodeID][]TraceEvent
	traceFlow func(src, dst topo.NodeID) flit.FlowID
}

// Flow returns the flow record for id.
func (p *Pattern) Flow(id flit.FlowID) flit.Flow { return p.Flows[id] }

// SetRate overrides the offered load of every generator (flits/cycle/node),
// used by load sweeps.
func (p *Pattern) SetRate(rate float64) {
	for n, gens := range p.Gens {
		for i := range gens {
			gens[i].Rate = rate
		}
		p.Gens[n] = gens
	}
}

// SetFlowRate overrides the offered load of one flow's generator.
func (p *Pattern) SetFlowRate(id flit.FlowID, rate float64) {
	for n, gens := range p.Gens {
		for i := range gens {
			if gens[i].Flow == id {
				gens[i].Rate = rate
			}
		}
		p.Gens[n] = gens
	}
}

// LinkFlows returns, for every link, the flows whose reservations are
// installed on it. For path-based patterns these are the XY-path links of
// each flow plus its injection link; for AllLinks patterns every flow is
// installed everywhere it could appear.
func (p *Pattern) LinkFlows() map[topo.Link][]flit.FlowID {
	out := make(map[topo.Link][]flit.FlowID)
	add := func(l topo.Link, f flit.FlowID) { out[l] = append(out[l], f) }
	if p.AllLinks {
		for _, f := range p.Flows {
			for n := 0; n < p.Mesh.N(); n++ {
				for d := topo.North; d < topo.NumDirs; d++ {
					if d == topo.Local {
						add(topo.EjectionLink(topo.NodeID(n)), f.ID)
						continue
					}
					if _, ok := p.Mesh.Neighbor(topo.NodeID(n), d); ok {
						add(topo.Link{From: topo.NodeID(n), D: d}, f.ID)
					}
				}
			}
			add(topo.InjectionLink(f.Src), f.ID)
		}
		return out
	}
	for _, f := range p.Flows {
		add(topo.InjectionLink(f.Src), f.ID)
		for _, l := range route.Path(p.Mesh, f.Src, f.Dst) {
			add(l, f.ID)
		}
	}
	return out
}

// Validate checks the LSF admission constraint ΣR_ij ≤ F on every link.
func (p *Pattern) Validate(frameFlits int) error {
	linkFlows := p.LinkFlows()
	for _, l := range det.KeysFunc(linkFlows, topo.Link.Less) {
		sum := 0
		for _, id := range linkFlows[l] {
			sum += p.Flows[id].Reservation
		}
		if sum > frameFlits {
			return fmt.Errorf("traffic: ΣR=%d exceeds frame size %d on link %s", sum, frameFlits, l)
		}
	}
	return nil
}

// Injector is the per-node runtime that turns generator specs into packets
// with a Bernoulli process, deterministic per (seed, node).
type Injector struct {
	node topo.NodeID
	gens []Gen
	rng  *sim.RNG
	// seq holds the next packet sequence per flow. Flow ids are dense
	// indices into Pattern.Flows, so a slice replaces the map the hot
	// injection loop used to hash into every packet.
	seq []uint64
	p   *Pattern
	// on tracks the burst state per generator index for on/off generators.
	on []bool
	// scratch backs the slice Next returns; callers consume the packets
	// before the next call, so reusing the array keeps the per-cycle
	// injection path allocation-free.
	scratch []flit.Packet
	// rateScale, when non-nil, multiplies each rate generator's packet
	// probability (the fault layer's adversary hook). It must be a pure
	// function of (flow, cycle): scaling moves the Bernoulli threshold but
	// never the draw count, so the RNG stream — and with it every clean
	// flow's injection sequence — is untouched.
	rateScale func(flit.FlowID, uint64) float64
	// trace replay state: remaining events for this node, cycle-sorted.
	trace []TraceEvent
}

// NewInjector returns the injector for node n under pattern p.
func NewInjector(p *Pattern, n topo.NodeID, seed uint64) *Injector {
	if p.Trace != nil {
		return &Injector{node: n, p: p, seq: make([]uint64, len(p.Flows)), trace: p.Trace[n]}
	}
	return &Injector{
		node: n,
		gens: p.Gens[n],
		rng:  sim.NewRNG(sim.SeedFor(seed, int(n))),
		seq:  make([]uint64, len(p.Flows)),
		p:    p,
		on:   make([]bool, len(p.Gens[n])),
	}
}

// SetRateScale installs a multiplier on every rate generator's injection
// probability, keyed by (flow, cycle). Applies to Bernoulli-rate
// generators only (on/off burst generators pace by state, not rate); trace
// replay ignores it.
func (in *Injector) SetRateScale(f func(flit.FlowID, uint64) float64) { in.rateScale = f }

// nextSeq returns flow id's next packet sequence number and advances it.
func (in *Injector) nextSeq(id flit.FlowID) uint64 {
	for int(id) >= len(in.seq) {
		in.seq = append(in.seq, 0)
	}
	s := in.seq[id]
	in.seq[id]++
	return s
}

// Next returns the packets generated at cycle now (usually zero or one per
// generator).
// The returned slice is only valid until the next call: it aliases a
// scratch buffer owned by the injector.
//
//loft:hotpath
func (in *Injector) Next(now uint64) []flit.Packet {
	out := in.scratch[:0]
	if in.p.Trace != nil {
		for len(in.trace) > 0 && in.trace[0].Cycle <= now {
			ev := in.trace[0]
			in.trace = in.trace[1:]
			id := in.p.traceFlow(ev.Src, ev.Dst)
			out = append(out, flit.Packet{
				Flow: id, Src: ev.Src, Dst: ev.Dst,
				Seq: in.nextSeq(id), Flits: ev.Flits, Created: now,
			})
		}
		in.scratch = out
		return out
	}
	for gi, g := range in.gens {
		if g.Burst > 0 && g.Gap > 0 {
			// On/off process: geometric dwell times in each state.
			if in.on[gi] {
				if in.rng.Bernoulli(1 / float64(g.Burst)) {
					in.on[gi] = false
				}
			} else if in.rng.Bernoulli(1 / float64(g.Gap)) {
				in.on[gi] = true
			}
			if !in.on[gi] || now%uint64(in.p.PacketFlits) != 0 {
				continue
			}
			// Burst state: one packet per packet-time (full link rate).
		} else {
			pPkt := g.Rate / float64(in.p.PacketFlits)
			if in.rateScale != nil {
				pPkt *= in.rateScale(g.Flow, now)
			}
			if pPkt <= 0 || !in.rng.Bernoulli(min(pPkt, 1)) {
				continue
			}
		}
		dst := g.Dst
		if g.RandomDst {
			for {
				dst = topo.NodeID(in.rng.Intn(in.p.Mesh.N()))
				if dst != in.node {
					break
				}
			}
		}
		out = append(out, flit.Packet{
			Flow:    g.Flow,
			Src:     in.node,
			Dst:     dst,
			Seq:     in.nextSeq(g.Flow),
			Flits:   in.p.PacketFlits,
			Created: now,
		})
	}
	in.scratch = out
	return out
}

func min(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}
