package traffic

import (
	"math"
	"testing"

	"loft/internal/flit"
	"loft/internal/topo"
)

func TestUniformPattern(t *testing.T) {
	m := topo.NewMesh(8)
	p := Uniform(m, 0.3, 4, 256)
	if len(p.Flows) != 64 {
		t.Fatalf("flows = %d", len(p.Flows))
	}
	for _, f := range p.Flows {
		if f.Reservation != 4 {
			t.Fatalf("uniform reservation = %d, want F/64 = 4", f.Reservation)
		}
	}
	if err := p.Validate(256); err != nil {
		t.Fatal(err)
	}
}

func TestHotspotEqualReservations(t *testing.T) {
	m := topo.NewMesh(8)
	p := Hotspot(m, 63, 0.5, 4, 256, 2, nil)
	if len(p.Flows) != 63 {
		t.Fatalf("flows = %d", len(p.Flows))
	}
	sum := 0
	for _, f := range p.Flows {
		if f.Dst != 63 {
			t.Fatalf("flow %d dst = %d", f.ID, f.Dst)
		}
		sum += f.Reservation
	}
	if sum > 256 {
		t.Fatalf("ΣR = %d > F", sum)
	}
	if err := p.Validate(256); err != nil {
		t.Fatal(err)
	}
}

func TestHotspotWeightedReservations(t *testing.T) {
	m := topo.NewMesh(8)
	p := Hotspot(m, 63, 0.5, 4, 256, 2, QuadrantWeight(m, [4]int{3, 2, 2, 1}))
	if err := p.Validate(256); err != nil {
		t.Fatal(err)
	}
	// Node 0 is in quadrant 0 (weight 3); node 7 in quadrant 1 (weight 2).
	var r0, r7 int
	for _, f := range p.Flows {
		if f.Src == 0 {
			r0 = f.Reservation
		}
		if f.Src == 7 {
			r7 = f.Reservation
		}
	}
	if r0*2 != r7*3 {
		t.Fatalf("weights not 3:2 — R(0)=%d R(7)=%d", r0, r7)
	}
}

func TestCaseStudyIFlows(t *testing.T) {
	m := topo.NewMesh(8)
	p := CaseStudyI(m, 0.2, 0.8, 4, 256)
	if len(p.Flows) != 3 {
		t.Fatalf("flows = %d", len(p.Flows))
	}
	wantSrcs := []topo.NodeID{0, 48, 56}
	for i, f := range p.Flows {
		if f.Src != wantSrcs[i] || f.Dst != 63 {
			t.Fatalf("flow %d: %d->%d", i, f.Src, f.Dst)
		}
		if f.Reservation != 64 {
			t.Fatalf("flow %d reservation = %d, want F/4", i, f.Reservation)
		}
	}
	if err := p.Validate(256); err != nil {
		t.Fatal(err)
	}
}

func TestCaseStudyIIIsolatedLink(t *testing.T) {
	m := topo.NewMesh(8)
	p := CaseStudyII(m, 0.5, 4, 256)
	stripped := CaseStudyIIStripped(p)
	grey := CaseStudyIIGrey(p)
	if len(grey) != 8 {
		t.Fatalf("grey flows = %d", len(grey))
	}
	// The stripped flow's path shares no link with any grey flow.
	strippedLinks := map[topo.Link]bool{}
	for l, flows := range p.LinkFlows() {
		for _, id := range flows {
			if id == stripped {
				strippedLinks[l] = true
			}
		}
	}
	for l, flows := range p.LinkFlows() {
		if !strippedLinks[l] {
			continue
		}
		for _, id := range flows {
			if id != stripped {
				t.Fatalf("grey flow %d shares link %s with the stripped flow", id, l)
			}
		}
	}
	if err := p.Validate(256); err != nil {
		t.Fatal(err)
	}
}

func TestInjectorRate(t *testing.T) {
	m := topo.NewMesh(4)
	p := SingleFlow(m, 0, 15, 0.4, 4, 32)
	in := NewInjector(p, 0, 9)
	flits := 0
	const cycles = 200000
	for now := uint64(0); now < cycles; now++ {
		for _, pkt := range in.Next(now) {
			flits += pkt.Flits
		}
	}
	rate := float64(flits) / cycles
	if math.Abs(rate-0.4) > 0.02 {
		t.Fatalf("offered rate = %f, want 0.4", rate)
	}
}

func TestInjectorDeterminism(t *testing.T) {
	m := topo.NewMesh(4)
	p := Uniform(m, 0.3, 4, 32)
	a := NewInjector(p, 3, 7)
	b := NewInjector(p, 3, 7)
	for now := uint64(0); now < 5000; now++ {
		pa, pb := a.Next(now), b.Next(now)
		if len(pa) != len(pb) {
			t.Fatal("same-seed injectors diverged")
		}
		for i := range pa {
			if pa[i] != pb[i] {
				t.Fatal("same-seed packets differ")
			}
		}
	}
}

func TestInjectorSequenceNumbers(t *testing.T) {
	m := topo.NewMesh(4)
	p := SingleFlow(m, 0, 15, 0.9, 4, 32)
	in := NewInjector(p, 0, 1)
	var last int64 = -1
	for now := uint64(0); now < 2000; now++ {
		for _, pkt := range in.Next(now) {
			if int64(pkt.Seq) != last+1 {
				t.Fatalf("sequence gap: %d after %d", pkt.Seq, last)
			}
			last = int64(pkt.Seq)
		}
	}
	if last < 100 {
		t.Fatalf("too few packets: %d", last)
	}
}

func TestSetFlowRate(t *testing.T) {
	m := topo.NewMesh(8)
	p := CaseStudyI(m, 0.2, 0.1, 4, 256)
	p.SetFlowRate(CaseStudyIAggressor1, 0.7)
	found := false
	for _, g := range p.Gens[48] {
		if g.Flow == CaseStudyIAggressor1 && g.Rate == 0.7 {
			found = true
		}
	}
	if !found {
		t.Fatal("SetFlowRate did not update the generator")
	}
}

func TestValidateRejectsOversubscription(t *testing.T) {
	m := topo.NewMesh(8)
	p := Hotspot(m, 63, 0.5, 4, 256, 2, nil)
	// Inflate one reservation to break ΣR ≤ F on the ejection link.
	p.Flows[0].Reservation = 256
	if err := p.Validate(256); err == nil {
		t.Fatal("oversubscription accepted")
	}
}

func TestNearestNeighborAndTranspose(t *testing.T) {
	m := topo.NewMesh(8)
	for _, p := range []*Pattern{NearestNeighbor(m, 0.2, 4, 256), Transpose(m, 0.2, 4, 256)} {
		if err := p.Validate(256); err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		for _, f := range p.Flows {
			if f.Src == f.Dst {
				t.Fatalf("%s: self flow %d", p.Name, f.ID)
			}
		}
	}
}

func TestFlowIDsAreDense(t *testing.T) {
	m := topo.NewMesh(8)
	p := Hotspot(m, 63, 0.5, 4, 256, 2, nil)
	for i, f := range p.Flows {
		if f.ID != flit.FlowID(i) {
			t.Fatalf("flow ids not dense at %d", i)
		}
	}
}

func TestBurstyGeneratorAlternates(t *testing.T) {
	m := topo.NewMesh(4)
	p := Bursty(m, 0, 15, 40, 200, 4, 32)
	in := NewInjector(p, 0, 5)
	flits, busyWindows := 0, 0
	const win = 100
	const windows = 400
	for w := 0; w < windows; w++ {
		got := 0
		for c := 0; c < win; c++ {
			for _, pkt := range in.Next(uint64(w*win + c)) {
				got += pkt.Flits
			}
		}
		flits += got
		if got > 0 {
			busyWindows++
		}
	}
	if flits == 0 {
		t.Fatal("bursty generator produced nothing")
	}
	// On/off: a clear minority of windows are busy, but bursts hit near
	// full rate when on (duty cycle ≈ 40/240).
	if busyWindows == 0 || busyWindows == windows {
		t.Fatalf("no on/off structure: %d/%d busy windows", busyWindows, windows)
	}
	duty := float64(flits) / float64(windows*win)
	if duty < 0.05 || duty > 0.4 {
		t.Fatalf("duty cycle %.3f outside expected band", duty)
	}
}
