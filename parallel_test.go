// Parallel-engine determinism goldens: for every architecture, seed and
// worker count, a sharded run must be byte-identical to the sequential run —
// not just statistically equivalent. The comparison covers the full result
// summary, the exported probe event stream (JSONL bytes) and the audit
// conformance snapshot (JSON bytes). `make par-smoke` runs these under the
// race detector.
package loft

import (
	"bytes"
	"encoding/json"
	"reflect"
	"testing"

	"loft/internal/audit"
	"loft/internal/config"
	"loft/internal/core"
	"loft/internal/fault"
	loftnet "loft/internal/loft"
	"loft/internal/lsf"
	"loft/internal/perfmon"
	"loft/internal/probe"
	"loft/internal/topo"
)

// observedRun is everything externally visible from one simulation run.
type observedRun struct {
	res    core.Result
	events []byte // probe JSONL export
	audit  []byte // audit snapshot JSON
}

func runObserved(t *testing.T, arch core.Arch, seed uint64, workers int) observedRun {
	return runObservedFault(t, arch, seed, workers, nil, nil)
}

// runObservedPerf is runObserved with an optional perfmon monitor attached;
// the perf snapshot itself holds wall times and is deliberately NOT part of
// observedRun — byte-identity is asserted over the simulation outputs only.
func runObservedPerf(t *testing.T, arch core.Arch, seed uint64, workers int, mon *perfmon.Monitor) observedRun {
	return runObservedFault(t, arch, seed, workers, mon, nil)
}

// runObservedFault additionally arms a fault-injection plan on the run.
func runObservedFault(t *testing.T, arch core.Arch, seed uint64, workers int, mon *perfmon.Monitor, plan *fault.Plan) observedRun {
	t.Helper()
	cfg := config.PaperLOFT()
	p := trafficUniform(cfg, 0.2)
	pr := probe.New(probe.Config{SampleEvery: 256})
	aud := audit.New(audit.Config{})
	spec := core.RunSpec{Seed: seed, Warmup: 200, Measure: 1500, Probe: pr, Audit: aud, Workers: workers, Perf: mon, Fault: plan}
	var (
		res core.Result
		err error
	)
	switch arch {
	case core.ArchLOFT:
		res, _, err = core.RunLOFT(cfg, p, spec)
	case core.ArchGSF:
		res, _, err = core.RunGSF(config.PaperGSF(), p, cfg.FrameFlits, spec)
	default:
		t.Fatalf("unknown arch %q", arch)
	}
	if err != nil {
		t.Fatalf("%s seed %d workers %d: %v", arch, seed, workers, err)
	}
	var evBuf bytes.Buffer
	if err := probe.WriteEventsJSONL(&evBuf, pr.Events(), pr.Tracer().Dropped()); err != nil {
		t.Fatalf("export events: %v", err)
	}
	audJSON, err := json.Marshal(aud.Snapshot())
	if err != nil {
		t.Fatalf("marshal audit snapshot: %v", err)
	}
	return observedRun{res: res, events: evBuf.Bytes(), audit: audJSON}
}

func checkIdentical(t *testing.T, arch core.Arch, seed uint64, workers int, seq, par observedRun) {
	t.Helper()
	if !reflect.DeepEqual(seq.res, par.res) {
		t.Errorf("%s seed %d: workers=%d result differs from sequential\nseq: %+v\npar: %+v",
			arch, seed, workers, seq.res, par.res)
	}
	if !bytes.Equal(seq.events, par.events) {
		t.Errorf("%s seed %d: workers=%d probe event stream differs from sequential (%d vs %d bytes)",
			arch, seed, workers, len(seq.events), len(par.events))
	}
	if !bytes.Equal(seq.audit, par.audit) {
		t.Errorf("%s seed %d: workers=%d audit snapshot differs from sequential\nseq: %s\npar: %s",
			arch, seed, workers, seq.audit, par.audit)
	}
}

// TestParallelDeterminism checks LOFT byte-identity across worker counts.
func TestParallelDeterminism(t *testing.T) {
	for _, seed := range []uint64{1, 2, 3} {
		seq := runObserved(t, core.ArchLOFT, seed, 1)
		if seq.res.Packets == 0 {
			t.Fatalf("seed %d: sequential run delivered no packets", seed)
		}
		for _, workers := range []int{2, 4} {
			par := runObserved(t, core.ArchLOFT, seed, workers)
			checkIdentical(t, core.ArchLOFT, seed, workers, seq, par)
		}
	}
}

// TestParallelGSFDeterminism checks GSF byte-identity across worker counts.
func TestParallelGSFDeterminism(t *testing.T) {
	for _, seed := range []uint64{1, 2, 3} {
		seq := runObserved(t, core.ArchGSF, seed, 1)
		if seq.res.Packets == 0 {
			t.Fatalf("seed %d: sequential run delivered no packets", seed)
		}
		for _, workers := range []int{2, 4} {
			par := runObserved(t, core.ArchGSF, seed, workers)
			checkIdentical(t, core.ArchGSF, seed, workers, seq, par)
		}
	}
}

// TestPerfmonByteIdentity is the profiling-never-changes-results golden: a
// perfmon-instrumented run — sequential and sharded, sampling every cycle —
// must produce byte-identical results, probe event streams and audit
// snapshots to the bare run. Wall times land only in the perf snapshot,
// which is excluded from the comparison (and from run-directory goldens)
// precisely because it is nondeterministic by design.
func TestPerfmonByteIdentity(t *testing.T) {
	for _, arch := range []core.Arch{core.ArchLOFT, core.ArchGSF} {
		bare := runObserved(t, arch, 1, 1)
		if bare.res.Packets == 0 {
			t.Fatalf("%s: bare run delivered no packets", arch)
		}
		for _, workers := range []int{1, 2} {
			mon := perfmon.New(perfmon.Config{SampleEvery: 1, Workers: workers})
			prof := runObservedPerf(t, arch, 1, workers, mon)
			checkIdentical(t, arch, 1, workers, bare, prof)
			snap := mon.Snapshot()
			if snap.SampledCycles == 0 || len(snap.Stages) == 0 {
				t.Errorf("%s workers=%d: profiler attached but collected nothing: %+v", arch, workers, snap)
			}
			if workers > 1 && snap.Engine == nil {
				t.Errorf("%s workers=%d: no parallel-engine telemetry", arch, workers)
			}
		}
	}
}

// chaosPlan covers every fault kind at once on nodes that carry uniform
// traffic: a link-down window, sustained flit loss, a credit stall, a router
// stall and a misbehaving flow, all inside the 200+1500-cycle test horizon.
const chaosPlan = `
link-down    node=7  dir=south from=300 to=400
flit-loss    node=3  dir=east  rate=0.4 from=250 to=1200
credit-stall node=15 dir=west  from=500 to=560
router-stall node=9  from=600 to=608
adversary    flow=1  factor=3 cap=1 from=400
`

// TestChaosPlanParallelDeterminism is the fault-layer determinism golden: a
// run with every fault kind armed must be byte-identical — result summary,
// probe JSONL, audit snapshot — across worker counts, with faults actually
// firing and denied quanta actually retrying.
func TestChaosPlanParallelDeterminism(t *testing.T) {
	plan, err := fault.Parse(chaosPlan)
	if err != nil {
		t.Fatal(err)
	}
	for _, seed := range []uint64{1, 2} {
		seq := runObservedFault(t, core.ArchLOFT, seed, 1, nil, plan)
		if seq.res.Packets == 0 {
			t.Fatalf("seed %d: chaos run delivered no packets", seed)
		}
		if seq.res.FaultsInjected == 0 || seq.res.FlitsLost == 0 {
			t.Fatalf("seed %d: chaos plan armed but no faults fired: %+v", seed, seq.res)
		}
		if seq.res.Retries == 0 {
			t.Fatalf("seed %d: flits were lost but nothing retried", seed)
		}
		for _, workers := range []int{2, 4} {
			par := runObservedFault(t, core.ArchLOFT, seed, workers, nil, plan)
			checkIdentical(t, core.ArchLOFT, seed, workers, seq, par)
		}
	}
}

// runCorrupted runs a LOFT network with a deliberate lsf corruption armed on
// every reservation table and returns the externally visible outputs plus
// the auditor's violation count. Corrupting everywhere guarantees the
// fault's trigger pattern (frame abandonment, credit return) occurs within
// the short test horizon.
func runCorrupted(t *testing.T, f lsf.Fault, workers int) (observedRun, int) {
	t.Helper()
	cfg := config.PaperLOFT()
	p := trafficUniform(cfg, 0.2)
	pr := probe.New(probe.Config{SampleEvery: 256})
	aud := audit.New(audit.Config{})
	net, err := loftnet.New(cfg, p, loftnet.Options{Seed: 1, Warmup: 200, Probe: pr, Audit: aud, Workers: workers})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < cfg.Mesh().N(); i++ {
		for d := topo.Dir(0); d <= topo.NumDirs; d++ {
			net.Node(topo.NodeID(i)).InjectTableFault(d, f)
		}
	}
	const total = 1700
	aud.StartRun(total)
	net.Run(total)
	aud.FinishRun(net.Now())
	net.Close()
	var evBuf bytes.Buffer
	if err := probe.WriteEventsJSONL(&evBuf, pr.Events(), pr.Tracer().Dropped()); err != nil {
		t.Fatalf("export events: %v", err)
	}
	audJSON, err := json.Marshal(aud.Snapshot())
	if err != nil {
		t.Fatalf("marshal audit snapshot: %v", err)
	}
	return observedRun{events: evBuf.Bytes(), audit: audJSON}, len(aud.Violations())
}

// TestInjectFaultParallelDeterminism extends the lsf.InjectFault coverage to
// the parallel engine: for each deliberate scheduler corruption, the auditor
// must catch it AND the corrupted run must stay byte-identical between the
// sequential and sharded engines — a broken scheduler is still deterministic.
func TestInjectFaultParallelDeterminism(t *testing.T) {
	for _, tc := range []struct {
		name string
		f    lsf.Fault
	}{
		{"drop-skipped", lsf.FaultDropSkipped},
		{"leak-credit", lsf.FaultLeakCredit},
	} {
		t.Run(tc.name, func(t *testing.T) {
			seq, seqViol := runCorrupted(t, tc.f, 1)
			if seqViol == 0 {
				t.Fatalf("auditor missed the %s corruption", tc.name)
			}
			for _, workers := range []int{4} {
				par, parViol := runCorrupted(t, tc.f, workers)
				if parViol != seqViol {
					t.Errorf("workers=%d: %d violations, sequential saw %d", workers, parViol, seqViol)
				}
				checkIdentical(t, core.ArchLOFT, 1, workers, seq, par)
			}
		})
	}
}

// TestSteadyStateZeroAlloc pins the zero-allocation steady state: once a
// LOFT network has run past its warmup transient, advancing more cycles
// must allocate nothing. The dense input-reservation slab, the recycled
// look-ahead records and the double-buffered virtual-credit batches all
// feed this guarantee; a regression in any of them fails here before it
// shows up as a throughput loss in the benchmarks.
func TestSteadyStateZeroAlloc(t *testing.T) {
	cfg := config.PaperLOFT()
	p := trafficUniform(cfg, 0.2)
	// Warmup beyond the simulated horizon keeps every stats collector on its
	// early-return branch, so the measurement isolates the simulation core.
	net, err := loftnet.New(cfg, p, loftnet.Options{Seed: 1, Warmup: 1 << 30})
	if err != nil {
		t.Fatal(err)
	}
	defer net.Close()
	net.Run(4000)
	avg := testing.AllocsPerRun(20, func() { net.Run(50) })
	if avg != 0 {
		t.Fatalf("steady-state simulation allocates: %.1f allocs per 50-cycle chunk, want 0", avg)
	}

	// The profiler must preserve the guarantee: stage timers write into
	// fixed arrays and gauges are polled into preallocated slots, so a
	// perf-enabled run — sampling every single cycle — allocates nothing
	// either.
	t.Run("perf-enabled", func(t *testing.T) {
		mon := perfmon.New(perfmon.Config{SampleEvery: 1})
		pnet, err := loftnet.New(cfg, p, loftnet.Options{Seed: 1, Warmup: 1 << 30, Perf: mon})
		if err != nil {
			t.Fatal(err)
		}
		defer pnet.Close()
		pnet.Run(4000)
		avg := testing.AllocsPerRun(20, func() { pnet.Run(50) })
		if avg != 0 {
			t.Fatalf("perf-enabled steady state allocates: %.1f allocs per 50-cycle chunk, want 0", avg)
		}
		if snap := mon.Snapshot(); snap.SampledCycles == 0 {
			t.Fatal("profiler attached but sampled no cycles")
		}
	})
}
