#!/usr/bin/env sh
# Run the tier-2 engineering benchmarks and record each benchmark's headline
# metric in BENCH_<year>-<month>.json (benchmark name -> metric value), the
# perf trajectory the ROADMAP asks for. The headline metric is the last
# custom metric a benchmark reports (e.g. sim-cycles/sec), falling back to
# ns/op for benchmarks without one.
#
# Usage: scripts/bench.sh [output.json]
#   BENCH=<regex>     benchmarks to run  (default: SimulatorSpeed|ProbeOverhead|AuditOverhead|PerfmonOverhead|...)
#   BENCHTIME=<n>x    iterations per benchmark (default: 10x)
#   COUNT=<n>         repetitions; the minimum is recorded (default: 3)
set -eu
cd "$(dirname "$0")/.."

out="${1:-BENCH_$(date +%Y-%m).json}"
bench="${BENCH:-BenchmarkSimulatorSpeed|BenchmarkProbeOverhead|BenchmarkAuditOverhead|BenchmarkPerfmonOverhead|BenchmarkFaultOverhead|BenchmarkParallelSpeed|BenchmarkSteadyStateAllocs}"
benchtime="${BENCHTIME:-10x}"
count="${COUNT:-3}"

tmp="$(mktemp)"
trap 'rm -f "$tmp"' EXIT

# A recorded baseline certifies the simulator's performance AND its
# invariants at that point in time: refuse to record one from a tree the
# static analyzers reject.
if ! go run ./cmd/loftcheck -strict ./...; then
    echo "bench.sh: refusing to record a baseline: loftcheck found violations" >&2
    exit 1
fi

go test -run '^$' -bench "$bench" -benchtime "$benchtime" -count "$count" . | tee "$tmp"

awk '
BEGIN { n = 0 }   # explicit: an uninitialized n would subscript as ""
function record(name, value, unit) {
    # Keep the minimum across -count repetitions: a conservative floor the
    # <2%-regression guard in bench-check compares against (for allocs/op
    # entries the minimum is simply the best = cleanest repetition).
    if (name in idx) {
        if (value + 0 < values[idx[name]] + 0) values[idx[name]] = value
    } else {
        idx[name] = n; names[n] = name; values[n] = value; units[n] = unit; n++
    }
}
/^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)            # strip the -GOMAXPROCS suffix
    value = ""; unit = ""
    for (i = 3; i < NF; i++) {           # (value, unit) pairs after the count
        u = $(i + 1)
        if (u !~ /\//) continue
        if (u == "B/op") continue
        if (u == "allocs/op") {          # recorded separately as <name>#allocs
            record(name "#allocs", $i, u)
            continue
        }
        if (u == "ns/op" && unit != "") continue
        value = $i; unit = u
    }
    if (value == "") next
    record(name, value, unit)
}
END {
    printf "{\n"
    for (i = 0; i < n; i++)
        printf "  \"%s\": %s%s\n", names[i], values[i], (i < n - 1 ? "," : "")
    printf "}\n"
}
' "$tmp" > "$out"

echo "wrote $out:"
cat "$out"

# Sanity-check the overhead pairs: the instrumented ("on") run does strictly
# more work, so on > off beyond scheduling noise means the pair was measured
# under different machine conditions and the baseline should be re-recorded
# on a quiet machine.
awk -F'[:,]' '
/"BenchmarkProbeOverhead\/off"/ { poff = $2 + 0 }
/"BenchmarkProbeOverhead\/on"/  { pon  = $2 + 0 }
/"BenchmarkAuditOverhead\/off"/ { aoff = $2 + 0 }
/"BenchmarkAuditOverhead\/on"/  { aon  = $2 + 0 }
/"BenchmarkPerfmonOverhead\/off"/ { foff = $2 + 0 }
/"BenchmarkPerfmonOverhead\/on"/  { fon  = $2 + 0 }
/"BenchmarkFaultOverhead\/off"/ { xoff = $2 + 0 }
/"BenchmarkFaultOverhead\/on"/  { xon  = $2 + 0 }
END {
    if (poff > 0 && pon > poff * 1.02)
        printf "bench.sh: WARNING: inverted overhead pair: ProbeOverhead/on (%g) > off (%g); noisy measurement, consider re-running\n", pon, poff > "/dev/stderr"
    if (aoff > 0 && aon > aoff * 1.02)
        printf "bench.sh: WARNING: inverted overhead pair: AuditOverhead/on (%g) > off (%g); noisy measurement, consider re-running\n", aon, aoff > "/dev/stderr"
    if (foff > 0 && fon > foff * 1.02)
        printf "bench.sh: WARNING: inverted overhead pair: PerfmonOverhead/on (%g) > off (%g); noisy measurement, consider re-running\n", fon, foff > "/dev/stderr"
    if (xoff > 0 && xon > xoff * 1.02)
        printf "bench.sh: WARNING: inverted overhead pair: FaultOverhead/on (%g) > off (%g); noisy measurement, consider re-running\n", xon, xoff > "/dev/stderr"
}
' "$out"
